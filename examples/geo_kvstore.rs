//! A live geo-replicated key-value store on one machine: the threaded
//! runtime emulates the paper's five EC2 data centers (Table III
//! latencies, scaled 10× faster so the demo finishes quickly), and one
//! client thread per "city" issues writes, printing observed commit
//! latencies.
//!
//! Run with: `cargo run --release --example geo_kvstore`

use std::sync::Arc;
use std::time::{Duration, Instant};

use analysis::ec2;
use clock_rsm::{ClockRsm, ClockRsmConfig};
use kvstore::{KvOp, KvStore};
use rsm_core::{Membership, ReplicaId, StateMachine};
use rsm_runtime::{Cluster, ClusterConfig};

const SCALE: f64 = 0.1; // 10x faster than the real WAN

fn main() {
    let (sites, matrix) = ec2::five_site_deployment();
    println!("Spinning up five replicas with EC2 latencies (scaled {SCALE}x):");
    for (i, s) in sites.iter().enumerate() {
        println!("  r{i} = {s}");
    }

    let n = sites.len() as u16;
    let cluster = Arc::new(Cluster::spawn(
        ClusterConfig::new(matrix).scale(SCALE),
        move |id| ClockRsm::new(id, Membership::uniform(n), ClockRsmConfig::default()),
        || Box::new(KvStore::new()) as Box<dyn StateMachine>,
    ));

    let mut handles = Vec::new();
    for (i, site) in sites.iter().copied().enumerate() {
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let replica = ReplicaId::new(i as u16);
            let mut latencies = Vec::new();
            for k in 0..20 {
                let start = Instant::now();
                let reply = cluster
                    .execute(
                        replica,
                        KvOp::put(format!("{site}:key{k}"), format!("value-{k}")).encode(),
                        Duration::from_secs(30),
                    )
                    .expect("commit");
                assert_eq!(reply.result[0], 1);
                latencies.push(start.elapsed().as_secs_f64() * 1000.0);
            }
            latencies.sort_by(f64::total_cmp);
            let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
            println!(
                "  {site}: mean commit latency {:.1} ms (scaled back: {:.0} ms at full WAN)",
                mean,
                mean / SCALE
            );
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    let reply = cluster
        .execute(
            ReplicaId::new(0),
            KvOp::get("SG:key19").encode(),
            Duration::from_secs(30),
        )
        .expect("read");
    println!(
        "\nRead SG:key19 via CA replica -> {:?}",
        String::from_utf8_lossy(&reply.result[1..])
    );

    std::thread::sleep(Duration::from_millis(500)); // drain in-flight
    let cluster = Arc::try_unwrap(cluster).ok().expect("sole owner");
    let reports = cluster.shutdown();
    let converged = reports.windows(2).all(|w| w[0].snapshot == w[1].snapshot);
    println!("All replicas converged: {converged}");
    assert!(converged);
}
