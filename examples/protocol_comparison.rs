//! Head-to-head comparison: run all four protocols on the same simulated
//! five-data-center deployment and workload, and print per-site latency
//! plus the correctness checker verdicts — a miniature of the paper's
//! Figure 1 experiment.
//!
//! Run with: `cargo run --release --example protocol_comparison`

use analysis::ec2;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use rsm_core::time::MILLIS;

fn main() {
    let (sites, matrix) = ec2::five_site_deployment();
    println!(
        "Five replicas at {}, balanced workload, leader VA for the Paxos variants.",
        sites.iter().map(|s| s.name()).collect::<Vec<_>>().join(" ")
    );
    println!("Simulating 6 virtual seconds each...\n");

    let cfg = ExperimentConfig::new(matrix)
        .clients_per_site(10)
        .warmup_us(1_000 * MILLIS)
        .duration_us(5_000 * MILLIS);

    print!("{:<16}", "protocol");
    for s in &sites {
        print!("{:>10}", s.name());
    }
    println!("{:>10}{:>8}{:>8}{:>8}", "avg", "p50", "p99", "safe?");

    for choice in [
        ProtocolChoice::paxos(1),
        ProtocolChoice::paxos_bcast(1),
        ProtocolChoice::mencius(),
        ProtocolChoice::clock_rsm(),
    ] {
        let r = run_latency(choice, &cfg);
        print!("{:<16}", r.protocol);
        let mut sum = 0.0;
        for i in 0..sites.len() {
            let m = r.site_stats[i].mean_ms();
            sum += m;
            print!("{m:>10.1}");
        }
        println!(
            "{:>10.1}{:>8.1}{:>8.1}{:>8}",
            sum / sites.len() as f64,
            r.p50_ms,
            r.p99_ms,
            if r.checks.all_ok() && r.snapshots_agree {
                "yes"
            } else {
                "NO"
            }
        );
    }
    println!(
        "\n(mean commit latency in ms per site, then all-site p50/p99; \
         compare with the paper's Figure 1b)"
    );
    println!("Clock-RSM: lowest latency everywhere except the Paxos leader site (VA).");
}
