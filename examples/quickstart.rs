//! Quickstart: replicate a key-value store with Clock-RSM on a simulated
//! three-data-center deployment, submit a few commands, and watch them
//! commit in timestamp order at every replica.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use clock_rsm::{ClockRsm, ClockRsmConfig};
use kvstore::{KvOp, KvStore};
use rsm_core::{ClientId, Command, CommandId, LatencyMatrix, Membership, ReplicaId, Reply};
use simnet::sim::{Application, SimApi};
use simnet::{SimConfig, Simulation};

/// A tiny application: three clients (one per site) each write one key,
/// then site 0 reads a key written elsewhere.
struct QuickstartApp {
    replies: Vec<(ClientId, Reply)>,
    phase: u8,
}

impl Application<ClockRsm> for QuickstartApp {
    fn on_init(&mut self, api: &mut SimApi<'_, ClockRsm>) {
        for site in 0..3u16 {
            let client = ClientId::new(ReplicaId::new(site), 0);
            let cmd = Command::new(
                CommandId::new(client, 1),
                KvOp::put(format!("city{site}"), format!("hello from r{site}")).encode(),
            );
            api.submit(ReplicaId::new(site), cmd);
        }
    }

    fn on_reply(&mut self, client: ClientId, reply: Reply, api: &mut SimApi<'_, ClockRsm>) {
        println!(
            "t={:>6.1}ms  {client} got reply for command #{} (status {})",
            api.now() as f64 / 1000.0,
            reply.id.seq,
            reply.result[0],
        );
        self.replies.push((client, reply));
        if self.replies.len() == 3 && self.phase == 0 {
            self.phase = 1;
            let client = ClientId::new(ReplicaId::new(0), 0);
            let cmd = Command::new(CommandId::new(client, 2), KvOp::get("city2").encode());
            api.submit(ReplicaId::new(0), cmd);
        } else if self.phase == 1 {
            let (_, r) = self.replies.last().expect("just pushed");
            println!(
                "   read of city2 through site 0: {:?}",
                String::from_utf8_lossy(&r.result[1..])
            );
        }
    }

    fn on_event(&mut self, _key: u64, _api: &mut SimApi<'_, ClockRsm>) {}
}

fn main() {
    // Three data centers, 25 ms apart (one-way).
    let latency = LatencyMatrix::uniform(3, 25_000);
    let cfg = SimConfig::new(latency).seed(1);
    let mut sim = Simulation::new(
        cfg,
        |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
        || Box::new(KvStore::new()),
        QuickstartApp {
            replies: Vec::new(),
            phase: 0,
        },
    );

    sim.run_until(2_000_000); // two virtual seconds

    println!("\nPer-replica execution histories (identical prefixes):");
    for r in 0..3u16 {
        let commits = sim.commits(ReplicaId::new(r));
        let ids: Vec<String> = commits.iter().map(|c| format!("{:?}", c.cmd_id)).collect();
        println!("  r{r}: {} commands: [{}]", commits.len(), ids.join(", "));
    }

    let all_equal =
        (1..3u16).all(|r| sim.snapshot(ReplicaId::new(r)) == sim.snapshot(ReplicaId::new(0)));
    println!("\nReplica state machines converged: {all_equal}");
    assert!(all_equal);
    let _: Bytes = sim.snapshot(ReplicaId::new(0));
}
