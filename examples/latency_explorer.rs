//! Latency explorer: pick any subset of the paper's seven EC2 data
//! centers and see the closed-form commit latency (Table II) every
//! protocol would deliver at every site — the tool you would use to plan
//! a real deployment.
//!
//! Run with: `cargo run --example latency_explorer -- CA VA IR JP SG`
//! (defaults to the paper's five-site deployment when no sites given).

use analysis::ec2::{self, Site};
use analysis::model;
use rsm_core::ReplicaId;

fn parse_site(name: &str) -> Option<Site> {
    ec2::ALL_SITES
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sites: Vec<Site> = if args.is_empty() {
        vec![Site::CA, Site::VA, Site::IR, Site::JP, Site::SG]
    } else {
        args.iter()
            .map(|a| {
                parse_site(a).unwrap_or_else(|| {
                    eprintln!("unknown site {a}; valid: CA VA IR JP SG AU BR");
                    std::process::exit(1);
                })
            })
            .collect()
    };
    if sites.len() < 3 {
        eprintln!("pick at least 3 sites");
        std::process::exit(1);
    }

    let m = ec2::matrix_for(&sites);
    let best = model::best_leader(&m, model::paxos_bcast);
    println!(
        "\nDeployment: {}  (Paxos leader: {})",
        sites.iter().map(|s| s.name()).collect::<Vec<_>>().join(" "),
        sites[best.index()].name()
    );
    println!(
        "\n{:<6}{:>12}{:>14}{:>18}{:>20}",
        "site", "Paxos", "Paxos-bcast", "Clock-RSM (bal)", "Mencius (imbal)"
    );
    for (i, site) in sites.iter().enumerate() {
        let r = ReplicaId::new(i as u16);
        println!(
            "{:<6}{:>12.1}{:>14.1}{:>18.1}{:>20.1}",
            site.name(),
            model::paxos(&m, r, best) as f64 / 1000.0,
            model::paxos_bcast(&m, r, best) as f64 / 1000.0,
            model::clock_rsm_balanced(&m, r) as f64 / 1000.0,
            model::mencius_bcast_imbalanced(&m, r) as f64 / 1000.0,
        );
    }

    let avg = |f: &dyn Fn(ReplicaId) -> u64| {
        (0..sites.len())
            .map(|i| f(ReplicaId::new(i as u16)))
            .sum::<u64>() as f64
            / sites.len() as f64
            / 1000.0
    };
    let clock_avg = avg(&|r| model::clock_rsm_balanced(&m, r));
    let paxos_avg = avg(&|r| model::paxos_bcast(&m, r, best));
    println!(
        "\nAverage: Clock-RSM {clock_avg:.1} ms vs Paxos-bcast {paxos_avg:.1} ms -> {}",
        if clock_avg < paxos_avg {
            "Clock-RSM wins"
        } else {
            "Paxos-bcast wins (three-replica special case or tight cluster)"
        }
    );
    println!("(commit latency in ms from the Table II formulas over Table III RTTs)");
}
