//! Failure handling demo: crash a replica under load, watch the failure
//! detector and reconfiguration protocol (Algorithm 3) remove it, keep
//! serving from the surviving majority, then bring it back and watch it
//! recover from its log and rejoin.
//!
//! Run with: `cargo run --example failover`

use clock_rsm::ClockRsmConfig;
use harness::workload::Fault;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use rsm_core::time::MILLIS;
use rsm_core::{LatencyMatrix, ReplicaId};

fn main() {
    let crash_at = 2_000 * MILLIS;
    let recover_at = 5_000 * MILLIS;

    println!("Three replicas, 20 ms apart; clients at sites 0 and 1.");
    println!("t=2.0s  crash replica 2");
    println!("t=5.0s  restart replica 2 (recovers from log, rejoins)\n");

    let rsm_cfg = ClockRsmConfig::default()
        .with_delta_us(Some(50 * MILLIS))
        .with_failure_detection(Some(400 * MILLIS))
        .with_synod_retry_us(100 * MILLIS)
        .with_reconfig_retry_us(100 * MILLIS);

    let cfg = ExperimentConfig::new(LatencyMatrix::uniform(3, 20_000))
        .clients_per_site(3)
        .think_max_us(40 * MILLIS)
        .warmup_us(0)
        .duration_us(10_000 * MILLIS)
        .active_sites(vec![0, 1])
        .fault(crash_at, Fault::Crash(ReplicaId::new(2)))
        .fault(recover_at, Fault::Recover(ReplicaId::new(2)));

    let r = run_latency(ProtocolChoice::clock_rsm_with(rsm_cfg), &cfg);

    println!("Commits at replica 0 per second of virtual time:");
    for sec in 0..10u64 {
        let from = sec * 1_000 * MILLIS;
        let to = from + 1_000 * MILLIS;
        let count = r.commits_between(0, from, to);
        let marker = if from == crash_at {
            "  <- crash of r2"
        } else if from == recover_at {
            "  <- r2 restarts"
        } else {
            ""
        };
        println!("  [{sec:>2}s..{:>2}s): {count:>4} commits{marker}", sec + 1);
    }

    println!("\nReplica 2 commits after its recovery:");
    println!(
        "  re-executed after rejoin: {} commands (total {})",
        r.commits_between(2, recover_at, u64::MAX),
        r.commit_counts[2]
    );

    println!("\nSafety checks:");
    println!("  total order:     {}", r.checks.total_order_ok);
    println!("  monotonic exec:  {}", r.checks.monotonic_ok);
    println!("  linearizability: {}", r.checks.real_time_ok);
    println!("  convergence:     {}", r.snapshots_agree);
    assert!(r.checks.all_ok() && r.snapshots_agree);
    println!("\nThe dip around t=2s is the failure-detection + reconfiguration");
    println!("window; service resumes on the surviving majority, and the");
    println!("restarted replica catches up via state transfer and rejoins.");
}
