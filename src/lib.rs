//! Root crate of the Clock-RSM reproduction workspace.
//!
//! This crate holds no library code of its own; it exists so the
//! workspace-level integration tests (`tests/`) and examples
//! (`examples/`) — which exercise the full stack across crates — have a
//! package to hang off. The real code lives in `crates/`:
//!
//! * `rsm-core` — vocabulary types and the sans-io [`Protocol`] contract
//! * `clock-rsm`, `paxos`, `mencius` — the replication protocols
//! * `simnet` — the deterministic discrete-event simulator
//! * `rsm-runtime` — the threaded real-time driver
//! * `kvstore`, `harness`, `analysis`, `bench` — state machine,
//!   experiment harness, analytical model, paper-figure binaries
//!
//! [`Protocol`]: https://docs.rs/rsm-core (crates/core/src/protocol.rs)
