//! The threaded real-time runtime runs the same protocol cores outside
//! the simulator: spin up real replica threads with emulated WAN delays
//! and drive the replicated key-value store from multiple client threads.

use std::time::Duration;

use clock_rsm::{ClockRsm, ClockRsmConfig};
use kvstore::{KvOp, KvStore};
use mencius::MenciusBcast;
use paxos::{MultiPaxos, PaxosVariant};
use rsm_core::{LatencyMatrix, Membership, ReplicaId, StateMachine};
use rsm_runtime::{Cluster, ClusterConfig};

fn kv() -> Box<dyn StateMachine> {
    Box::new(KvStore::new())
}

/// Concurrent clients at all three sites of a live Clock-RSM cluster:
/// every write must commit, reads must observe them, and the replicas
/// must converge to identical state.
#[test]
fn clock_rsm_live_concurrent_clients() {
    let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 15_000)).scale(0.02);
    let cluster = std::sync::Arc::new(Cluster::spawn(
        cfg,
        |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
        kv,
    ));

    let mut handles = Vec::new();
    for site in 0..3u16 {
        let cluster = std::sync::Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            for k in 0..10 {
                let reply = cluster
                    .execute(
                        ReplicaId::new(site),
                        KvOp::put(format!("site{site}-key{k}"), format!("v{k}")).encode(),
                        Duration::from_secs(20),
                    )
                    .expect("commit");
                assert_eq!(reply.result[0], 1);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    // Cross-site read-your-writes through the total order.
    let reply = cluster
        .execute(
            ReplicaId::new(0),
            KvOp::get("site2-key9").encode(),
            Duration::from_secs(20),
        )
        .expect("read");
    assert_eq!(&reply.result[1..], b"v9");

    // Let in-flight broadcasts drain at the laggard replicas before
    // stopping the threads (replies only prove the origin executed).
    std::thread::sleep(Duration::from_millis(300));
    let cluster = std::sync::Arc::try_unwrap(cluster)
        .ok()
        .expect("sole owner");
    let reports = cluster.shutdown();
    assert!(reports.windows(2).all(|w| w[0].snapshot == w[1].snapshot));
    // 31 commands total (30 writes + 1 read), executed by every replica.
    assert!(reports.iter().all(|r| r.commit_count == 31));
}

/// The same live harness runs the baselines unchanged.
#[test]
fn baselines_live_smoke() {
    // Paxos-bcast.
    let cluster = Cluster::spawn(
        ClusterConfig::new(LatencyMatrix::uniform(3, 8_000)).scale(0.02),
        |id| {
            MultiPaxos::new(
                id,
                Membership::uniform(3),
                ReplicaId::new(0),
                PaxosVariant::Bcast,
            )
        },
        kv,
    );
    for i in 0..5 {
        cluster
            .execute(
                ReplicaId::new(i % 3),
                KvOp::put(format!("k{i}"), "v").encode(),
                Duration::from_secs(10),
            )
            .expect("paxos commit");
    }
    std::thread::sleep(Duration::from_millis(300));
    let reports = cluster.shutdown();
    assert!(reports.windows(2).all(|w| w[0].snapshot == w[1].snapshot));

    // Mencius-bcast.
    let cluster = Cluster::spawn(
        ClusterConfig::new(LatencyMatrix::uniform(3, 8_000)).scale(0.02),
        |id| MenciusBcast::new(id, Membership::uniform(3)),
        kv,
    );
    for i in 0..5 {
        cluster
            .execute(
                ReplicaId::new(i % 3),
                KvOp::put(format!("m{i}"), "v").encode(),
                Duration::from_secs(10),
            )
            .expect("mencius commit");
    }
    std::thread::sleep(Duration::from_millis(300));
    let reports = cluster.shutdown();
    assert!(reports.windows(2).all(|w| w[0].snapshot == w[1].snapshot));
}

/// Loose synchrony in real time: replicas with ±40 ms clock offsets (far
/// beyond the emulated one-way delay) still commit and converge.
#[test]
fn live_cluster_with_skewed_clocks() {
    let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000))
        .scale(0.02)
        .clock_offset_us(0, 40_000)
        .clock_offset_us(1, -40_000);
    let cluster = Cluster::spawn(
        cfg,
        |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
        kv,
    );
    for i in 0..6u16 {
        let reply = cluster
            .execute(
                ReplicaId::new(i % 3),
                KvOp::put(format!("sk{i}"), "v").encode(),
                Duration::from_secs(30),
            )
            .expect("commit despite skew");
        assert_eq!(reply.result[0], 1);
    }
    std::thread::sleep(Duration::from_millis(300));
    let reports = cluster.shutdown();
    assert!(reports.windows(2).all(|w| w[0].snapshot == w[1].snapshot));
}
