//! Long-outage soak: a replica stays down while the cluster commits far
//! past any retransmission horizon, then recovers. Before checkpoint
//! transfer existed this was the unsound regime — a recovered Paxos
//! replica could never refill its committed holes, and a Mencius peer
//! down past the own-history retention cap stalled forever. With the
//! shared checkpoint subsystem (periodic snapshots + log compaction +
//! peer-to-peer transfer, `rsm_core::checkpoint`), every protocol must
//! bring the replica back to a state machine **byte-identical** to the
//! never-crashed replicas, while compaction keeps every stable log
//! bounded regardless of how many commands committed.

use clock_rsm::ClockRsmConfig;
use harness::{run_latency, ExperimentConfig, ExperimentResult, ProtocolChoice};
use rsm_core::checkpoint::CheckpointPolicy;
use rsm_core::time::MILLIS;
use rsm_core::LatencyMatrix;

/// The crashed replica (never 0 — that site hosts the clients).
const VICTIM: u16 = 1;
const DOWN_AT: u64 = 2_000 * MILLIS;
const UP_AT: u64 = 12_000 * MILLIS;
const DURATION: u64 = 20_000 * MILLIS;

/// Checkpoint every 32 commands and compact: small enough that the
/// 10-second outage spans many checkpoints.
fn policy() -> CheckpointPolicy {
    CheckpointPolicy::every(32).with_compaction(true)
}

fn outage_cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig::new(LatencyMatrix::uniform(3, 10_000))
        .seed(seed)
        .clients_per_site(3)
        .think_max_us(10 * MILLIS)
        .active_sites(vec![0])
        .warmup_us(100 * MILLIS)
        .duration_us(DURATION)
        .checkpoint(policy())
        // Retries keep the closed loop alive across the outage (and, for
        // Mencius, keep proposals flowing while execution is stalled on
        // the dead peer's slots — that growth is what pushes the owner
        // past its retention cap).
        .client_retry_us(500 * MILLIS)
        // Commit histories are gappy by design here (a snapshot install
        // skips per-command records), so run the soak on snapshots and
        // log bounds rather than per-op traces.
        .record_ops(false)
        .long_outage(VICTIM, DOWN_AT, UP_AT)
}

fn assert_recovered(r: &ExperimentResult, seed: u64, min_site0_commits: u64) {
    assert!(
        r.snapshots_agree,
        "{} seed {seed}: recovered replica diverged; commits {:?}",
        r.protocol, r.commit_counts
    );
    assert!(
        r.commit_counts[0] >= min_site0_commits,
        "{} seed {seed}: too little progress ({:?})",
        r.protocol,
        r.commit_counts
    );
    assert!(
        r.commit_counts[VICTIM as usize] > 0,
        "{} seed {seed}: recovered replica never executed anything",
        r.protocol
    );
}

fn assert_log_bounded(r: &ExperimentResult, seed: u64) {
    // Without compaction the logs hold at least one record per command
    // (Paxos: accept + commit mark; Mencius: accept + commit/skip marks),
    // so they would exceed the commit count by construction. Bounded
    // means: a small multiple of the checkpoint interval plus pipeline
    // depth, not proportional to history length.
    let commits = r.commit_counts[0];
    for (i, &len) in r.log_lens.iter().enumerate() {
        assert!(
            (len as u64) < commits / 2,
            "{} seed {seed}: log of replica {i} not compacted \
             ({len} records for {commits} commits)",
            r.protocol
        );
        assert!(
            len < 1_500,
            "{} seed {seed}: log of replica {i} unbounded ({len} records)",
            r.protocol
        );
    }
}

#[test]
fn paxos_recovers_committed_holes_via_checkpoint_transfer() {
    // The victim follower loses every ACCEPT sent during the outage;
    // the commit watermark passes its holes, and only a peer's
    // checkpoint can fill them.
    for seed in [7u64, 8] {
        let r = run_latency(ProtocolChoice::paxos_bcast(0), &outage_cfg(seed));
        assert_recovered(&r, seed, 500);
        assert_log_bounded(&r, seed);
        let r = run_latency(ProtocolChoice::paxos(0), &outage_cfg(seed));
        assert_recovered(&r, seed, 500);
        assert_log_bounded(&r, seed);
    }
}

#[test]
fn mencius_peer_down_past_history_retention_rejoins_and_commits() {
    // While the victim is down, cluster execution stalls on its slots,
    // but client retries keep the site-0 owner proposing: its
    // own-history cap (shrunk to 24 here) prunes the retransmission
    // horizon past the victim's holes. On rejoin, gap fills come back
    // clamped-unanswerable and the victim must fetch a checkpoint —
    // previously this configuration stalled it forever.
    for seed in [21u64, 22, 23] {
        let r = run_latency(
            ProtocolChoice::mencius_with_history_cap(24),
            &outage_cfg(seed),
        );
        // Mencius commits only outside the outage window (the dead
        // peer's slots gate execution), so expect less total progress.
        assert_recovered(&r, seed, 100);
        assert_log_bounded(&r, seed);
    }
}

#[test]
fn clock_rsm_long_outage_recovers_from_durable_checkpoints() {
    // Clock-RSM handles the outage through reconfiguration (the victim
    // is removed, then rejoins via Algorithm 3 state transfer); the
    // checkpoint policy rides along so its local recovery starts from
    // the newest durable snapshot instead of a full replay.
    let rsm_cfg = ClockRsmConfig::default()
        .with_delta_us(Some(50 * MILLIS))
        .with_failure_detection(Some(400 * MILLIS))
        .with_synod_retry_us(100 * MILLIS)
        .with_reconfig_retry_us(100 * MILLIS);
    for seed in [31u64, 32] {
        let r = run_latency(ProtocolChoice::clock_rsm_with(rsm_cfg), &outage_cfg(seed));
        assert_recovered(&r, seed, 500);
    }
}
