//! Soaks over the **real TCP transport**: the fail-over and read-mix
//! scenarios that the simnet suites cover deterministically, replayed on
//! the threaded runtime with every protocol message serialized through
//! the binary wire codec onto framed loopback sockets.
//!
//! These are the cross-machine honesty checks: a codec arm that drops a
//! field, a framing bug, or a transport queue that deadlocks under a
//! silent peer all surface here and nowhere else, because the in-process
//! plane moves cloned structs and the simnet never serializes at all.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clock_rsm::{ClockRsm, ClockRsmConfig};
use kvstore::{KvOp, KvStore};
use mencius::MenciusBcast;
use paxos::{MultiPaxos, PaxosVariant};
use rsm_core::protocol::Protocol;
use rsm_core::wire::WireMsg;
use rsm_core::{LatencyMatrix, LeaseConfig, Membership, ReplicaId, StateMachine};
use rsm_runtime::{Cluster, ClusterConfig, ClusterTransport};

fn kv() -> Box<dyn StateMachine> {
    Box::new(KvStore::new())
}

fn tcp_cfg(one_way_us: u64) -> ClusterConfig {
    ClusterConfig::new(LatencyMatrix::uniform(3, one_way_us))
        .scale(0.02)
        .transport(ClusterTransport::Tcp)
}

/// Retries `put` at `site` until it commits or `deadline` passes —
/// commands in flight across a leader election are simply lost and the
/// client retries, like any real client.
fn put_with_retry<P>(cluster: &Cluster<P>, site: ReplicaId, key: &str, val: &str) -> bool
where
    P: Protocol + Send + 'static,
    P::Msg: WireMsg,
{
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if cluster
            .execute(site, KvOp::put(key, val).encode(), Duration::from_secs(2))
            .is_ok()
        {
            return true;
        }
    }
    false
}

/// Paxos leader crash over TCP: the survivors' lease detectors time out
/// against a genuinely silent socket peer, elect a replacement, and the
/// cluster keeps committing — then serves linearizable reads of both the
/// pre-crash and post-crash writes.
#[test]
fn paxos_leader_failover_over_tcp() {
    let cluster = Cluster::spawn(
        tcp_cfg(5_000),
        |id| {
            MultiPaxos::new(
                id,
                Membership::uniform(3),
                ReplicaId::new(0),
                PaxosVariant::Bcast,
            )
            .with_failover(LeaseConfig::after(200_000))
        },
        kv,
    );

    // Commit through the initial leader's regime.
    for i in 0..5 {
        assert!(
            put_with_retry(&cluster, ReplicaId::new(i % 3), &format!("pre{i}"), "v"),
            "pre-crash write {i} never committed"
        );
    }

    // Kill the leader. Its sockets stay connected but go silent.
    cluster.crash(ReplicaId::new(0));

    // Survivors must elect and resume committing (retries span the
    // lease timeout + election rounds).
    for i in 0..5 {
        let site = ReplicaId::new(1 + (i % 2));
        assert!(
            put_with_retry(&cluster, site, &format!("post{i}"), "v"),
            "post-crash write {i} never committed"
        );
    }

    // Linearizable reads at both survivors observe the full history.
    for site in [ReplicaId::new(1), ReplicaId::new(2)] {
        for key in ["pre0", "post4"] {
            let reply = cluster
                .read(site, KvOp::get(key).encode(), Duration::from_secs(10))
                .expect("post-failover read");
            assert_eq!(&reply.result[..], b"\x01v", "{key} lost at {site:?}");
        }
    }

    // Let the survivors' trailing commits drain, then check convergence
    // between them (the crashed node stopped mid-history by design).
    std::thread::sleep(Duration::from_millis(300));
    let reports = cluster.shutdown();
    assert_eq!(reports[1].snapshot, reports[2].snapshot);
}

/// A 90/10-style read-mix soak over TCP for one protocol: per-site
/// writer threads bump a per-site version key while reader threads at
/// *other* sites issue linearizable reads, asserting versions never run
/// backwards (regressions here mean a stale read slipped through the
/// probe/lease machinery — or a codec bug scrambled a mark).
fn read_mix_over_tcp<P>(name: &str, factory: impl FnMut(ReplicaId) -> P + Send)
where
    P: Protocol + Send + 'static,
    P::Msg: WireMsg,
{
    let cluster = Arc::new(Cluster::spawn(tcp_cfg(3_000), factory, kv));
    let writes_done = Arc::new(AtomicBool::new(false));
    // Highest version each writer has seen *acknowledged*; readers at
    // other sites must never observe below what was acked when their
    // read started... monotonicity per reader is the portable check.
    let acked = Arc::new([AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)]);

    let mut handles = Vec::new();
    for site in 0..3u16 {
        // Writer: versioned puts to this site's key.
        let cluster = Arc::clone(&cluster);
        let acked = Arc::clone(&acked);
        handles.push(std::thread::spawn(move || {
            for v in 1..=20u64 {
                let ok = cluster
                    .execute(
                        ReplicaId::new(site),
                        KvOp::put(format!("w{site}"), format!("{v:06}")).encode(),
                        Duration::from_secs(10),
                    )
                    .is_ok();
                assert!(ok, "{site} write v{v} timed out");
                acked[site as usize].store(v, Ordering::SeqCst);
            }
        }));
    }
    for site in 0..3u16 {
        // Reader: linearizable reads of the *next* site's key.
        let cluster = Arc::clone(&cluster);
        let acked = Arc::clone(&acked);
        let writes_done = Arc::clone(&writes_done);
        let target = (site + 1) % 3;
        handles.push(std::thread::spawn(move || {
            let mut last_seen = 0u64;
            while !writes_done.load(Ordering::SeqCst) {
                let floor = acked[target as usize].load(Ordering::SeqCst);
                let reply = cluster
                    .read(
                        ReplicaId::new(site),
                        KvOp::get(format!("w{target}")).encode(),
                        Duration::from_secs(10),
                    )
                    .expect("read");
                let seen = if reply.result[0] == 1 {
                    std::str::from_utf8(&reply.result[1..])
                        .expect("utf8 version")
                        .parse::<u64>()
                        .expect("numeric version")
                } else {
                    0
                };
                // Linearizability necessities: never run backwards, and
                // never below what was globally acked before the read
                // was issued.
                assert!(
                    seen >= last_seen,
                    "w{target} ran backwards at site {site}: {seen} < {last_seen}"
                );
                assert!(
                    seen >= floor,
                    "stale read of w{target} at site {site}: {seen} < acked {floor}"
                );
                last_seen = seen;
            }
        }));
    }

    // Writers finish first; then release the readers.
    let (writers, readers): (Vec<_>, Vec<_>) = {
        let mut it = handles.into_iter();
        let w: Vec<_> = (&mut it).take(3).collect();
        (w, it.collect())
    };
    for w in writers {
        w.join()
            .unwrap_or_else(|_| panic!("{name} writer panicked"));
    }
    writes_done.store(true, Ordering::SeqCst);
    for r in readers {
        r.join()
            .unwrap_or_else(|_| panic!("{name} reader panicked"));
    }

    // Final reads at every site see every writer's last version.
    for site in 0..3u16 {
        for target in 0..3u16 {
            let reply = cluster
                .read(
                    ReplicaId::new(site),
                    KvOp::get(format!("w{target}")).encode(),
                    Duration::from_secs(10),
                )
                .expect("final read");
            assert_eq!(
                &reply.result[..],
                format!("\x01{:06}", 20).as_bytes(),
                "{name}: site {site} missing final w{target}"
            );
        }
    }

    let cluster = Arc::try_unwrap(cluster).ok().expect("sole owner");
    cluster.shutdown();
}

#[test]
fn clock_rsm_read_mix_over_tcp() {
    read_mix_over_tcp("Clock-RSM", |id| {
        ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default())
    });
}

#[test]
fn paxos_read_mix_over_tcp() {
    read_mix_over_tcp("Paxos", |id| {
        MultiPaxos::new(
            id,
            Membership::uniform(3),
            ReplicaId::new(0),
            PaxosVariant::Bcast,
        )
    });
}

#[test]
fn mencius_read_mix_over_tcp() {
    read_mix_over_tcp("Mencius-bcast", |id| {
        MenciusBcast::new(id, Membership::uniform(3))
    });
}
