//! Fault soak: randomized crash/recover schedules (derived from seeds,
//! always keeping a majority of the spec up) drive repeated rounds of
//! failure handling. For Clock-RSM that is suspicion, removal, recovery,
//! and rejoin via the reconfiguration protocol; for Paxos the same
//! schedules crash the *leader* too, so the soak exercises election
//! churn — lease expiry, ballot elections, repairs, deposed leaders
//! rejoining — not just follower outages. Safety and convergence must
//! hold at the end of every schedule, and with compaction on, logs must
//! stay bounded however many regimes came and went.

use clock_rsm::ClockRsmConfig;
use harness::workload::Fault;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsm_core::checkpoint::CheckpointPolicy;
use rsm_core::lease::LeaseConfig;
use rsm_core::time::MILLIS;
use rsm_core::{LatencyMatrix, ReplicaId};

/// Builds a random fault schedule over `n` replicas: each second, maybe
/// crash an up replica (never dropping below a majority of the spec, and
/// never crashing replica 0, which hosts the clients) or recover a down
/// one. Everything recovers before the end.
fn random_schedule(seed: u64, n: usize, seconds: u64) -> Vec<(u64, Fault)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let majority = n / 2 + 1;
    let mut up = vec![true; n];
    let mut plan = Vec::new();
    for sec in 1..seconds.saturating_sub(6) {
        let at = sec * 1_000 * MILLIS + rng.gen_range(0..500u64) * MILLIS / 500;
        let up_count = up.iter().filter(|&&u| u).count();
        let roll: f64 = rng.gen();
        if roll < 0.30 && up_count > majority {
            // Crash a random up replica other than 0.
            let candidates: Vec<usize> = (1..n).filter(|&i| up[i]).collect();
            if let Some(&victim) = candidates.get(rng.gen_range(0..candidates.len().max(1))) {
                up[victim] = false;
                plan.push((at, Fault::Crash(ReplicaId::new(victim as u16))));
            }
        } else if roll < 0.70 {
            let down: Vec<usize> = (0..n).filter(|&i| !up[i]).collect();
            if !down.is_empty() {
                let back = down[rng.gen_range(0..down.len())];
                up[back] = true;
                plan.push((at, Fault::Recover(ReplicaId::new(back as u16))));
            }
        }
    }
    // Everyone comes back well before the end so the run can converge.
    for (i, &alive) in up.iter().enumerate() {
        if !alive {
            plan.push((
                (seconds - 6) * 1_000 * MILLIS,
                Fault::Recover(ReplicaId::new(i as u16)),
            ));
        }
    }
    plan
}

fn soak(seed: u64, n: usize) {
    soak_with_reads(seed, n, 0.0)
}

/// One Clock-RSM soak round; `read_fraction > 0` interleaves local
/// stable-timestamp reads with the writes, so the crash/recover churn
/// also exercises read parking across freezes, rejoins, and epoch
/// changes — judged by the read-value checker inside `checks.all_ok()`.
fn soak_with_reads(seed: u64, n: usize, read_fraction: f64) {
    let seconds = 16u64;
    let rsm_cfg = ClockRsmConfig::default()
        .with_delta_us(Some(50 * MILLIS))
        .with_failure_detection(Some(400 * MILLIS))
        .with_synod_retry_us(100 * MILLIS)
        .with_reconfig_retry_us(100 * MILLIS);
    let mut cfg = ExperimentConfig::new(LatencyMatrix::uniform(n, 15_000))
        .seed(seed)
        .clients_per_site(2)
        .think_max_us(50 * MILLIS)
        .read_fraction(read_fraction)
        .warmup_us(100 * MILLIS)
        .duration_us(seconds * 1_000 * MILLIS)
        .active_sites(vec![0])
        .client_retry_us(2_000 * MILLIS);
    for (at, f) in random_schedule(seed, n, seconds) {
        cfg = cfg.fault(at, f);
    }
    let r = run_latency(ProtocolChoice::clock_rsm_with(rsm_cfg), &cfg);
    assert!(r.checks.all_ok(), "seed {seed}: {:?}", r.checks.violation);
    assert!(
        r.snapshots_agree,
        "seed {seed}: snapshots diverged; commits {:?}",
        r.commit_counts
    );
    assert!(
        r.site_stats[0].count() > 20,
        "seed {seed}: site 0 made little progress ({} replies)",
        r.site_stats[0].count()
    );
}

#[test]
fn soak_three_replicas() {
    for seed in [1u64, 2, 3, 4, 5, 6] {
        soak(seed, 3);
    }
}

#[test]
fn soak_five_replicas() {
    for seed in [11u64, 12, 13, 14] {
        soak(seed, 5);
    }
}

#[test]
fn soak_three_replicas_with_read_mix() {
    for seed in [41u64, 42, 43] {
        soak_with_reads(seed, 3, 0.4);
    }
}

/// The read mix under clock skew — sub-millisecond (the paper's NTP
/// grade) and multi-second (a badly broken daemon) — combined with
/// crash/recover churn. Clock-RSM's stable-timestamp reads may slow
/// down arbitrarily under skew but must never return a stale value;
/// the read-value checker inside `checks.all_ok()` is the judge.
///
/// Skew sets the timing physics: a read stamped by a fast clock waits
/// for the slowest clock to pass the stamp, up to ~2×bound. The client
/// retry must sit *above* that worst case (a shorter retry supersedes
/// every read before its reply lands — correct but starved), and the
/// multi-second case needs a window long enough for multi-second reads
/// to complete inside it.
#[test]
fn soak_read_mix_under_clock_skew() {
    for (seed, bound, seconds, min_reads) in [
        (51u64, 800, 12u64, 10),
        (52u64, 3 * 1_000 * MILLIS, 40u64, 4),
    ] {
        let retry = (4 * 1_000 * MILLIS).max(3 * bound);
        let rsm_cfg = ClockRsmConfig::default()
            .with_delta_us(Some(50 * MILLIS))
            .with_failure_detection(Some(2_000 * MILLIS))
            .with_synod_retry_us(100 * MILLIS)
            .with_reconfig_retry_us(100 * MILLIS);
        let mut cfg = ExperimentConfig::new(LatencyMatrix::uniform(3, 15_000))
            .seed(seed)
            .clients_per_site(2)
            .think_max_us(50 * MILLIS)
            .read_fraction(0.5)
            .clock(simnet::ClockModel::ntp(bound))
            .warmup_us(100 * MILLIS)
            .duration_us(seconds * 1_000 * MILLIS)
            .active_sites(vec![0])
            .client_retry_us(retry);
        // One mid-run crash/recover of a non-client replica.
        cfg = cfg
            .fault(3_000 * MILLIS, Fault::Crash(ReplicaId::new(2)))
            .fault(6_000 * MILLIS, Fault::Recover(ReplicaId::new(2)));
        let r = run_latency(ProtocolChoice::clock_rsm_with(rsm_cfg), &cfg);
        assert!(
            r.checks.all_ok(),
            "seed {seed} bound {bound}: {:?}",
            r.checks.violation
        );
        assert!(r.snapshots_agree, "seed {seed}: snapshots diverged");
        assert!(
            r.read_count > min_reads,
            "seed {seed} bound {bound}: reads starved under skew ({} replies)",
            r.read_count
        );
    }
}

/// Paxos election churn with a 50/50 read mix: leader crashes force
/// fail-overs while leader-lease reads and follower quorum reads are in
/// flight; every Get must stay linearizable (no stale values from a
/// deposed regime) and the full checker battery stays green.
#[test]
fn soak_paxos_elections_with_read_mix() {
    for seed in [61u64, 62] {
        let seconds = 14u64;
        let mut cfg = ExperimentConfig::new(LatencyMatrix::uniform(3, 15_000))
            .seed(seed)
            .clients_per_site(2)
            .think_max_us(50 * MILLIS)
            .read_fraction(0.5)
            .warmup_us(100 * MILLIS)
            .duration_us(seconds * 1_000 * MILLIS)
            .active_sites(vec![0])
            .client_retry_us(1_500 * MILLIS);
        for (at, f) in random_schedule(seed, 3, seconds) {
            cfg = cfg.fault(at, f);
        }
        let r = run_latency(
            ProtocolChoice::paxos_bcast_failover(1, LeaseConfig::after(400 * MILLIS)),
            &cfg,
        );
        assert!(r.checks.all_ok(), "seed {seed}: {:?}", r.checks.violation);
        assert!(r.snapshots_agree, "seed {seed}: snapshots diverged");
        assert!(
            r.read_count > 10 && r.write_count > 10,
            "seed {seed}: mix starved ({} reads / {} writes)",
            r.read_count,
            r.write_count
        );
    }
}

/// One Paxos soak round: the random schedule crashes replicas 1..n
/// (replica 0 hosts the clients), and the initial leader sits at 1 —
/// squarely inside the crash set — so every schedule that hits it forces
/// an election while load continues. Checkpoint compaction rides along:
/// logs must stay bounded even though the compaction watermark advances
/// under a sequence of different leaders.
fn paxos_soak(seed: u64, n: usize) {
    let seconds = 16u64;
    let mut cfg = ExperimentConfig::new(LatencyMatrix::uniform(n, 15_000))
        .seed(seed)
        .clients_per_site(2)
        .think_max_us(50 * MILLIS)
        .warmup_us(100 * MILLIS)
        .duration_us(seconds * 1_000 * MILLIS)
        .active_sites(vec![0])
        .checkpoint(CheckpointPolicy::every(32).with_compaction(true))
        // Snapshot installs (rejoins past retention) make per-replica
        // commit histories gappy, so the soak judges snapshots and log
        // bounds rather than per-op traces, like the long-outage suite.
        .record_ops(false)
        .client_retry_us(1_000 * MILLIS);
    for (at, f) in random_schedule(seed, n, seconds) {
        cfg = cfg.fault(at, f);
    }
    let r = run_latency(
        ProtocolChoice::paxos_bcast_failover(1, LeaseConfig::after(400 * MILLIS)),
        &cfg,
    );
    assert!(
        r.snapshots_agree,
        "seed {seed}: snapshots diverged after election churn; commits {:?}",
        r.commit_counts
    );
    assert!(
        r.commit_counts[0] > 50,
        "seed {seed}: site 0 made little progress ({:?})",
        r.commit_counts
    );
    // Compaction must keep firing under whichever leader is current.
    for (i, &len) in r.log_lens.iter().enumerate() {
        assert!(
            len < 1_500,
            "seed {seed}: log of replica {i} unbounded ({len} records \
             for {} commits)",
            r.commit_counts[0]
        );
    }
}

#[test]
fn soak_paxos_leader_crashes() {
    for seed in [21u64, 22, 23, 24] {
        paxos_soak(seed, 3);
    }
}

#[test]
fn soak_paxos_five_replicas() {
    for seed in [31u64, 32] {
        paxos_soak(seed, 5);
    }
}
