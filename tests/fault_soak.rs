//! Reconfiguration soak: randomized crash/recover schedules (derived from
//! seeds, always keeping a majority of the spec up) drive repeated rounds
//! of suspicion, removal, recovery, and rejoin. Safety and convergence
//! must hold at the end of every schedule.

use clock_rsm::ClockRsmConfig;
use harness::workload::Fault;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsm_core::time::MILLIS;
use rsm_core::{LatencyMatrix, ReplicaId};

/// Builds a random fault schedule over `n` replicas: each second, maybe
/// crash an up replica (never dropping below a majority of the spec, and
/// never crashing replica 0, which hosts the clients) or recover a down
/// one. Everything recovers before the end.
fn random_schedule(seed: u64, n: usize, seconds: u64) -> Vec<(u64, Fault)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let majority = n / 2 + 1;
    let mut up = vec![true; n];
    let mut plan = Vec::new();
    for sec in 1..seconds.saturating_sub(6) {
        let at = sec * 1_000 * MILLIS + rng.gen_range(0..500u64) * MILLIS / 500;
        let up_count = up.iter().filter(|&&u| u).count();
        let roll: f64 = rng.gen();
        if roll < 0.30 && up_count > majority {
            // Crash a random up replica other than 0.
            let candidates: Vec<usize> = (1..n).filter(|&i| up[i]).collect();
            if let Some(&victim) = candidates.get(rng.gen_range(0..candidates.len().max(1))) {
                up[victim] = false;
                plan.push((at, Fault::Crash(ReplicaId::new(victim as u16))));
            }
        } else if roll < 0.70 {
            let down: Vec<usize> = (0..n).filter(|&i| !up[i]).collect();
            if !down.is_empty() {
                let back = down[rng.gen_range(0..down.len())];
                up[back] = true;
                plan.push((at, Fault::Recover(ReplicaId::new(back as u16))));
            }
        }
    }
    // Everyone comes back well before the end so the run can converge.
    for (i, &alive) in up.iter().enumerate() {
        if !alive {
            plan.push((
                (seconds - 6) * 1_000 * MILLIS,
                Fault::Recover(ReplicaId::new(i as u16)),
            ));
        }
    }
    plan
}

fn soak(seed: u64, n: usize) {
    let seconds = 16u64;
    let rsm_cfg = ClockRsmConfig::default()
        .with_delta_us(Some(50 * MILLIS))
        .with_failure_detection(Some(400 * MILLIS))
        .with_synod_retry_us(100 * MILLIS)
        .with_reconfig_retry_us(100 * MILLIS);
    let mut cfg = ExperimentConfig::new(LatencyMatrix::uniform(n, 15_000))
        .seed(seed)
        .clients_per_site(2)
        .think_max_us(50 * MILLIS)
        .warmup_us(100 * MILLIS)
        .duration_us(seconds * 1_000 * MILLIS)
        .active_sites(vec![0])
        .client_retry_us(2_000 * MILLIS);
    for (at, f) in random_schedule(seed, n, seconds) {
        cfg = cfg.fault(at, f);
    }
    let r = run_latency(ProtocolChoice::clock_rsm_with(rsm_cfg), &cfg);
    assert!(r.checks.all_ok(), "seed {seed}: {:?}", r.checks.violation);
    assert!(
        r.snapshots_agree,
        "seed {seed}: snapshots diverged; commits {:?}",
        r.commit_counts
    );
    assert!(
        r.site_stats[0].count() > 20,
        "seed {seed}: site 0 made little progress ({} replies)",
        r.site_stats[0].count()
    );
}

#[test]
fn soak_three_replicas() {
    for seed in [1u64, 2, 3, 4, 5, 6] {
        soak(seed, 3);
    }
}

#[test]
fn soak_five_replicas() {
    for seed in [11u64, 12, 13, 14] {
        soak(seed, 5);
    }
}
