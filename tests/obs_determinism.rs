//! Observability determinism and span-balance guarantees.
//!
//! The `rsm-obs` layer rides inside the deterministic simulator, so it
//! inherits the simulator's contract: the same seed must reproduce the
//! same metric snapshots and the same span stream, byte for byte —
//! instrumented replays of a chaos failure stay replays. On top of
//! that, spans must stay *balanced* under arbitrary fault programs:
//! every completed span carries a full submitted→replied pipeline with
//! coherent stage ordering, span keys never duplicate, and the
//! executed-command counters mirror each replica's commit history
//! exactly (the same equality the chaos metric oracle grades).

use harness::{run_latency, ExperimentConfig, ExperimentResult, Fault, ProtocolChoice};
use proptest::prelude::*;
use rsm_chaos::{exec, Knobs, ProtocolKind, Schedule};
use rsm_core::obs::TraceStage;
use rsm_core::time::MILLIS;
use rsm_core::{LatencyMatrix, ReplicaId};
use rsm_obs::{ObsConfig, Span};
use simnet::ClockModel;

/// A small instrumented geo run: three sites, 25 ms one-way, mixed
/// reads and writes, full span sampling.
fn traced_cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig::new(LatencyMatrix::uniform(3, 25_000))
        .seed(seed)
        .clients_per_site(3)
        .think_max_us(15 * MILLIS)
        .read_fraction(0.5)
        .clock(ClockModel::ntp(MILLIS))
        .warmup_us(100 * MILLIS)
        .duration_us(900 * MILLIS)
        .record_ops(false)
        .observe(ObsConfig::all())
}

#[test]
fn same_seed_runs_are_byte_identical_snapshots_and_spans() {
    for choice in [
        ProtocolChoice::clock_rsm(),
        ProtocolChoice::paxos(0),
        ProtocolChoice::mencius(),
    ] {
        let a = run_latency(choice.clone(), &traced_cfg(7));
        let b = run_latency(choice, &traced_cfg(7));
        assert!(!a.spans.is_empty(), "{}: no spans traced", a.protocol);
        assert_eq!(
            a.metrics, b.metrics,
            "{}: metric snapshots diverged across identical runs",
            a.protocol
        );
        assert_eq!(
            a.spans, b.spans,
            "{}: span streams diverged across identical runs",
            a.protocol
        );
        assert_eq!(
            a.metrics.as_ref().unwrap().to_json(),
            b.metrics.as_ref().unwrap().to_json(),
            "{}: snapshot JSON export diverged",
            a.protocol
        );
    }
}

/// Asserts the span-balance invariants on one instrumented result.
fn assert_spans_balanced(r: &ExperimentResult) {
    let mut keys = std::collections::HashSet::new();
    for s in &r.spans {
        assert!(
            keys.insert(s.key),
            "{}: span key {:#x} completed twice",
            r.protocol,
            s.key
        );
        assert_balanced_span(r.protocol, s);
    }
    // Every open span was at least submitted, and no open span also
    // appears in the completed set (terminal states are terminal).
    let metrics = r.metrics.as_ref().expect("observed run");
    for (i, &commits) in r.commit_counts.iter().enumerate() {
        let counted = metrics
            .counters
            .get(&format!("r{i}.commands.executed"))
            .copied()
            .unwrap_or(0);
        assert_eq!(
            counted, commits,
            "{}: replica {i} executed-counter drifted from its commit history",
            r.protocol
        );
    }
    // Counter monotonicity over the post-window tail.
    let mid = r.metrics_mid.as_ref().expect("observed run");
    for (name, &v) in &mid.counters {
        let f = metrics.counters.get(name).copied().unwrap_or(0);
        assert!(
            f >= v,
            "{}: counter {name} regressed {v} -> {f}",
            r.protocol
        );
    }
}

/// One completed span must carry the full sequential pipeline in
/// coherent order. `Replicated`/`Stable` are the overlapped commit
/// conditions: each sits between `Proposed` and the commit when
/// present (Paxos stamps them at the leader, whose clock is the same
/// virtual timeline).
fn assert_balanced_span(protocol: &str, s: &Span) {
    use TraceStage::*;
    let stage = |t: TraceStage| s.stage(t.index());
    let submitted = stage(Submitted).expect("completed span lost its begin stamp");
    let replied = stage(Replied).expect("completed span without a reply stamp");
    assert!(
        submitted <= replied,
        "{protocol}: span {:#x} replied before submission",
        s.key
    );
    // The sequential chain, over the stages that are present.
    let chain = [Submitted, Proposed, Committed, Executed, Replied];
    let mut last = 0u64;
    for t in chain {
        if let Some(at) = stage(t) {
            assert!(
                at >= last,
                "{protocol}: span {:#x} stage {} at {at} precedes {last}",
                s.key,
                t.name()
            );
            last = at;
        }
    }
    // Overlapped commit conditions stay within [Proposed, Committed].
    if let (Some(p), Some(c)) = (stage(Proposed), stage(Committed)) {
        for t in [Replicated, Stable] {
            if let Some(at) = stage(t) {
                assert!(
                    at >= p && at <= c,
                    "{protocol}: span {:#x} stage {} at {at} outside propose..commit {p}..{c}",
                    s.key,
                    t.name()
                );
            }
        }
    }
}

/// A crash-and-recover chaos schedule built on the chaos executor's own
/// protocol configurations (failure detection for Clock-RSM, leases for
/// Paxos), so the run survives the faults the way the swarm's do.
fn crash_schedule(protocol: ProtocolKind, seed: u64, crash_at_ms: u64) -> Schedule {
    let crash = crash_at_ms * MILLIS;
    Schedule {
        seed,
        protocol,
        knobs: Knobs {
            replicas: 3,
            clients_per_site: 2,
            read_pct: 20,
            cas_pct: 0,
            batch_max: 0,
            checkpoint_every: 0,
            session_window: 0,
            pre_vote: false,
            horizon_ms: 4_000,
            latency_us: 5_000,
            jitter_us: 0,
        },
        entries: vec![
            (crash, Fault::Crash(ReplicaId::new(2))),
            (crash + 800 * MILLIS, Fault::Recover(ReplicaId::new(2))),
        ],
        canary: false,
    }
}

#[test]
fn spans_stay_balanced_across_crash_and_recovery() {
    for protocol in ProtocolKind::ALL {
        let s = crash_schedule(protocol, 11, 1_200);
        let r = run_latency(exec::protocol_choice(&s), &exec::experiment_config(&s));
        assert_eq!(
            exec::evaluate(&s, &r),
            None,
            "{}: oracle failure",
            protocol.name()
        );
        assert!(!r.spans.is_empty(), "{}: no spans", protocol.name());
        assert_spans_balanced(&r);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Span balance is schedule-independent: random seeds and crash
    /// points never produce an orphan, duplicate, or out-of-order span,
    /// and the executed counters never drift from the commit histories.
    #[test]
    fn span_balance_survives_random_crash_points(
        seed in 0u64..1_000,
        crash_at_ms in 400u64..2_200,
    ) {
        let s = crash_schedule(ProtocolKind::ClockRsm, seed, crash_at_ms);
        let r = run_latency(exec::protocol_choice(&s), &exec::experiment_config(&s));
        prop_assert_eq!(exec::evaluate(&s, &r), None);
        prop_assert!(!r.spans.is_empty());
        assert_spans_balanced(&r);
    }
}
