//! Shard scale-out soak: eight independent replication groups under
//! clock skew, staggered shard-scoped crashes, per-shard Paxos leader
//! fail-over, and a shard-local long outage past log retention. The
//! cross-shard snapshot checker (one consistent cut per multi-key read)
//! and every shard's own checker battery must stay green throughout —
//! a fault inside one group must never leak into another.

use clock_rsm::ClockRsmConfig;
use harness::shard::{run_sharded, ShardedConfig};
use harness::workload::Fault;
use harness::{ExperimentConfig, ProtocolChoice};
use rsm_core::checkpoint::CheckpointPolicy;
use rsm_core::lease::LeaseConfig;
use rsm_core::time::MILLIS;
use rsm_core::{LatencyMatrix, ReplicaId};
use simnet::ClockModel;

/// The common 8-shard shape: 3 replicas per group, moderate think time,
/// enough clients that every shard sees steady traffic.
fn base(seed: u64, duration_ms: u64) -> ExperimentConfig {
    ExperimentConfig::new(LatencyMatrix::uniform(3, 5_000))
        .seed(seed)
        .clients_per_site(3)
        .think_max_us(10 * MILLIS)
        .warmup_us(200 * MILLIS)
        .duration_us(duration_ms * MILLIS)
        .client_retry_us(500 * MILLIS)
}

/// Clock-RSM with reconfiguration on, so crashed replicas are detected,
/// removed, and re-admitted with catch-up when they come back.
fn reconfig_cfg() -> ClockRsmConfig {
    ClockRsmConfig::default()
        .with_delta_us(Some(50 * MILLIS))
        .with_failure_detection(Some(400 * MILLIS))
        .with_synod_retry_us(100 * MILLIS)
        .with_reconfig_retry_us(100 * MILLIS)
}

/// The acceptance soak: ±1ms NTP-grade clock offsets, a 50/50 read mix
/// with 40% of reads as 4-key cross-shard snapshots. Skew may slow the
/// pinned parts down (each waits for the slowest clock to pass the cut)
/// but every assembled snapshot must still be one consistent cut.
#[test]
fn eight_shards_keep_snapshot_cuts_consistent_under_ntp_skew() {
    let cfg = ShardedConfig::new(
        base(71, 1_500)
            .read_fraction(0.5)
            .clock(ClockModel::ntp(MILLIS)),
        8,
    )
    .snapshot_mix(0.4, 4);
    let r = run_sharded(ProtocolChoice::clock_rsm(), &cfg);
    assert!(
        r.all_ok(),
        "checks: {:?}; snapshot: {:?}",
        r.aggregate.checks.violation,
        r.snapshot_violation
    );
    assert!(
        r.snapshot_count > 10,
        "snapshot reads starved under skew ({} completed)",
        r.snapshot_count
    );
    assert!(
        r.accounting.per_shard().iter().all(|c| c.writes > 0),
        "idle shard: {:?}",
        r.accounting.per_shard()
    );
}

/// Staggered crashes in half the shards, each recovering 400ms later.
/// The untouched shards must run as if nothing happened, and the hit
/// shards must detect, remove, re-admit, and re-converge — all while
/// cross-shard snapshot reads keep cutting through the full set.
#[test]
fn staggered_shard_scoped_crashes_recover_independently() {
    let mut cfg = ShardedConfig::new(base(72, 2_000).read_fraction(0.4), 8).snapshot_mix(0.3, 3);
    for s in 0..4usize {
        let victim = ReplicaId::new(1 + (s as u16 % 2));
        let at = (300 + 100 * s as u64) * MILLIS;
        cfg = cfg.shard_fault(at, s, Fault::Crash(victim)).shard_fault(
            at + 400 * MILLIS,
            s,
            Fault::Recover(victim),
        );
    }
    let r = run_sharded(ProtocolChoice::clock_rsm_with(reconfig_cfg()), &cfg);
    assert!(
        r.all_ok(),
        "checks: {:?}; snapshot: {:?}",
        r.aggregate.checks.violation,
        r.snapshot_violation
    );
    for (s, shard) in r.per_shard.iter().enumerate() {
        assert!(
            shard.snapshots_agree,
            "shard {s} diverged after recovery; commits {:?}",
            shard.commit_counts
        );
        assert!(
            shard.commit_counts[0] > 10,
            "shard {s} starved: {:?}",
            shard.commit_counts
        );
    }
    assert!(
        r.snapshot_count > 5,
        "snapshots starved: {}",
        r.snapshot_count
    );
}

/// Per-shard Paxos leader crash: two groups lose their leader (replica 1)
/// mid-run and elect a new one under lease-based fail-over, while the
/// other six groups keep their regime. Reads route to the lease holder;
/// multi-key reads are the honest per-shard-linearizable fallback.
#[test]
fn paxos_shard_leader_crashes_fail_over_per_shard() {
    let mut cfg = ShardedConfig::new(
        base(73, 2_500)
            .read_fraction(0.3)
            .client_retry_us(800 * MILLIS),
        8,
    )
    .snapshot_mix(0.2, 3);
    for &s in &[0usize, 5] {
        cfg = cfg
            .shard_fault(400 * MILLIS, s, Fault::Crash(ReplicaId::new(1)))
            .shard_fault(1_400 * MILLIS, s, Fault::Recover(ReplicaId::new(1)));
    }
    let r = run_sharded(
        ProtocolChoice::paxos_bcast_failover(1, LeaseConfig::after(300 * MILLIS)),
        &cfg,
    );
    assert!(
        r.all_ok(),
        "checks: {:?}; snapshot: {:?}",
        r.aggregate.checks.violation,
        r.snapshot_violation
    );
    for (s, shard) in r.per_shard.iter().enumerate() {
        assert!(
            shard.snapshots_agree,
            "shard {s} diverged after fail-over; commits {:?}",
            shard.commit_counts
        );
        assert!(
            shard.commit_counts[0] > 5,
            "shard {s} starved: {:?}",
            shard.commit_counts
        );
    }
}

/// A shard-local long outage: one replica of shard 3 is down for 1.5s
/// while compaction keeps pruning its group's logs, so it must rejoin
/// via checkpoint install rather than log replay. Snapshot installs make
/// per-op histories gappy, so this soak judges convergence, progress,
/// and bounded logs (like the single-group long-outage suite).
#[test]
fn shard_local_long_outage_rejoins_past_log_retention() {
    let mut cfg = ShardedConfig::new(
        base(74, 2_500)
            .checkpoint(CheckpointPolicy::every(16).with_compaction(true))
            .record_ops(false),
        8,
    );
    cfg = cfg
        .shard_fault(300 * MILLIS, 3, Fault::Crash(ReplicaId::new(2)))
        .shard_fault(1_800 * MILLIS, 3, Fault::Recover(ReplicaId::new(2)));
    let r = run_sharded(ProtocolChoice::clock_rsm_with(reconfig_cfg()), &cfg);
    for (s, shard) in r.per_shard.iter().enumerate() {
        assert!(
            shard.snapshots_agree,
            "shard {s} diverged after the outage; commits {:?}",
            shard.commit_counts
        );
        assert!(
            shard.commit_counts[0] > 10,
            "shard {s} starved: {:?}",
            shard.commit_counts
        );
    }
    // Compaction must bound every log — including the outage shard's.
    for (s, shard) in r.per_shard.iter().enumerate() {
        for (i, &len) in shard.log_lens.iter().enumerate() {
            assert!(
                len < 1_500,
                "shard {s} replica {i} log unbounded ({len} records)"
            );
        }
    }
}
