//! Integration tests asserting the paper's headline claims on the real
//! EC2 topology (Table III), by running the discrete-event simulation and
//! comparing it against the closed-form model (Table II).
//!
//! These are scaled-down (shorter windows, fewer clients) versions of the
//! `fig1`/`fig2`/`fig5` benchmark binaries; the assertions target the
//! *shape* of the results — who wins where — exactly as the paper states
//! them in Section VI.

use analysis::{ec2, model};
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use rsm_core::time::MILLIS;
use rsm_core::ReplicaId;

fn quick(matrix: rsm_core::LatencyMatrix) -> ExperimentConfig {
    ExperimentConfig::new(matrix)
        .clients_per_site(10)
        .warmup_us(1_000 * MILLIS)
        .duration_us(5_000 * MILLIS)
}

/// Figure 1 claim: "Clock-RSM provides lower latency at all replicas
/// except the leader of Paxos and Paxos-bcast" (five sites, balanced,
/// leader VA), and "Clock-RSM provides lower latency than Mencius-bcast
/// at all replicas".
#[test]
fn five_site_balanced_headline() {
    let (_, matrix) = ec2::five_site_deployment();
    let cfg = quick(matrix);
    let clock = run_latency(ProtocolChoice::clock_rsm(), &cfg);
    let paxos_b = run_latency(ProtocolChoice::paxos_bcast(1), &cfg);
    let mencius = run_latency(ProtocolChoice::mencius(), &cfg);

    for r in [&clock, &paxos_b, &mencius] {
        assert!(
            r.checks.all_ok(),
            "{}: {:?}",
            r.protocol,
            r.checks.violation
        );
        assert!(r.snapshots_agree, "{} diverged", r.protocol);
    }

    let leader = 1usize; // VA
    for site in 0..5 {
        let c = clock.site_stats[site].mean_ms();
        let p = paxos_b.site_stats[site].mean_ms();
        let m = mencius.site_stats[site].mean_ms();
        if site == leader {
            assert!(
                c > p,
                "leader site: Paxos-bcast must win ({c:.1} vs {p:.1})"
            );
        } else {
            assert!(c < p, "site {site}: Clock-RSM must win ({c:.1} vs {p:.1})");
        }
        assert!(
            c < m,
            "site {site}: Clock-RSM must beat Mencius ({c:.1} vs {m:.1})"
        );
    }

    // "The 95%ile latency of Mencius-bcast is much higher than its
    // average, because the commit of a command may be delayed."
    let mut mencius = mencius;
    for site in 0..5 {
        let avg = mencius.site_stats[site].mean_ms();
        let p95 = mencius.site_stats[site].percentile_ms(95.0);
        assert!(
            p95 > avg + 5.0,
            "site {site}: Mencius p95 ({p95:.1}) should exceed avg ({avg:.1}) clearly"
        );
    }

    // Paxos variants have near-deterministic latency (Figure 3): p95
    // within a couple ms of the average.
    let mut paxos_b = paxos_b;
    for site in 0..5 {
        let avg = paxos_b.site_stats[site].mean_ms();
        let p95 = paxos_b.site_stats[site].percentile_ms(95.0);
        assert!(
            p95 - avg < 5.0,
            "site {site}: Paxos-bcast latency should be predictable"
        );
    }
}

/// Figure 2 claim: with three replicas and the best leader (VA), both
/// protocols need one round trip to the nearest replica — similar
/// latencies at all replicas, Paxos-bcast slightly ahead on average.
#[test]
fn three_site_special_case() {
    let (_, matrix) = ec2::three_site_deployment();
    let cfg = quick(matrix.clone());
    let clock = run_latency(ProtocolChoice::clock_rsm(), &cfg);
    let paxos_b = run_latency(ProtocolChoice::paxos_bcast(1), &cfg);

    let avg =
        |r: &harness::ExperimentResult| r.site_stats.iter().map(|s| s.mean_ms()).sum::<f64>() / 3.0;
    let (c, p) = (avg(&clock), avg(&paxos_b));
    // Paper: about 6% higher for Clock-RSM on average; allow a band.
    assert!(
        c >= p - 2.0,
        "Clock-RSM should not beat best-leader Paxos-bcast here"
    );
    assert!(
        c < p * 1.20,
        "Clock-RSM should be within ~20% of Paxos-bcast ({c:.1} vs {p:.1})"
    );

    // With leader at CA instead (Figure 2a), the IR replica takes the
    // longest path under Paxos-bcast and Clock-RSM clearly wins there.
    let paxos_ca = run_latency(ProtocolChoice::paxos_bcast(0), &cfg);
    assert!(
        clock.site_stats[2].mean_ms() < paxos_ca.site_stats[2].mean_ms() - 20.0,
        "IR with leader CA: Clock-RSM {:.1} vs Paxos-bcast {:.1}",
        clock.site_stats[2].mean_ms(),
        paxos_ca.site_stats[2].mean_ms()
    );
}

/// Figure 5/6 claim: under imbalanced workloads Mencius needs a full
/// round trip to every replica (2·max) while Clock-RSM stays at its
/// balanced-level latency; Paxos latencies are workload-independent.
#[test]
fn imbalanced_workload_headline() {
    let (_, matrix) = ec2::five_site_deployment();
    // Clients only at SG (index 4), the paper's Figure 6 vantage point.
    let origin = 4u16;
    let cfg = quick(matrix.clone()).active_sites(vec![origin]);
    let clock = run_latency(ProtocolChoice::clock_rsm(), &cfg);
    let mencius = run_latency(ProtocolChoice::mencius(), &cfg);
    let paxos_b = run_latency(ProtocolChoice::paxos_bcast(0), &cfg);

    let c = clock.site_stats[origin as usize].mean_ms();
    let m = mencius.site_stats[origin as usize].mean_ms();
    let p = paxos_b.site_stats[origin as usize].mean_ms();

    // Analytic expectations (one-way µs -> ms).
    let r = ReplicaId::new(origin);
    let mencius_model = model::mencius_bcast_imbalanced(&matrix, r) as f64 / 1000.0;
    let clock_model = model::clock_rsm_imbalanced(&matrix, r) as f64 / 1000.0;

    assert!(
        (m - mencius_model).abs() < 15.0,
        "Mencius imbalanced {m:.1} should be near 2*max = {mencius_model:.1}"
    );
    assert!(
        (c - clock_model).abs() < 15.0,
        "Clock-RSM imbalanced {c:.1} should be near {clock_model:.1}"
    );
    assert!(
        c < m - 30.0,
        "Clock-RSM must clearly beat Mencius when imbalanced"
    );
    assert!(
        c < p,
        "Clock-RSM should also beat Paxos-bcast at SG with leader CA"
    );
}

/// The simulation agrees with the closed-form model of Table II: Paxos
/// variants to within a couple ms (deterministic paths), Clock-RSM within
/// its best/worst-case band.
#[test]
fn simulation_matches_analytic_model() {
    let (_, matrix) = ec2::five_site_deployment();
    let cfg = quick(matrix.clone());
    let leader = ReplicaId::new(1);

    let paxos = run_latency(ProtocolChoice::paxos(1), &cfg);
    let paxos_b = run_latency(ProtocolChoice::paxos_bcast(1), &cfg);
    let clock = run_latency(ProtocolChoice::clock_rsm(), &cfg);

    for site in 0..5u16 {
        let r = ReplicaId::new(site);
        let i = site as usize;
        // Client round trip adds 0.6 ms over the replica-side model.
        let model_paxos = model::paxos(&matrix, r, leader) as f64 / 1000.0 + 0.6;
        let model_paxos_b = model::paxos_bcast(&matrix, r, leader) as f64 / 1000.0 + 0.6;
        assert!(
            (paxos.site_stats[i].mean_ms() - model_paxos).abs() < 3.0,
            "Paxos site {site}: sim {:.1} vs model {model_paxos:.1}",
            paxos.site_stats[i].mean_ms()
        );
        assert!(
            (paxos_b.site_stats[i].mean_ms() - model_paxos_b).abs() < 3.0,
            "Paxos-bcast site {site}: sim {:.1} vs model {model_paxos_b:.1}",
            paxos_b.site_stats[i].mean_ms()
        );
        // Clock-RSM: between the imbalanced (best) and balanced (worst)
        // formulas, with slack for the client round trip and jitter.
        let lo = model::clock_rsm_imbalanced(&matrix, r) as f64 / 1000.0 - 2.0;
        let hi = model::clock_rsm_balanced(&matrix, r) as f64 / 1000.0 + 6.0;
        let c = clock.site_stats[i].mean_ms();
        assert!(
            c >= lo && c <= hi,
            "Clock-RSM site {site}: sim {c:.1} outside [{lo:.1}, {hi:.1}]"
        );
    }
}

/// The quiescent protocol (Algorithm 1 without the Algorithm 2 extension)
/// under a *light imbalanced* workload pays the full `2·max` stable-order
/// round trip; enabling the extension with a small Δ brings it down to
/// `max(2·median, max + Δ)` — the exact case Section IV says the
/// extension exists for.
#[test]
fn clocktime_extension_helps_light_imbalanced_load() {
    use clock_rsm::ClockRsmConfig;
    let (_, matrix) = ec2::five_site_deployment();
    let origin = 4u16; // SG
    let light = ExperimentConfig::new(matrix.clone())
        .clients_per_site(1)
        .think_max_us(500 * MILLIS) // light: one request in flight at a time
        .warmup_us(1_000 * MILLIS)
        .duration_us(12_000 * MILLIS)
        .active_sites(vec![origin]);

    let r = ReplicaId::new(origin);
    // Without the extension: 2·max = 254 ms at SG.
    let no_ext = run_latency(
        ProtocolChoice::clock_rsm_with(ClockRsmConfig::default().with_delta_us(None)),
        &light,
    );
    let expected = model::clock_rsm_imbalanced_light_no_ext(&matrix, r) as f64 / 1000.0;
    let measured = no_ext.site_stats[origin as usize].mean_ms();
    assert!(
        (measured - expected).abs() < 10.0,
        "quiescent light-load latency {measured:.1} should be ≈ 2·max = {expected:.1}"
    );

    // With Δ = 5 ms: max(2·median, max + Δ) = 171 ms at SG.
    let with_ext = run_latency(
        ProtocolChoice::clock_rsm_with(ClockRsmConfig::default().with_delta_us(Some(5 * MILLIS))),
        &light,
    );
    let expected_ext = model::clock_rsm_imbalanced_light(&matrix, r, 5 * MILLIS) as f64 / 1000.0;
    let measured_ext = with_ext.site_stats[origin as usize].mean_ms();
    assert!(
        (measured_ext - expected_ext).abs() < 10.0,
        "extension light-load latency {measured_ext:.1} should be ≈ {expected_ext:.1}"
    );
    assert!(
        measured_ext < measured - 50.0,
        "the extension should clearly help ({measured_ext:.1} vs {measured:.1})"
    );
}

/// Uniform-latency thought experiment (Section IV-D): when all links are
/// equal, Clock-RSM beats Paxos-bcast at every non-leader replica.
#[test]
fn uniform_latency_favors_clock_rsm() {
    let matrix = rsm_core::LatencyMatrix::uniform(5, 40_000);
    let cfg = quick(matrix);
    let clock = run_latency(ProtocolChoice::clock_rsm(), &cfg);
    let paxos_b = run_latency(ProtocolChoice::paxos_bcast(0), &cfg);
    for site in 1..5 {
        assert!(
            clock.site_stats[site].mean_ms() < paxos_b.site_stats[site].mean_ms(),
            "site {site}"
        );
    }
}
