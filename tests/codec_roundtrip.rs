//! Property tests for the binary wire codec: every message variant of
//! every protocol must survive an encode → decode round trip unchanged,
//! and the decoder must reject malformed frames (truncated prefixes,
//! trailing garbage, unknown variant tags, corrupted headers).
//!
//! The generators are deliberately exhaustive rather than sampled: each
//! proptest case builds one instance of **every** variant of `RsmMsg`,
//! `PaxosMsg`, and `MenciusMsg` (plus all six `SynodMsg` shapes nested
//! inside `RsmMsg::Synod`) from randomized field values, so a variant
//! whose codec arm drifts can never hide behind the RNG.

use bytes::Bytes;
use clock_rsm::msg::{Decision, LoggedCmd, RsmMsg};
use mencius::msg::MenciusMsg;
use paxos::msg::{PaxosMsg, SuffixEntry};
use paxos::synod::{Ballot, SynodMsg};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use rsm_core::batch::Batch;
use rsm_core::checkpoint::{Checkpoint, StateTransferReply, StateTransferRequest};
use rsm_core::command::{Command, CommandId};
use rsm_core::config::Epoch;
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::read::{ReadReply, ReadRequest};
use rsm_core::time::Timestamp;
use rsm_core::wire::{
    decode_payload, encode_payload, FrameHeader, WireDecode, WireEncode, WireError,
    MSG_HEADER_BYTES,
};

// -----------------------------------------------------------------
// Field strategies
// -----------------------------------------------------------------

fn arb_replica() -> impl Strategy<Value = ReplicaId> {
    (0u16..5).prop_map(ReplicaId::new)
}

fn arb_ts() -> impl Strategy<Value = Timestamp> {
    (0u64..1_000_000, arb_replica()).prop_map(|(us, r)| Timestamp::new(us, r))
}

fn arb_ballot() -> impl Strategy<Value = Ballot> {
    (0u64..10_000, arb_replica()).prop_map(|(round, proposer)| Ballot { round, proposer })
}

/// A command of any of the three kinds (write, read, stable-timestamp
/// read) with a random payload, exercising the `read_only`/`read_at`
/// codec bits alongside the payload length prefix.
fn arb_cmd() -> impl Strategy<Value = Command> {
    (
        arb_replica(),
        0u32..100,
        0u64..100,
        pvec(any::<u8>(), 0..32),
        0u8..3,
        0u64..10_000,
    )
        .prop_map(|(site, client, seq, payload, kind, at)| {
            let id = CommandId::new(ClientId::new(site, client), seq);
            let payload = Bytes::from(payload);
            match kind {
                0 => Command::new(id, payload),
                1 => Command::read(id, payload),
                _ => Command::read_at(id, payload, at),
            }
        })
}

fn arb_batch() -> impl Strategy<Value = Batch> {
    pvec(arb_cmd(), 1..4).prop_map(Batch::new)
}

fn arb_logged() -> impl Strategy<Value = LoggedCmd> {
    (arb_ts(), arb_replica(), arb_cmd()).prop_map(|(ts, origin, cmd)| LoggedCmd { ts, origin, cmd })
}

fn arb_decision() -> impl Strategy<Value = Decision> {
    (
        pvec(arb_replica(), 1..4),
        arb_ts(),
        pvec(arb_logged(), 0..3),
    )
        .prop_map(|(config, cts, cmds)| Decision { config, cts, cmds })
}

fn arb_suffix_entry() -> impl Strategy<Value = SuffixEntry> {
    (
        0u64..1000,
        arb_ballot(),
        arb_cmd(),
        arb_replica(),
        any::<bool>(),
    )
        .prop_map(|(instance, ballot, cmd, origin, filled)| SuffixEntry {
            instance,
            ballot,
            value: if filled { Some((cmd, origin)) } else { None },
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint<u64>> {
    (
        0u64..1000,
        0u64..50,
        pvec(arb_replica(), 1..4),
        pvec(any::<u8>(), 0..48),
        pvec(any::<u8>(), 0..32),
    )
        .prop_map(|(applied, epoch, config, snapshot, sessions)| Checkpoint {
            applied,
            epoch: Epoch(epoch),
            config,
            snapshot: Bytes::from(snapshot),
            sessions: Bytes::from(sessions),
        })
}

/// All six `SynodMsg` shapes built from the same randomized fields, so
/// `RsmMsg::Synod` covers the nested enum's codec arms too.
fn arb_synod_all() -> impl Strategy<Value = Vec<SynodMsg<Decision>>> {
    (arb_ballot(), arb_ballot(), arb_decision(), any::<bool>()).prop_map(
        |(ballot, promised, value, accepted)| {
            vec![
                SynodMsg::Prepare { ballot },
                SynodMsg::Promise {
                    ballot,
                    accepted: if accepted {
                        Some((promised, value.clone()))
                    } else {
                        None
                    },
                },
                SynodMsg::Propose {
                    ballot,
                    value: value.clone(),
                },
                SynodMsg::Accept { ballot },
                SynodMsg::Nack { ballot, promised },
                SynodMsg::Decided { value },
            ]
        },
    )
}

// -----------------------------------------------------------------
// One instance of every variant per protocol
// -----------------------------------------------------------------

fn arb_rsm_all() -> impl Strategy<Value = Vec<RsmMsg>> {
    (
        arb_batch(),
        pvec(arb_logged(), 0..3),
        arb_decision(),
        arb_synod_all(),
        (0u64..50, arb_ts(), arb_replica()),
    )
        .prop_map(|(cmds, logged, decision, synods, (e, ts, origin))| {
            let epoch = Epoch(e);
            let later = Timestamp::new(ts.micros() + 7, ts.replica());
            let mut msgs = vec![
                RsmMsg::PrepareBatch {
                    epoch,
                    ts,
                    origin,
                    cmds,
                },
                RsmMsg::PrepareOk {
                    epoch,
                    up_to: ts,
                    clock_ts: later,
                },
                RsmMsg::ClockTime { epoch, ts },
                RsmMsg::Suspend { epoch, cts: ts },
                RsmMsg::SuspendOk {
                    epoch,
                    cmds: logged.clone(),
                },
                RsmMsg::RetrieveCmds {
                    from_ts: ts,
                    to_ts: later,
                },
                RsmMsg::RetrieveReply {
                    from_ts: ts,
                    to_ts: later,
                    cmds: logged,
                },
                RsmMsg::DecisionRequest { have_epoch: epoch },
                RsmMsg::DecisionCatchup {
                    decisions: vec![(epoch, decision)],
                },
            ];
            msgs.extend(synods.into_iter().map(|msg| RsmMsg::Synod { epoch, msg }));
            msgs
        })
}

fn arb_paxos_all() -> impl Strategy<Value = Vec<PaxosMsg>> {
    (
        arb_batch(),
        arb_ballot(),
        pvec(arb_suffix_entry(), 0..3),
        arb_checkpoint(),
        (0u64..1000, arb_replica()),
    )
        .prop_map(|(cmds, ballot, entries, checkpoint, (n, origin))| {
            vec![
                PaxosMsg::Forward {
                    cmds: cmds.clone(),
                    origin,
                },
                PaxosMsg::Accept {
                    ballot,
                    first_instance: n,
                    cmds,
                    origin,
                },
                PaxosMsg::Accepted { ballot, up_to: n },
                PaxosMsg::Commit { ballot, up_to: n },
                PaxosMsg::Heartbeat {
                    ballot,
                    committed: n,
                },
                PaxosMsg::Prepare {
                    ballot,
                    from_instance: n,
                },
                PaxosMsg::Promise {
                    ballot,
                    from_instance: n,
                    committed: n,
                    entries: entries.clone(),
                },
                PaxosMsg::Nack { promised: ballot },
                PaxosMsg::PreVote { ballot },
                PaxosMsg::PreVoteGrant { ballot },
                PaxosMsg::Repair {
                    ballot,
                    floor: n,
                    entries: entries.clone(),
                },
                PaxosMsg::FillRequest {
                    from_instance: n,
                    to_instance: n + 5,
                },
                PaxosMsg::Fill { ballot, entries },
                PaxosMsg::StateRequest(StateTransferRequest { have: n }),
                PaxosMsg::StateReply {
                    reply: StateTransferReply { checkpoint },
                    promised: ballot,
                },
                PaxosMsg::ReadProbe(ReadRequest { seq: n }),
                PaxosMsg::ReadMark(ReadReply {
                    seq: n,
                    mark: n + 1,
                }),
            ]
        })
}

fn arb_mencius_all() -> impl Strategy<Value = Vec<MenciusMsg>> {
    (
        arb_batch(),
        arb_cmd(),
        arb_checkpoint(),
        pvec(0u64..1000, 1..5),
        (0u64..1000, arb_replica()),
    )
        .prop_map(|(cmds, cmd, checkpoint, owner_marks, (n, origin))| {
            vec![
                MenciusMsg::Propose {
                    first_slot: n,
                    cmds,
                    origin,
                },
                MenciusMsg::AcceptAck {
                    up_to_slot: n,
                    skip_below: n + 3,
                },
                MenciusMsg::GapRequest {
                    from_slot: n,
                    below: n + 9,
                },
                MenciusMsg::GapFill {
                    from_slot: n,
                    below: n + 9,
                    cmds: vec![(n, cmd)],
                },
                MenciusMsg::StateRequest(StateTransferRequest { have: n }),
                MenciusMsg::StateReply(StateTransferReply { checkpoint }),
                MenciusMsg::ReadProbe(ReadRequest { seq: n }),
                MenciusMsg::ReadMark {
                    reply: ReadReply { seq: n, mark: n },
                    owner_marks,
                },
            ]
        })
}

// -----------------------------------------------------------------
// Round-trip identity
// -----------------------------------------------------------------

fn assert_roundtrip<M>(msg: &M)
where
    M: WireEncode + WireDecode + PartialEq + std::fmt::Debug,
{
    let bytes = encode_payload(msg);
    let decoded: M = decode_payload(bytes).expect("valid encoding must decode");
    assert_eq!(&decoded, msg);
}

/// Every strict prefix of a valid encoding must be rejected: the codec
/// is length-prefixed throughout, so a cut anywhere — mid-scalar,
/// mid-payload, or right after a vector's length word — leaves a
/// promised value missing.
fn assert_rejects_truncation<M>(msg: &M)
where
    M: WireEncode + WireDecode + std::fmt::Debug,
{
    let bytes = encode_payload(msg);
    for cut in 0..bytes.len() {
        let prefix = bytes.slice(0..cut);
        assert!(
            decode_payload::<M>(prefix).is_err(),
            "prefix of {cut}/{} bytes decoded for {msg:?}",
            bytes.len()
        );
    }
}

/// Garbage appended after a valid encoding must surface as
/// [`WireError::TrailingBytes`]: the decoder parses the genuine prefix
/// deterministically and then refuses the leftovers.
fn assert_rejects_trailing<M>(msg: &M, garbage: &[u8])
where
    M: WireEncode + WireDecode + std::fmt::Debug,
{
    let mut bytes = encode_payload(msg).to_vec();
    bytes.extend_from_slice(garbage);
    match decode_payload::<M>(Bytes::from(bytes)) {
        Err(WireError::TrailingBytes(n)) => assert_eq!(n, garbage.len()),
        other => panic!("expected TrailingBytes for {msg:?}, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rsm_msgs_roundtrip(msgs in arb_rsm_all()) {
        for msg in &msgs {
            assert_roundtrip(msg);
        }
    }

    #[test]
    fn paxos_msgs_roundtrip(msgs in arb_paxos_all()) {
        for msg in &msgs {
            assert_roundtrip(msg);
        }
    }

    #[test]
    fn mencius_msgs_roundtrip(msgs in arb_mencius_all()) {
        for msg in &msgs {
            assert_roundtrip(msg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn truncated_encodings_are_rejected(
        rsm in arb_rsm_all(),
        paxos in arb_paxos_all(),
        mencius in arb_mencius_all(),
    ) {
        for msg in &rsm {
            assert_rejects_truncation(msg);
        }
        for msg in &paxos {
            assert_rejects_truncation(msg);
        }
        for msg in &mencius {
            assert_rejects_truncation(msg);
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(
        rsm in arb_rsm_all(),
        paxos in arb_paxos_all(),
        mencius in arb_mencius_all(),
        garbage in pvec(any::<u8>(), 1..9),
    ) {
        for msg in &rsm {
            assert_rejects_trailing(msg, &garbage);
        }
        for msg in &paxos {
            assert_rejects_trailing(msg, &garbage);
        }
        for msg in &mencius {
            assert_rejects_trailing(msg, &garbage);
        }
    }
}

// -----------------------------------------------------------------
// Unknown tags and frame headers
// -----------------------------------------------------------------

#[test]
fn unknown_variant_tags_are_rejected() {
    let bogus = || Bytes::from(vec![0xFFu8]);
    assert!(matches!(
        decode_payload::<RsmMsg>(bogus()),
        Err(WireError::BadTag {
            ty: "RsmMsg",
            tag: 0xFF
        })
    ));
    assert!(matches!(
        decode_payload::<PaxosMsg>(bogus()),
        Err(WireError::BadTag {
            ty: "PaxosMsg",
            tag: 0xFF
        })
    ));
    assert!(matches!(
        decode_payload::<MenciusMsg>(bogus()),
        Err(WireError::BadTag {
            ty: "MenciusMsg",
            tag: 0xFF
        })
    ));
}

#[test]
fn frame_header_roundtrips_and_rejects_corruption() {
    let payload = b"frame payload".as_slice();
    let header = FrameHeader::for_payload(ReplicaId::new(1), ReplicaId::new(2), 42, payload);
    let bytes = header.encode();
    assert_eq!(bytes.len(), MSG_HEADER_BYTES);
    assert_eq!(FrameHeader::decode(&bytes).unwrap(), header);
    assert!(header.verify_payload(payload).is_ok());

    // Corrupt magic.
    let mut bad = bytes;
    bad[0] ^= 0xFF;
    assert!(matches!(
        FrameHeader::decode(&bad),
        Err(WireError::BadMagic(_))
    ));

    // Corrupt version.
    let mut bad = bytes;
    bad[5] ^= 0xFF;
    assert!(matches!(
        FrameHeader::decode(&bad),
        Err(WireError::BadVersion(_))
    ));

    // A flipped payload byte fails the checksum.
    let mut flipped = payload.to_vec();
    flipped[3] ^= 0x01;
    assert!(matches!(
        header.verify_payload(&flipped),
        Err(WireError::BadChecksum)
    ));
    // So does a short payload under the announced length.
    assert!(matches!(
        header.verify_payload(&payload[..payload.len() - 1]),
        Err(WireError::BadChecksum)
    ));
}
