//! Randomized safety properties: for arbitrary topologies, seeds, clock
//! skews, and jitter, every protocol must preserve total order,
//! monotonic execution, linearizability, and replica convergence.
//!
//! These are the paper's Claims 1–5 (appendix), checked mechanically over
//! thousands of simulated command executions per case.

use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use proptest::prelude::*;
use rsm_core::time::MILLIS;
use rsm_core::LatencyMatrix;
use simnet::ClockModel;

/// Builds a random symmetric latency matrix with one-way latencies in
/// [5, 100] ms.
fn arb_matrix(n: usize) -> impl Strategy<Value = LatencyMatrix> {
    proptest::collection::vec(5_000u64..100_000, n * (n - 1) / 2).prop_map(move |vals| {
        let mut m = vec![vec![0u64; n]; n];
        let mut it = vals.into_iter();
        #[allow(clippy::needless_range_loop)] // triangular fill is clearest with indices
        for i in 0..n {
            for j in (i + 1)..n {
                let v = it.next().expect("enough samples");
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        LatencyMatrix::from_one_way_micros(m)
    })
}

fn quick_cfg(matrix: LatencyMatrix, seed: u64, skew_us: u64, jitter_us: u64) -> ExperimentConfig {
    ExperimentConfig::new(matrix)
        .seed(seed)
        .clients_per_site(3)
        .think_max_us(30 * MILLIS)
        .warmup_us(100 * MILLIS)
        .duration_us(1_500 * MILLIS)
        .clock(ClockModel::ntp(skew_us))
        .jitter_us(jitter_us)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Clock-RSM: safety holds for random 3-replica topologies under
    /// random skew (up to 50 ms — orders of magnitude beyond NTP) and
    /// jitter.
    #[test]
    fn clock_rsm_safety_random_topology(
        matrix in arb_matrix(3),
        seed in 0u64..1_000,
        skew_us in 0u64..50_000,
        jitter_us in 0u64..5_000,
    ) {
        let cfg = quick_cfg(matrix, seed, skew_us, jitter_us);
        let r = run_latency(ProtocolChoice::clock_rsm(), &cfg);
        prop_assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
        prop_assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
        prop_assert!(r.commit_counts[0] > 0, "no progress");
    }

    /// Clock-RSM on five replicas with moderate parameters.
    #[test]
    fn clock_rsm_safety_five_replicas(
        matrix in arb_matrix(5),
        seed in 0u64..1_000,
    ) {
        let cfg = quick_cfg(matrix, seed, 2_000, 1_000);
        let r = run_latency(ProtocolChoice::clock_rsm(), &cfg);
        prop_assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
        prop_assert!(r.snapshots_agree);
    }

    /// The baselines satisfy the same properties (they are consensus
    /// protocols too); the checkers must pass identically.
    #[test]
    fn baselines_safety_random_topology(
        matrix in arb_matrix(3),
        seed in 0u64..1_000,
        which in 0u8..3,
    ) {
        let choice = match which {
            0 => ProtocolChoice::paxos(0),
            1 => ProtocolChoice::paxos_bcast(1),
            _ => ProtocolChoice::mencius(),
        };
        let cfg = quick_cfg(matrix, seed, 1_000, 2_000);
        let r = run_latency(choice, &cfg);
        prop_assert!(r.checks.all_ok(), "{}: {:?}", r.protocol, r.checks.violation);
        prop_assert!(r.snapshots_agree, "{} diverged", r.protocol);
        prop_assert!(r.commit_counts[0] > 0);
    }

    /// Determinism: the same seed yields the exact same latency samples.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..1_000) {
        let matrix = LatencyMatrix::uniform(3, 25_000);
        let run = |s| {
            let cfg = quick_cfg(matrix.clone(), s, 1_000, 3_000);
            let r = run_latency(ProtocolChoice::clock_rsm(), &cfg);
            r.site_stats.iter().map(|st| st.samples().to_vec()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

/// Extreme skew: one replica's clock is a full second ahead, another a
/// second behind. Latency degrades (the wait-out path throttles acks) but
/// nothing breaks — the paper's core design property.
#[test]
fn second_scale_skew_keeps_safety() {
    let matrix = LatencyMatrix::uniform(3, 30_000);
    let cfg = ExperimentConfig::new(matrix)
        .clients_per_site(2)
        .think_max_us(50 * MILLIS)
        .warmup_us(500 * MILLIS)
        .duration_us(4_000 * MILLIS)
        .clock(ClockModel::ntp(1_000 * MILLIS))
        .seed(3);
    let r = run_latency(ProtocolChoice::clock_rsm(), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree);
    assert!(r.commit_counts[0] > 0, "livelock under extreme skew");
}

/// Clock steps mid-run: one replica's clock jumps half a second forward,
/// another's a quarter second backward (frozen until true time catches
/// up). Latency spikes; safety and convergence must not.
#[test]
fn clock_jumps_keep_safety() {
    use harness::workload::Fault;
    let matrix = LatencyMatrix::uniform(3, 25_000);
    let cfg = ExperimentConfig::new(matrix)
        .clients_per_site(3)
        .think_max_us(40 * MILLIS)
        .warmup_us(200 * MILLIS)
        .duration_us(6_000 * MILLIS)
        .seed(17)
        .fault(
            2_000 * MILLIS,
            Fault::ClockJump(rsm_core::ReplicaId::new(0), 500_000),
        )
        .fault(
            3_000 * MILLIS,
            Fault::ClockJump(rsm_core::ReplicaId::new(2), -250_000),
        );
    let r = run_latency(ProtocolChoice::clock_rsm(), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree);
    // Progress resumed after the jumps (the forward jump forces peers to
    // wait out the skew; the backward jump throttles one replica's acks).
    assert!(
        r.commits_between(0, 4_000 * MILLIS, u64::MAX) > 10,
        "commits stalled after clock jumps"
    );
}

/// Drifting clocks: replicas drift apart at 200 ppm against an NTP bound;
/// safety and progress persist.
#[test]
fn drifting_clocks_keep_safety() {
    let matrix = LatencyMatrix::uniform(3, 20_000);
    let cfg = ExperimentConfig::new(matrix)
        .clients_per_site(2)
        .think_max_us(40 * MILLIS)
        .warmup_us(200 * MILLIS)
        .duration_us(3_000 * MILLIS)
        .clock(ClockModel::ntp(10 * MILLIS).with_drift_ppm(200.0))
        .seed(11);
    let r = run_latency(ProtocolChoice::clock_rsm(), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree);
}
