//! Read-mix acceptance suite for the linearizable read subsystem
//! (`rsm_core::read`).
//!
//! The production north star is a read-dominated workload, so the
//! headline scenario is a 90/10 mix on a geo topology with NTP-grade
//! clocks: Clock-RSM must serve linearizable reads **locally** — read
//! p50 strictly below write-commit p50 — with the read-value checker
//! green. The rest of the suite drives the same mix through clock skew
//! (sub-millisecond and multi-second; latency may move, answers may
//! not), leader crashes, and the adaptive-batching bypass regression
//! (a `Get` must never wait behind a flush threshold).

use harness::{run_latency, ExperimentConfig, ExperimentResult, ProtocolChoice};
use rsm_core::lease::LeaseConfig;
use rsm_core::time::{MILLIS, SECONDS};
use rsm_core::{BatchPolicy, LatencyMatrix};
use simnet::{ClockModel, CpuModel};

/// A wide-area topology: 25 ms one-way between any two of three sites.
fn geo() -> LatencyMatrix {
    LatencyMatrix::uniform(3, 25_000)
}

fn geo_mix_cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig::new(geo())
        .seed(seed)
        .clients_per_site(4)
        .think_max_us(20 * MILLIS)
        .read_fraction(0.9)
        .clock(ClockModel::ntp(MILLIS))
        .warmup_us(300 * MILLIS)
        .duration_us(4_000 * MILLIS)
}

fn assert_green(r: &ExperimentResult, label: &str) {
    assert!(
        r.checks.all_ok(),
        "{label} ({}): {:?}",
        r.protocol,
        r.checks.violation
    );
    assert!(r.snapshots_agree, "{label}: {} diverged", r.protocol);
    assert!(
        r.read_count > 20,
        "{label}: {} produced only {} read samples",
        r.protocol,
        r.read_count
    );
}

/// The acceptance bar: on a geo topology with ±1 ms NTP clocks and a
/// 90/10 mix, Clock-RSM's stable-timestamp local reads must beat its
/// write commits at the median — reads pay (at most) a stable-timestamp
/// wait, writes pay the WAN replication round trip.
#[test]
fn clock_rsm_geo_read_mix_local_reads_beat_write_commits() {
    for seed in [1u64, 2] {
        let r = run_latency(ProtocolChoice::clock_rsm(), &geo_mix_cfg(seed));
        assert_green(&r, "geo 90/10");
        assert!(
            r.read_p50_ms < r.write_p50_ms,
            "seed {seed}: local-read p50 {:.2} ms not below write p50 {:.2} ms \
             ({} reads / {} writes)",
            r.read_p50_ms,
            r.write_p50_ms,
            r.read_count,
            r.write_count
        );
    }
}

/// All three protocols run the same geo mix with the read-value checker
/// green; Paxos and Mencius quorum-path reads also undercut their write
/// commits (a local quorum round trip beats replicate-then-wait).
#[test]
fn all_protocols_geo_read_mix_is_linearizable() {
    for choice in [
        ProtocolChoice::paxos(0),
        ProtocolChoice::paxos_bcast(0),
        ProtocolChoice::mencius(),
    ] {
        let r = run_latency(choice, &geo_mix_cfg(3));
        assert_green(&r, "geo 90/10");
        assert!(
            r.read_p50_ms <= r.write_p50_ms,
            "{}: read p50 {:.2} ms above write p50 {:.2} ms",
            r.protocol,
            r.read_p50_ms,
            r.write_p50_ms
        );
    }
}

/// Clock skew may move read latency, never answers: the same mix under
/// sub-millisecond and multi-second skew bounds stays green for every
/// protocol. (For Clock-RSM the skew inflates the stable-timestamp
/// wait; Paxos leases only get *more* conservative; the quorum paths
/// never consult a clock.)
#[test]
fn read_mix_is_correct_under_sub_ms_and_multi_second_skew() {
    for bound in [500, 2 * SECONDS] {
        for choice in [
            ProtocolChoice::clock_rsm(),
            ProtocolChoice::paxos_bcast(0),
            ProtocolChoice::mencius(),
        ] {
            let cfg = geo_mix_cfg(7).clock(ClockModel::ntp(bound));
            let r = run_latency(choice, &cfg);
            assert_green(&r, &format!("skew ±{bound}us"));
        }
    }
}

/// Reads during a leader crash and election: the deposed regime must
/// never leak a stale value, and reads keep flowing once the
/// replacement is elected. Clock-RSM rides the same schedule through
/// its reconfiguration protocol; Mencius through recovery + gap fill.
#[test]
fn read_mix_survives_leader_crash_schedules() {
    let crash_at = 1_500 * MILLIS;
    let recover_at = 5_000 * MILLIS;
    let base = || {
        ExperimentConfig::new(LatencyMatrix::uniform(3, 20_000))
            .seed(11)
            .clients_per_site(3)
            .think_max_us(30 * MILLIS)
            .read_fraction(0.5)
            .active_sites(vec![0])
            .warmup_us(100 * MILLIS)
            .duration_us(9_000 * MILLIS)
            .client_retry_us(1_500 * MILLIS)
    };
    // Paxos: the initial leader (replica 1) crashes mid-mix; the lease
    // expires, a replacement is elected, reads and writes resume.
    for choice in [
        ProtocolChoice::paxos_failover(1, LeaseConfig::after(400 * MILLIS)),
        ProtocolChoice::paxos_bcast_failover(1, LeaseConfig::after(400 * MILLIS)),
    ] {
        let cfg = base().leader_crash(1, crash_at, recover_at);
        let r = run_latency(choice, &cfg);
        assert_green(&r, "paxos leader crash");
        assert!(
            r.commits_between(0, 6_000 * MILLIS, u64::MAX) > 10,
            "{}: no write progress after fail-over",
            r.protocol
        );
    }
    // Clock-RSM: same fault shape, ridden out via reconfiguration.
    let rsm_cfg = clock_rsm::ClockRsmConfig::default()
        .with_delta_us(Some(50 * MILLIS))
        .with_failure_detection(Some(400 * MILLIS))
        .with_synod_retry_us(100 * MILLIS)
        .with_reconfig_retry_us(100 * MILLIS);
    let cfg = base().leader_crash(1, crash_at, recover_at);
    let r = run_latency(ProtocolChoice::clock_rsm_with(rsm_cfg), &cfg);
    assert_green(&r, "clock-rsm crash");
    // Mencius: a peer crashes and rejoins; reads stay linearizable
    // through the recovery and gap-fill machinery.
    let cfg = base().leader_crash(2, crash_at, recover_at);
    let r = run_latency(ProtocolChoice::mencius(), &cfg);
    assert_green(&r, "mencius crash");
}

/// The classic deposed-leader scenario: the lease-holding leader is
/// partitioned from everyone, the survivors elect a replacement and
/// keep writing, and clients co-located with the old leader keep
/// issuing reads at it. Inside its lease window it may serve from its
/// (still current) prefix; once the lease expires its fast path closes
/// and its quorum probes go unanswered — it must park, not answer
/// stale. The read-value checker is the judge.
#[test]
fn deposed_leader_with_expired_lease_never_serves_stale_reads() {
    let leader = 1u16;
    let cut_at = 1_500 * MILLIS;
    let heal_at = 6_000 * MILLIS;
    let mut cfg = ExperimentConfig::new(LatencyMatrix::uniform(3, 20_000))
        .seed(13)
        .clients_per_site(3)
        .think_max_us(30 * MILLIS)
        .read_fraction(0.6)
        // Clients at the surviving site AND at the leader's own site:
        // the latter are the ones a stale-serving deposed leader would
        // betray.
        .active_sites(vec![0, 1])
        .warmup_us(100 * MILLIS)
        .duration_us(10_000 * MILLIS)
        .client_retry_us(1_500 * MILLIS);
    for peer in [0u16, 2] {
        cfg = cfg
            .fault(
                cut_at,
                harness::workload::Fault::Partition(
                    rsm_core::ReplicaId::new(leader),
                    rsm_core::ReplicaId::new(peer),
                ),
            )
            .fault(
                heal_at,
                harness::workload::Fault::Heal(
                    rsm_core::ReplicaId::new(leader),
                    rsm_core::ReplicaId::new(peer),
                ),
            );
    }
    let r = run_latency(
        ProtocolChoice::paxos_bcast_failover(leader, LeaseConfig::after(400 * MILLIS)),
        &cfg,
    );
    assert_green(&r, "deposed leader partition");
    // The survivors elected a replacement and kept committing while the
    // old leader was cut off.
    assert!(
        r.commits_between(0, 3_500 * MILLIS, heal_at) > 10,
        "no progress under the replacement leader: {:?}",
        r.commit_counts
    );
}

/// Satellite regression: reads bypass `BatchPolicy`/`BatchController`
/// coalescing. Under an adaptive policy at write-heavy load, the flush
/// threshold widens for writes — the read path must not inherit that
/// delay: read p50 stays below write p50, and within range of the
/// unbatched baseline.
#[test]
fn reads_bypass_adaptive_batching_under_load() {
    let run = |policy: BatchPolicy| {
        let cfg = ExperimentConfig::new(LatencyMatrix::uniform(3, 250))
            .seed(5)
            .clients_per_site(30)
            .think_max_us(0)
            .value_bytes(10)
            .read_fraction(0.9)
            .cpu(CpuModel::default())
            .batch(policy)
            .warmup_us(200 * MILLIS)
            .duration_us(1_500 * MILLIS);
        run_latency(ProtocolChoice::clock_rsm(), &cfg)
    };
    let adaptive = run(BatchPolicy::adaptive(64));
    let unbatched = run(BatchPolicy::DISABLED);
    assert!(adaptive.checks.all_ok(), "{:?}", adaptive.checks.violation);
    assert!(
        adaptive.read_count > 100,
        "too few reads measured: {}",
        adaptive.read_count
    );
    // The regression being guarded: were reads coalesced, a widened
    // flush threshold would hold every Get until the batch fills. With
    // the bypass, batching must not tax the read path at all — the
    // adaptive run's read latency stays within 20% of the unbatched
    // baseline, at p50 and at the tail (deterministic simulation,
    // identical seed and load shape).
    assert!(
        adaptive.read_p50_ms <= unbatched.read_p50_ms * 1.2,
        "adaptive batching inflated read p50: {:.2} ms vs unbatched {:.2} ms",
        adaptive.read_p50_ms,
        unbatched.read_p50_ms
    );
    assert!(
        adaptive.read_p99_ms <= unbatched.read_p99_ms * 1.2,
        "adaptive batching inflated read p99: {:.2} ms vs unbatched {:.2} ms",
        adaptive.read_p99_ms,
        unbatched.read_p99_ms
    );
}
