//! Failure handling end to end, for both fail-over designs in the tree:
//!
//! * **Clock-RSM** — crash a replica, watch the failure detector trigger
//!   the reconfiguration protocol (Algorithm 3), verify the survivors
//!   keep committing in the smaller configuration, then restart the
//!   replica and verify it recovers from its log, reintegrates via
//!   reconfiguration, and converges.
//! * **Paxos** — crash the *leader* mid-load, watch the lease expire and
//!   the survivors elect a replacement via ballot phase 1 over the log
//!   suffix, verify the cluster keeps committing under the new leader
//!   with the linearizability checks green, and verify the old leader
//!   rejoins as a follower (including down-past-retention rejoins that
//!   need checkpoint transfer).

use clock_rsm::ClockRsmConfig;
use harness::workload::Fault;
use harness::{run_latency, ExperimentConfig, ExperimentResult, ProtocolChoice};
use rsm_core::checkpoint::CheckpointPolicy;
use rsm_core::lease::LeaseConfig;
use rsm_core::time::MILLIS;
use rsm_core::{BatchPolicy, LatencyMatrix, ReplicaId};

fn fd_config() -> ClockRsmConfig {
    ClockRsmConfig::default()
        .with_delta_us(Some(50 * MILLIS))
        .with_failure_detection(Some(400 * MILLIS))
        .with_synod_retry_us(100 * MILLIS)
        .with_reconfig_retry_us(100 * MILLIS)
}

fn base_cfg(n: usize) -> ExperimentConfig {
    ExperimentConfig::new(LatencyMatrix::uniform(n, 20_000))
        .clients_per_site(3)
        .think_max_us(40 * MILLIS)
        .warmup_us(100 * MILLIS)
        .duration_us(10_000 * MILLIS)
        // In-flight commands that miss the reconfiguration decision are
        // dropped by the epoch change; real clients retry.
        .client_retry_us(2_000 * MILLIS)
}

/// Crash one replica of three; survivors reconfigure and keep going;
/// the crashed replica recovers, rejoins, and converges.
#[test]
fn crash_reconfigure_recover_rejoin() {
    let crash_at = 2_000 * MILLIS;
    let recover_at = 5_000 * MILLIS;
    // Clients at sites 0 and 1 only: site 2's clients would stall while
    // their replica is down.
    let cfg = base_cfg(3)
        .active_sites(vec![0, 1])
        .fault(crash_at, Fault::Crash(ReplicaId::new(2)))
        .fault(recover_at, Fault::Recover(ReplicaId::new(2)));
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);

    // Liveness while degraded: the survivors committed commands in the
    // window after failure detection + reconfiguration (crash + 400 ms FD
    // timeout + reconfiguration round trips ≈ 3 s) and before recovery.
    assert!(
        r.commits_between(0, 3_500 * MILLIS, recover_at) > 10,
        "no progress in the two-replica configuration: {:?}",
        &r.commit_times[0]
            .iter()
            .filter(|&&t| t > crash_at)
            .take(5)
            .collect::<Vec<_>>()
    );
    // Liveness after rejoin: the recovered replica executes *new* commands
    // issued well after its recovery — proof the reintegration finished.
    assert!(
        r.commits_between(2, 7_000 * MILLIS, 12_000 * MILLIS) > 10,
        "rejoined replica executed nothing near the end; last commit at {:?}",
        r.last_commit_at(2)
    );
    assert!(
        r.site_stats[0].count() > 50,
        "site 0 produced only {} samples",
        r.site_stats[0].count()
    );
    assert!(r.site_stats[1].count() > 50);

    // Safety: total order, monotonicity, linearizability never violated.
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);

    // Convergence: the recovered replica caught up fully — all replicas
    // executed the same number of commands and hold identical state.
    assert!(
        r.snapshots_agree,
        "snapshots diverged; commits: {:?}",
        r.commit_counts
    );
    // The recovered replica really did re-execute everything.
    assert!(
        r.commit_counts[2] > 0,
        "recovered replica executed nothing: {:?}",
        r.commit_counts
    );
}

/// Crash and recover *quickly* under constant load: recovery replays the
/// log, reintegration happens via reconfiguration, nothing diverges.
#[test]
fn fast_crash_recovery_preserves_safety() {
    let cfg = base_cfg(3)
        .active_sites(vec![0])
        .duration_us(8_000 * MILLIS)
        .fault(1_500 * MILLIS, Fault::Crash(ReplicaId::new(1)))
        .fault(2_500 * MILLIS, Fault::Recover(ReplicaId::new(1)));
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
    assert!(r.site_stats[0].count() > 30);
}

/// A five-replica deployment tolerates two crashed replicas (majority of
/// the spec still up) and reintegrates both.
#[test]
fn five_replicas_tolerate_two_failures() {
    let cfg = base_cfg(5)
        .active_sites(vec![0, 1])
        .duration_us(12_000 * MILLIS)
        .fault(1_500 * MILLIS, Fault::Crash(ReplicaId::new(3)))
        .fault(2_000 * MILLIS, Fault::Crash(ReplicaId::new(4)))
        .fault(6_000 * MILLIS, Fault::Recover(ReplicaId::new(3)))
        .fault(6_500 * MILLIS, Fault::Recover(ReplicaId::new(4)));
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
    assert!(r.site_stats[0].count() > 30);
    assert!(r.commit_counts[3] > 0 && r.commit_counts[4] > 0);
}

/// Checkpointing (Section V-B): with snapshots every 50 commits, a
/// crashed replica recovers through its latest checkpoint instead of a
/// full replay, rejoins, and converges — and the alignment-aware total
/// order checker validates its mid-stream history.
#[test]
fn checkpointed_recovery_converges() {
    let rsm_cfg = fd_config().with_checkpoint_every(Some(50));
    let cfg = base_cfg(3)
        .active_sites(vec![0, 1])
        .duration_us(10_000 * MILLIS)
        .fault(2_000 * MILLIS, Fault::Crash(ReplicaId::new(2)))
        .fault(5_000 * MILLIS, Fault::Recover(ReplicaId::new(2)));
    let r = run_latency(ProtocolChoice::clock_rsm_with(rsm_cfg), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
    // The checkpoint made recovery skip most of the prefix: the replay
    // burst at the recovery instant is bounded by the checkpoint interval
    // (plus the decision application), far below the ~170 commands that
    // committed before the crash.
    let replay_burst = r.commits_between(2, 5_000 * MILLIS, 5_000 * MILLIS);
    assert!(
        replay_burst < 60,
        "recovery replayed {replay_burst} commands despite checkpoints"
    );
    // It still executes fresh commands after rejoining.
    assert!(r.commits_between(2, 7_000 * MILLIS, u64::MAX) > 10);
}

/// Crash the *reconfigurer* mid-reconfiguration: replica 0 detects the
/// crash of replica 2 first (lowest id fires first) and starts the
/// SUSPEND round — then dies too. The frozen survivor's liveness backstop
/// must take over the reconfiguration once a majority exists again.
#[test]
fn reconfigurer_crash_mid_reconfiguration() {
    let crash_target = 1_500 * MILLIS;
    // r0's failure detector fires ~400ms after the crash; crash r0 just
    // after it has frozen the system but (likely) before the decision.
    let crash_reconfigurer = crash_target + 430 * MILLIS;
    let cfg = base_cfg(3)
        .active_sites(vec![1])
        .duration_us(14_000 * MILLIS)
        .fault(crash_target, Fault::Crash(ReplicaId::new(2)))
        .fault(crash_reconfigurer, Fault::Crash(ReplicaId::new(0)))
        // Bring r2 back so a majority of the spec exists again.
        .fault(4_000 * MILLIS, Fault::Recover(ReplicaId::new(2)))
        .fault(8_000 * MILLIS, Fault::Recover(ReplicaId::new(0)));
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
    // Progress resumed once {r1, r2} formed a majority again.
    assert!(
        r.commits_between(1, 6_000 * MILLIS, u64::MAX) > 10,
        "no progress after the double failure window: {:?}",
        r.commit_counts
    );
}

/// A network partition parks messages rather than losing them: after the
/// heal, everything converges without reconfiguration even kicking in
/// (partition shorter than the FD timeout).
#[test]
fn short_partition_heals_without_reconfiguration() {
    let cfg = base_cfg(3)
        .duration_us(6_000 * MILLIS)
        .fault(
            2_000 * MILLIS,
            Fault::Partition(ReplicaId::new(0), ReplicaId::new(2)),
        )
        .fault(
            2_300 * MILLIS,
            Fault::Heal(ReplicaId::new(0), ReplicaId::new(2)),
        );
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree);
}

/// A longer partition of one replica triggers its removal; after the
/// heal, the cut-off replica rejoins through the epoch catch-up path.
#[test]
fn long_partition_triggers_reconfiguration_and_catchup() {
    let cfg = base_cfg(3)
        .active_sites(vec![0, 1])
        .duration_us(10_000 * MILLIS)
        .fault(
            1_500 * MILLIS,
            Fault::Partition(ReplicaId::new(0), ReplicaId::new(2)),
        )
        .fault(
            1_500 * MILLIS,
            Fault::Partition(ReplicaId::new(1), ReplicaId::new(2)),
        )
        .fault(
            5_000 * MILLIS,
            Fault::Heal(ReplicaId::new(0), ReplicaId::new(2)),
        )
        .fault(
            5_000 * MILLIS,
            Fault::Heal(ReplicaId::new(1), ReplicaId::new(2)),
        );
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    // Site 0/1 must have made progress during the partition (r2 removed
    // from the configuration, so commits only need the majority).
    assert!(
        r.site_stats[0].count() + r.site_stats[1].count() > 60,
        "survivors stalled during the partition"
    );
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
}

// ----------------------------------------------------------------------
// Paxos leader-crash fail-over
// ----------------------------------------------------------------------

/// The Paxos deployments here start under replica 1 so the client site
/// (replica 0, which must stay up to drive load) survives the crash.
const PAXOS_LEADER: u16 = 1;

fn paxos_lease() -> LeaseConfig {
    LeaseConfig::after(400 * MILLIS)
}

/// Clients at site 0 only, batched submission (so the crash lands
/// mid-batch under load), retries to survive the proposals that die
/// with the leader.
fn paxos_crash_cfg(seed: u64, duration_ms: u64) -> ExperimentConfig {
    ExperimentConfig::new(LatencyMatrix::uniform(3, 20_000))
        .seed(seed)
        .clients_per_site(4)
        .think_max_us(30 * MILLIS)
        .active_sites(vec![0])
        .warmup_us(100 * MILLIS)
        .duration_us(duration_ms * MILLIS)
        .batch(harness_batch())
        .client_retry_us(1_000 * MILLIS)
}

fn harness_batch() -> BatchPolicy {
    BatchPolicy::max(8)
}

fn assert_failover(r: &ExperimentResult, seed: u64, recover_at: u64, end: u64) {
    // Liveness while the old leader is down: the survivors elected a
    // replacement (crash at 2 s + lease 400 ms + stagger + election
    // round trips ≈ 3.5 s) and kept committing client commands.
    assert!(
        r.commits_between(0, 4_000 * MILLIS, recover_at) > 10,
        "{} seed {seed}: no progress under the elected leader: {:?}",
        r.protocol,
        r.commit_counts
    );
    // The old leader rejoined as a follower and executes fresh commands.
    assert!(
        r.commits_between(PAXOS_LEADER as usize, recover_at + 2_000 * MILLIS, end) > 10,
        "{} seed {seed}: deposed leader never rejoined; last commit {:?}",
        r.protocol,
        r.last_commit_at(PAXOS_LEADER as usize)
    );
    // Safety: total order, no duplicates, linearizability.
    assert!(
        r.checks.all_ok(),
        "{} seed {seed}: {:?}",
        r.protocol,
        r.checks.violation
    );
    assert!(
        r.snapshots_agree,
        "{} seed {seed}: snapshots diverged; commits {:?}",
        r.protocol, r.commit_counts
    );
}

/// A 3-replica Paxos cluster whose leader crashes mid-load elects a new
/// leader and commits new client commands without operator input — the
/// acceptance scenario, soaked over both variants and several seeds.
#[test]
fn paxos_leader_crash_elects_and_commits() {
    let crash_at = 2_000 * MILLIS;
    let recover_at = 8_000 * MILLIS;
    let duration = 14_000u64;
    for seed in [1u64, 2, 3] {
        for choice in [
            ProtocolChoice::paxos_failover(PAXOS_LEADER, paxos_lease()),
            ProtocolChoice::paxos_bcast_failover(PAXOS_LEADER, paxos_lease()),
        ] {
            let cfg =
                paxos_crash_cfg(seed, duration).leader_crash(PAXOS_LEADER, crash_at, recover_at);
            let r = run_latency(choice, &cfg);
            assert_failover(&r, seed, recover_at, duration * MILLIS + 2_000 * MILLIS);
        }
    }
}

/// The fail-over scenario under a read mix: half the operations are
/// linearizable local reads (leader-lease fast path at the leader,
/// commit-watermark quorum reads at the followers) while the leader
/// crashes mid-load. Reads issued around the crash and election must
/// never return a value the verified total order contradicts — the
/// read-value checker inside `checks.all_ok()` is the judge — and both
/// paths must resume once the replacement regime settles. (The classic
/// deposed-leader-with-expired-lease partition scenario lives in
/// tests/read_mix.rs.)
#[test]
fn paxos_leader_crash_read_mix_stays_linearizable() {
    let crash_at = 2_000 * MILLIS;
    let recover_at = 8_000 * MILLIS;
    let duration = 14_000u64;
    for choice in [
        ProtocolChoice::paxos_failover(PAXOS_LEADER, paxos_lease()),
        ProtocolChoice::paxos_bcast_failover(PAXOS_LEADER, paxos_lease()),
    ] {
        let cfg = paxos_crash_cfg(5, duration)
            .read_fraction(0.5)
            .leader_crash(PAXOS_LEADER, crash_at, recover_at);
        let r = run_latency(choice, &cfg);
        assert!(
            r.checks.all_ok(),
            "{}: {:?}",
            r.protocol,
            r.checks.violation
        );
        assert!(r.snapshots_agree, "{} snapshots diverged", r.protocol);
        assert!(
            r.read_count > 20 && r.write_count > 20,
            "{}: mix starved ({} reads / {} writes)",
            r.protocol,
            r.read_count,
            r.write_count
        );
        // Write progress resumed under the elected leader.
        assert!(
            r.commits_between(0, 4_000 * MILLIS, recover_at) > 10,
            "{}: no progress under the elected leader",
            r.protocol
        );
    }
}

/// Repeated churn: while the initial leader is down, the cluster also
/// loses replica 2 — hitting the elected replacement if 2 won the
/// election, an acceptor of the new regime otherwise. Both worlds must
/// keep (or recover) liveness and reconverge by the end.
#[test]
fn paxos_double_leader_crash_converges() {
    let cfg = paxos_crash_cfg(7, 16_000)
        // Initial leader down at 2 s, back at 12 s.
        .leader_crash(PAXOS_LEADER, 2_000 * MILLIS, 12_000 * MILLIS)
        .fault(6_000 * MILLIS, Fault::Crash(ReplicaId::new(2)))
        .fault(9_000 * MILLIS, Fault::Recover(ReplicaId::new(2)));
    let r = run_latency(
        ProtocolChoice::paxos_bcast_failover(PAXOS_LEADER, paxos_lease()),
        &cfg,
    );
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
    assert!(
        r.commits_between(0, 13_000 * MILLIS, u64::MAX) > 10,
        "no progress after the churn settled: {:?}",
        r.commit_counts
    );
}

/// The old leader stays down long past checkpoint retention while the
/// cluster commits hundreds of commands under the elected leader; its
/// rejoin therefore cannot be served from anyone's log and must go
/// through peer checkpoint transfer — under a *changed* ballot, whose
/// promise the transferred snapshot must not regress.
#[test]
fn paxos_deposed_leader_rejoins_via_checkpoint_transfer() {
    let recover_at = 12_000 * MILLIS;
    for seed in [11u64, 12] {
        let cfg = paxos_crash_cfg(seed, 20_000)
            .checkpoint(CheckpointPolicy::every(32).with_compaction(true))
            // Snapshot installs skip per-command records, so commit
            // histories are gappy by design: soak on snapshots and log
            // bounds, like the long-outage suite.
            .record_ops(false)
            .leader_crash(PAXOS_LEADER, 2_000 * MILLIS, recover_at);
        let r = run_latency(
            ProtocolChoice::paxos_bcast_failover(PAXOS_LEADER, paxos_lease()),
            &cfg,
        );
        assert!(
            r.snapshots_agree,
            "seed {seed}: rejoined deposed leader diverged; commits {:?}",
            r.commit_counts
        );
        assert!(
            r.commit_counts[0] > 400,
            "seed {seed}: too little progress under the elected leader: {:?}",
            r.commit_counts
        );
        assert!(
            r.commit_counts[PAXOS_LEADER as usize] > 0,
            "seed {seed}: deposed leader never executed after rejoining"
        );
        // Compaction keeps every log bounded across the regime change.
        for (i, &len) in r.log_lens.iter().enumerate() {
            assert!(
                (len as u64) < r.commit_counts[0] / 2 && len < 1_500,
                "seed {seed}: log of replica {i} unbounded ({len} records \
                 for {} commits)",
                r.commit_counts[0]
            );
        }
    }
}

/// Pre-vote changes nothing about a *real* leader crash: the probe round
/// finds a majority whose leases lapsed, escalates to the classic
/// election, and the cluster fails over exactly as without it.
#[test]
fn paxos_prevote_leader_crash_still_elects() {
    let crash_at = 2_000 * MILLIS;
    let recover_at = 8_000 * MILLIS;
    let duration = 14_000u64;
    let cfg = paxos_crash_cfg(4, duration).leader_crash(PAXOS_LEADER, crash_at, recover_at);
    let r = run_latency(
        ProtocolChoice::paxos_bcast_failover(PAXOS_LEADER, paxos_lease().with_pre_vote()),
        &cfg,
    );
    assert_failover(&r, 4, recover_at, duration * MILLIS + 2_000 * MILLIS);
}

/// The disruption scenario pre-vote exists for, end to end: replica 2 is
/// partitioned away from a healthy cluster for many lease timeouts, so
/// its own lease expires and it campaigns into the void. With pre-vote
/// it only ever probes — no ballot inflation while isolated — so the
/// heal is a non-event: no Nack storm, no deposed leader, no election
/// stall; the cluster never stops committing and the castaway reconverges.
#[test]
fn paxos_prevote_isolated_replica_cannot_disrupt() {
    let cut = ReplicaId::new(2);
    let cut_at = 2_000 * MILLIS;
    let heal_at = 6_000 * MILLIS;
    let cfg = paxos_crash_cfg(9, 12_000)
        .fault(cut_at, Fault::Partition(ReplicaId::new(0), cut))
        .fault(cut_at, Fault::Partition(ReplicaId::new(1), cut))
        .fault(heal_at, Fault::Heal(ReplicaId::new(0), cut))
        .fault(heal_at, Fault::Heal(ReplicaId::new(1), cut));
    let r = run_latency(
        ProtocolChoice::paxos_bcast_failover(PAXOS_LEADER, paxos_lease().with_pre_vote()),
        &cfg,
    );
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
    // The majority side never noticed: commits flowed through the
    // partition window and, critically, straight through the heal — a
    // deposed-leader stall there would open a gap of at least the lease
    // timeout while the cluster re-elects.
    let around_heal: Vec<u64> = r.commit_times[0]
        .iter()
        .copied()
        .filter(|&t| t >= heal_at - 500 * MILLIS && t <= heal_at + 2_000 * MILLIS)
        .collect();
    let max_gap = around_heal
        .windows(2)
        .map(|w| w[1] - w[0])
        .max()
        .unwrap_or(u64::MAX);
    assert!(
        max_gap < 400 * MILLIS,
        "commit stall of {max_gap}us around the heal — the rejoining \
         replica disrupted the regime"
    );
    // The castaway reconverged: it executes fresh commands after healing.
    assert!(
        r.commits_between(2, heal_at + 1_000 * MILLIS, u64::MAX) > 10,
        "healed replica never caught up: {:?}",
        r.commit_counts
    );
}
