//! Failure handling end to end: crash a Clock-RSM replica, watch the
//! failure detector trigger the reconfiguration protocol (Algorithm 3),
//! verify the survivors keep committing in the smaller configuration,
//! then restart the replica and verify it recovers from its log,
//! reintegrates via reconfiguration, and converges.

use clock_rsm::ClockRsmConfig;
use harness::workload::Fault;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use rsm_core::time::MILLIS;
use rsm_core::{LatencyMatrix, ReplicaId};

fn fd_config() -> ClockRsmConfig {
    ClockRsmConfig::default()
        .with_delta_us(Some(50 * MILLIS))
        .with_failure_detection(Some(400 * MILLIS))
        .with_synod_retry_us(100 * MILLIS)
        .with_reconfig_retry_us(100 * MILLIS)
}

fn base_cfg(n: usize) -> ExperimentConfig {
    ExperimentConfig::new(LatencyMatrix::uniform(n, 20_000))
        .clients_per_site(3)
        .think_max_us(40 * MILLIS)
        .warmup_us(100 * MILLIS)
        .duration_us(10_000 * MILLIS)
        // In-flight commands that miss the reconfiguration decision are
        // dropped by the epoch change; real clients retry.
        .client_retry_us(2_000 * MILLIS)
}

/// Crash one replica of three; survivors reconfigure and keep going;
/// the crashed replica recovers, rejoins, and converges.
#[test]
fn crash_reconfigure_recover_rejoin() {
    let crash_at = 2_000 * MILLIS;
    let recover_at = 5_000 * MILLIS;
    // Clients at sites 0 and 1 only: site 2's clients would stall while
    // their replica is down.
    let cfg = base_cfg(3)
        .active_sites(vec![0, 1])
        .fault(crash_at, Fault::Crash(ReplicaId::new(2)))
        .fault(recover_at, Fault::Recover(ReplicaId::new(2)));
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);

    // Liveness while degraded: the survivors committed commands in the
    // window after failure detection + reconfiguration (crash + 400 ms FD
    // timeout + reconfiguration round trips ≈ 3 s) and before recovery.
    assert!(
        r.commits_between(0, 3_500 * MILLIS, recover_at) > 10,
        "no progress in the two-replica configuration: {:?}",
        &r.commit_times[0]
            .iter()
            .filter(|&&t| t > crash_at)
            .take(5)
            .collect::<Vec<_>>()
    );
    // Liveness after rejoin: the recovered replica executes *new* commands
    // issued well after its recovery — proof the reintegration finished.
    assert!(
        r.commits_between(2, 7_000 * MILLIS, 12_000 * MILLIS) > 10,
        "rejoined replica executed nothing near the end; last commit at {:?}",
        r.last_commit_at(2)
    );
    assert!(
        r.site_stats[0].count() > 50,
        "site 0 produced only {} samples",
        r.site_stats[0].count()
    );
    assert!(r.site_stats[1].count() > 50);

    // Safety: total order, monotonicity, linearizability never violated.
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);

    // Convergence: the recovered replica caught up fully — all replicas
    // executed the same number of commands and hold identical state.
    assert!(
        r.snapshots_agree,
        "snapshots diverged; commits: {:?}",
        r.commit_counts
    );
    // The recovered replica really did re-execute everything.
    assert!(
        r.commit_counts[2] > 0,
        "recovered replica executed nothing: {:?}",
        r.commit_counts
    );
}

/// Crash and recover *quickly* under constant load: recovery replays the
/// log, reintegration happens via reconfiguration, nothing diverges.
#[test]
fn fast_crash_recovery_preserves_safety() {
    let cfg = base_cfg(3)
        .active_sites(vec![0])
        .duration_us(8_000 * MILLIS)
        .fault(1_500 * MILLIS, Fault::Crash(ReplicaId::new(1)))
        .fault(2_500 * MILLIS, Fault::Recover(ReplicaId::new(1)));
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
    assert!(r.site_stats[0].count() > 30);
}

/// A five-replica deployment tolerates two crashed replicas (majority of
/// the spec still up) and reintegrates both.
#[test]
fn five_replicas_tolerate_two_failures() {
    let cfg = base_cfg(5)
        .active_sites(vec![0, 1])
        .duration_us(12_000 * MILLIS)
        .fault(1_500 * MILLIS, Fault::Crash(ReplicaId::new(3)))
        .fault(2_000 * MILLIS, Fault::Crash(ReplicaId::new(4)))
        .fault(6_000 * MILLIS, Fault::Recover(ReplicaId::new(3)))
        .fault(6_500 * MILLIS, Fault::Recover(ReplicaId::new(4)));
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
    assert!(r.site_stats[0].count() > 30);
    assert!(r.commit_counts[3] > 0 && r.commit_counts[4] > 0);
}

/// Checkpointing (Section V-B): with snapshots every 50 commits, a
/// crashed replica recovers through its latest checkpoint instead of a
/// full replay, rejoins, and converges — and the alignment-aware total
/// order checker validates its mid-stream history.
#[test]
fn checkpointed_recovery_converges() {
    let rsm_cfg = fd_config().with_checkpoint_every(Some(50));
    let cfg = base_cfg(3)
        .active_sites(vec![0, 1])
        .duration_us(10_000 * MILLIS)
        .fault(2_000 * MILLIS, Fault::Crash(ReplicaId::new(2)))
        .fault(5_000 * MILLIS, Fault::Recover(ReplicaId::new(2)));
    let r = run_latency(ProtocolChoice::clock_rsm_with(rsm_cfg), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
    // The checkpoint made recovery skip most of the prefix: the replay
    // burst at the recovery instant is bounded by the checkpoint interval
    // (plus the decision application), far below the ~170 commands that
    // committed before the crash.
    let replay_burst = r.commits_between(2, 5_000 * MILLIS, 5_000 * MILLIS);
    assert!(
        replay_burst < 60,
        "recovery replayed {replay_burst} commands despite checkpoints"
    );
    // It still executes fresh commands after rejoining.
    assert!(r.commits_between(2, 7_000 * MILLIS, u64::MAX) > 10);
}

/// Crash the *reconfigurer* mid-reconfiguration: replica 0 detects the
/// crash of replica 2 first (lowest id fires first) and starts the
/// SUSPEND round — then dies too. The frozen survivor's liveness backstop
/// must take over the reconfiguration once a majority exists again.
#[test]
fn reconfigurer_crash_mid_reconfiguration() {
    let crash_target = 1_500 * MILLIS;
    // r0's failure detector fires ~400ms after the crash; crash r0 just
    // after it has frozen the system but (likely) before the decision.
    let crash_reconfigurer = crash_target + 430 * MILLIS;
    let cfg = base_cfg(3)
        .active_sites(vec![1])
        .duration_us(14_000 * MILLIS)
        .fault(crash_target, Fault::Crash(ReplicaId::new(2)))
        .fault(crash_reconfigurer, Fault::Crash(ReplicaId::new(0)))
        // Bring r2 back so a majority of the spec exists again.
        .fault(4_000 * MILLIS, Fault::Recover(ReplicaId::new(2)))
        .fault(8_000 * MILLIS, Fault::Recover(ReplicaId::new(0)));
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
    // Progress resumed once {r1, r2} formed a majority again.
    assert!(
        r.commits_between(1, 6_000 * MILLIS, u64::MAX) > 10,
        "no progress after the double failure window: {:?}",
        r.commit_counts
    );
}

/// A network partition parks messages rather than losing them: after the
/// heal, everything converges without reconfiguration even kicking in
/// (partition shorter than the FD timeout).
#[test]
fn short_partition_heals_without_reconfiguration() {
    let cfg = base_cfg(3)
        .duration_us(6_000 * MILLIS)
        .fault(
            2_000 * MILLIS,
            Fault::Partition(ReplicaId::new(0), ReplicaId::new(2)),
        )
        .fault(
            2_300 * MILLIS,
            Fault::Heal(ReplicaId::new(0), ReplicaId::new(2)),
        );
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    assert!(r.snapshots_agree);
}

/// A longer partition of one replica triggers its removal; after the
/// heal, the cut-off replica rejoins through the epoch catch-up path.
#[test]
fn long_partition_triggers_reconfiguration_and_catchup() {
    let cfg = base_cfg(3)
        .active_sites(vec![0, 1])
        .duration_us(10_000 * MILLIS)
        .fault(
            1_500 * MILLIS,
            Fault::Partition(ReplicaId::new(0), ReplicaId::new(2)),
        )
        .fault(
            1_500 * MILLIS,
            Fault::Partition(ReplicaId::new(1), ReplicaId::new(2)),
        )
        .fault(
            5_000 * MILLIS,
            Fault::Heal(ReplicaId::new(0), ReplicaId::new(2)),
        )
        .fault(
            5_000 * MILLIS,
            Fault::Heal(ReplicaId::new(1), ReplicaId::new(2)),
        );
    let r = run_latency(ProtocolChoice::clock_rsm_with(fd_config()), &cfg);
    assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
    // Site 0/1 must have made progress during the partition (r2 removed
    // from the configuration, so commits only need the majority).
    assert!(
        r.site_stats[0].count() + r.site_stats[1].count() > 60,
        "survivors stalled during the partition"
    );
    assert!(r.snapshots_agree, "commits: {:?}", r.commit_counts);
}
