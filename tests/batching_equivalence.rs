//! The batching determinism contract: coalescing client requests into
//! batches must never corrupt the committed history.
//!
//! Each case drives an **open-loop, scripted** workload (fixed commands
//! at fixed virtual times — no reply feedback, so batched and unbatched
//! runs see the identical offered load) on random topologies with random
//! skew, runs the cluster to quiescence, and compares the committed
//! command sequences across batch sizes:
//!
//! * **Single-origin** runs must commit the *identical sequence* at every
//!   replica whatever the batch size (the total order is the origin's
//!   submission order, which batching must preserve exactly).
//! * **Multi-origin** runs must commit the *identical set* (nothing
//!   dropped, nothing duplicated), with all replicas of each run agreeing
//!   on one total order and converging to equal snapshots. The
//!   cross-origin interleaving may legitimately differ — batching changes
//!   timing, not correctness.
//!
//! Both static and [adaptive](BatchPolicy::adaptive) policies are held
//! to the contract — an adaptive controller only moves the flush
//! threshold, so it must be exactly as invisible in the committed
//! history as any static setting — including across **crash/recovery
//! schedules**: a replica crashing mid-run and recovering (losing its
//! volatile state and any requests delivered while down, replaying its
//! stable log, catching up via the protocol's retransmission machinery)
//! must leave the surviving replicas' committed sequence identical
//! across policies.

use std::collections::BTreeSet;

use bytes::Bytes;
use clock_rsm::{ClockRsm, ClockRsmConfig};
use kvstore::{KvOp, KvStore};
use mencius::MenciusBcast;
use paxos::{MultiPaxos, PaxosVariant};
use proptest::prelude::*;
use rsm_core::command::{Command, CommandId, Reply};
use rsm_core::config::Membership;
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::protocol::Protocol;
use rsm_core::time::{Micros, MILLIS};
use rsm_core::{BatchPolicy, LatencyMatrix};
use simnet::sim::{Application, SimApi};
use simnet::{ClockModel, SimConfig, Simulation};

/// A fixed submission plan: `(time, site, burst)` — `burst` commands
/// enter `site`'s inbox at the same instant, which is what gives the
/// driver something to coalesce.
#[derive(Debug, Clone)]
struct Plan {
    subs: Vec<(Micros, u16, u8)>,
}

/// A scripted crash: `victim` goes down at `down_at` and recovers at
/// `up_at` (virtual µs).
type CrashPlan = (u16, Micros, Micros);

struct ScriptedApp {
    plan: Plan,
    crash: Option<CrashPlan>,
    issued: u64,
}

impl<P: Protocol> Application<P> for ScriptedApp {
    fn on_init(&mut self, api: &mut SimApi<'_, P>) {
        for (i, &(at, _, _)) in self.plan.subs.iter().enumerate() {
            api.schedule(at, i as u64);
        }
        if let Some((victim, down_at, up_at)) = self.crash {
            api.crash(ReplicaId::new(victim), down_at);
            api.recover(ReplicaId::new(victim), up_at);
        }
    }

    fn on_event(&mut self, key: u64, api: &mut SimApi<'_, P>) {
        let (_, site, burst) = self.plan.subs[key as usize];
        for _ in 0..burst {
            self.issued += 1;
            let id = CommandId::new(ClientId::new(ReplicaId::new(site), 0), self.issued);
            let op = KvOp::put(self.issued.to_be_bytes().to_vec(), b"v".to_vec());
            api.submit(ReplicaId::new(site), Command::new(id, op.encode()));
        }
    }

    fn on_reply(&mut self, _c: ClientId, _r: Reply, _api: &mut SimApi<'_, P>) {}
}

/// Runs a scripted plan under one protocol and batch size to quiescence;
/// returns each replica's committed id sequence plus the snapshots.
fn run_scripted<P, F>(
    factory: F,
    matrix: &LatencyMatrix,
    seed: u64,
    skew_us: u64,
    batch: BatchPolicy,
    plan: &Plan,
) -> (Vec<Vec<CommandId>>, Vec<Bytes>)
where
    P: Protocol + 'static,
    F: FnMut(ReplicaId) -> P + 'static,
{
    run_scripted_with_crash(factory, matrix, seed, skew_us, batch, plan, None)
}

#[allow(clippy::too_many_arguments)]
fn run_scripted_with_crash<P, F>(
    factory: F,
    matrix: &LatencyMatrix,
    seed: u64,
    skew_us: u64,
    batch: BatchPolicy,
    plan: &Plan,
    crash: Option<CrashPlan>,
) -> (Vec<Vec<CommandId>>, Vec<Bytes>)
where
    P: Protocol + 'static,
    F: FnMut(ReplicaId) -> P + 'static,
{
    let n = matrix.len();
    let cfg = SimConfig::new(matrix.clone())
        .seed(seed)
        .clock_model(ClockModel::ntp(skew_us))
        .batch_policy(batch);
    let mut sim = Simulation::new(
        cfg,
        factory,
        || Box::new(KvStore::new()),
        ScriptedApp {
            plan: plan.clone(),
            crash,
            issued: 0,
        },
    );
    // All submissions land within ~2.2 s (random plans stop at 300 ms;
    // crash cases append a post-recovery tail out to 2.15 s); several
    // seconds of slack let every protocol quiesce (clock-time broadcasts
    // keep Clock-RSM moving; the others finish off their in-flight
    // messages).
    sim.run_until(10_000 * MILLIS);
    let histories = (0..n as u16)
        .map(|r| {
            sim.commits(ReplicaId::new(r))
                .iter()
                .map(|c| c.cmd_id)
                .collect()
        })
        .collect();
    let snaps = (0..n as u16)
        .map(|r| sim.snapshot(ReplicaId::new(r)))
        .collect();
    (histories, snaps)
}

fn total_commands(plan: &Plan) -> usize {
    plan.subs.iter().map(|&(_, _, b)| b as usize).sum()
}

/// Checks one run's internal consistency and returns replica 0's history.
fn check_one_run(
    histories: &[Vec<CommandId>],
    snaps: &[Bytes],
    expected_total: usize,
) -> Vec<CommandId> {
    for h in histories {
        assert_eq!(
            h.len(),
            expected_total,
            "a quiesced run must commit every submitted command"
        );
        assert_eq!(histories[0], *h, "replicas disagree on the total order");
    }
    for s in snaps {
        assert_eq!(snaps[0], *s, "replica snapshots diverged");
    }
    histories[0].clone()
}

fn arb_plan(n_sites: u16, single_origin: bool) -> impl Strategy<Value = Plan> {
    proptest::collection::vec((0u64..300_000, 0u16..n_sites, 1u8..8), 5..25).prop_map(
        move |mut subs| {
            if single_origin {
                for s in &mut subs {
                    s.1 = 0;
                }
            }
            Plan { subs }
        },
    )
}

fn arb_matrix(n: usize) -> impl Strategy<Value = LatencyMatrix> {
    proptest::collection::vec(2_000u64..40_000, n * (n - 1) / 2).prop_map(move |vals| {
        let mut m = vec![vec![0u64; n]; n];
        let mut it = vals.into_iter();
        #[allow(clippy::needless_range_loop)] // triangular fill is clearest with indices
        for i in 0..n {
            for j in (i + 1)..n {
                let v = it.next().expect("enough samples");
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        LatencyMatrix::from_one_way_micros(m)
    })
}

/// The policies every unbatched baseline is compared against: static
/// sizes plus the adaptive controller at two ceilings (the controller
/// may pick any threshold trajectory — the history must not care).
fn policies() -> Vec<(&'static str, BatchPolicy)> {
    vec![
        ("static4", BatchPolicy::max(4)),
        ("static8", BatchPolicy::max(8)),
        ("static32", BatchPolicy::max(32)),
        ("adaptive8", BatchPolicy::adaptive(8)),
        ("adaptive64", BatchPolicy::adaptive(64)),
    ]
}

/// The (smaller) policy set for the slower crash/recovery cases.
fn crash_policies() -> Vec<(&'static str, BatchPolicy)> {
    vec![
        ("static8", BatchPolicy::max(8)),
        ("adaptive8", BatchPolicy::adaptive(8)),
    ]
}

/// Appends a deterministic tail of submissions after every crash window
/// (400 ms – 2.2 s), so the recovered replica always sees post-recovery
/// traffic — the trigger for the protocols' traffic-driven catch-up
/// machinery (Clock-RSM rejoin, Paxos fill requests and stall-confirmed
/// transfers, Mencius gap resyncs).
fn with_tail(mut plan: Plan, site: u16) -> Plan {
    for i in 0..8u64 {
        plan.subs.push((400_000 + i * 250_000, site, 2));
    }
    plan
}

/// Checks one crash run: the replicas that never crashed must agree on
/// one total order and equal snapshots; returns the first survivor's
/// history. The victim is deliberately left out of the assertions —
/// its recorded history legitimately restarts at recovery and state
/// installs, and whether it fully catches up by quiescence is a
/// *liveness* property of the recovery subsystem (checkpoint transfer,
/// fill retransmission — covered by `long_outage`/`failover`), not the
/// batching-equivalence contract under test here.
fn check_crash_run(histories: &[Vec<CommandId>], snaps: &[Bytes], victim: u16) -> Vec<CommandId> {
    let survivors: Vec<usize> = (0..histories.len())
        .filter(|&i| i != victim as usize)
        .collect();
    for &i in &survivors[1..] {
        assert_eq!(
            histories[survivors[0]], histories[i],
            "survivors disagree on the total order"
        );
        assert_eq!(snaps[survivors[0]], snaps[i], "survivor snapshots diverged");
    }
    histories[survivors[0]].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Clock-RSM, single origin: the committed sequence is bit-identical
    /// across every batch size.
    #[test]
    fn clock_rsm_single_origin_sequence_identical(
        matrix in arb_matrix(3),
        plan in arb_plan(3, true),
        seed in 0u64..1_000,
        skew_us in 0u64..10_000,
    ) {
        let total = total_commands(&plan);
        let factory = |n: u16| move |id| ClockRsm::new(
            id, Membership::uniform(n), ClockRsmConfig::default());
        let (h0, s0) = run_scripted(
            factory(3), &matrix, seed, skew_us, BatchPolicy::DISABLED, &plan);
        let baseline = check_one_run(&h0, &s0, total);
        for (name, policy) in policies() {
            let (h, s) = run_scripted(
                factory(3), &matrix, seed, skew_us, policy, &plan);
            let seq = check_one_run(&h, &s, total);
            prop_assert_eq!(&baseline, &seq, "{} changed the sequence", name);
        }
    }

    /// Clock-RSM, all origins active: every batch size commits the same
    /// command set, and each run is internally consistent.
    #[test]
    fn clock_rsm_multi_origin_set_identical(
        matrix in arb_matrix(3),
        plan in arb_plan(3, false),
        seed in 0u64..1_000,
        skew_us in 0u64..10_000,
    ) {
        let total = total_commands(&plan);
        let factory = |n: u16| move |id| ClockRsm::new(
            id, Membership::uniform(n), ClockRsmConfig::default());
        let (h0, s0) = run_scripted(
            factory(3), &matrix, seed, skew_us, BatchPolicy::DISABLED, &plan);
        let baseline: BTreeSet<CommandId> =
            check_one_run(&h0, &s0, total).into_iter().collect();
        for (name, policy) in policies() {
            let (h, s) = run_scripted(
                factory(3), &matrix, seed, skew_us, policy, &plan);
            let set: BTreeSet<CommandId> =
                check_one_run(&h, &s, total).into_iter().collect();
            prop_assert_eq!(&baseline, &set, "{} changed the committed set", name);
        }
    }

    /// Paxos-bcast, single origin through the leader funnel: identical
    /// sequence across batch sizes (instances are assigned in forward
    /// order).
    #[test]
    fn paxos_single_origin_sequence_identical(
        matrix in arb_matrix(3),
        plan in arb_plan(3, true),
        seed in 0u64..1_000,
    ) {
        let total = total_commands(&plan);
        let factory = |n: u16| move |id| MultiPaxos::new(
            id, Membership::uniform(n), ReplicaId::new(1), PaxosVariant::Bcast);
        let (h0, s0) = run_scripted(
            factory(3), &matrix, seed, 500, BatchPolicy::DISABLED, &plan);
        let baseline = check_one_run(&h0, &s0, total);
        for (name, policy) in policies() {
            let (h, s) = run_scripted(
                factory(3), &matrix, seed, 500, policy, &plan);
            let seq = check_one_run(&h, &s, total);
            prop_assert_eq!(&baseline, &seq, "{} changed the sequence", name);
        }
    }

    /// Mencius, single origin across the strided slot space: identical
    /// sequence across batch sizes.
    #[test]
    fn mencius_single_origin_sequence_identical(
        matrix in arb_matrix(3),
        plan in arb_plan(3, true),
        seed in 0u64..1_000,
    ) {
        let total = total_commands(&plan);
        let factory = |n: u16| move |id| MenciusBcast::new(id, Membership::uniform(n));
        let (h0, s0) = run_scripted(
            factory(3), &matrix, seed, 500, BatchPolicy::DISABLED, &plan);
        let baseline = check_one_run(&h0, &s0, total);
        for (name, policy) in policies() {
            let (h, s) = run_scripted(
                factory(3), &matrix, seed, 500, policy, &plan);
            let seq = check_one_run(&h, &s, total);
            prop_assert_eq!(&baseline, &seq, "{} changed the sequence", name);
        }
    }
}

// ---------------------------------------------------------------------
// Crash/recovery schedules
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Clock-RSM with failure handling: replica 2 crashes mid-plan and
    /// recovers; the failure detector reconfigures it out, rejoin
    /// reconfigures it back in, and the surviving replicas' committed
    /// sequence must be identical across static and adaptive policies.
    #[test]
    fn clock_rsm_crash_recovery_equivalence(
        matrix in arb_matrix(3),
        plan in arb_plan(3, true),
        seed in 0u64..1_000,
        down_at in 20_000u64..150_000,
        outage in 50_000u64..200_000,
    ) {
        let plan = with_tail(plan, 0);
        let crash = Some((2u16, down_at, down_at + outage));
        let factory = |n: u16| move |id| ClockRsm::new(
            id,
            Membership::uniform(n),
            ClockRsmConfig::default()
                .with_delta_us(Some(50 * MILLIS))
                .with_failure_detection(Some(400 * MILLIS))
                .with_synod_retry_us(100 * MILLIS)
                .with_reconfig_retry_us(100 * MILLIS),
        );
        let (h0, s0) = run_scripted_with_crash(
            factory(3), &matrix, seed, 500, BatchPolicy::DISABLED, &plan, crash);
        let baseline = check_crash_run(&h0, &s0, 2);
        for (name, policy) in crash_policies() {
            let (h, s) = run_scripted_with_crash(
                factory(3), &matrix, seed, 500, policy, &plan, crash);
            let seq = check_crash_run(&h, &s, 2);
            prop_assert_eq!(&baseline, &seq,
                "{} changed the sequence across a crash", name);
        }
    }

    /// Clock-RSM, all origins active through the same crash schedule:
    /// commands submitted to the down replica are lost identically in
    /// every run (arrival times are policy-independent), so the
    /// committed *set* must still be identical across policies.
    #[test]
    fn clock_rsm_crash_recovery_multi_origin_set_identical(
        matrix in arb_matrix(3),
        plan in arb_plan(3, false),
        seed in 0u64..1_000,
        down_at in 20_000u64..150_000,
        outage in 50_000u64..200_000,
    ) {
        let plan = with_tail(plan, 0);
        let crash = Some((2u16, down_at, down_at + outage));
        let factory = |n: u16| move |id| ClockRsm::new(
            id,
            Membership::uniform(n),
            ClockRsmConfig::default()
                .with_delta_us(Some(50 * MILLIS))
                .with_failure_detection(Some(400 * MILLIS))
                .with_synod_retry_us(100 * MILLIS)
                .with_reconfig_retry_us(100 * MILLIS),
        );
        let (h0, s0) = run_scripted_with_crash(
            factory(3), &matrix, seed, 500, BatchPolicy::DISABLED, &plan, crash);
        let baseline: BTreeSet<CommandId> =
            check_crash_run(&h0, &s0, 2).into_iter().collect();
        for (name, policy) in crash_policies() {
            let (h, s) = run_scripted_with_crash(
                factory(3), &matrix, seed, 500, policy, &plan, crash);
            let set: BTreeSet<CommandId> =
                check_crash_run(&h, &s, 2).into_iter().collect();
            prop_assert_eq!(&baseline, &set,
                "{} changed the committed set across a crash", name);
        }
    }

    /// Paxos-bcast: follower 2 crashes and recovers (leader 1 and the
    /// origin survive); fill requests repair its vouch gap when the
    /// post-recovery tail arrives. Identical survivor sequence across
    /// policies.
    #[test]
    fn paxos_crash_recovery_equivalence(
        matrix in arb_matrix(3),
        plan in arb_plan(3, true),
        seed in 0u64..1_000,
        down_at in 20_000u64..150_000,
        outage in 50_000u64..200_000,
    ) {
        let plan = with_tail(plan, 0);
        let crash = Some((2u16, down_at, down_at + outage));
        let factory = |n: u16| move |id| MultiPaxos::new(
            id, Membership::uniform(n), ReplicaId::new(1), PaxosVariant::Bcast);
        let (h0, s0) = run_scripted_with_crash(
            factory(3), &matrix, seed, 500, BatchPolicy::DISABLED, &plan, crash);
        let baseline = check_crash_run(&h0, &s0, 2);
        for (name, policy) in crash_policies() {
            let (h, s) = run_scripted_with_crash(
                factory(3), &matrix, seed, 500, policy, &plan, crash);
            let seq = check_crash_run(&h, &s, 2);
            prop_assert_eq!(&baseline, &seq,
                "{} changed the sequence across a crash", name);
        }
    }

    /// Mencius: owner 2 crashes and recovers; skip promises and gap
    /// fills resolve its slots once the post-recovery tail lands.
    /// Identical survivor sequence across policies.
    #[test]
    fn mencius_crash_recovery_equivalence(
        matrix in arb_matrix(3),
        plan in arb_plan(3, true),
        seed in 0u64..1_000,
        down_at in 20_000u64..150_000,
        outage in 50_000u64..200_000,
    ) {
        let plan = with_tail(plan, 0);
        let crash = Some((2u16, down_at, down_at + outage));
        let factory = |n: u16| move |id| MenciusBcast::new(id, Membership::uniform(n));
        let (h0, s0) = run_scripted_with_crash(
            factory(3), &matrix, seed, 500, BatchPolicy::DISABLED, &plan, crash);
        let baseline = check_crash_run(&h0, &s0, 2);
        for (name, policy) in crash_policies() {
            let (h, s) = run_scripted_with_crash(
                factory(3), &matrix, seed, 500, policy, &plan, crash);
            let seq = check_crash_run(&h, &s, 2);
            prop_assert_eq!(&baseline, &seq,
                "{} changed the sequence across a crash", name);
        }
    }
}
