//! Ballot-safety property soak for Paxos fail-over: randomized leader
//! crashes, follower crashes, and election-window partitions (which
//! force dueling candidates — neither can assemble a majority until the
//! heal, so ballots keep climbing) must never break agreement.
//!
//! "No instance ever commits two different commands" is asserted through
//! two independent lenses: the alignment-aware total-order/monotonicity
//! checks over the per-replica commit histories (two replicas executing
//! different commands at one instance diverge at the first aligned
//! offset), and byte-identical state machine snapshots at quiescence (a
//! forked instance would leave different states). The client history is
//! additionally run through the real-time linearizability checker
//! (`harness/lin.rs`).

use harness::workload::Fault;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use proptest::prelude::*;
use rsm_core::lease::LeaseConfig;
use rsm_core::time::MILLIS;
use rsm_core::{LatencyMatrix, ReplicaId};

/// The initial leader; replica 0 hosts the clients and stays up.
const LEADER: u16 = 1;

const DURATION_MS: u64 = 12_000;

fn churn_cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig::new(LatencyMatrix::uniform(3, 20_000))
        .seed(seed)
        .clients_per_site(3)
        .think_max_us(40 * MILLIS)
        .active_sites(vec![0])
        .warmup_us(100 * MILLIS)
        .duration_us(DURATION_MS * MILLIS)
        .client_retry_us(1_000 * MILLIS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn no_instance_forks_under_random_failover_churn(
        seed in 0u64..1_000_000,
        crash_at_ms in 1_500u64..3_000,
        outage_ms in 600u64..4_000,
        duel_partition in any::<bool>(),
        second_crash in any::<bool>(),
        bcast in any::<bool>(),
    ) {
        let crash_at = crash_at_ms * MILLIS;
        let recover_at = crash_at + outage_ms * MILLIS;
        let mut cfg = churn_cfg(seed).leader_crash(LEADER, crash_at, recover_at);
        if duel_partition {
            // Cut the two survivors from each other for the election
            // window: both suspect the dead leader, both campaign, and
            // neither can reach a majority until the heal delivers the
            // parked prepares — a forced candidate duel.
            cfg = cfg
                .fault(crash_at, Fault::Partition(ReplicaId::new(0), ReplicaId::new(2)))
                .fault(
                    crash_at + 900 * MILLIS,
                    Fault::Heal(ReplicaId::new(0), ReplicaId::new(2)),
                );
        }
        if second_crash {
            // Knock out replica 2 after the deposed leader rejoined:
            // progress then depends on the rejoin having really worked
            // (and, if 2 had won the election, on a further fail-over).
            let at = recover_at + 1_500 * MILLIS;
            if at + 1_000 * MILLIS < (DURATION_MS - 2_000) * MILLIS {
                cfg = cfg
                    .fault(at, Fault::Crash(ReplicaId::new(2)))
                    .fault(at + 1_000 * MILLIS, Fault::Recover(ReplicaId::new(2)));
            }
        }
        let choice = if bcast {
            ProtocolChoice::paxos_bcast_failover(LEADER, LeaseConfig::after(400 * MILLIS))
        } else {
            ProtocolChoice::paxos_failover(LEADER, LeaseConfig::after(400 * MILLIS))
        };
        let r = run_latency(choice, &cfg);
        prop_assert!(
            r.checks.all_ok(),
            "seed {seed} crash {crash_at_ms}ms outage {outage_ms}ms \
             duel {duel_partition} second {second_crash} bcast {bcast}: {:?}",
            r.checks.violation
        );
        prop_assert!(
            r.snapshots_agree,
            "seed {seed}: snapshots diverged; commits {:?}",
            r.commit_counts
        );
        prop_assert!(
            r.site_stats[0].count() > 30,
            "seed {seed}: cluster lost liveness ({} replies; commits {:?})",
            r.site_stats[0].count(),
            r.commit_counts
        );
        prop_assert!(
            r.commit_counts.iter().all(|&c| c > 0),
            "seed {seed}: a replica never executed anything: {:?}",
            r.commit_counts
        );
    }
}
