//! Committed reproducers from the chaos swarm, plus the pipeline's own
//! acceptance tests.
//!
//! Every `chaos_seed_*` test below is a schedule the swarm once failed,
//! minimized by the shrinker and rendered by
//! `rsm_chaos::SwarmFailure::reproducer`. They assert a **clean** run:
//! the bug each one caught is fixed, and the schedule pins it closed.
//! When the swarm finds a new failure, paste the rendered reproducer
//! here (it will fail), fix the bug, and keep the test.
//!
//! The canary tests exercise the pipeline itself: a deliberately
//! re-introduced, known-fixed bug (session dedup bypassed under client
//! retries — the PR-8 double-apply) must be found by the oracles and
//! shrunk to a tiny script, proving the fuzzer can still catch and
//! minimize that class of failure end to end.

use harness::Fault;
use rsm_chaos::{exec, gen, shrink, FailureKind, Knobs, ProtocolKind, Schedule, SwarmFailure};
use rsm_core::ReplicaId;

// ----------------------------------------------------------------------
// Committed reproducers (shrunk by the swarm, kept green)
// ----------------------------------------------------------------------

/// Auto-shrunk reproducer: seed 47 on clock-rsm failed the
/// `snapshot-divergence` oracle. Overlapping crash windows (r0 down
/// 810–1530 ms, r1 down 971–1972 ms): r0's rejoin reconfiguration
/// decided epoch 1 while r1 was still down, so r1's later rejoin was
/// satisfied by a stale decision catch-up and resumed without the
/// commands committed in epoch 1 during its outage. Fixed by keeping
/// `needs_rejoin` set until a decision built from the rejoiner's own
/// post-recovery SUSPEND collection wins.
#[test]
fn chaos_seed_47_clock_rsm_snapshot_divergence() {
    let schedule = Schedule {
        seed: 47,
        protocol: ProtocolKind::ClockRsm,
        knobs: Knobs {
            replicas: 3,
            clients_per_site: 1,
            read_pct: 0,
            cas_pct: 0,
            batch_max: 0,
            checkpoint_every: 0,
            session_window: 0,
            pre_vote: false,
            horizon_ms: 4_500,
            latency_us: 5_000,
            jitter_us: 0,
        },
        entries: vec![
            (810_356, Fault::Crash(ReplicaId::new(0))),
            (970_767, Fault::Crash(ReplicaId::new(1))),
            (1_529_631, Fault::Recover(ReplicaId::new(0))),
            (1_971_756, Fault::Recover(ReplicaId::new(1))),
        ],
        canary: false,
    };
    assert_eq!(exec::run(&schedule), None);
}

/// Swarm regression: seed 43 on mencius froze after staggered
/// double-crash windows. Two replicas desynced in overlapping recovery
/// windows and the old execution-gated resync deadlocked (acks gate
/// execution, execution gated resync, resync gated acks). Fixed by
/// receipt-based resync with durable gap confirmations.
#[test]
fn chaos_seed_43_mencius_resync_liveness() {
    assert_eq!(
        exec::run(&gen::generate_for(43, ProtocolKind::Mencius)),
        None
    );
}

// ----------------------------------------------------------------------
// Canary: the pipeline still catches and shrinks a known-fixed bug
// ----------------------------------------------------------------------

#[test]
fn canary_duplicate_is_found_and_shrinks_small() {
    let schedule = gen::canary(3, ProtocolKind::Paxos);
    let failure = exec::run(&schedule).expect("armed canary must trip an oracle");
    assert_eq!(failure.kind, FailureKind::Duplicate, "{}", failure.detail);

    let out = shrink::shrink(&schedule, &failure, 80);
    assert_eq!(out.failure.kind, FailureKind::Duplicate);
    assert!(
        out.minimized.entries.len() <= 8,
        "shrinker failed to converge: {} entries left: {:?}",
        out.minimized.entries.len(),
        out.minimized.entries
    );
    // The minimized schedule must still reproduce, and the rendered
    // reproducer must be a complete test function.
    let replay = exec::run(&out.minimized).expect("minimized canary must still fail");
    assert_eq!(replay.kind, FailureKind::Duplicate);
    let rendered = SwarmFailure {
        original: schedule.clone(),
        failure,
        shrunk: out,
    }
    .reproducer();
    assert!(rendered.contains("#[test]"));
    assert!(rendered.contains("rsm_chaos::exec::run(&schedule)"));

    // Same schedule with the canary disarmed: the session dedup window
    // absorbs the retries and every oracle passes — the bug this canary
    // resurrects really is fixed in the production path.
    let fixed = Schedule {
        canary: false,
        ..schedule
    };
    assert_eq!(exec::run(&fixed), None);
}

// ----------------------------------------------------------------------
// Determinism: same seed, same schedule, same failure, byte for byte
// ----------------------------------------------------------------------

#[test]
fn schedules_and_failures_replay_byte_for_byte() {
    for seed in [0u64, 9, 21] {
        assert_eq!(gen::generate(seed), gen::generate(seed), "seed {seed}");
    }
    let schedule = gen::canary(3, ProtocolKind::PaxosBcast);
    let a = exec::run(&schedule).expect("canary fails");
    let b = exec::run(&schedule).expect("canary fails again");
    assert_eq!(a.kind, b.kind);
    assert_eq!(
        a.detail, b.detail,
        "failure detail must replay byte for byte"
    );
}

// ----------------------------------------------------------------------
// Mini swarm: a slice of the CI chaos job inside the standard matrix
// ----------------------------------------------------------------------

#[test]
fn mini_swarm_passes_every_oracle() {
    let cfg = rsm_chaos::SwarmConfig {
        start_seed: 0,
        schedules: 3,
        protocols: ProtocolKind::ALL.to_vec(),
        shrink_budget: 40,
        max_failures: 1,
    };
    let report = rsm_chaos::swarm::run_swarm(&cfg, |_, _, _| {});
    assert_eq!(report.executed, 12);
    assert!(
        report.all_ok(),
        "swarm found failures:\n{}",
        report
            .failures
            .iter()
            .map(|f| f.reproducer())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
