//! Throughput-model regressions (Figure 8): the qualitative relationships
//! the reproduction preserves, at reduced scale. See EXPERIMENTS.md for
//! the full-size numbers and the documented divergence at small command
//! sizes.

use harness::{run_throughput, ProtocolChoice};
use rsm_core::BatchPolicy;
use simnet::CpuModel;

fn kops(choice: ProtocolChoice, size: usize) -> f64 {
    run_throughput(
        choice,
        size,
        20,
        CpuModel::default(),
        3,
        BatchPolicy::DISABLED,
    )
    .throughput_kops
}

/// Clock-RSM and Mencius-bcast have the same communication pattern and
/// message complexity; their throughput must track each other closely at
/// every command size (the paper's first throughput claim).
#[test]
fn clock_rsm_and_mencius_track_each_other() {
    for size in [10usize, 100, 1000] {
        let c = kops(ProtocolChoice::clock_rsm(), size);
        let m = kops(ProtocolChoice::mencius(), size);
        assert!(c > 0.0 && m > 0.0);
        let ratio = c / m;
        assert!(
            (0.75..=1.35).contains(&ratio),
            "{size}B: Clock-RSM {c:.1}k vs Mencius {m:.1}k (ratio {ratio:.2})"
        );
    }
}

/// Large commands saturate the Paxos leader's byte funnel (it moves ~N
/// copies of every payload); the multi-leader protocols win clearly.
#[test]
fn large_commands_favor_multi_leader() {
    let clock = kops(ProtocolChoice::clock_rsm(), 1000);
    let paxos = kops(ProtocolChoice::paxos(0), 1000);
    let paxos_b = kops(ProtocolChoice::paxos_bcast(0), 1000);
    assert!(
        clock > paxos * 1.5,
        "Clock-RSM {clock:.1}k should clearly beat Paxos {paxos:.1}k at 1000B"
    );
    assert!(
        clock > paxos_b * 1.5,
        "Clock-RSM {clock:.1}k should clearly beat Paxos-bcast {paxos_b:.1}k at 1000B"
    );
}

/// Throughput falls monotonically with command size for every protocol
/// (per-byte CPU costs only add), and the drop from 10B to 1000B is
/// substantial for the leader-bound protocols.
#[test]
fn throughput_decreases_with_command_size() {
    for choice in [
        ProtocolChoice::clock_rsm(),
        ProtocolChoice::mencius(),
        ProtocolChoice::paxos(0),
        ProtocolChoice::paxos_bcast(0),
    ] {
        let t10 = kops(choice.clone(), 10);
        let t100 = kops(choice.clone(), 100);
        let t1000 = kops(choice.clone(), 1000);
        // Adjacent sizes can invert by a few percent (batch formation is
        // stochastic); the overall trend must hold firmly.
        assert!(
            t10 >= t100 * 0.85 && t100 >= t1000 * 0.85,
            "{}: {t10:.1} / {t100:.1} / {t1000:.1} kops not decreasing",
            choice.name()
        );
        assert!(
            t1000 < t10 * 0.85,
            "{}: kilobyte commands should cost clearly more ({t10:.1} -> {t1000:.1})",
            choice.name()
        );
    }
}

/// Closed-loop saturation: doubling the client population beyond the
/// saturation point must not increase throughput much (the CPU, not the
/// offered load, is the bottleneck — "in all cases, CPU is the
/// bottleneck").
#[test]
fn throughput_saturates_with_client_population() {
    let t20 = run_throughput(
        ProtocolChoice::clock_rsm(),
        100,
        20,
        CpuModel::default(),
        3,
        BatchPolicy::DISABLED,
    )
    .throughput_kops;
    let t60 = run_throughput(
        ProtocolChoice::clock_rsm(),
        100,
        60,
        CpuModel::default(),
        3,
        BatchPolicy::DISABLED,
    )
    .throughput_kops;
    assert!(
        t60 < t20 * 1.5,
        "tripling clients should not triple throughput at saturation: {t20:.1} -> {t60:.1}"
    );
}
