//! Exactly-once client sessions end to end: retried commands reuse
//! their id, replicas dedup at execution time (`rsm_core::session`),
//! and a duplicate that already applied comes back with the CACHED
//! original reply instead of running the state machine again.
//!
//! The observable is a compare-and-swap: `CAS(k, None, "1")` answers
//! `[1]` exactly once under at-most-once execution, so a duplicate that
//! re-executed would answer `[0]` (the key now holds `"1"`). Every test
//! here rides that asymmetry — through the deterministic simulator
//! (deliberate duplicates, crash/retry chains on all three protocols)
//! and through the threaded runtime (`ClusterSession` retries over both
//! the in-process plane and real loopback TCP, window eviction, and
//! admission-control rejection).

use std::marker::PhantomData;
use std::time::Duration;

use bytes::Bytes;
use clock_rsm::{ClockRsm, ClockRsmConfig};
use kvstore::{KvOp, KvStore};
use mencius::MenciusBcast;
use paxos::{MultiPaxos, PaxosVariant};
use rsm_core::command::{Command, CommandId, Reply};
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::protocol::Protocol;
use rsm_core::time::MILLIS;
use rsm_core::wire::WireMsg;
use rsm_core::{LatencyMatrix, LeaseConfig, Membership, StateMachine};
use rsm_runtime::{Cluster, ClusterConfig, ClusterTransport, ExecuteError};
use simnet::sim::{Application, SimApi};
use simnet::{SimConfig, Simulation};

fn kv() -> Box<dyn StateMachine> {
    Box::new(KvStore::new())
}

const CLIENT: u32 = 9;

// ---------------------------------------------------------------------
// Simulator: deliberate duplicates of one committed command.
// ---------------------------------------------------------------------

/// Submits one CAS, then re-submits the IDENTICAL command twice more on
/// a timer — a client whose replies keep getting lost. Every reply must
/// be the cached original `[1]`.
struct DupApp<P> {
    site: ReplicaId,
    cmd: Option<Command>,
    replies: Vec<Reply>,
    _p: PhantomData<fn() -> P>,
}

impl<P: Protocol> DupApp<P> {
    fn new(site: u16) -> Self {
        DupApp {
            site: ReplicaId::new(site),
            cmd: None,
            replies: Vec::new(),
            _p: PhantomData,
        }
    }
}

impl<P: Protocol> Application<P> for DupApp<P> {
    fn on_init(&mut self, api: &mut SimApi<'_, P>) {
        let id = CommandId::new(ClientId::new(self.site, CLIENT), 1);
        let cmd = Command::new(id, KvOp::cas("dup", None, "1").encode());
        self.cmd = Some(cmd.clone());
        api.submit(self.site, cmd);
        api.schedule(1_000 * MILLIS, 1);
        api.schedule(2_000 * MILLIS, 2);
    }

    fn on_event(&mut self, _key: u64, api: &mut SimApi<'_, P>) {
        // Deliberate duplicate: same id, same payload.
        let cmd = self.cmd.clone().expect("initialised");
        api.submit(self.site, cmd);
    }

    fn on_reply(&mut self, _client: ClientId, reply: Reply, _api: &mut SimApi<'_, P>) {
        self.replies.push(reply);
    }
}

fn duplicates_are_deduped<P: Protocol>(factory: impl FnMut(ReplicaId) -> P + 'static) {
    let cfg = SimConfig::new(LatencyMatrix::uniform(3, 15_000)).seed(7);
    let mut sim = Simulation::new(cfg, factory, || Box::new(KvStore::new()), DupApp::new(0));
    sim.run_until(4_000 * MILLIS);

    let replies = &sim.app().replies;
    assert!(
        replies.len() >= 2,
        "expected the duplicate submissions to draw replies, got {}",
        replies.len()
    );
    for (i, r) in replies.iter().enumerate() {
        assert_eq!(
            r.result,
            Bytes::from_static(&[1]),
            "reply {i} was not the cached original: a duplicate re-executed"
        );
    }
    // The state machine ran the command ONCE per replica: the duplicate
    // never reached `apply`, only the session table.
    let dup_id = CommandId::new(ClientId::new(ReplicaId::new(0), CLIENT), 1);
    for r in 0..3u16 {
        let applied = sim
            .commits(ReplicaId::new(r))
            .iter()
            .filter(|c| c.cmd_id == dup_id)
            .count();
        assert_eq!(
            applied, 1,
            "replica {r} applied the command {applied} times"
        );
    }
    for r in 1..3u16 {
        assert_eq!(
            sim.snapshot(ReplicaId::new(r)),
            sim.snapshot(ReplicaId::new(0)),
            "replica {r} diverged"
        );
    }
}

#[test]
fn duplicate_submission_is_deduped_on_clock_rsm() {
    duplicates_are_deduped(|id| {
        ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default())
    });
}

#[test]
fn duplicate_submission_is_deduped_on_paxos_bcast() {
    duplicates_are_deduped(|id| {
        MultiPaxos::new(
            id,
            Membership::uniform(3),
            ReplicaId::new(0),
            PaxosVariant::Bcast,
        )
    });
}

#[test]
fn duplicate_submission_is_deduped_on_mencius() {
    duplicates_are_deduped(|id| MenciusBcast::new(id, Membership::uniform(3)));
}

// ---------------------------------------------------------------------
// Simulator: a same-id retry chain across a crash.
// ---------------------------------------------------------------------

/// A closed-loop CAS-chain client that retries with the SAME command id
/// when no reply arrives in time. Under the session subsystem every
/// reply the client accepts must be a success: a retry of an attempt
/// that secretly committed is answered from the cache, never
/// re-executed, so the chain can no longer observe a failed CAS.
struct ChainApp<P> {
    site: ReplicaId,
    seq: u64,
    confirmed: u64,
    pending: Option<Command>,
    failure: Option<String>,
    stop_at: u64,
    _p: PhantomData<fn() -> P>,
}

const RETRY_KEY: u64 = 1 << 40;

impl<P: Protocol> ChainApp<P> {
    fn new(site: u16, stop_at: u64) -> Self {
        ChainApp {
            site: ReplicaId::new(site),
            seq: 0,
            confirmed: 0,
            pending: None,
            failure: None,
            stop_at,
            _p: PhantomData,
        }
    }

    fn issue(&mut self, api: &mut SimApi<'_, P>) {
        if api.now() >= self.stop_at {
            return;
        }
        self.seq += 1;
        let expect = if self.confirmed == 0 {
            None
        } else {
            Some(Bytes::from(self.confirmed.to_string()))
        };
        let op = KvOp::cas("chain", expect, (self.confirmed + 1).to_string());
        let id = CommandId::new(ClientId::new(self.site, CLIENT), self.seq);
        let cmd = Command::new(id, op.encode());
        self.pending = Some(cmd.clone());
        api.submit(self.site, cmd);
        api.schedule(1_500 * MILLIS, RETRY_KEY | self.seq);
    }
}

impl<P: Protocol> Application<P> for ChainApp<P> {
    fn on_init(&mut self, api: &mut SimApi<'_, P>) {
        self.issue(api);
    }

    fn on_event(&mut self, key: u64, api: &mut SimApi<'_, P>) {
        if key & RETRY_KEY == 0 || key & !RETRY_KEY != self.seq || self.pending.is_none() {
            return; // superseded or already answered
        }
        // Same-id retry: if the lost attempt committed, the session
        // table serves the cached reply.
        let cmd = self.pending.clone().expect("checked above");
        api.submit(self.site, cmd);
        api.schedule(1_500 * MILLIS, RETRY_KEY | self.seq);
    }

    fn on_reply(&mut self, _client: ClientId, reply: Reply, api: &mut SimApi<'_, P>) {
        if reply.id.seq != self.seq || self.pending.is_none() {
            return; // duplicate reply for an already-confirmed command
        }
        if reply.result != Bytes::from_static(&[1]) {
            // With same-id retries a CAS can only fail if a duplicate
            // re-executed (or ordering broke): either way, exactly-once
            // was violated.
            self.failure = Some(format!(
                "CAS seq {} failed: duplicate execution or lost dedup window",
                self.seq
            ));
            return;
        }
        self.pending = None;
        self.confirmed += 1;
        self.issue(api);
    }
}

fn chain_survives_crash<P: Protocol>(
    factory: impl FnMut(ReplicaId) -> P + 'static,
    client_site: u16,
    victim: u16,
    recover: bool,
) {
    let cfg = SimConfig::new(LatencyMatrix::uniform(3, 15_000)).seed(11);
    let app = ChainApp::new(client_site, 10_000 * MILLIS);
    let mut sim = Simulation::new(cfg, factory, || Box::new(KvStore::new()), app);
    sim.crash(ReplicaId::new(victim), 2_000 * MILLIS);
    if recover {
        sim.recover(ReplicaId::new(victim), 5_000 * MILLIS);
    }
    sim.run_until(12_000 * MILLIS);

    assert!(sim.app().failure.is_none(), "{:?}", sim.app().failure);
    let confirmed = sim.app().confirmed;
    assert!(
        confirmed > 5,
        "chain stalled: only {confirmed} CAS ops confirmed"
    );
    // The replicated value equals the number of confirmed successes:
    // every CAS applied exactly once, crash and retries notwithstanding.
    let mut expected = KvStore::new();
    for i in 0..confirmed {
        let id = CommandId::new(ClientId::new(ReplicaId::new(client_site), CLIENT), i + 1);
        let expect = if i == 0 {
            None
        } else {
            Some(Bytes::from(i.to_string()))
        };
        expected.apply(&Command::new(
            id,
            KvOp::cas("chain", expect, (i + 1).to_string()).encode(),
        ));
    }
    let survivor = ReplicaId::new(client_site);
    assert_eq!(
        sim.snapshot(survivor),
        expected.snapshot(),
        "replicated chain value diverged from the confirmed count"
    );
}

#[test]
fn same_id_retry_chain_survives_crash_on_clock_rsm() {
    let cfg = ClockRsmConfig::default()
        .with_delta_us(Some(50 * MILLIS))
        .with_failure_detection(Some(400 * MILLIS))
        .with_synod_retry_us(100 * MILLIS)
        .with_reconfig_retry_us(100 * MILLIS);
    chain_survives_crash(
        move |id| ClockRsm::new(id, Membership::uniform(3), cfg),
        0,
        2,
        true,
    );
}

#[test]
fn same_id_retry_chain_survives_paxos_leader_crash() {
    chain_survives_crash(
        |id| {
            MultiPaxos::new(
                id,
                Membership::uniform(3),
                ReplicaId::new(0),
                PaxosVariant::Bcast,
            )
            .with_failover(LeaseConfig::after(300 * MILLIS))
        },
        1, // client at a survivor; its commands forward to the leader
        0, // crash the leader: the survivors must elect and dedup
        false,
    );
}

#[test]
fn same_id_retry_chain_survives_crash_on_mencius() {
    chain_survives_crash(
        |id| MenciusBcast::new(id, Membership::uniform(3)),
        0,
        2,
        true,
    );
}

// ---------------------------------------------------------------------
// Threaded runtime: ClusterSession retries, eviction, admission.
// ---------------------------------------------------------------------

/// `retry_last` on every protocol, in process: the deliberate duplicate
/// must return the CACHED original reply, and the state machine must
/// hold exactly one application of the CAS.
fn session_retry_round_trips<P>(factory: impl FnMut(ReplicaId) -> P + Send)
where
    P: Protocol + Send + 'static,
    P::Msg: WireMsg,
{
    let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000)).scale(0.02);
    let cluster = Cluster::spawn(cfg, factory, kv);
    let mut session = cluster.session(ReplicaId::new(0));

    let first = session
        .execute(KvOp::cas("k", None, "1").encode(), Duration::from_secs(10))
        .expect("initial CAS");
    assert_eq!(first.result, Bytes::from_static(&[1]));

    // Deliberate duplicate: same id, same payload, after the original
    // reply already arrived.
    let dup = session
        .retry_last(Duration::from_secs(10))
        .expect("retried CAS");
    assert_eq!(dup.id, first.id);
    assert_eq!(
        dup.result, first.result,
        "retry was re-executed instead of answered from the cache"
    );

    // Exactly-once, observed through the data: the key holds "1", so a
    // successor CAS expecting "1" succeeds.
    let next = session
        .execute(
            KvOp::cas("k", Some(Bytes::from_static(b"1")), "2").encode(),
            Duration::from_secs(10),
        )
        .expect("successor CAS");
    assert_eq!(next.result, Bytes::from_static(&[1]));
    cluster.shutdown();
}

#[test]
fn cluster_session_retry_is_deduped_on_all_protocols() {
    session_retry_round_trips(|id| {
        ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default())
    });
    session_retry_round_trips(|id| {
        MultiPaxos::new(
            id,
            Membership::uniform(3),
            ReplicaId::new(0),
            PaxosVariant::Bcast,
        )
    });
    session_retry_round_trips(|id| MenciusBcast::new(id, Membership::uniform(3)));
}

/// A Paxos leader crash with the session retrying under the SAME id
/// until the survivors elect — once in process, once over loopback TCP.
/// An attempt that committed under the dying regime and lost only its
/// reply must not double-apply when the retry lands under the new one.
fn session_retry_spans_paxos_failover(transport: ClusterTransport) {
    let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 5_000))
        .scale(0.02)
        .transport(transport)
        .retries(40, Duration::from_millis(100));
    let cluster = Cluster::spawn(
        cfg,
        |id| {
            MultiPaxos::new(
                id,
                Membership::uniform(3),
                ReplicaId::new(0),
                PaxosVariant::Bcast,
            )
            .with_failover(LeaseConfig::after(200_000))
        },
        kv,
    );
    let mut session = cluster.session(ReplicaId::new(1));

    let first = session
        .execute(KvOp::cas("fk", None, "1").encode(), Duration::from_secs(5))
        .expect("pre-crash CAS");
    assert_eq!(first.result, Bytes::from_static(&[1]));

    // Kill the leader; the session's next command retries across the
    // lease timeout and the election, same id every attempt.
    cluster.crash(ReplicaId::new(0));
    let second = session
        .execute(
            KvOp::cas("fk", Some(Bytes::from_static(b"1")), "2").encode(),
            Duration::from_secs(2),
        )
        .expect("CAS across the fail-over");
    assert_eq!(
        second.result,
        Bytes::from_static(&[1]),
        "the fail-over CAS failed: an earlier attempt was double-applied"
    );

    // The deliberate duplicate still answers from the cache under the
    // NEW regime: the session entry rode the commit to every survivor.
    let dup = session
        .retry_last(Duration::from_secs(5))
        .expect("post-failover retry");
    assert_eq!(dup.result, second.result);

    // Data-level proof of exactly-once across the whole history.
    let probe = session
        .execute(
            KvOp::cas("fk", Some(Bytes::from_static(b"2")), "3").encode(),
            Duration::from_secs(5),
        )
        .expect("probe CAS");
    assert_eq!(probe.result, Bytes::from_static(&[1]));

    std::thread::sleep(Duration::from_millis(300));
    let reports = cluster.shutdown();
    assert_eq!(
        reports[1].snapshot, reports[2].snapshot,
        "survivors diverged"
    );
}

#[test]
fn cluster_session_retry_spans_paxos_failover_in_process() {
    session_retry_spans_paxos_failover(ClusterTransport::InProcess);
}

#[test]
fn cluster_session_retry_spans_paxos_failover_over_tcp() {
    session_retry_spans_paxos_failover(ClusterTransport::Tcp);
}

/// The documented staleness contract of the bounded window: once other
/// clients evict a session entry, a late retry is no longer recognised
/// and re-executes. With `session_window = 1` a single interleaved
/// client forces the eviction deterministically; the re-executed CAS
/// then FAILS (the key already holds the value), which is exactly the
/// at-most-once-visible behaviour the contract promises for commands
/// retried beyond the window.
#[test]
fn session_window_eviction_reapplies_late_retries() {
    let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000)).scale(0.02);
    let cluster = Cluster::spawn(
        cfg,
        |id| {
            ClockRsm::new(
                id,
                Membership::uniform(3),
                ClockRsmConfig::default().with_session_window(1),
            )
        },
        kv,
    );
    let mut evicted = cluster.session(ReplicaId::new(0));
    let mut other = cluster.session(ReplicaId::new(1));

    let first = evicted
        .execute(KvOp::cas("ek", None, "1").encode(), Duration::from_secs(10))
        .expect("initial CAS");
    assert_eq!(first.result, Bytes::from_static(&[1]));

    // A second client's commit evicts the first session's entry from
    // the size-1 window at every replica.
    other
        .execute(KvOp::put("other", "x").encode(), Duration::from_secs(10))
        .expect("evicting write");

    // The late retry is past the window: it re-executes, and the CAS
    // now fails against the already-written value.
    let stale = evicted
        .retry_last(Duration::from_secs(10))
        .expect("late retry");
    assert_eq!(
        stale.result,
        Bytes::from_static(&[0]),
        "a size-1 window cannot still be caching the evicted reply"
    );
    cluster.shutdown();
}

/// Admission control: with full-scale WAN delays over TCP, outbound
/// frames sit in the per-peer link queues until due, so a fire-and-
/// forget burst pushes the deepest queue past a tiny high-water mark
/// and the next NEW command is rejected with `Busy` — then admitted
/// again once the queues drain.
#[test]
fn admission_control_rejects_new_commands_when_saturated() {
    let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 400_000))
        .transport(ClusterTransport::Tcp)
        .admission_high_water(8);
    let cluster = Cluster::spawn(
        cfg,
        |id| {
            ClockRsm::new(
                id,
                Membership::uniform(3),
                ClockRsmConfig::default().with_delta_us(None),
            )
        },
        kv,
    );
    // Saturate: each submit broadcasts a prepare that parks in both
    // peer queues for the 400 ms WAN delay.
    for i in 0..40u64 {
        let id = CommandId::new(ClientId::new(ReplicaId::new(0), 99), i + 1);
        cluster.submit(
            ReplicaId::new(0),
            Command::new(id, KvOp::put(format!("s{i}"), "v").encode()),
        );
    }
    // Let the node thread drain its inbox into the link queues.
    std::thread::sleep(Duration::from_millis(100));
    let err = cluster
        .execute(
            ReplicaId::new(0),
            KvOp::put("rejected", "v").encode(),
            Duration::from_secs(1),
        )
        .expect_err("the saturated replica must reject new commands");
    assert_eq!(err, ExecuteError::Busy);

    // Liveness: once the queues drain the same command is admitted.
    std::thread::sleep(Duration::from_millis(1_500));
    cluster
        .execute(
            ReplicaId::new(0),
            KvOp::put("admitted", "v").encode(),
            Duration::from_secs(20),
        )
        .expect("command after drain");
    cluster.shutdown();
}
