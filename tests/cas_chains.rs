//! CAS-chain validation: the sharpest end-to-end linearizability probe.
//!
//! Each client maintains one key and advances it through a chain of
//! compare-and-swap operations (`None→1→2→…`). Under a linearizable RSM
//! with at-most-once visible execution:
//!
//! * a CAS succeeds iff it observes the client's previous value, so a
//!   reordered, lost-then-duplicated, or double-executed command breaks
//!   the chain immediately;
//! * after quiescence, every replica's value for the key equals the
//!   number of successful CAS operations the client observed.
//!
//! We run the chains through the simulator directly (a custom
//! Application) on Clock-RSM — both failure-free and across a
//! crash/recover cycle with client-side retries.

use bytes::Bytes;
use clock_rsm::{ClockRsm, ClockRsmConfig};
use kvstore::{KvOp, KvStore};
use rsm_core::command::{Command, CommandId, Reply};
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::time::MILLIS;
use rsm_core::{LatencyMatrix, Membership};
use simnet::sim::{Application, SimApi};
use simnet::{SimConfig, Simulation};

/// One CAS-chain client per site; key = the client id, value = a counter.
struct CasApp {
    n: u16,
    /// The counter value each client knows is committed.
    confirmed: Vec<u64>,
    seq: Vec<u64>,
    /// Whether the client's outstanding command is a probe read (issued
    /// after a CAS failure to verify the value advanced by exactly one).
    probing: Vec<bool>,
    chain_broken: Vec<Option<String>>,
    successes: Vec<u64>,
    /// Scripted crash/recover (replica, crash_at, recover_at).
    fault: Option<(u16, u64, u64)>,
    stop_at: u64,
}

const RETRY_KEY: u64 = 1 << 40;
const FAULT_KEY: u64 = 1 << 41;

impl CasApp {
    fn new(n: u16, fault: Option<(u16, u64, u64)>, stop_at: u64) -> Self {
        CasApp {
            n,
            confirmed: vec![0; n as usize],
            seq: vec![0; n as usize],
            probing: vec![false; n as usize],
            chain_broken: vec![None; n as usize],
            successes: vec![0; n as usize],
            fault,
            stop_at,
        }
    }

    fn issue_op(&mut self, site: usize, op: KvOp, probe: bool, api: &mut SimApi<'_, ClockRsm>) {
        if api.now() >= self.stop_at {
            return;
        }
        self.seq[site] += 1;
        self.probing[site] = probe;
        let id = CommandId::new(
            ClientId::new(ReplicaId::new(site as u16), 0),
            self.seq[site],
        );
        api.submit(ReplicaId::new(site as u16), Command::new(id, op.encode()));
        // Client-side retry: commands lost to a reconfiguration re-issue
        // with a fresh id (a probe re-reads; a CAS re-attempts the SAME
        // expected value, so a lost-but-committed attempt surfaces as a
        // failed retry, which the probe then validates).
        api.schedule(
            2_000 * MILLIS,
            RETRY_KEY | ((site as u64) << 20) | self.seq[site],
        );
    }

    fn issue(&mut self, site: usize, api: &mut SimApi<'_, ClockRsm>) {
        let expect = if self.confirmed[site] == 0 {
            None
        } else {
            Some(Bytes::from(self.confirmed[site].to_string()))
        };
        let op = KvOp::cas(
            format!("chain{site}"),
            expect,
            (self.confirmed[site] + 1).to_string(),
        );
        self.issue_op(site, op, false, api);
    }

    fn probe(&mut self, site: usize, api: &mut SimApi<'_, ClockRsm>) {
        let op = KvOp::get(format!("chain{site}"));
        self.issue_op(site, op, true, api);
    }
}

impl Application<ClockRsm> for CasApp {
    fn on_init(&mut self, api: &mut SimApi<'_, ClockRsm>) {
        for site in 0..self.n as usize {
            self.issue(site, api);
        }
        if let Some((r, crash_at, recover_at)) = self.fault {
            api.crash(ReplicaId::new(r), crash_at);
            api.recover(ReplicaId::new(r), recover_at);
            api.schedule(crash_at, FAULT_KEY); // marker only
        }
    }

    fn on_event(&mut self, key: u64, api: &mut SimApi<'_, ClockRsm>) {
        if key >= FAULT_KEY {
            return;
        }
        if key >= RETRY_KEY {
            let site = ((key >> 20) & 0xFFFFF) as usize;
            let seq = key & 0xFFFFF;
            if self.seq[site] & 0xFFFFF == seq {
                // Still outstanding: the command (or its reply) was lost.
                if self.probing[site] {
                    self.probe(site, api);
                } else {
                    self.issue(site, api);
                }
            }
        }
    }

    fn on_reply(&mut self, client: ClientId, reply: Reply, api: &mut SimApi<'_, ClockRsm>) {
        let site = client.site().index();
        if reply.id.seq != self.seq[site] {
            return; // stale reply for a superseded attempt
        }
        if self.chain_broken[site].is_some() {
            return;
        }
        if self.probing[site] {
            // Probe read after a CAS failure: with a closed-loop client at
            // most ONE unaccounted attempt exists, so the only legitimate
            // value is confirmed + 1 (the lost attempt committed).
            let value: u64 = if reply.result[0] == 0 {
                0
            } else {
                String::from_utf8_lossy(&reply.result[1..])
                    .parse()
                    .unwrap_or(u64::MAX)
            };
            if value == self.confirmed[site] + 1 {
                self.confirmed[site] = value;
                self.successes[site] += 1; // the lost attempt did succeed
                self.issue(site, api);
            } else {
                self.chain_broken[site] = Some(format!(
                    "probe saw {value}, expected {}",
                    self.confirmed[site] + 1
                ));
            }
            return;
        }
        if reply.result[0] == 1 {
            // CAS succeeded: the chain advanced by exactly one.
            self.confirmed[site] += 1;
            self.successes[site] += 1;
            self.issue(site, api);
        } else {
            // CAS failed: verify via a linearizable read that exactly one
            // lost attempt committed; anything else breaks the chain.
            self.probe(site, api);
        }
    }
}

fn run_chains(
    n: u16,
    fault: Option<(u16, u64, u64)>,
    until: u64,
) -> (Vec<u64>, Vec<Option<String>>, Simulation<ClockRsm, CasApp>) {
    let cfg = SimConfig::new(LatencyMatrix::uniform(n as usize, 15_000)).seed(5);
    let rsm_cfg = if fault.is_some() {
        ClockRsmConfig::default()
            .with_delta_us(Some(50 * MILLIS))
            .with_failure_detection(Some(400 * MILLIS))
            .with_synod_retry_us(100 * MILLIS)
            .with_reconfig_retry_us(100 * MILLIS)
    } else {
        ClockRsmConfig::default()
    };
    let app = CasApp::new(n, fault, until - 2_000 * MILLIS);
    let mut sim = Simulation::new(
        cfg,
        move |id| ClockRsm::new(id, Membership::uniform(n), rsm_cfg),
        || Box::new(KvStore::new()),
        app,
    );
    sim.run_until(until);
    let confirmed = sim.app().confirmed.clone();
    let broken = sim.app().chain_broken.clone();
    (confirmed, broken, sim)
}

/// Failure-free chains: every CAS must succeed (no retries fire), and the
/// final replicated value equals the confirmed count exactly.
#[test]
fn chains_advance_without_failures() {
    let (confirmed, broken, sim) = run_chains(3, None, 8_000 * MILLIS);
    assert!(broken.iter().all(Option::is_none), "{broken:?}");
    #[allow(clippy::needless_range_loop)] // site indexes two parallel vecs
    for site in 0..3usize {
        assert!(
            confirmed[site] > 20,
            "site {site} advanced only to {}",
            confirmed[site]
        );
        // All ops succeeded: confirmed == successes (no lost commands).
        assert_eq!(
            sim.app().successes[site],
            confirmed[site],
            "site {site}: some CAS failed in a failure-free run"
        );
    }
    // Replicated state converged everywhere.
    for r in 1..3u16 {
        assert_eq!(
            sim.snapshot(ReplicaId::new(r)),
            sim.snapshot(ReplicaId::new(0)),
            "replica {r} diverged"
        );
    }
}

/// Chains survive a crash + recovery: some CAS attempts are lost to the
/// reconfiguration and retried; the chain never skips or repeats a value,
/// and all replicas converge to the clients' confirmed counters.
#[test]
fn chains_survive_crash_and_recovery() {
    let (confirmed, broken, sim) = run_chains(
        3,
        Some((2, 2_000 * MILLIS, 5_000 * MILLIS)),
        14_000 * MILLIS,
    );
    assert!(broken.iter().all(Option::is_none), "{broken:?}");
    // Chains at the surviving sites kept advancing through the fault.
    assert!(confirmed[0] > 30, "site 0 stalled: {confirmed:?}");
    assert!(confirmed[1] > 30, "site 1 stalled: {confirmed:?}");
    // Convergence across all three replicas (r2 rejoined).
    for r in 1..3u16 {
        assert_eq!(
            sim.snapshot(ReplicaId::new(r)),
            sim.snapshot(ReplicaId::new(0)),
            "replica {r} diverged"
        );
    }
    // The per-reply accounting (every advance is either a confirmed CAS
    // success or a probe-verified lost commit) plus snapshot equality pin
    // down at-most-once visible execution across the reconfiguration.
}
