//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! Provides `Criterion`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical analysis it runs a short warmup, then a fixed number of
//! timed samples, and prints mean and minimum per-iteration times. Enough
//! to compare orders of magnitude and track regressions by eye; swap back
//! to real criterion when a registry is available.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that takes ≥ ~2 ms
        // per sample so timer resolution does not dominate.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        for _ in 0..self.samples.capacity() {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }
}

/// The benchmark runner.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_count: self.sample_count,
            _parent: self,
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_count, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        run_bench(&full, self.sample_count, &mut f);
        self
    }

    /// Ends the group (upstream-API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench(name: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(sample_count),
            iters_per_sample: 1,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let per_iter = |d: &Duration| d.as_nanos() as f64 / b.iters_per_sample as f64;
        let mean = b.samples.iter().map(per_iter).sum::<f64>() / b.samples.len() as f64;
        let min = b.samples.iter().map(per_iter).fold(f64::INFINITY, f64::min);
        println!(
            "{name:<50} mean {:>12} min {:>12}",
            fmt_ns(mean),
            fmt_ns(min)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: a function invoking each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn black_box_returns_value() {
        assert_eq!(black_box(42), 42);
    }
}
