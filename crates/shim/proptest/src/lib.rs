//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no registry access, so this crate vendors the
//! subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * integer-range, tuple, `Just`, [`prop_oneof!`], `prop_map`,
//!   `collection::vec`, `sample::subsequence`, and `any` strategies,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic case seed instead of a minimized input), and the random
//! stream differs. Each test function derives its seeds from its full
//! module path, so runs are reproducible across processes.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, RngCore, SeedableRng};

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Per-test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic RNG of one test case (used by the
/// [`proptest!`] expansion; not part of the public proptest API).
pub fn test_rng(test_path: &str, case: u32) -> TestRng {
    let mut h = DefaultHasher::new();
    test_path.hash(&mut h);
    TestRng::seed_from_u64(h.finish() ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

/// Value-generation strategies.
pub mod strategy {
    use super::*;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe producing random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + (self.end - self.start) * unit
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// A full-range uniform strategy for `T` (`any::<u8>()` etc.).
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// Produces a uniform value over `T`'s whole domain.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The [`prop_oneof!`] union: picks one inner strategy uniformly.
    pub struct OneOf<T> {
        /// The alternatives (non-empty).
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// A size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Inclusive minimum length.
        pub min: usize,
        /// Inclusive maximum length.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max)
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::{SizeRange, Strategy};
    use super::TestRng;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::strategy::{SizeRange, Strategy};
    use super::TestRng;
    use rand::Rng;

    /// A strategy producing order-preserving subsequences of `values`
    /// whose length falls in `size`.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        let size = size.into();
        assert!(
            size.max <= values.len(),
            "subsequence longer than the source"
        );
        Subsequence { values, size }
    }

    /// The strategy returned by [`subsequence`].
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.pick(rng);
            // Floyd-style: mark `want` distinct indices, emit in order.
            let n = self.values.len();
            let mut picked = vec![false; n];
            let mut left = want;
            while left > 0 {
                let i = rng.gen_range(0..n);
                if !picked[i] {
                    picked[i] = true;
                    left -= 1;
                }
            }
            self.values
                .iter()
                .zip(picked)
                .filter(|&(_v, p)| p)
                .map(|(v, _p)| v.clone())
                .collect()
        }
    }
}

/// Defines property tests: each function runs its body over many randomly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_rng(__path, __case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    // Name the case so a failing assertion identifies it.
                    let __guard = $crate::CaseGuard::new(__path, __case);
                    { $body }
                    __guard.disarm();
                }
            }
        )*
    };
}

/// Prints the failing case's identity when a property body panics.
pub struct CaseGuard {
    path: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for one case.
    pub fn new(path: &'static str, case: u32) -> Self {
        CaseGuard {
            path,
            case,
            armed: true,
        }
    }

    /// Defuses the guard (the case passed).
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest: failing case {} of {} (deterministic; re-run reproduces it)",
                self.case, self.path
            );
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Unions several strategies producing the same value type; picks one
/// uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![ $( $crate::strategy::Strategy::boxed($strat) ),+ ],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u64..100, (a, b) in (0u8..10, 5usize..6)) {
            prop_assert!(x < 100);
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
        }

        #[test]
        fn vec_and_map(
            v in crate::collection::vec(1u32..5, 2..10),
            w in crate::collection::vec(0u8..2, 3),
            s in crate::sample::subsequence(vec![1, 2, 3, 4, 5], 2..=4),
            o in prop_oneof![Just(1u8), Just(9u8)],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
            prop_assert_eq!(w.len(), 3);
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.windows(2).all(|p| p[0] < p[1]), "order preserved");
            prop_assert!(o == 1 || o == 9);
        }

        #[test]
        fn prop_map_applies(v in crate::collection::vec(0u64..10, 4).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x", 3);
        let mut b = crate::test_rng("x", 3);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
