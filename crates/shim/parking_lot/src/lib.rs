//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot):
//! a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`), wrapping `std::sync::Mutex`.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`
/// signature.
#[derive(Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    ///
    /// Unlike `std`, returns the guard directly; a poisoned lock (a thread
    /// panicked while holding it) is recovered rather than propagated,
    /// matching `parking_lot` semantics closely enough for this workspace.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
