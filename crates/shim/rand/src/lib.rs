//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! Provides the subset the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen`] — backed by xoshiro256++, a small, fast, well-distributed
//! PRNG. Determinism is all the simulator needs (runs are replayable given
//! a seed); the exact stream differs from upstream `rand`, which only
//! shifts which concrete schedule a given seed denotes.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value type [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A sampleable range, the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((uniform_below(rng, span)) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Uniform draw in `[0, bound)` by rejection, avoiding modulo bias.
fn uniform_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// User-facing random value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, the reference initialization.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let z: usize = r.gen_range(0..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }
}
