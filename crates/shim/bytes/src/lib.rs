//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses: [`Bytes`]
//! (an immutable, reference-counted byte buffer whose clones share
//! storage), [`BytesMut`] (a growable builder), [`BufMut`] (the
//! big-endian put helpers), and [`Buf`] (the big-endian read cursor
//! helpers, implemented by [`Bytes`]). Semantics match the real crate for
//! this subset — including the panicking-on-underflow contract of
//! `Buf`/`BufMut` — swap the workspace dependency back to crates.io
//! `bytes` when a registry is available; no call sites need to change.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
///
/// Clones share the same backing storage (an `Arc`), so cloning a payload
/// when rebroadcasting a command is O(1) and allocation-free.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        // A static slice could be borrowed directly; this subset keeps one
        // representation (Arc) for simplicity. Still O(len) once, then
        // clones are free.
        Bytes::copy_from_slice(bytes)
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(bytes);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Returns a sub-slice sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `at` bytes, leaving `self` with
    /// the rest. Both halves share the original backing storage.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(0..at);
        self.start += at;
        head
    }
}

/// Big-endian read helpers over a byte cursor, the subset of `bytes::Buf`
/// the workspace uses. Like the real crate, the getters **panic** when
/// the buffer has fewer bytes than requested; length-check with
/// [`remaining`](Buf::remaining) first for fallible decoding.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Skips the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "Buf underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "Buf underflow");
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "Buf underflow");
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "Buf underflow");
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Fills `dst` from the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer used to build a [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty builder with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Big-endian write helpers, the subset of `bytes::BufMut` the workspace
/// uses.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32(0x01020304);
        m.put_u64(5);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 1 + 4 + 8 + 2);
        assert_eq!(b[0], 7);
        assert_eq!(&b[1..5], &[1, 2, 3, 4]);
        assert_eq!(&b[13..], b"xy");
    }

    #[test]
    fn slice_shares_and_bounds() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = a.slice(1..4);
        assert_eq!(s.as_ref(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn buf_reads_back_what_bufmut_wrote() {
        let mut m = BytesMut::new();
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_u64(0x0708090A0B0C0D0E);
        m.put_slice(b"tail");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0x03040506);
        assert_eq!(b.get_u64(), 0x0708090A0B0C0D0E);
        let mut tail = [0u8; 4];
        b.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(!b.has_remaining());
    }

    #[test]
    fn split_to_shares_storage_with_the_remainder() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
        assert_eq!(head.as_ptr(), unsafe { b.as_ptr().sub(2) });
    }

    #[test]
    #[should_panic(expected = "Buf underflow")]
    fn buf_underflow_panics_like_the_real_crate() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32();
    }

    #[test]
    fn map_key_lookup_by_slice() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<Bytes, u32> = BTreeMap::new();
        m.insert(Bytes::from("k"), 1);
        assert_eq!(m.get(b"k".as_slice()), Some(&1));
    }
}
