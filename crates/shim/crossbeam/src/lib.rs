//! Offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam)
//! crate.
//!
//! Implements the `crossbeam::channel` subset the runtime uses — cloneable
//! [`channel::Sender`]s, a blocking [`channel::Receiver`] with timeouts,
//! and disconnect detection in both directions — over a mutex + condvar
//! queue. Throughput is far below real crossbeam, but the runtime only
//! pushes a few thousand messages per second through these channels.

/// Multi-producer, single/multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a "bounded" channel. This shim does not enforce the bound
    /// (sends never block); the workspace only uses small bounds as
    /// rendezvous buffers, where the distinction is unobservable.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    /// An error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // No `T: Debug` bound, matching crossbeam: the payload is elided.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// An error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender dropped.
        Disconnected,
    }

    /// Errors returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender dropped.
        Disconnected,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Number of values currently queued (admission control samples
        /// inbox depth from the sending side).
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.inner.lock().unwrap().queue.is_empty()
        }

        /// Enqueues `value`, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.ready.notify_all();
            }
        }
    }

    /// The receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Returns immediately with a value, emptiness, or disconnection.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.inner.lock().unwrap().queue.is_empty()
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
