//! Cluster orchestration: spawn replicas, route replies, submit commands.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;

use rsm_core::batch::BatchPolicy;
use rsm_core::command::{Command, CommandId, Reply};
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::matrix::LatencyMatrix;
use rsm_core::obs::{span_key, TraceStage};
use rsm_core::protocol::Protocol;
use rsm_core::session::ClientSession;
use rsm_core::sm::StateMachine;
use rsm_core::wire::WireMsg;
use rsm_obs::{gauge_max, Gauge, MetricsSnapshot, NodeObs, ObsConfig, Registry, Tracer};
use rsm_transport::{Endpoint, Hub, Listener, TransportMetrics};

use crate::net::{run_network, NetInput, Wire};
use crate::node::{NodeHarness, NodeInput, NodeReport, Outbound, ReplyBatch};

/// How replica threads exchange protocol messages.
///
/// The protocol cores and the client API are identical across all
/// three: the choice only swaps the message plane underneath the node
/// threads. Socket modes encode every message with the binary wire
/// format (`rsm_core::wire`) onto framed, FIFO, per-peer connections;
/// the configured latency matrix still applies (each link holds frames
/// back by its scaled one-way delay before they hit the socket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterTransport {
    /// Messages stay in memory: one WAN-emulator thread reorders them
    /// by due time and forwards into node inboxes. The default.
    #[default]
    InProcess,
    /// Loopback TCP: every ordered replica pair gets one real socket
    /// carrying length-prefixed frames.
    Tcp,
    /// Unix-domain sockets under the system temp directory; same
    /// framing as TCP without the loopback TCP stack.
    Uds,
}

/// First client number the cluster mints for its own API calls
/// ([`Cluster::execute`], [`Cluster::session`]). Caller-minted ids
/// ([`Cluster::execute_command`]) must stay below it; the shard
/// coordinator's snapshot client and the test suites' small numbers
/// already do.
pub const CLIENT_BASE: u32 = 0x4000_0000;

/// The pending-reply map is swept for expired entries whenever an
/// insert finds it at least this large, bounding the leak from waiters
/// that vanished without removing their entry (a racing retry overwrote
/// it, or the caller panicked between insert and receive).
const PENDING_SWEEP_MIN: usize = 1024;

/// Default admission-control high-water mark: a *new* command is
/// rejected with [`ExecuteError::Busy`] when its target replica's inbox
/// or deepest per-peer outbound queue holds more than this many
/// entries. Retries of an already-submitted command bypass the check —
/// rejecting them would break the exactly-once retry contract for no
/// gain (their slot is already paid for).
const DEFAULT_ADMISSION_HWM: usize = 65_536;

/// Configuration of a live cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    latency: LatencyMatrix,
    scale: f64,
    clock_offsets_us: Vec<i64>,
    batch: BatchPolicy,
    epoch: Option<Instant>,
    transport: ClusterTransport,
    retry_attempts: u32,
    retry_backoff: Duration,
    admission_hwm: usize,
    observe: Option<ObsConfig>,
}

impl ClusterConfig {
    /// A cluster over the given one-way latency matrix, full-scale delays,
    /// perfectly aligned clocks, batching disabled.
    pub fn new(latency: LatencyMatrix) -> Self {
        let n = latency.len();
        ClusterConfig {
            latency,
            scale: 1.0,
            clock_offsets_us: vec![0; n],
            batch: BatchPolicy::DISABLED,
            epoch: None,
            transport: ClusterTransport::InProcess,
            retry_attempts: 1,
            retry_backoff: Duration::from_millis(50),
            admission_hwm: DEFAULT_ADMISSION_HWM,
            observe: None,
        }
    }

    /// Turns on observability: a shared metrics [`Registry`] every node
    /// (and, over sockets, the transport) records into, plus a [`Tracer`]
    /// collecting per-command stage spans. Trace stamps carry monotonic
    /// microseconds since the cluster epoch — one timeline across all
    /// replica threads, unaffected by the configured per-node clock
    /// offsets. Off by default; read results with [`Cluster::metrics`]
    /// and [`Cluster::tracer`].
    pub fn observe(mut self, cfg: ObsConfig) -> Self {
        self.observe = Some(cfg);
        self
    }

    /// Sets how often [`Cluster::execute`] and [`ClusterSession::execute`]
    /// try a command before giving up, and the base backoff between
    /// attempts (attempt `k` sleeps `k * backoff`). Every attempt after
    /// the first resubmits the SAME command id, so a command whose first
    /// attempt actually committed — only the reply was lost — is
    /// recognised by the replicas' session tables and answered from the
    /// cached reply instead of being applied again. Defaults to one
    /// attempt (no retry).
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero.
    pub fn retries(mut self, attempts: u32, backoff: Duration) -> Self {
        assert!(attempts > 0, "at least one attempt is required");
        self.retry_attempts = attempts;
        self.retry_backoff = backoff;
        self
    }

    /// Sets the admission-control high-water mark (see
    /// [`ExecuteError::Busy`]). New commands are rejected while the
    /// target replica's inbox or deepest per-peer outbound socket queue
    /// exceeds `n` entries; retries are exempt.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn admission_high_water(mut self, n: usize) -> Self {
        assert!(n > 0, "admission high-water mark must be positive");
        self.admission_hwm = n;
        self
    }

    /// Selects the message plane (see [`ClusterTransport`]). Protocols,
    /// clients, and every other knob behave identically; socket modes
    /// additionally require `P::Msg: WireMsg`, which all protocols in
    /// this workspace implement.
    pub fn transport(mut self, transport: ClusterTransport) -> Self {
        self.transport = transport;
        self
    }

    /// Shares a clock epoch with other clusters: replica clocks read
    /// microseconds since `epoch` (plus their configured offset), so
    /// several clusters spawned with the same epoch form **one**
    /// loosely-synchronized clock domain — the prerequisite for
    /// timestamp-consistent cross-shard reads (`rsm-shard`). Defaults to
    /// the spawn instant.
    pub fn epoch(mut self, epoch: Instant) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Sets the request-coalescing policy: a node thread hands the
    /// protocol whatever requests are queued in its inbox (up to
    /// `max_batch`) as one batch, never waiting for more. An
    /// [adaptive](BatchPolicy::adaptive) policy moves the effective
    /// threshold with the observed inbox depth and reply latency
    /// (see `rsm_core::BatchController`).
    pub fn batch_policy(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Scales all emulated latencies (e.g. `0.1` = ten times faster than
    /// the real WAN, for quick demos and tests).
    pub fn scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Sets one replica's clock offset in microseconds (loose synchrony).
    pub fn clock_offset_us(mut self, replica: usize, offset: i64) -> Self {
        self.clock_offsets_us[replica] = offset;
        self
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.latency.len()
    }

    /// Whether the topology is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.latency.is_empty()
    }
}

/// A running cluster of replica threads plus the WAN-emulating network
/// thread and a reply router. See the crate-level example.
pub struct Cluster<P: Protocol + Send + 'static> {
    node_txs: Vec<Sender<NodeInput<P>>>,
    net_tx: Option<Sender<NetInput<P::Msg>>>,
    pending: Arc<Mutex<PendingMap>>,
    node_handles: Vec<JoinHandle<NodeReport>>,
    net_handle: Option<JoinHandle<()>>,
    listeners: Vec<Listener>,
    router_handle: JoinHandle<()>,
    /// Mints distinct client numbers (offset from [`CLIENT_BASE`]) so
    /// every API call / session owns its own per-client seq space.
    clients: AtomicU64,
    /// Per-replica, per-peer outbound socket-queue depth gauges (empty
    /// in process: the WAN emulator's channel is unbounded and drains
    /// centrally).
    outbound_depths: Vec<Vec<Gauge>>,
    retry_attempts: u32,
    retry_backoff: Duration,
    admission_hwm: usize,
    /// The shared metrics registry when observing.
    registry: Option<Registry>,
    /// The span collector when observing.
    tracer: Option<Tracer>,
}

/// A parked waiter for one in-flight command's reply.
struct PendingReply {
    tx: Sender<Reply>,
    /// When the waiter stops listening; expired entries are swept once
    /// the map grows past [`PENDING_SWEEP_MIN`].
    expires: Instant,
}

type PendingMap = HashMap<CommandId, PendingReply>;

impl<P: Protocol + Send + 'static> Cluster<P> {
    /// Spawns one thread per replica (protocols built by `factory`, state
    /// machines by `sm_factory`), the configured message plane, and the
    /// reply router.
    pub fn spawn(
        cfg: ClusterConfig,
        mut factory: impl FnMut(ReplicaId) -> P,
        sm_factory: impl Fn() -> Box<dyn StateMachine>,
    ) -> Self
    where
        P::Msg: WireMsg,
    {
        let n = cfg.len();
        let epoch = cfg.epoch.unwrap_or_else(Instant::now);
        let registry = cfg.observe.map(|_| Registry::new());
        let tracer = cfg.observe.map(Tracer::new);
        // Nodes ship reply *batches*: one channel send per drained
        // protocol callback, however many co-located clients it answered.
        let (reply_tx, reply_rx) = unbounded::<ReplyBatch>();

        let mut node_txs = Vec::with_capacity(n);
        let mut node_handles = Vec::with_capacity(n);
        let mut inbox_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<NodeInput<P>>();
            node_txs.push(tx);
            inbox_rxs.push(rx);
        }

        // The message plane: per-node outbound halves plus whatever
        // shared machinery the transport needs (the WAN-emulator thread
        // in process, bound listeners over sockets).
        let mut outbounds: Vec<Outbound<P>>;
        let mut outbound_depths: Vec<Vec<Gauge>> = vec![Vec::new(); n];
        let mut net_tx = None;
        let mut net_handle = None;
        let mut listeners = Vec::new();
        match cfg.transport {
            ClusterTransport::InProcess => {
                let (tx, net_rx) = unbounded();
                // The network thread forwards wires into node inboxes via
                // dedicated channels (a node input is either a wire or a
                // control).
                let mut wire_txs = Vec::with_capacity(n);
                #[allow(clippy::needless_range_loop)] // i pairs channels with replica ids
                for i in 0..n {
                    let (wtx, wrx) = unbounded();
                    wire_txs.push(wtx);
                    // Bridge thread: wrap wires as NodeInput::Msg.
                    let node_tx = node_txs[i].clone();
                    std::thread::spawn(move || {
                        while let Ok(w) = wrx.recv() {
                            if node_tx.send(NodeInput::Msg(w)).is_err() {
                                return;
                            }
                        }
                    });
                }
                let latency = cfg.latency.clone();
                let scale = cfg.scale;
                net_handle = Some(
                    std::thread::Builder::new()
                        .name("wan-emulator".to_string())
                        .spawn(move || run_network(latency, scale, net_rx, wire_txs))
                        .expect("spawn network thread"),
                );
                outbounds = (0..n).map(|_| Outbound::Wan(tx.clone())).collect();
                net_tx = Some(tx);
            }
            ClusterTransport::Tcp | ClusterTransport::Uds => {
                // Bind every listener before dialing anything: peers
                // learn each other's concrete endpoints (OS-assigned TCP
                // ports) from the bind results.
                let mut endpoints = Vec::with_capacity(n);
                for (i, node_tx) in node_txs.iter().enumerate() {
                    let ep = match cfg.transport {
                        ClusterTransport::Tcp => Endpoint::tcp_loopback(),
                        _ => Endpoint::uds_temp("cluster", i as u16),
                    };
                    let id = ReplicaId::new(i as u16);
                    let node_tx = node_tx.clone();
                    let metrics = match &registry {
                        Some(r) => TransportMetrics::register(r, i as u16),
                        None => TransportMetrics::default(),
                    };
                    let listener = Listener::bind_with_metrics(&ep, metrics, move |from, msg| {
                        let _ = node_tx.send(NodeInput::Msg(Wire { from, to: id, msg }));
                    })
                    .expect("bind cluster transport listener");
                    endpoints.push(listener.endpoint().clone());
                    listeners.push(listener);
                }
                outbounds = Vec::with_capacity(n);
                let mut depths = Vec::with_capacity(n);
                for (i, node_tx) in node_txs.iter().enumerate() {
                    let id = ReplicaId::new(i as u16);
                    let loop_tx = node_tx.clone();
                    let mut hub: Hub<P::Msg> = Hub::new(
                        id,
                        Box::new(move |msg| {
                            let _ = loop_tx.send(NodeInput::Msg(Wire {
                                from: id,
                                to: id,
                                msg,
                            }));
                        }),
                    );
                    if let Some(r) = &registry {
                        // Same cells as the listener's: `register` is
                        // idempotent per name, so send and receive sides
                        // share one `r<i>.transport.*` family.
                        hub.set_metrics(TransportMetrics::register(r, i as u16));
                    }
                    for (j, endpoint) in endpoints.iter().enumerate() {
                        if j == i {
                            continue;
                        }
                        let to = ReplicaId::new(j as u16);
                        let delay_us = (cfg.latency.one_way(id, to) as f64 * cfg.scale) as u64;
                        hub.add_peer(to, endpoint.clone(), Duration::from_micros(delay_us));
                    }
                    let gauges = hub.depth_gauges();
                    if let Some(r) = &registry {
                        for (peer, g) in &gauges {
                            r.register_gauge(
                                &format!("r{i}.transport.outq.{}", peer.as_u16()),
                                g.clone(),
                            );
                        }
                    }
                    depths.push(gauges.into_iter().map(|(_, g)| g).collect());
                    outbounds.push(Outbound::Socket(Box::new(hub)));
                }
                outbound_depths = depths;
            }
        }

        for ((i, inbox), outbound) in inbox_rxs.into_iter().enumerate().zip(outbounds) {
            let id = ReplicaId::new(i as u16);
            let harness = NodeHarness {
                id,
                proto: factory(id),
                sm: sm_factory(),
                log: Vec::new(),
                inbox,
                outbound,
                reply_tx: reply_tx.clone(),
                epoch,
                clock_offset_us: cfg.clock_offsets_us[i],
                batch: cfg.batch,
                obs: registry.as_ref().map(|r| NodeObs::new(r.clone(), i as u16)),
                tracer: tracer.clone(),
                poll_every: cfg.observe.map(|o| Duration::from_micros(o.poll_interval)),
            };
            node_handles.push(
                std::thread::Builder::new()
                    .name(format!("replica-{i}"))
                    .spawn(move || harness.run())
                    .expect("spawn replica thread"),
            );
        }

        let pending: Arc<Mutex<PendingMap>> = Arc::new(Mutex::new(HashMap::new()));
        let pending_for_router = Arc::clone(&pending);
        let tracer_for_router = tracer.clone();
        let router_handle = std::thread::Builder::new()
            .name("reply-router".to_string())
            .spawn(move || {
                while let Ok(batch) = reply_rx.recv() {
                    if let Some(t) = &tracer_for_router {
                        // The reply crossed back to the client side of
                        // the cluster — the span's terminal stage. A
                        // reply nobody waits for (the waiter timed out)
                        // still completes: the command's pipeline ran in
                        // full. Read replies are a no-op here (reads are
                        // untraced, so no span was ever begun).
                        let at = epoch.elapsed().as_micros() as u64;
                        for (id, _) in &batch {
                            t.complete(span_key(*id), TraceStage::Replied.index(), at);
                        }
                    }
                    let mut pending = pending_for_router.lock();
                    for (id, reply) in batch {
                        if let Some(p) = pending.remove(&id) {
                            let _ = p.tx.send(reply);
                        }
                    }
                }
            })
            .expect("spawn router thread");

        Cluster {
            node_txs,
            net_tx,
            pending,
            node_handles,
            net_handle,
            listeners,
            router_handle,
            clients: AtomicU64::new(0),
            outbound_depths,
            retry_attempts: cfg.retry_attempts,
            retry_backoff: cfg.retry_backoff,
            admission_hwm: cfg.admission_hwm,
            registry,
            tracer,
        }
    }

    /// A snapshot of the metrics registry, `None` unless the cluster was
    /// spawned with [`ClusterConfig::observe`]. Live reads are fine —
    /// counters are monotone and gauges single-writer — but for a final
    /// accounting snapshot after [`shutdown`](Cluster::shutdown), clone
    /// the registry handle first (shutdown consumes the cluster).
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.registry.as_ref().map(Registry::snapshot)
    }

    /// The shared metrics registry itself, when observing.
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// The span collector, when observing. Clone it to keep reading
    /// spans after shutdown.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Submits a command to `site` without waiting for the reply.
    pub fn submit(&self, site: ReplicaId, cmd: Command) {
        let _ = self.node_txs[site.index()].send(NodeInput::Request(cmd));
    }

    /// Crash-stops one replica: its thread exits immediately and every
    /// message still addressed to it is dropped on the floor. Peers keep
    /// their links up and simply stop hearing from it — exactly what a
    /// remote process kill looks like from the outside — so fail-over
    /// machinery (lease timeouts, elections) runs against a realistically
    /// silent peer. There is no restart path in the threaded runtime;
    /// recovery schedules live in the simnet suites. Commands submitted
    /// to a crashed site time out.
    pub fn crash(&self, site: ReplicaId) {
        let _ = self.node_txs[site.index()].send(NodeInput::Stop);
    }

    /// Submits an opaque state machine operation to `site` and blocks
    /// until its reply arrives or `timeout` elapses, retrying per the
    /// configured [`ClusterConfig::retries`] policy. Every retry reuses
    /// the SAME command id, so an attempt whose commit succeeded but
    /// whose reply was lost is answered from the replicas' session
    /// tables instead of being applied a second time.
    ///
    /// # Errors
    ///
    /// Returns `Err(ExecuteError::Timeout)` when no reply arrives within
    /// any attempt's deadline, and `Err(ExecuteError::Busy)` when
    /// admission control rejected the command before it was ever
    /// submitted (the replica is saturated; nothing was applied).
    pub fn execute(
        &self,
        site: ReplicaId,
        payload: Bytes,
        timeout: Duration,
    ) -> Result<Reply, ExecuteError> {
        self.roundtrip(site, payload, timeout, false, None)
    }

    /// Opens a client session against `site`: a handle owning its own
    /// [`ClientId`] and monotone sequence, whose
    /// [`execute`](ClusterSession::execute) retries with backoff under
    /// the SAME command id (exactly-once across reply loss), and whose
    /// [`retry_last`](ClusterSession::retry_last) deliberately
    /// re-submits the previous command to exercise the dedup path.
    pub fn session(&self, site: ReplicaId) -> ClusterSession<'_, P> {
        ClusterSession {
            cluster: self,
            site,
            session: ClientSession::new(self.mint_client(site)),
            last: None,
        }
    }

    /// Submits a **read-only** operation to `site` and blocks until its
    /// reply arrives or `timeout` elapses. The command is routed down
    /// the protocol's local read path (`rsm_core::read`) instead of the
    /// write batching pipeline: linearizable, served from the local
    /// replica once its stable prefix covers the read, and never held
    /// behind a batch flush threshold.
    ///
    /// # Errors
    ///
    /// Returns `Err(ExecuteError::Timeout)` when no reply arrives in
    /// time (e.g. the read was parked across a fault and lost; retry
    /// like any command).
    pub fn read(
        &self,
        site: ReplicaId,
        payload: Bytes,
        timeout: Duration,
    ) -> Result<Reply, ExecuteError> {
        self.roundtrip(site, payload, timeout, true, None)
    }

    /// Submits a read-only operation **pinned** to the cut timestamp
    /// `at` (microseconds in the cluster's clock domain — see
    /// [`ClusterConfig::epoch`]): under Clock-RSM the reply reflects
    /// exactly the writes with commit timestamp `≤ at`, the building
    /// block of cross-shard snapshot reads. Protocols without a shared
    /// timestamp domain ignore the pin and serve a plain linearizable
    /// read.
    ///
    /// # Errors
    ///
    /// Returns `Err(ExecuteError::Timeout)` when no reply arrives in
    /// time — including when the replica's applied state had already
    /// passed `at` (an exact answer is no longer possible; retry with a
    /// fresh cut).
    pub fn read_at(
        &self,
        site: ReplicaId,
        payload: Bytes,
        at: u64,
        timeout: Duration,
    ) -> Result<Reply, ExecuteError> {
        self.roundtrip(site, payload, timeout, true, Some(at))
    }

    /// Submits a pre-built command (caller-minted id) to `site` and
    /// blocks until its reply arrives or `timeout` elapses. The id's
    /// client number must stay below [`CLIENT_BASE`] (`0x4000_0000`),
    /// where the cluster's own minted ids start.
    ///
    /// # Errors
    ///
    /// Returns `Err(ExecuteError::Timeout)` when no reply arrives in
    /// time, and `Err(ExecuteError::Busy)` on admission rejection.
    pub fn execute_command(
        &self,
        site: ReplicaId,
        cmd: Command,
        timeout: Duration,
    ) -> Result<Reply, ExecuteError> {
        self.execute_attempt(site, cmd, timeout, false)
    }

    /// One submit-and-wait round. `retry` marks a re-submission of a
    /// command that may already have been applied: it bypasses admission
    /// control (its slot is already paid for) and relies on the
    /// replicas' session tables to convert a duplicate apply into the
    /// cached original reply.
    fn execute_attempt(
        &self,
        site: ReplicaId,
        cmd: Command,
        timeout: Duration,
        retry: bool,
    ) -> Result<Reply, ExecuteError> {
        if !retry {
            self.check_admission(site)?;
        }
        let id = cmd.id;
        let (tx, rx) = bounded(1);
        self.insert_pending(id, tx, timeout);
        self.submit(site, cmd);
        match rx.recv_timeout(timeout) {
            Ok(reply) => Ok(reply),
            Err(_) => {
                self.pending.lock().remove(&id);
                Err(ExecuteError::Timeout)
            }
        }
    }

    /// The configured retry loop around [`execute_attempt`]: same
    /// command id every time. A [`Busy`](ExecuteError::Busy) rejection
    /// means the command never entered the system, so the next attempt
    /// is still "new"; a timeout means it MAY have been applied, so
    /// every later attempt runs as a retry.
    fn execute_with_retry(
        &self,
        site: ReplicaId,
        cmd: Command,
        timeout: Duration,
    ) -> Result<Reply, ExecuteError> {
        let mut submitted = false;
        let mut attempt = 0u32;
        loop {
            let result = self.execute_attempt(site, cmd.clone(), timeout, submitted);
            let err = match result {
                Ok(reply) => return Ok(reply),
                Err(e) => e,
            };
            submitted |= err == ExecuteError::Timeout;
            attempt += 1;
            if attempt >= self.retry_attempts {
                return Err(err);
            }
            std::thread::sleep(self.retry_backoff * attempt);
        }
    }

    /// Rejects a new command when `site`'s inbox or deepest outbound
    /// socket queue is past the high-water mark.
    fn check_admission(&self, site: ReplicaId) -> Result<(), ExecuteError> {
        if self.node_txs[site.index()].len() > self.admission_hwm
            || gauge_max(&self.outbound_depths[site.index()]) > self.admission_hwm as i64
        {
            return Err(ExecuteError::Busy);
        }
        Ok(())
    }

    /// Registers a reply waiter, sweeping expired entries once the map
    /// is large: a waiter that disappeared without cleaning up (its
    /// entry was overwritten by a retry, or it panicked) must not leak
    /// its slot forever.
    fn insert_pending(&self, id: CommandId, tx: Sender<Reply>, timeout: Duration) {
        let now = Instant::now();
        let mut pending = self.pending.lock();
        if pending.len() >= PENDING_SWEEP_MIN {
            pending.retain(|_, p| p.expires > now);
        }
        pending.insert(
            id,
            PendingReply {
                tx,
                expires: now + timeout,
            },
        );
    }

    /// Mints a cluster-owned client id homed at `site` (see
    /// [`CLIENT_BASE`]).
    fn mint_client(&self, site: ReplicaId) -> ClientId {
        let n = self.clients.fetch_add(1, Ordering::Relaxed);
        ClientId::new(site, CLIENT_BASE.wrapping_add(n as u32))
    }

    fn roundtrip(
        &self,
        site: ReplicaId,
        payload: Bytes,
        timeout: Duration,
        read_only: bool,
        read_at: Option<u64>,
    ) -> Result<Reply, ExecuteError> {
        // One-shot session per call: a FRESH client id with seq 1, not a
        // shared client with a global seq. Replicas dedup per client by
        // highest applied seq, so two concurrent calls sharing one
        // client id could commit out of seq order and have the lower
        // seq dropped as stale.
        let id = CommandId::new(self.mint_client(site), 1);
        let cmd = match (read_only, read_at) {
            (true, Some(at)) => Command::read_at(id, payload, at),
            (true, None) => Command::read(id, payload),
            (false, _) => Command::new(id, payload),
        };
        self.execute_with_retry(site, cmd, timeout)
    }

    /// Stops every thread and returns the per-node final reports.
    pub fn shutdown(mut self) -> Vec<NodeReport> {
        for tx in &self.node_txs {
            let _ = tx.send(NodeInput::Stop);
        }
        // Joining the node threads drops their outbound halves: in
        // socket mode each hub's writer threads drain their queues,
        // flush, and exit before the join below returns.
        let reports: Vec<NodeReport> = self
            .node_handles
            .into_iter()
            .map(|h| h.join().expect("replica thread panicked"))
            .collect();
        if let Some(net_tx) = &self.net_tx {
            let _ = net_tx.send(NetInput::Stop);
        }
        if let Some(h) = self.net_handle.take() {
            let _ = h.join();
        }
        // Socket mode: with every peer's writers gone, stop accepting
        // and join the (EOF'd) readers.
        for listener in &mut self.listeners {
            listener.stop();
        }
        // Dropping node_txs/net_tx unblocks the bridge and router threads.
        drop(self.node_txs);
        drop(self.pending);
        let _ = self.router_handle;
        reports
    }
}

/// A client session bound to one [`Cluster`] site: the runtime driver's
/// face of the exactly-once contract (`rsm_core::session`).
///
/// The handle owns a [`ClientSession`] — a stable [`ClientId`] plus a
/// monotone per-client sequence — so every command it executes carries
/// an id the replicas' session tables can dedup on.
/// [`execute`](ClusterSession::execute) retries with backoff under the
/// SAME id when a reply is lost; [`retry_last`](ClusterSession::retry_last)
/// re-submits the previous command verbatim, which must come back with
/// the cached original reply rather than a second application.
pub struct ClusterSession<'a, P: Protocol + Send + 'static> {
    cluster: &'a Cluster<P>,
    site: ReplicaId,
    session: ClientSession,
    /// The most recent command, kept whole so a retry re-submits the
    /// identical (id, payload) pair.
    last: Option<Command>,
}

impl<P: Protocol + Send + 'static> ClusterSession<'_, P> {
    /// The session's stable client identity.
    pub fn client(&self) -> ClientId {
        self.session.client()
    }

    /// The site this session submits to.
    pub fn site(&self) -> ReplicaId {
        self.site
    }

    /// Executes `payload` under the session's next command id, retrying
    /// per the cluster's [`ClusterConfig::retries`] policy with the
    /// SAME id on every attempt.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Timeout`] when every attempt's deadline
    /// passed without a reply, and [`ExecuteError::Busy`] when
    /// admission control rejected the command before submission.
    pub fn execute(&mut self, payload: Bytes, timeout: Duration) -> Result<Reply, ExecuteError> {
        let cmd = Command::new(self.session.next_id(), payload);
        self.last = Some(cmd.clone());
        self.cluster.execute_with_retry(self.site, cmd, timeout)
    }

    /// Re-submits the session's previous command unchanged — a
    /// deliberate duplicate. The replicas' session tables recognise the
    /// already-applied seq and answer with the CACHED original reply;
    /// the state machine must not run the command again.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Timeout`] when no reply arrives in time.
    ///
    /// # Panics
    ///
    /// Panics if the session has not executed anything yet.
    pub fn retry_last(&self, timeout: Duration) -> Result<Reply, ExecuteError> {
        let cmd = self.last.clone().expect("no command to retry");
        self.cluster.execute_attempt(self.site, cmd, timeout, true)
    }
}

/// Errors from [`Cluster::execute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecuteError {
    /// No reply within the deadline. The command MAY still commit
    /// later; retry it under the same id (a [`ClusterSession`] does
    /// this automatically) so a late commit is never doubled.
    Timeout,
    /// Admission control rejected the command before it was submitted:
    /// the target replica's inbox or an outbound peer queue is past the
    /// configured high-water mark
    /// ([`ClusterConfig::admission_high_water`]). Nothing was applied;
    /// back off and resubmit as a new command.
    Busy,
}

impl std::fmt::Display for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::Timeout => write!(f, "no reply before the deadline"),
            ExecuteError::Busy => write!(f, "replica saturated: admission control rejected"),
        }
    }
}

impl std::error::Error for ExecuteError {}

#[cfg(test)]
mod tests {
    use super::*;
    use clock_rsm::{ClockRsm, ClockRsmConfig};
    use kvstore::{KvOp, KvStore};
    use mencius::MenciusBcast;
    use paxos::{MultiPaxos, PaxosVariant};
    use rsm_core::config::Membership;

    fn kv() -> Box<dyn StateMachine> {
        Box::new(KvStore::new())
    }

    #[test]
    fn clock_rsm_cluster_commits_from_all_sites() {
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000)).scale(0.02);
        let cluster = Cluster::spawn(
            cfg,
            |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
            kv,
        );
        for i in 0..3u16 {
            let reply = cluster
                .execute(
                    ReplicaId::new(i),
                    KvOp::put(format!("k{i}"), format!("v{i}")).encode(),
                    Duration::from_secs(10),
                )
                .expect("commit");
            assert_eq!(reply.result[0], 1);
        }
        // Read back through another site.
        let reply = cluster
            .execute(
                ReplicaId::new(0),
                KvOp::get("k2").encode(),
                Duration::from_secs(10),
            )
            .expect("commit");
        assert_eq!(&reply.result[1..], b"v2");
        // Fence: one read through EVERY site. Clock-RSM executes in
        // timestamp order, so each reply proves that site committed all
        // of the puts above (shutdown would otherwise race the trailing
        // commits at remote sites).
        for i in 0..3u16 {
            cluster
                .execute(
                    ReplicaId::new(i),
                    KvOp::get("k0").encode(),
                    Duration::from_secs(10),
                )
                .expect("fence read");
        }
        let reports = cluster.shutdown();
        // All replicas converged on the same state (reads don't mutate).
        assert!(reports.windows(2).all(|w| w[0].snapshot == w[1].snapshot));
        assert!(reports.iter().all(|r| r.commit_count >= 5));
    }

    #[test]
    fn local_reads_round_trip_on_every_protocol() {
        // One write, then a linearizable local read through every site,
        // for each protocol's read path (stable timestamp, leader lease
        // + quorum fallback, commit-watermark quorum). The read issues
        // after the write's reply, so it must observe the value.
        // Clock-RSM: reads at any replica.
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000)).scale(0.02);
        let cluster = Cluster::spawn(
            cfg,
            |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
            kv,
        );
        cluster
            .execute(
                ReplicaId::new(0),
                KvOp::put("rk", "rv").encode(),
                Duration::from_secs(10),
            )
            .expect("write");
        for i in 0..3u16 {
            let reply = cluster
                .read(
                    ReplicaId::new(i),
                    KvOp::get("rk").encode(),
                    Duration::from_secs(10),
                )
                .expect("local read");
            assert_eq!(&reply.result[..], b"\x01rv", "site {i} read stale");
        }
        cluster.shutdown();

        // Paxos-bcast: leader-local reads and follower quorum reads.
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000)).scale(0.02);
        let cluster = Cluster::spawn(
            cfg,
            |id| {
                MultiPaxos::new(
                    id,
                    Membership::uniform(3),
                    ReplicaId::new(0),
                    PaxosVariant::Bcast,
                )
            },
            kv,
        );
        cluster
            .execute(
                ReplicaId::new(1),
                KvOp::put("pk", "pv").encode(),
                Duration::from_secs(10),
            )
            .expect("write");
        for i in 0..3u16 {
            let reply = cluster
                .read(
                    ReplicaId::new(i),
                    KvOp::get("pk").encode(),
                    Duration::from_secs(10),
                )
                .expect("local read");
            assert_eq!(&reply.result[..], b"\x01pv", "site {i} read stale");
        }
        cluster.shutdown();

        // Mencius: commit-watermark quorum reads at any replica.
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000)).scale(0.02);
        let cluster = Cluster::spawn(cfg, |id| MenciusBcast::new(id, Membership::uniform(3)), kv);
        cluster
            .execute(
                ReplicaId::new(2),
                KvOp::put("mk", "mv").encode(),
                Duration::from_secs(10),
            )
            .expect("write");
        for i in 0..3u16 {
            let reply = cluster
                .read(
                    ReplicaId::new(i),
                    KvOp::get("mk").encode(),
                    Duration::from_secs(10),
                )
                .expect("local read");
            assert_eq!(&reply.result[..], b"\x01mv", "site {i} read stale");
        }
        cluster.shutdown();
    }

    #[test]
    fn paxos_bcast_cluster_round_trips() {
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 5_000)).scale(0.02);
        let cluster = Cluster::spawn(
            cfg,
            |id| {
                MultiPaxos::new(
                    id,
                    Membership::uniform(3),
                    ReplicaId::new(0),
                    PaxosVariant::Bcast,
                )
            },
            kv,
        );
        let reply = cluster
            .execute(
                ReplicaId::new(1),
                KvOp::put("a", "b").encode(),
                Duration::from_secs(10),
            )
            .expect("commit");
        assert_eq!(reply.result[0], 1);
        cluster.shutdown();
    }

    #[test]
    fn mencius_cluster_round_trips() {
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 5_000)).scale(0.02);
        let cluster = Cluster::spawn(cfg, |id| MenciusBcast::new(id, Membership::uniform(3)), kv);
        let reply = cluster
            .execute(
                ReplicaId::new(2),
                KvOp::put("x", "y").encode(),
                Duration::from_secs(10),
            )
            .expect("commit");
        assert_eq!(reply.result[0], 1);
        cluster.shutdown();
    }

    #[test]
    fn batched_cluster_absorbs_a_submit_burst() {
        use rsm_core::id::ClientId;

        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000))
            .scale(0.02)
            .batch_policy(BatchPolicy::max(8));
        let cluster = Cluster::spawn(
            cfg,
            |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
            kv,
        );
        // Fire-and-forget burst: these queue up in the node inbox and
        // coalesce into batches.
        for i in 0..20u64 {
            let id = CommandId::new(ClientId::new(ReplicaId::new(0), 99), i + 1);
            cluster.submit(
                ReplicaId::new(0),
                Command::new(id, KvOp::put(format!("burst{i}"), "v").encode()),
            );
        }
        // A blocking command behind the burst: Clock-RSM commits in
        // timestamp order, so its reply proves the whole burst committed
        // at the origin.
        let reply = cluster
            .execute(
                ReplicaId::new(0),
                KvOp::put("last", "v").encode(),
                Duration::from_secs(20),
            )
            .expect("commit after burst");
        assert_eq!(reply.result[0], 1);
        let reports = cluster.shutdown();
        assert_eq!(reports[0].commit_count, 21);
        // The origin's state machine holds every burst key.
        let mut expected = KvStore::new();
        for i in 0..20u64 {
            let id = CommandId::new(ClientId::new(ReplicaId::new(0), 99), i + 1);
            expected.apply(&Command::new(
                id,
                KvOp::put(format!("burst{i}"), "v").encode(),
            ));
        }
        let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), 999);
        expected.apply(&Command::new(id, KvOp::put("last", "v").encode()));
        assert_eq!(reports[0].snapshot, expected.snapshot());
    }

    #[test]
    fn adaptive_cluster_absorbs_a_submit_burst() {
        use rsm_core::id::ClientId;

        // Same burst as above under an adaptive policy: the controller
        // starts at threshold 1 and widens as the burst queues up; every
        // command must still commit exactly once.
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000))
            .scale(0.02)
            .batch_policy(BatchPolicy::adaptive(8));
        let cluster = Cluster::spawn(
            cfg,
            |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
            kv,
        );
        for i in 0..20u64 {
            let id = CommandId::new(ClientId::new(ReplicaId::new(0), 99), i + 1);
            cluster.submit(
                ReplicaId::new(0),
                Command::new(id, KvOp::put(format!("burst{i}"), "v").encode()),
            );
        }
        let reply = cluster
            .execute(
                ReplicaId::new(0),
                KvOp::put("last", "v").encode(),
                Duration::from_secs(20),
            )
            .expect("commit after burst");
        assert_eq!(reply.result[0], 1);
        let reports = cluster.shutdown();
        assert_eq!(reports[0].commit_count, 21);
    }

    #[test]
    fn clock_rsm_commits_from_all_sites_over_loopback_tcp() {
        // The in-process smoke test, verbatim, over real framed TCP
        // sockets: same protocol cores, same client API, same emulated
        // WAN delays — only the message plane changed.
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000))
            .scale(0.02)
            .transport(ClusterTransport::Tcp);
        let cluster = Cluster::spawn(
            cfg,
            |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
            kv,
        );
        for i in 0..3u16 {
            let reply = cluster
                .execute(
                    ReplicaId::new(i),
                    KvOp::put(format!("k{i}"), format!("v{i}")).encode(),
                    Duration::from_secs(10),
                )
                .expect("commit over tcp");
            assert_eq!(reply.result[0], 1);
        }
        // Linearizable local reads work over sockets too (they ride the
        // same ReadProbe/ReadMark messages through the codec).
        for i in 0..3u16 {
            let reply = cluster
                .read(
                    ReplicaId::new(i),
                    KvOp::get("k2").encode(),
                    Duration::from_secs(10),
                )
                .expect("local read over tcp");
            assert_eq!(&reply.result[1..], b"v2", "site {i} read stale");
        }
        let reports = cluster.shutdown();
        assert!(reports.windows(2).all(|w| w[0].snapshot == w[1].snapshot));
        assert!(reports.iter().all(|r| r.commit_count >= 3));
    }

    #[test]
    fn paxos_and_mencius_round_trip_over_loopback_tcp() {
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 5_000))
            .scale(0.02)
            .transport(ClusterTransport::Tcp);
        let cluster = Cluster::spawn(
            cfg,
            |id| {
                MultiPaxos::new(
                    id,
                    Membership::uniform(3),
                    ReplicaId::new(0),
                    PaxosVariant::Bcast,
                )
            },
            kv,
        );
        let reply = cluster
            .execute(
                ReplicaId::new(1),
                KvOp::put("a", "b").encode(),
                Duration::from_secs(10),
            )
            .expect("paxos commit over tcp");
        assert_eq!(reply.result[0], 1);
        cluster.shutdown();

        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 5_000))
            .scale(0.02)
            .transport(ClusterTransport::Tcp);
        let cluster = Cluster::spawn(cfg, |id| MenciusBcast::new(id, Membership::uniform(3)), kv);
        let reply = cluster
            .execute(
                ReplicaId::new(2),
                KvOp::put("x", "y").encode(),
                Duration::from_secs(10),
            )
            .expect("mencius commit over tcp");
        assert_eq!(reply.result[0], 1);
        cluster.shutdown();
    }

    #[test]
    fn batched_burst_commits_over_uds() {
        use rsm_core::id::ClientId;

        // The batched burst over Unix sockets: exercises the encode-once
        // broadcast cache (one PrepareBatch payload shared across both
        // peer links) under a real byte stream.
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000))
            .scale(0.02)
            .batch_policy(BatchPolicy::max(8))
            .transport(ClusterTransport::Uds);
        let cluster = Cluster::spawn(
            cfg,
            |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
            kv,
        );
        for i in 0..20u64 {
            let id = CommandId::new(ClientId::new(ReplicaId::new(0), 99), i + 1);
            cluster.submit(
                ReplicaId::new(0),
                Command::new(id, KvOp::put(format!("burst{i}"), "v").encode()),
            );
        }
        let reply = cluster
            .execute(
                ReplicaId::new(0),
                KvOp::put("last", "v").encode(),
                Duration::from_secs(20),
            )
            .expect("commit after burst over uds");
        assert_eq!(reply.result[0], 1);
        let reports = cluster.shutdown();
        assert_eq!(reports[0].commit_count, 21);
    }

    #[test]
    fn observed_cluster_records_metrics_and_spans() {
        // One observed run over real sockets: every layer's series must
        // land in the shared registry, and each write must leave one
        // completed span with ordered stamps.
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000))
            .scale(0.02)
            .transport(ClusterTransport::Tcp)
            .observe(ObsConfig::all());
        let cluster = Cluster::spawn(
            cfg,
            |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
            kv,
        );
        for i in 0..3u16 {
            cluster
                .execute(
                    ReplicaId::new(i),
                    KvOp::put(format!("k{i}"), "v").encode(),
                    Duration::from_secs(10),
                )
                .expect("commit");
        }
        // Reads are untraced and must not disturb the span stream.
        cluster
            .read(
                ReplicaId::new(0),
                KvOp::get("k1").encode(),
                Duration::from_secs(10),
            )
            .expect("read");
        let registry = cluster.registry().expect("observing").clone();
        let tracer = cluster.tracer().expect("observing").clone();
        cluster.shutdown();

        let snap = registry.snapshot();
        for r in 0..3 {
            assert!(
                snap.counters[&format!("r{r}.commands.executed")] >= 3,
                "replica {r} executed too few commands: {snap:?}"
            );
            assert!(snap.counters[&format!("r{r}.transport.frames_sent")] > 0);
            assert!(snap.counters[&format!("r{r}.transport.bytes_recv")] > 0);
        }
        assert!(snap.gauges.contains_key("r0.transport.outq.1"));
        assert!(snap.gauges.contains_key("r0.clock_rsm.stable_lag_us"));

        let done = tracer.completed();
        assert_eq!(done.len(), 3, "one span per write");
        for span in &done {
            let submitted = span
                .stage(TraceStage::Submitted.index())
                .expect("submitted");
            let committed = span
                .stage(TraceStage::Committed.index())
                .expect("committed");
            let replied = span.stage(TraceStage::Replied.index()).expect("replied");
            assert!(span.stage(TraceStage::Proposed.index()).is_some());
            assert!(span.stage(TraceStage::Replicated.index()).is_some());
            assert!(submitted <= committed && committed <= replied);
        }
        assert!(tracer.open_spans().is_empty(), "no dangling spans");
    }

    #[test]
    fn skewed_clocks_do_not_break_safety() {
        // 50 ms of skew vs 0.2 ms emulated one-way latency: the wait-out
        // path (Algorithm 1 line 8) gets exercised heavily.
        let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000))
            .scale(0.02)
            .clock_offset_us(0, 50_000)
            .clock_offset_us(2, -50_000);
        let cluster = Cluster::spawn(
            cfg,
            |id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
            kv,
        );
        for i in 0..6u16 {
            let site = ReplicaId::new(i % 3);
            let reply = cluster
                .execute(
                    site,
                    KvOp::put(format!("s{i}"), "v").encode(),
                    Duration::from_secs(20),
                )
                .expect("commit despite skew");
            assert_eq!(reply.result[0], 1);
        }
        // Fence reads so every site has provably executed all six puts
        // before shutdown (see clock_rsm_cluster_commits_from_all_sites).
        for i in 0..3u16 {
            cluster
                .execute(
                    ReplicaId::new(i),
                    KvOp::get("s0").encode(),
                    Duration::from_secs(20),
                )
                .expect("fence read");
        }
        let reports = cluster.shutdown();
        assert!(reports.windows(2).all(|w| w[0].snapshot == w[1].snapshot));
    }
}
