//! # rsm-runtime
//!
//! A **threaded real-time runtime** for the sans-io protocol cores: one OS
//! thread per replica, crossbeam channels as the transport, and a network
//! thread that delays every message by the configured wide-area latency
//! (optionally scaled down for fast tests).
//!
//! The discrete-event simulator (`simnet`) is where all experiments run;
//! this runtime exists to demonstrate that the *same* protocol
//! implementations — Clock-RSM, Paxos, Paxos-bcast, Mencius-bcast — run
//! unmodified outside virtual time, which is the point of the sans-io
//! design. The geo-replicated key-value store example (`geo_kvstore`)
//! uses it as a live deployment on one machine.
//!
//! Like the simulator, the runtime coalesces queued client requests into
//! protocol-level batches ([`ClusterConfig::batch_policy`]): a node
//! thread drains whatever requests sit in its inbox (up to `max_batch`,
//! never waiting for more) and hands them to the protocol as one batch.
//!
//! For scale-out, [`shard`] layers `N` independent clusters over one
//! partitioned key space sharing a single clock epoch, with
//! timestamp-consistent cross-shard snapshot reads under Clock-RSM (and
//! the honest per-shard linearizable fallback elsewhere).
//!
//! ## Example
//!
//! ```
//! use rsm_runtime::{Cluster, ClusterConfig};
//! use clock_rsm::{ClockRsm, ClockRsmConfig};
//! use kvstore::{KvOp, KvStore};
//! use rsm_core::{LatencyMatrix, Membership, ReplicaId};
//! use std::time::Duration;
//!
//! let cfg = ClusterConfig::new(LatencyMatrix::uniform(3, 10_000)).scale(0.05);
//! let cluster = Cluster::spawn(cfg, |id| {
//!     ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default())
//! }, || Box::new(KvStore::new()));
//!
//! let reply = cluster
//!     .execute(ReplicaId::new(0), KvOp::put("k", "v").encode(), Duration::from_secs(5))
//!     .expect("command should commit");
//! assert_eq!(reply.result[0], 1);
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod net;
pub mod node;
pub mod shard;

pub use cluster::{Cluster, ClusterConfig, ClusterSession, ClusterTransport, ExecuteError};
pub use shard::ShardedCluster;
