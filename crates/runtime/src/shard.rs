//! Sharded front-end: one live [`Cluster`] per keyspace shard.
//!
//! A [`ShardedCluster`] spawns `N` independent replication groups — each
//! a full [`Cluster`] with its own replica threads, network thread, and
//! batching — and routes single-key commands through an
//! [`rsm_shard::ShardMap`]. All groups share one clock **epoch**
//! ([`ClusterConfig::epoch`]): every replica clock reads microseconds
//! since the same instant (plus its configured offset), which makes the
//! Clock-RSM commit timestamps of different shards mutually comparable.
//!
//! That shared domain is what [`ShardedCluster::snapshot_read`] builds
//! on: it picks one cut timestamp `t` slightly in the future, issues one
//! pinned single-key `Get` per touched shard, and assembles the replies
//! into the global state at cut `t` (see the `rsm-shard` crate docs for
//! the invariant and why it is Clock-RSM-only). Under Paxos or Mencius
//! groups the pin is ignored and the same call degrades to independent
//! per-shard linearizable reads — no single cut across shards is
//! claimed.
//!
//! Reads (plain and snapshot parts) can be routed to a fixed replica via
//! [`ShardedCluster::route_reads_to`] — under Paxos that is the leader,
//! whose lease lets it answer locally instead of probing a quorum.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;

use rsm_core::command::{CommandId, Reply};
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::protocol::Protocol;
use rsm_core::sm::StateMachine;
use rsm_shard::{
    HashShardMap, ShardAccounting, ShardCounters, ShardMap, SnapshotCoordinator, SnapshotResult,
};

use crate::cluster::{Cluster, ClusterConfig, ExecuteError};
use crate::node::NodeReport;

/// The client number snapshot-part command ids are minted under; each
/// shard's own [`Cluster`] mints its ids under client number 0, so the
/// two spaces never collide.
const SNAPSHOT_CLIENT: u32 = 7;

/// `N` independent replication groups over one partitioned key space,
/// sharing a single clock domain.
pub struct ShardedCluster<P: Protocol + Send + 'static> {
    shards: Vec<Cluster<P>>,
    map: Box<dyn ShardMap + Send + Sync>,
    epoch: Instant,
    snapshot_lead: Duration,
    read_leader: Option<ReplicaId>,
    part_seq: AtomicU64,
    accounting: ShardAccounting,
}

impl<P: Protocol + Send + 'static> ShardedCluster<P> {
    /// Spawns `shards` independent clusters over the same topology
    /// (`cfg` is cloned per shard), all sharing one clock epoch. The
    /// factory receives `(shard, replica)` so each group gets its own
    /// protocol instances; keys are hash-partitioned by default
    /// ([`with_map`](Self::with_map) swaps the placement).
    pub fn spawn(
        cfg: ClusterConfig,
        shards: usize,
        mut factory: impl FnMut(usize, ReplicaId) -> P,
        sm_factory: impl Fn() -> Box<dyn StateMachine>,
    ) -> Self
    where
        P::Msg: rsm_core::wire::WireMsg,
    {
        assert!(shards > 0, "a sharded cluster needs at least one shard");
        let epoch = Instant::now();
        let mut groups = Vec::with_capacity(shards);
        for s in 0..shards {
            groups.push(Cluster::spawn(
                cfg.clone().epoch(epoch),
                |id| factory(s, id),
                &sm_factory,
            ));
        }
        ShardedCluster {
            shards: groups,
            map: Box::new(HashShardMap::new(shards)),
            epoch,
            snapshot_lead: Duration::from_millis(20),
            read_leader: None,
            part_seq: AtomicU64::new(0),
            accounting: ShardAccounting::new(shards),
        }
    }

    /// Replaces the key placement (e.g. an
    /// [`rsm_shard::RangeShardMap`]). Panics if the map's shard count
    /// differs from the cluster's.
    pub fn with_map(mut self, map: Box<dyn ShardMap + Send + Sync>) -> Self {
        assert_eq!(
            map.shards(),
            self.shards.len(),
            "shard map must cover exactly the spawned shards"
        );
        self.map = map;
        self
    }

    /// Routes every read — plain and snapshot part — to this replica
    /// instead of the caller's site. Under Paxos that is the leader:
    /// its lease lets it answer locally, where a follower would probe a
    /// quorum.
    pub fn route_reads_to(mut self, leader: ReplicaId) -> Self {
        self.read_leader = Some(leader);
        self
    }

    /// How far in the future snapshot cuts are pinned. The lead must
    /// cover the worst clock offset plus request delivery, or cuts land
    /// below already-applied state and the parts time out (the
    /// exactness guard drops them).
    pub fn snapshot_lead(mut self, lead: Duration) -> Self {
        self.snapshot_lead = lead;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.map.shard_of(key)
    }

    /// Microseconds since the shared clock epoch — the domain snapshot
    /// cuts and [`Cluster::read_at`] timestamps live in.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Submits a write of `key` to its owning shard via `site` and
    /// blocks for the reply.
    ///
    /// # Errors
    ///
    /// Returns `Err(ExecuteError::Timeout)` when no reply arrives in time.
    pub fn execute(
        &self,
        site: ReplicaId,
        key: &[u8],
        payload: Bytes,
        timeout: Duration,
    ) -> Result<Reply, ExecuteError> {
        let shard = self.shard_of(key);
        self.accounting.record_write(shard);
        self.shards[shard].execute(site, payload, timeout)
    }

    /// Submits a linearizable read of `key` to its owning shard and
    /// blocks for the reply. The read lands at the configured read
    /// target ([`route_reads_to`](Self::route_reads_to)) when one is
    /// set, else at `site`.
    ///
    /// # Errors
    ///
    /// Returns `Err(ExecuteError::Timeout)` when no reply arrives in time.
    pub fn read(
        &self,
        site: ReplicaId,
        key: &[u8],
        payload: Bytes,
        timeout: Duration,
    ) -> Result<Reply, ExecuteError> {
        let shard = self.shard_of(key);
        self.accounting.record_read(shard);
        let target = self.read_leader.unwrap_or(site);
        self.shards[shard].read(target, payload, timeout)
    }

    /// A multi-key read across shards: under Clock-RSM groups, a
    /// timestamp-consistent snapshot at one cut `t` (every value is the
    /// last write with commit timestamp `≤ t`); under Paxos/Mencius
    /// groups, the honest fallback of independent per-shard
    /// linearizable reads.
    ///
    /// The parts run sequentially — each blocks until its shard's
    /// stable timestamp passes the cut — so one call costs roughly the
    /// snapshot lead plus one read round-trip.
    ///
    /// # Errors
    ///
    /// Returns `Err(ExecuteError::Timeout)` when any part misses the
    /// deadline — including when a shard's applied state overtook the
    /// cut (an exact answer is no longer possible there). Retry the
    /// whole snapshot: the coordinator never reuses a cut, so a fresh
    /// call picks a fresh `t`.
    pub fn snapshot_read(
        &self,
        site: ReplicaId,
        keys: Vec<Bytes>,
        timeout: Duration,
    ) -> Result<SnapshotResult, ExecuteError> {
        let deadline = Instant::now() + timeout;
        let tagged: Vec<(usize, Bytes)> = keys
            .into_iter()
            .map(|k| (self.map.shard_of(&k), k))
            .collect();
        let issued = self.now_us();
        let at = issued + self.snapshot_lead.as_micros() as u64;
        let mut coord = SnapshotCoordinator::new();
        let (_token, cmds) = coord.begin(tagged, at, issued, || {
            let seq = self.part_seq.fetch_add(1, Ordering::Relaxed) + 1;
            CommandId::new(ClientId::new(site, SNAPSHOT_CLIENT), seq)
        });
        let target = self.read_leader.unwrap_or(site);
        let mut assembled = None;
        let shards: Vec<usize> = cmds.iter().map(|(s, _)| *s).collect();
        for (shard, cmd) in cmds {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let reply = self.shards[shard].execute_command(target, cmd, remaining)?;
            assembled = coord.on_reply(reply.id, &reply.result, self.now_us());
        }
        self.accounting.record_snapshot(&shards);
        Ok(assembled.expect("every part answered"))
    }

    /// Convenience wrapper over [`snapshot_read`](Self::snapshot_read)
    /// for the replicated key-value store: encodes each key as a `Get`
    /// and returns the per-key values at the cut (`None` = absent).
    ///
    /// # Errors
    ///
    /// Returns `Err(ExecuteError::Timeout)` as `snapshot_read` does.
    pub fn snapshot_get(
        &self,
        site: ReplicaId,
        keys: &[&[u8]],
        timeout: Duration,
    ) -> Result<Vec<Option<Bytes>>, ExecuteError> {
        let keys: Vec<Bytes> = keys.iter().map(|k| Bytes::copy_from_slice(k)).collect();
        let snap = self.snapshot_read(site, keys, timeout)?;
        Ok(snap.values)
    }

    /// The per-shard and aggregate operation tallies so far.
    pub fn accounting(&self) -> (Vec<ShardCounters>, ShardCounters) {
        (self.accounting.per_shard(), self.accounting.aggregate())
    }

    /// Stops every shard's replica threads and returns their final
    /// reports, one `Vec<NodeReport>` per shard.
    pub fn shutdown(self) -> Vec<Vec<NodeReport>> {
        self.shards.into_iter().map(Cluster::shutdown).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clock_rsm::{ClockRsm, ClockRsmConfig};
    use kvstore::{KvOp, KvStore};
    use mencius::MenciusBcast;
    use paxos::{MultiPaxos, PaxosVariant};
    use rsm_core::config::Membership;
    use rsm_core::matrix::LatencyMatrix;
    use rsm_shard::RangeShardMap;

    fn kv() -> Box<dyn StateMachine> {
        Box::new(KvStore::new())
    }

    fn quick_cfg() -> ClusterConfig {
        ClusterConfig::new(LatencyMatrix::uniform(3, 10_000)).scale(0.02)
    }

    const WAIT: Duration = Duration::from_secs(10);

    #[test]
    fn sharded_clock_rsm_routes_writes_and_snapshots_consistently() {
        let sc = ShardedCluster::spawn(
            quick_cfg(),
            2,
            |_, id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
            kv,
        );
        for i in 0..8u32 {
            let key = format!("k{i}");
            let reply = sc
                .execute(
                    ReplicaId::new((i % 3) as u16),
                    key.as_bytes(),
                    KvOp::put(key.clone(), format!("v{i}")).encode(),
                    WAIT,
                )
                .expect("write commits");
            assert_eq!(reply.result[0], 1);
        }
        // Single-key read routed by key, through another site.
        let reply = sc
            .read(ReplicaId::new(1), b"k3", KvOp::get("k3").encode(), WAIT)
            .expect("routed read");
        assert_eq!(&reply.result[..], b"\x01v3");
        // Cross-shard snapshot: every completed write is below the cut
        // (the cut is minted after their replies), so all must appear.
        let keys: Vec<&[u8]> = vec![
            b"k0", b"k1", b"k2", b"k3", b"k4", b"k5", b"k6", b"k7", b"ghost",
        ];
        let values = sc
            .snapshot_get(ReplicaId::new(0), &keys, WAIT)
            .expect("snapshot assembles");
        for (i, v) in values.iter().enumerate().take(8) {
            assert_eq!(
                v.as_deref(),
                Some(format!("v{i}").as_bytes()),
                "key k{i} missing from the cut"
            );
        }
        assert!(values[8].is_none(), "never-written key must be absent");
        let (per, agg) = sc.accounting();
        assert_eq!(agg.writes, 8);
        assert_eq!(agg.reads, 1);
        assert_eq!(agg.snapshot_parts, 9);
        assert_eq!(per.len(), 2);
        let reports = sc.shutdown();
        assert_eq!(reports.len(), 2);
        // Within each shard all replicas converge (reads don't mutate).
        for shard in &reports {
            assert!(shard.windows(2).all(|w| w[0].snapshot == w[1].snapshot));
        }
    }

    #[test]
    fn range_partitioned_runtime_routes_contiguous_blocks() {
        let map = RangeShardMap::uniform_u64(1_000, 2);
        let sc = ShardedCluster::spawn(
            quick_cfg(),
            2,
            |_, id| ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default()),
            kv,
        )
        .with_map(Box::new(map));
        // u64 big-endian keys: low half on shard 0, high half on shard 1.
        let lo = 10u64.to_be_bytes();
        let hi = 900u64.to_be_bytes();
        assert_eq!(sc.shard_of(&lo), 0);
        assert_eq!(sc.shard_of(&hi), 1);
        for key in [lo, hi] {
            let reply = sc
                .execute(
                    ReplicaId::new(0),
                    &key,
                    KvOp::put(Bytes::copy_from_slice(&key), "v").encode(),
                    WAIT,
                )
                .expect("write commits");
            assert_eq!(reply.result[0], 1);
        }
        let values = sc
            .snapshot_get(ReplicaId::new(2), &[&lo, &hi], WAIT)
            .expect("snapshot assembles");
        assert!(values.iter().all(|v| v.as_deref() == Some(b"v".as_ref())));
        sc.shutdown();
    }

    #[test]
    fn paxos_shards_fall_back_to_leader_routed_reads() {
        // Paxos groups: reads (and snapshot parts) routed to the leader,
        // whose lease answers locally. The multi-key read is the honest
        // fallback — per-shard linearizable, no cross-shard cut claimed.
        let sc = ShardedCluster::spawn(
            quick_cfg(),
            2,
            |_, id| {
                MultiPaxos::new(
                    id,
                    Membership::uniform(3),
                    ReplicaId::new(0),
                    PaxosVariant::Bcast,
                )
            },
            kv,
        )
        .route_reads_to(ReplicaId::new(0));
        sc.execute(
            ReplicaId::new(1),
            b"pa",
            KvOp::put("pa", "1").encode(),
            WAIT,
        )
        .expect("write commits");
        sc.execute(
            ReplicaId::new(2),
            b"pb",
            KvOp::put("pb", "2").encode(),
            WAIT,
        )
        .expect("write commits");
        // Issued from a follower site but served by the leader.
        let reply = sc
            .read(ReplicaId::new(2), b"pa", KvOp::get("pa").encode(), WAIT)
            .expect("leader-routed read");
        assert_eq!(&reply.result[..], b"\x011");
        let values = sc
            .snapshot_get(ReplicaId::new(1), &[b"pa", b"pb"], WAIT)
            .expect("fallback multi-read");
        assert_eq!(values[0].as_deref(), Some(b"1".as_ref()));
        assert_eq!(values[1].as_deref(), Some(b"2".as_ref()));
        sc.shutdown();
    }

    #[test]
    fn mencius_shards_serve_the_fallback_multi_read() {
        let sc = ShardedCluster::spawn(
            quick_cfg(),
            2,
            |_, id| MenciusBcast::new(id, Membership::uniform(3)),
            kv,
        );
        sc.execute(
            ReplicaId::new(0),
            b"ma",
            KvOp::put("ma", "x").encode(),
            WAIT,
        )
        .expect("write commits");
        let values = sc
            .snapshot_get(ReplicaId::new(1), &[b"ma", b"mz"], WAIT)
            .expect("fallback multi-read");
        assert_eq!(values[0].as_deref(), Some(b"x".as_ref()));
        assert!(values[1].is_none());
        sc.shutdown();
    }
}
