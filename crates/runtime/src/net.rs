//! The WAN-emulating network thread.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use rsm_core::id::ReplicaId;
use rsm_core::matrix::LatencyMatrix;

/// A message travelling between replicas.
#[derive(Debug)]
pub struct Wire<M> {
    /// Sender replica.
    pub from: ReplicaId,
    /// Destination replica.
    pub to: ReplicaId,
    /// The payload.
    pub msg: M,
}

pub(crate) enum NetInput<M> {
    Send(Wire<M>),
    Stop,
}

struct InFlight<M> {
    due: Instant,
    seq: u64,
    wire: Wire<M>,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Runs the network loop: receives sends, holds each message for the
/// link's one-way latency (scaled), then forwards it to the destination
/// node's inbox. Per-link FIFO follows from constant latency plus the
/// sequence tie-break.
pub(crate) fn run_network<M: Send + 'static>(
    latency: LatencyMatrix,
    scale: f64,
    rx: Receiver<NetInput<M>>,
    inboxes: Vec<Sender<Wire<M>>>,
) {
    let mut heap: BinaryHeap<Reverse<InFlight<M>>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(f)| f.due <= now) {
            let Reverse(flight) = heap.pop().expect("peeked");
            let to = flight.wire.to.index();
            // A dropped inbox means the node stopped; ignore.
            let _ = inboxes[to].send(flight.wire);
        }
        // Wait for the next send or the next due time.
        let input = match heap.peek() {
            Some(Reverse(f)) => {
                let timeout = f.due.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok(i) => i,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            None => match rx.recv() {
                Ok(i) => i,
                Err(_) => return,
            },
        };
        match input {
            NetInput::Send(wire) => {
                let one_way = latency.one_way(wire.from, wire.to);
                let delay = Duration::from_micros((one_way as f64 * scale) as u64);
                seq += 1;
                heap.push(Reverse(InFlight {
                    due: Instant::now() + delay,
                    seq,
                    wire,
                }));
            }
            NetInput::Stop => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn delivers_with_delay_and_in_order() {
        let latency = LatencyMatrix::uniform(2, 20_000); // 20 ms one-way
        let (tx, rx) = unbounded();
        let (in0, out0) = unbounded();
        let (in1, out1) = unbounded();
        let handle = std::thread::spawn(move || {
            run_network::<u32>(latency, 0.1, rx, vec![in0, in1]);
        });
        let start = Instant::now();
        for i in 0..5 {
            tx.send(NetInput::Send(Wire {
                from: ReplicaId::new(0),
                to: ReplicaId::new(1),
                msg: i,
            }))
            .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(out1.recv_timeout(Duration::from_secs(2)).unwrap().msg);
        }
        let elapsed = start.elapsed();
        assert_eq!(got, vec![0, 1, 2, 3, 4], "FIFO per link");
        assert!(elapsed >= Duration::from_millis(2), "scaled 2 ms delay");
        assert!(out0.is_empty());
        tx.send(NetInput::Stop).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn stops_on_disconnect() {
        let latency = LatencyMatrix::uniform(2, 1_000);
        let (tx, rx) = unbounded::<NetInput<u32>>();
        let (in0, _out0) = unbounded();
        let (in1, _out1) = unbounded();
        let handle = std::thread::spawn(move || {
            run_network::<u32>(latency, 1.0, rx, vec![in0, in1]);
        });
        drop(tx);
        handle.join().unwrap();
    }
}
