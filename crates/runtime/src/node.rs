//! The per-replica node thread.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};

use rsm_core::batch::{Batch, BatchController, BatchPolicy};
use rsm_core::command::{Command, CommandId, Committed, Reply};
use rsm_core::id::ReplicaId;
use rsm_core::obs::{names, span_key, TraceStage};
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::sm::StateMachine;
use rsm_core::time::{Micros, MonotonicStamper};

use rsm_obs::{NodeObs, Tracer};
use rsm_transport::MsgSink;

use crate::net::{NetInput, Wire};

/// Where a node's outbound peer messages go — decided once at cluster
/// spawn by the configured [`ClusterTransport`](crate::ClusterTransport).
pub(crate) enum Outbound<P: Protocol> {
    /// In-process transport: every message is a channel send to the
    /// WAN-emulator thread, which routes it to the destination inbox
    /// after the emulated delay.
    Wan(Sender<NetInput<P::Msg>>),
    /// Socket transport: messages are encoded once and framed onto
    /// per-peer TCP/UDS links by an `rsm_transport::Hub` (which also
    /// short-circuits self-sends back into this node's inbox).
    Socket(Box<dyn MsgSink<P::Msg>>),
}

/// Input to a node thread.
pub(crate) enum NodeInput<P: Protocol> {
    /// A peer message delivered by the network thread.
    Msg(Wire<P::Msg>),
    /// A client request routed to this (local) replica.
    Request(Command),
    /// Graceful shutdown; the thread answers with its final report.
    Stop,
}

/// What a node reports when it stops.
#[derive(Debug)]
pub struct NodeReport {
    /// The replica.
    pub id: ReplicaId,
    /// Commands executed over the node's lifetime.
    pub commit_count: u64,
    /// Final state machine snapshot.
    pub snapshot: Bytes,
    /// Number of stable log records written.
    pub log_len: usize,
}

/// A batch of replies to co-located clients, shipped as **one** channel
/// send per drained protocol callback instead of one send per reply —
/// the reply-path analogue of request batching.
pub(crate) type ReplyBatch = Vec<(CommandId, Reply)>;

/// Size at which the adaptive controller's drain-time map sheds entries
/// older than [`REQ_DRAINED_MAX_AGE`] — commands that never produced a
/// reply at this node (superseded, stale-dropped, retried) must not
/// accumulate forever in a long-lived node thread.
const REQ_DRAINED_CAP: usize = 4096;

/// Age past which an unanswered drain-time entry is presumed dead.
const REQ_DRAINED_MAX_AGE: Duration = Duration::from_secs(30);

pub(crate) struct NodeHarness<P: Protocol> {
    pub id: ReplicaId,
    pub proto: P,
    pub sm: Box<dyn StateMachine>,
    pub log: Vec<P::LogRec>,
    pub inbox: Receiver<NodeInput<P>>,
    pub outbound: Outbound<P>,
    pub reply_tx: Sender<ReplyBatch>,
    pub epoch: Instant,
    pub clock_offset_us: i64,
    pub batch: BatchPolicy,
    /// Metrics sink when the cluster observes (`ClusterConfig::observe`).
    pub obs: Option<NodeObs>,
    /// Span collector when the cluster observes. Trace stamps carry
    /// **monotonic microseconds since the cluster epoch** — the shared
    /// cross-node timeline — never the per-node skewed protocol clock.
    pub tracer: Option<Tracer>,
    /// How often `Protocol::obs_poll` runs (from `ObsConfig`); `None`
    /// when not observing.
    pub poll_every: Option<Duration>,
}

struct NodeCtx<'a, P: Protocol> {
    id: ReplicaId,
    epoch: Instant,
    clock_offset_us: i64,
    stamper: &'a mut MonotonicStamper,
    log: &'a mut Vec<P::LogRec>,
    sm: &'a mut dyn StateMachine,
    outbound: &'a mut Outbound<P>,
    /// Replies buffered during one protocol callback; the harness
    /// flushes them as one [`ReplyBatch`] when the callback returns.
    replies: &'a mut ReplyBatch,
    timers: &'a mut BinaryHeap<Reverse<(Instant, u64, TimerToken)>>,
    timer_seq: &'a mut u64,
    commit_count: &'a mut u64,
    suppress_replies: bool,
    obs: Option<&'a mut NodeObs>,
    tracer: Option<&'a Tracer>,
}

impl<'a, P: Protocol> NodeCtx<'a, P> {
    fn raw_clock(&self) -> Micros {
        let elapsed = self.epoch.elapsed().as_micros() as i64;
        (elapsed + self.clock_offset_us).max(0) as Micros
    }

    /// Monotonic micros since the cluster epoch — the trace-stamp
    /// timeline. Unlike [`raw_clock`](NodeCtx::raw_clock) it carries no
    /// per-node offset, so stamps from different replicas are
    /// comparable.
    fn mono_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl<'a, P: Protocol> Context<P> for NodeCtx<'a, P> {
    fn clock(&mut self) -> Micros {
        let raw = self.raw_clock();
        self.stamper.stamp(raw)
    }

    fn send(&mut self, to: ReplicaId, msg: P::Msg) {
        match &mut *self.outbound {
            Outbound::Wan(tx) => {
                let _ = tx.send(NetInput::Send(Wire {
                    from: self.id,
                    to,
                    msg,
                }));
            }
            Outbound::Socket(sink) => sink.send_msg(to, msg),
        }
    }

    fn log_append(&mut self, rec: P::LogRec) {
        self.log.push(rec);
    }

    fn log_rewrite(&mut self, recs: Vec<P::LogRec>) {
        *self.log = recs;
    }

    fn commit(&mut self, committed: Committed) -> Bytes {
        let result = self.sm.apply(&committed.cmd);
        *self.commit_count += 1;
        if let Some(o) = &mut self.obs {
            o.count(names::EXECUTED, 1);
        }
        if committed.origin == self.id && !self.suppress_replies {
            let id = committed.cmd.id;
            if let Some(t) = self.tracer {
                // Commit and execution are one synchronous step in this
                // runtime: the protocol decided the command and the state
                // machine applied it just above.
                let (key, at, me) = (span_key(id), self.mono_us(), self.id.as_u16());
                t.record_at_origin(key, me, TraceStage::Committed.index(), at);
                t.record_at_origin(key, me, TraceStage::Executed.index(), at);
            }
            self.replies.push((id, Reply::new(id, result.clone())));
        }
        result
    }

    fn set_timer(&mut self, after: Micros, token: TimerToken) {
        *self.timer_seq += 1;
        let due = Instant::now() + Duration::from_micros(after);
        self.timers.push(Reverse((due, *self.timer_seq, token)));
    }

    fn sm_snapshot(&mut self) -> Option<Bytes> {
        Some(self.sm.snapshot())
    }

    fn sm_install(&mut self, snapshot: Bytes) -> bool {
        self.sm.restore(&snapshot)
    }

    fn sm_read(&mut self, cmd: &Command) -> Option<Bytes> {
        self.sm.query(cmd)
    }

    fn send_reply(&mut self, reply: Reply) {
        if !self.suppress_replies {
            self.replies.push((reply.id, reply));
        }
    }

    fn obs_active(&self) -> bool {
        self.obs.is_some()
    }

    fn obs_count(&mut self, name: &'static str, delta: u64) {
        if let Some(o) = &mut self.obs {
            o.count(name, delta);
        }
    }

    fn obs_gauge(&mut self, name: &'static str, value: i64) {
        if let Some(o) = &mut self.obs {
            o.gauge(name, value);
        }
    }

    fn obs_gauge_idx(&mut self, name: &'static str, idx: ReplicaId, value: i64) {
        if let Some(o) = &mut self.obs {
            o.gauge_idx(name, idx.as_u16(), value);
        }
    }

    fn trace(&mut self, id: CommandId, stage: TraceStage) {
        if let Some(t) = self.tracer {
            t.record(span_key(id), stage.index(), self.mono_us());
        }
    }
}

impl<P: Protocol> NodeHarness<P> {
    /// The node thread body: dispatch messages, requests, and timers until
    /// asked to stop.
    pub(crate) fn run(mut self) -> NodeReport {
        let mut stamper = MonotonicStamper::new();
        let mut timers: BinaryHeap<Reverse<(Instant, u64, TimerToken)>> = BinaryHeap::new();
        let mut timer_seq = 0u64;
        let mut commit_count = 0u64;
        let mut replies: ReplyBatch = Vec::new();
        // Adaptive batching state: the controller picks the effective
        // flush threshold per drain (static policies pin it), fed by the
        // observed inbox depth and — via `req_drained` — the drain-to-
        // reply latency of this node's own clients' requests.
        let adaptive = self.batch.adaptive;
        let mut batcher = BatchController::new(self.batch);
        let mut req_drained: HashMap<CommandId, Instant> = HashMap::new();

        // Run one protocol callback, then flush every reply it produced
        // as ONE channel send (reply batching: co-located clients cost
        // one send per drained batch, not one per reply).
        macro_rules! dispatch {
            (|$c:ident| $body:expr) => {{
                {
                    let mut $c = NodeCtx {
                        id: self.id,
                        epoch: self.epoch,
                        clock_offset_us: self.clock_offset_us,
                        stamper: &mut stamper,
                        log: &mut self.log,
                        sm: self.sm.as_mut(),
                        outbound: &mut self.outbound,
                        replies: &mut replies,
                        timers: &mut timers,
                        timer_seq: &mut timer_seq,
                        commit_count: &mut commit_count,
                        suppress_replies: false,
                        obs: self.obs.as_mut(),
                        tracer: self.tracer.as_ref(),
                    };
                    $body;
                }
                if !replies.is_empty() {
                    if adaptive {
                        let now_us = self.epoch.elapsed().as_micros() as Micros;
                        for (id, _) in &replies {
                            if let Some(t0) = req_drained.remove(id) {
                                batcher.record_commit_latency(
                                    t0.elapsed().as_micros() as Micros,
                                    now_us,
                                );
                            }
                        }
                    }
                    let _ = self.reply_tx.send(std::mem::take(&mut replies));
                }
            }};
        }

        dispatch!(|c| self.proto.on_start(&mut c));

        // First sweep fires immediately so every gauge series exists
        // from node start (a short-lived cluster would otherwise
        // snapshot before the first interval elapses).
        let mut next_poll = self.poll_every.map(|_| Instant::now());

        loop {
            // Fire due timers first.
            let now = Instant::now();
            loop {
                let due = match timers.peek() {
                    Some(Reverse((due, _, _))) if *due <= now => *due,
                    _ => break,
                };
                let _ = due;
                let Reverse((_, _, token)) = timers.pop().expect("peeked");
                dispatch!(|c| self.proto.on_timer(token, &mut c));
            }

            // Periodic gauge poll (observing clusters only): ask the
            // protocol for its instantaneous state — stable-timestamp
            // lag, per-peer LatestTV staleness, ballot.
            if let (Some(every), Some(np)) = (self.poll_every, next_poll) {
                if Instant::now() >= np {
                    dispatch!(|c| self.proto.obs_poll(&mut c));
                    next_poll = Some(Instant::now() + every);
                }
            }

            // Sleep until the next timer or gauge poll, whichever is
            // sooner (forever when neither is pending).
            let timer_due = timers.peek().map(|Reverse((due, _, _))| *due);
            let deadline = match (timer_due, next_poll) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let input = match deadline {
                Some(due) => {
                    let timeout = due.saturating_duration_since(Instant::now());
                    match self.inbox.recv_timeout(timeout) {
                        Ok(i) => i,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match self.inbox.recv() {
                    Ok(i) => i,
                    Err(_) => break,
                },
            };

            match input {
                NodeInput::Msg(wire) => {
                    dispatch!(|c| self.proto.on_message(wire.from, wire.msg, &mut c));
                }
                NodeInput::Request(cmd) if cmd.read_only => {
                    // Reads bypass the batching pipeline entirely: a
                    // `Get` must never wait behind an adaptive flush
                    // threshold, and it carries no depth signal for the
                    // controller. Straight to the protocol's read path.
                    dispatch!(|c| self.proto.on_client_read(cmd, &mut c));
                }
                NodeInput::Request(cmd) => {
                    // Coalesce opportunistically: take whatever requests
                    // are already queued (up to the effective count
                    // threshold and byte budget) into one batch, never
                    // waiting for more. A non-request input ends the run
                    // and is handled right after, preserving arrival
                    // order. The queue length (requests plus messages —
                    // an upper bound on waiting requests, which is the
                    // best this side of the channel can observe) is the
                    // adaptive controller's depth signal.
                    batcher.begin_drain(1 + self.inbox.len());
                    if let Some(o) = &mut self.obs {
                        o.gauge(names::BATCH_THRESHOLD, batcher.effective_max_batch() as i64);
                    }
                    let mut bytes = cmd.size();
                    let mut cmds = vec![cmd];
                    let mut interrupt: Option<NodeInput<P>> = None;
                    while batcher.fits(cmds.len(), bytes) {
                        match self.inbox.try_recv() {
                            Ok(NodeInput::Request(c)) if !c.read_only => {
                                bytes += c.size();
                                cmds.push(c);
                            }
                            Ok(other) => {
                                // A read or a message ends the run (and
                                // is handled right after, preserving
                                // arrival order): reads never join
                                // batches.
                                interrupt = Some(other);
                                break;
                            }
                            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                        }
                    }
                    if adaptive {
                        let now = Instant::now();
                        // Entries normally leave via the reply-flush
                        // lookup, but a command may never reply at this
                        // node (superseded proposal, duplicate dropped
                        // as stale, client retried under a new id). The
                        // map is advisory latency telemetry, so when it
                        // grows past any plausible in-flight window we
                        // evict stale entries rather than leak forever —
                        // lost entries only cost latency samples.
                        if req_drained.len() >= REQ_DRAINED_CAP {
                            req_drained
                                .retain(|_, t0| now.duration_since(*t0) < REQ_DRAINED_MAX_AGE);
                        }
                        for c in &cmds {
                            req_drained.insert(c.id, now);
                        }
                    }
                    if let Some(t) = &self.tracer {
                        // Span origin: this node (the command's local
                        // replica). Reads never reach here — they skip
                        // the ordering pipeline the span describes.
                        let at = self.epoch.elapsed().as_micros() as u64;
                        for c in &cmds {
                            t.begin(span_key(c.id), self.id.as_u16(), at);
                        }
                    }
                    dispatch!(|c| self.proto.on_client_batch(Batch::new(cmds), &mut c));
                    match interrupt {
                        None => {}
                        Some(NodeInput::Msg(wire)) => {
                            dispatch!(|c| self.proto.on_message(wire.from, wire.msg, &mut c));
                        }
                        Some(NodeInput::Request(read)) => {
                            debug_assert!(read.read_only, "only reads interrupt a run");
                            dispatch!(|c| self.proto.on_client_read(read, &mut c));
                        }
                        Some(NodeInput::Stop) => break,
                    }
                }
                NodeInput::Stop => break,
            }
        }

        NodeReport {
            id: self.id,
            commit_count,
            snapshot: self.sm.snapshot(),
            log_len: self.log.len(),
        }
    }
}
