//! Keyspace sharding: scale-out over independent replication groups.
//!
//! One replication group totally orders *every* command, so its
//! throughput is bounded by one leader pipeline (Paxos), one round-robin
//! ring (Mencius), or one timestamp-ordered commit loop per replica
//! (Clock-RSM). This crate partitions the key space across `N`
//! independent groups — each with its own protocol instance, batching
//! controller, checkpointing, and read subsystem — and routes single-key
//! commands by key. Aggregate write throughput then scales with the
//! number of shards, because the groups share nothing.
//!
//! The pieces are deliberately driver-agnostic: a [`ShardMap`] decides
//! key placement (hash or range partitioning behind one trait), a
//! [`SnapshotCoordinator`] tracks multi-key reads in flight, and a
//! [`ShardAccounting`] tallies per-shard and aggregate load. The
//! simulation driver (`harness`) and the real-thread driver
//! (`rsm-runtime`) both build their sharded front-ends from these.
//!
//! # The cross-shard snapshot-read invariant
//!
//! A multi-key read touching several shards must not observe a *torn*
//! state — key `a` from before some transaction of writes and key `b`
//! from after it. The coordinator therefore picks one cut timestamp `t`
//! slightly in the future (covering clock skew plus request delivery),
//! splits the read into one pinned single-key `Get` per key, and parks
//! each on its shard's read queue at stamp `t`. Every shard serves its
//! part only once its **stable timestamp** — the floor below which no
//! new command can commit — has passed `t`, and serves it against the
//! state holding *exactly* the writes with timestamp `≤ t`. The
//! assembled result is then the one global state at cut `t`:
//!
//! > for every shard `s` and key `k` on `s`, the returned value of `k`
//! > is the last write to `k` with commit timestamp `≤ t`, where all
//! > shards use the same `t` from the same loosely-synchronized clock
//! > domain.
//!
//! # Why snapshot reads are Clock-RSM-only
//!
//! The invariant leans on two properties that only the Clock-RSM groups
//! provide:
//!
//! 1. **A shared order domain.** Clock-RSM orders commands by physical
//!    clock timestamp, so commit timestamps of *different* groups are
//!    mutually comparable — one `t` cuts every shard. Paxos instance
//!    numbers and Mencius slot numbers are per-group coordinates with no
//!    cross-group meaning; there is no `t` to agree on.
//! 2. **A stable-timestamp watermark.** Each Clock-RSM replica knows a
//!    floor below which its prefix is final, can hold a pinned read
//!    until the floor passes `t`, and applies writes in timestamp order
//!    with reads released exactly between them — so "state at `t`" is a
//!    well-defined, locally-servable thing.
//!
//! Paxos and Mencius shards get the honest fallback: a multi-key read
//! decomposes into **per-shard linearizable reads** that are *not* a
//! single cut across shards. Each part is individually linearizable
//! within its shard, and that is all the fallback claims.
//!
//! This mirrors the paper's positioning of loosely synchronized physical
//! clocks: beyond low-latency commit (the paper's subject), a shared
//! clock domain is exactly what makes cross-group consistency cheap.

pub mod map;
pub mod snapshot;
pub mod stats;

pub use map::{HashShardMap, RangeShardMap, ShardMap};
pub use snapshot::{SnapshotCoordinator, SnapshotResult};
pub use stats::{ShardAccounting, ShardCounters};
