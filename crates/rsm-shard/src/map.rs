//! Key placement: which shard owns a key.
//!
//! Hash and range partitioning behind one trait, so routers and drivers
//! are written once. Placement must be **stable** — both drivers route a
//! key's every command through `shard_of`, and a map that moved keys
//! between calls would split one key's history across groups.

use bytes::Bytes;

/// A total, stable assignment of keys to `0..shards()`.
pub trait ShardMap {
    /// Number of shards keys are spread over (at least 1).
    fn shards(&self) -> usize;

    /// The shard owning `key`. Must be deterministic and `< shards()`.
    fn shard_of(&self, key: &[u8]) -> usize;
}

/// Hash partitioning: FNV-1a over the key bytes, modulo the shard
/// count. Spreads any workload evenly; gives up range locality.
#[derive(Debug, Clone, Copy)]
pub struct HashShardMap {
    shards: usize,
}

impl HashShardMap {
    /// A hash map over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a shard map needs at least one shard");
        HashShardMap { shards }
    }
}

impl ShardMap for HashShardMap {
    fn shards(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        // FNV-1a, 64-bit: tiny, allocation-free, and plenty uniform for
        // placement (not a defense against adversarial keys).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards as u64) as usize
    }
}

/// Range partitioning: `splits` are the sorted exclusive lower bounds of
/// shards `1..`; keys below the first split land on shard 0. Keeps
/// adjacent keys together (scans, prefix locality) at the price of
/// hot-range imbalance.
#[derive(Debug, Clone)]
pub struct RangeShardMap {
    splits: Vec<Bytes>,
}

impl RangeShardMap {
    /// A range map with the given split points (must be strictly
    /// ascending); `splits.len() + 1` shards.
    ///
    /// # Panics
    ///
    /// Panics when the splits are not strictly ascending.
    pub fn new(splits: Vec<Bytes>) -> Self {
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "range splits must be strictly ascending"
        );
        RangeShardMap { splits }
    }

    /// Evenly splits a numeric key space of `key_space` big-endian `u64`
    /// keys over `shards` shards — the shape both drivers' workloads
    /// use.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or exceeds `key_space`.
    pub fn uniform_u64(key_space: u64, shards: usize) -> Self {
        assert!(shards > 0, "a shard map needs at least one shard");
        assert!(shards as u64 <= key_space, "more shards than keys");
        let per = key_space / shards as u64;
        let splits = (1..shards as u64)
            .map(|i| Bytes::from((i * per).to_be_bytes().to_vec()))
            .collect();
        RangeShardMap::new(splits)
    }
}

impl ShardMap for RangeShardMap {
    fn shards(&self) -> usize {
        self.splits.len() + 1
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        self.splits.partition_point(|s| s.as_ref() <= key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_map_is_stable_and_in_range() {
        let m = HashShardMap::new(8);
        for k in 0u64..1_000 {
            let key = k.to_be_bytes();
            let s = m.shard_of(&key);
            assert!(s < 8);
            assert_eq!(s, m.shard_of(&key), "placement must be stable");
        }
    }

    #[test]
    fn hash_map_spreads_keys_roughly_evenly() {
        let m = HashShardMap::new(4);
        let mut counts = [0usize; 4];
        for k in 0u64..4_000 {
            counts[m.shard_of(&k.to_be_bytes())] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((700..=1_300).contains(&c), "shard {s} got {c} of 4000 keys");
        }
    }

    #[test]
    fn range_map_respects_split_points() {
        let m = RangeShardMap::uniform_u64(100, 4);
        assert_eq!(m.shards(), 4);
        assert_eq!(m.shard_of(&0u64.to_be_bytes()), 0);
        assert_eq!(m.shard_of(&24u64.to_be_bytes()), 0);
        assert_eq!(m.shard_of(&25u64.to_be_bytes()), 1);
        assert_eq!(m.shard_of(&50u64.to_be_bytes()), 2);
        assert_eq!(m.shard_of(&99u64.to_be_bytes()), 3);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_splits_are_rejected() {
        RangeShardMap::new(vec![Bytes::from_static(b"b"), Bytes::from_static(b"a")]);
    }
}
