//! Cross-shard snapshot-read coordination.
//!
//! A multi-key read is split into one pinned single-key `Get` per key
//! (see [`Command::read_at`]), all carrying the same cut timestamp; the
//! coordinator tracks the outstanding parts and assembles the snapshot
//! when the last one answers. Abandon-and-retry is the caller's
//! responsibility: a lost part (crashed replica, reconfiguration) means
//! the *whole* snapshot retries under a fresh cut, because a stale cut
//! may already be below the shards' stable timestamps and thus no longer
//! exactly servable.

use std::collections::HashMap;

use bytes::Bytes;
use kvstore::KvOp;
use rsm_core::command::{Command, CommandId};
use rsm_core::time::Micros;

/// A fully assembled cross-shard snapshot read.
#[derive(Debug, Clone)]
pub struct SnapshotResult {
    /// Caller-visible handle returned by [`SnapshotCoordinator::begin`].
    pub token: u64,
    /// The cut timestamp every part was pinned to (µs, clock domain of
    /// the replicas).
    pub at: Micros,
    /// When the multi-key read was first issued (virtual/driver time).
    pub issued: Micros,
    /// When the last part's reply arrived.
    pub replied: Micros,
    /// The keys, in the order the caller passed them.
    pub keys: Vec<Bytes>,
    /// Per-key value at the cut (`None` = key absent at `t`).
    pub values: Vec<Option<Bytes>>,
    /// Per-key owning shard (parallel to `keys`).
    pub shards: Vec<usize>,
}

#[derive(Debug)]
struct InFlight {
    at: Micros,
    issued: Micros,
    keys: Vec<Bytes>,
    shards: Vec<usize>,
    values: Vec<Option<Option<Bytes>>>,
    remaining: usize,
}

/// Tracks multi-key snapshot reads in flight and assembles their parts.
#[derive(Debug, Default)]
pub struct SnapshotCoordinator {
    next_token: u64,
    /// Which (snapshot, part) a single-key command id belongs to.
    parts: HashMap<CommandId, (u64, usize)>,
    inflight: HashMap<u64, InFlight>,
}

impl SnapshotCoordinator {
    /// An empty coordinator.
    pub fn new() -> Self {
        SnapshotCoordinator::default()
    }

    /// Starts a snapshot read of `keys` (each tagged with its owning
    /// shard) at cut timestamp `at`. `next_id` mints one fresh
    /// [`CommandId`] per part. Returns the token identifying the read
    /// and the per-shard pinned `Get` commands to submit.
    pub fn begin(
        &mut self,
        keys: Vec<(usize, Bytes)>,
        at: Micros,
        issued: Micros,
        mut next_id: impl FnMut() -> CommandId,
    ) -> (u64, Vec<(usize, Command)>) {
        assert!(!keys.is_empty(), "a snapshot read needs at least one key");
        self.next_token += 1;
        let token = self.next_token;
        let mut cmds = Vec::with_capacity(keys.len());
        let mut shards = Vec::with_capacity(keys.len());
        let mut key_list = Vec::with_capacity(keys.len());
        for (part, (shard, key)) in keys.into_iter().enumerate() {
            let id = next_id();
            self.parts.insert(id, (token, part));
            cmds.push((
                shard,
                Command::read_at(id, KvOp::get(key.clone()).encode(), at),
            ));
            shards.push(shard);
            key_list.push(key);
        }
        let remaining = key_list.len();
        self.inflight.insert(
            token,
            InFlight {
                at,
                issued,
                keys: key_list,
                shards,
                values: vec![None; remaining],
                remaining,
            },
        );
        (token, cmds)
    }

    /// Records one part's reply (`result` in the kv store's reply
    /// encoding: status byte, then the value when found). Returns the
    /// assembled snapshot when this was the last outstanding part;
    /// replies for abandoned or unknown commands are ignored.
    pub fn on_reply(
        &mut self,
        id: CommandId,
        result: &Bytes,
        now: Micros,
    ) -> Option<SnapshotResult> {
        let (token, part) = self.parts.remove(&id)?;
        let read = self.inflight.get_mut(&token)?;
        if read.values[part].is_none() {
            read.remaining -= 1;
        }
        let value = match result.first() {
            Some(1) => Some(Bytes::copy_from_slice(&result[1..])),
            _ => None,
        };
        read.values[part] = Some(value);
        if read.remaining > 0 {
            return None;
        }
        let read = self.inflight.remove(&token).expect("completed read exists");
        Some(SnapshotResult {
            token,
            at: read.at,
            issued: read.issued,
            replied: now,
            keys: read.keys,
            values: read
                .values
                .into_iter()
                .map(|v| v.expect("all parts arrived"))
                .collect(),
            shards: read.shards,
        })
    }

    /// Abandons an in-flight read (timeout), returning its keys (with
    /// shards) so the caller can retry the whole snapshot under a fresh
    /// cut. Late replies to the abandoned parts are dropped silently.
    pub fn abandon(&mut self, token: u64) -> Option<Vec<(usize, Bytes)>> {
        let read = self.inflight.remove(&token)?;
        self.parts.retain(|_, &mut (t, _)| t != token);
        Some(read.shards.into_iter().zip(read.keys).collect())
    }

    /// Number of snapshot reads currently in flight.
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_core::id::{ClientId, ReplicaId};

    fn ids() -> impl FnMut() -> CommandId {
        let mut seq = 0;
        move || {
            seq += 1;
            CommandId::new(ClientId::new(ReplicaId::new(0), 7), seq)
        }
    }

    fn found(v: &[u8]) -> Bytes {
        let mut r = vec![1u8];
        r.extend_from_slice(v);
        Bytes::from(r)
    }

    #[test]
    fn parts_assemble_into_one_snapshot() {
        let mut c = SnapshotCoordinator::new();
        let keys = vec![(0, Bytes::from_static(b"a")), (2, Bytes::from_static(b"b"))];
        let (token, cmds) = c.begin(keys, 5_000, 100, ids());
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].0, 0);
        assert_eq!(cmds[1].0, 2);
        // Every part is a pinned read at the same cut.
        for (_, cmd) in &cmds {
            assert!(cmd.read_only);
            assert_eq!(cmd.read_at, Some(5_000));
        }
        assert!(c.on_reply(cmds[1].1.id, &found(b"vb"), 200).is_none());
        let snap = c
            .on_reply(cmds[0].1.id, &Bytes::from_static(&[0]), 250)
            .expect("complete");
        assert_eq!(snap.at, 5_000);
        assert_eq!(snap.issued, 100);
        assert_eq!(snap.replied, 250);
        assert_eq!(snap.values, vec![None, Some(Bytes::from_static(b"vb"))]);
        assert_eq!(snap.shards, vec![0, 2]);
        assert_eq!(token, snap.token);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn abandoned_reads_drop_late_replies_and_return_keys() {
        let mut c = SnapshotCoordinator::new();
        let keys = vec![(1, Bytes::from_static(b"x")), (3, Bytes::from_static(b"y"))];
        let (token, cmds) = c.begin(keys, 9_000, 10, ids());
        assert!(c.on_reply(cmds[0].1.id, &found(b"v"), 20).is_none());
        let retry = c.abandon(token).expect("was in flight");
        assert_eq!(
            retry,
            vec![(1, Bytes::from_static(b"x")), (3, Bytes::from_static(b"y"))]
        );
        // The straggler's reply no longer completes anything.
        assert!(c.on_reply(cmds[1].1.id, &found(b"v2"), 30).is_none());
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn concurrent_snapshots_do_not_interfere() {
        let mut c = SnapshotCoordinator::new();
        let mut mint = ids();
        let (_t1, c1) = c.begin(vec![(0, Bytes::from_static(b"a"))], 1_000, 1, &mut mint);
        let (_t2, c2) = c.begin(vec![(0, Bytes::from_static(b"a"))], 2_000, 2, &mut mint);
        assert_eq!(c.pending(), 2);
        let s2 = c
            .on_reply(c2[0].1.id, &found(b"late"), 40)
            .expect("second completes");
        assert_eq!(s2.at, 2_000);
        let s1 = c
            .on_reply(c1[0].1.id, &found(b"early"), 50)
            .expect("first completes");
        assert_eq!(s1.at, 1_000);
    }
}
