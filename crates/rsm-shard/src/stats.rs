//! Per-shard and aggregate load accounting.
//!
//! Both drivers route commands shard-by-shard; these counters make the
//! split observable — a sharded run reports how work spread over the
//! groups next to the aggregate, so imbalance (hot ranges under a
//! [`RangeShardMap`](crate::RangeShardMap)) is visible instead of
//! averaged away.

/// Operation tallies for one shard (or the aggregate over all shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Replicated write commands routed to the shard.
    pub writes: u64,
    /// Single-key linearizable reads routed to the shard.
    pub reads: u64,
    /// Snapshot-read parts (pinned single-key `Get`s) the shard served.
    pub snapshot_parts: u64,
}

/// Counters for a fixed set of shards plus snapshot-read totals.
#[derive(Debug, Clone)]
pub struct ShardAccounting {
    per_shard: Vec<ShardCounters>,
    /// Multi-key snapshot reads completed (not parts).
    pub snapshot_reads: u64,
    /// Whole-snapshot retries after a lost part.
    pub snapshot_retries: u64,
}

impl ShardAccounting {
    /// Accounting over `shards` shards.
    pub fn new(shards: usize) -> Self {
        ShardAccounting {
            per_shard: vec![ShardCounters::default(); shards],
            snapshot_reads: 0,
            snapshot_retries: 0,
        }
    }

    /// Records a write routed to `shard`.
    pub fn record_write(&mut self, shard: usize) {
        self.per_shard[shard].writes += 1;
    }

    /// Records a single-key read routed to `shard`.
    pub fn record_read(&mut self, shard: usize) {
        self.per_shard[shard].reads += 1;
    }

    /// Records the parts of one snapshot read, one count per touched
    /// shard occurrence.
    pub fn record_snapshot(&mut self, shards: &[usize]) {
        self.snapshot_reads += 1;
        for &s in shards {
            self.per_shard[s].snapshot_parts += 1;
        }
    }

    /// Records one whole-snapshot retry.
    pub fn record_snapshot_retry(&mut self) {
        self.snapshot_retries += 1;
    }

    /// The per-shard tallies.
    pub fn per_shard(&self) -> &[ShardCounters] {
        &self.per_shard
    }

    /// Sums over every shard.
    pub fn aggregate(&self) -> ShardCounters {
        let mut agg = ShardCounters::default();
        for c in &self.per_shard {
            agg.writes += c.writes;
            agg.reads += c.reads;
            agg.snapshot_parts += c.snapshot_parts;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_split_and_aggregate() {
        let mut a = ShardAccounting::new(3);
        a.record_write(0);
        a.record_write(0);
        a.record_read(1);
        a.record_snapshot(&[0, 2]);
        a.record_snapshot_retry();
        assert_eq!(a.per_shard()[0].writes, 2);
        assert_eq!(a.per_shard()[1].reads, 1);
        assert_eq!(a.per_shard()[0].snapshot_parts, 1);
        assert_eq!(a.per_shard()[2].snapshot_parts, 1);
        assert_eq!(a.snapshot_reads, 1);
        assert_eq!(a.snapshot_retries, 1);
        let agg = a.aggregate();
        assert_eq!(agg.writes, 2);
        assert_eq!(agg.reads, 1);
        assert_eq!(agg.snapshot_parts, 2);
    }
}
