//! Per-shard and aggregate load accounting.
//!
//! Both drivers route commands shard-by-shard; these counters make the
//! split observable — a sharded run reports how work spread over the
//! groups next to the aggregate, so imbalance (hot ranges under a
//! [`RangeShardMap`](crate::RangeShardMap)) is visible instead of
//! averaged away.
//!
//! The tallies live in `rsm-obs` [`Counter`] cells — lock-free shared
//! atomics, recordable through `&self` from any router thread. By
//! default they sit in a private [`Registry`]; pass a shared one to
//! [`ShardAccounting::in_registry`] and the same cells also appear in
//! that registry's snapshots as `shard<s>.writes` / `shard<s>.reads` /
//! `shard<s>.snapshot_parts` plus the aggregate `shard.snapshot_reads`
//! and `shard.snapshot_retries`.

use rsm_obs::{Counter, Registry};

/// Operation tallies for one shard (or the aggregate over all shards) —
/// a point-in-time copy read out of the live counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Replicated write commands routed to the shard.
    pub writes: u64,
    /// Single-key linearizable reads routed to the shard.
    pub reads: u64,
    /// Snapshot-read parts (pinned single-key `Get`s) the shard served.
    pub snapshot_parts: u64,
}

#[derive(Debug, Clone)]
struct ShardCells {
    writes: Counter,
    reads: Counter,
    snapshot_parts: Counter,
}

/// Counters for a fixed set of shards plus snapshot-read totals.
/// Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct ShardAccounting {
    per_shard: Vec<ShardCells>,
    snapshot_reads: Counter,
    snapshot_retries: Counter,
}

impl ShardAccounting {
    /// Accounting over `shards` shards in a private registry.
    pub fn new(shards: usize) -> Self {
        Self::in_registry(&Registry::new(), shards)
    }

    /// Accounting over `shards` shards whose cells live in `registry`,
    /// so the tallies show up in its snapshots alongside everything
    /// else recorded there.
    pub fn in_registry(registry: &Registry, shards: usize) -> Self {
        ShardAccounting {
            per_shard: (0..shards)
                .map(|s| ShardCells {
                    writes: registry.counter(&format!("shard{s}.writes")),
                    reads: registry.counter(&format!("shard{s}.reads")),
                    snapshot_parts: registry.counter(&format!("shard{s}.snapshot_parts")),
                })
                .collect(),
            snapshot_reads: registry.counter("shard.snapshot_reads"),
            snapshot_retries: registry.counter("shard.snapshot_retries"),
        }
    }

    /// Records a write routed to `shard`.
    pub fn record_write(&self, shard: usize) {
        self.per_shard[shard].writes.inc();
    }

    /// Records a single-key read routed to `shard`.
    pub fn record_read(&self, shard: usize) {
        self.per_shard[shard].reads.inc();
    }

    /// Records the parts of one snapshot read, one count per touched
    /// shard occurrence.
    pub fn record_snapshot(&self, shards: &[usize]) {
        self.snapshot_reads.inc();
        for &s in shards {
            self.per_shard[s].snapshot_parts.inc();
        }
    }

    /// Records one whole-snapshot retry.
    pub fn record_snapshot_retry(&self) {
        self.snapshot_retries.inc();
    }

    /// A copy of the per-shard tallies.
    pub fn per_shard(&self) -> Vec<ShardCounters> {
        self.per_shard
            .iter()
            .map(|c| ShardCounters {
                writes: c.writes.get(),
                reads: c.reads.get(),
                snapshot_parts: c.snapshot_parts.get(),
            })
            .collect()
    }

    /// Multi-key snapshot reads completed (not parts).
    pub fn snapshot_reads(&self) -> u64 {
        self.snapshot_reads.get()
    }

    /// Whole-snapshot retries after a lost part.
    pub fn snapshot_retries(&self) -> u64 {
        self.snapshot_retries.get()
    }

    /// Sums over every shard.
    pub fn aggregate(&self) -> ShardCounters {
        let mut agg = ShardCounters::default();
        for c in self.per_shard() {
            agg.writes += c.writes;
            agg.reads += c.reads;
            agg.snapshot_parts += c.snapshot_parts;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_split_and_aggregate() {
        let a = ShardAccounting::new(3);
        a.record_write(0);
        a.record_write(0);
        a.record_read(1);
        a.record_snapshot(&[0, 2]);
        a.record_snapshot_retry();
        assert_eq!(a.per_shard()[0].writes, 2);
        assert_eq!(a.per_shard()[1].reads, 1);
        assert_eq!(a.per_shard()[0].snapshot_parts, 1);
        assert_eq!(a.per_shard()[2].snapshot_parts, 1);
        assert_eq!(a.snapshot_reads(), 1);
        assert_eq!(a.snapshot_retries(), 1);
        let agg = a.aggregate();
        assert_eq!(agg.writes, 2);
        assert_eq!(agg.reads, 1);
        assert_eq!(agg.snapshot_parts, 2);
    }

    #[test]
    fn registry_backed_cells_surface_in_snapshots() {
        let reg = Registry::new();
        let a = ShardAccounting::in_registry(&reg, 2);
        a.record_write(1);
        a.record_snapshot(&[0, 1]);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["shard1.writes"], 1);
        assert_eq!(snap.counters["shard0.snapshot_parts"], 1);
        assert_eq!(snap.counters["shard.snapshot_reads"], 1);
    }
}
