//! Key-value operations and their binary wire format.

use bytes::{BufMut, Bytes, BytesMut};

/// An operation on the replicated key-value store.
///
/// Encoded into a [`Command`] payload with a compact hand-rolled binary
/// format (tag byte, length-prefixed key, optional length-prefixed value),
/// standing in for the paper's Protocol Buffers encoding.
///
/// [`Command`]: rsm_core::Command
///
/// # Examples
///
/// ```
/// use kvstore::KvOp;
/// let op = KvOp::put("user:7", "alice");
/// let bytes = op.encode();
/// assert_eq!(KvOp::decode(&bytes).unwrap(), op);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Set `key` to `value`.
    Put {
        /// The key to write.
        key: Bytes,
        /// The value to store.
        value: Bytes,
    },
    /// Read the current value of `key`.
    Get {
        /// The key to read.
        key: Bytes,
    },
    /// Remove `key`.
    Delete {
        /// The key to remove.
        key: Bytes,
    },
    /// Compare-and-swap: set `key` to `value` only if its current value
    /// equals `expect` (`None` = key must be absent). The sharpest probe
    /// of linearizability: any reordering or duplicate execution breaks a
    /// CAS chain.
    Cas {
        /// The key to update.
        key: Bytes,
        /// Required current value (`None` = absent).
        expect: Option<Bytes>,
        /// The new value on success.
        value: Bytes,
    },
}

const TAG_PUT: u8 = 1;
const TAG_GET: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_CAS_ABSENT: u8 = 4;
const TAG_CAS_PRESENT: u8 = 5;

/// Error returned when a payload is not a valid encoded [`KvOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError;

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed key-value operation payload")
    }
}

impl std::error::Error for DecodeError {}

impl KvOp {
    /// Convenience constructor for a `Put`.
    pub fn put(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        KvOp::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for a `Get`.
    pub fn get(key: impl Into<Bytes>) -> Self {
        KvOp::Get { key: key.into() }
    }

    /// Convenience constructor for a `Delete`.
    pub fn delete(key: impl Into<Bytes>) -> Self {
        KvOp::Delete { key: key.into() }
    }

    /// Convenience constructor for a `Cas`.
    pub fn cas(key: impl Into<Bytes>, expect: Option<Bytes>, value: impl Into<Bytes>) -> Self {
        KvOp::Cas {
            key: key.into(),
            expect,
            value: value.into(),
        }
    }

    /// Encodes the operation into a command payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            KvOp::Put { key, value } => {
                buf.put_u8(TAG_PUT);
                put_chunk(&mut buf, key);
                put_chunk(&mut buf, value);
            }
            KvOp::Get { key } => {
                buf.put_u8(TAG_GET);
                put_chunk(&mut buf, key);
            }
            KvOp::Delete { key } => {
                buf.put_u8(TAG_DELETE);
                put_chunk(&mut buf, key);
            }
            KvOp::Cas { key, expect, value } => match expect {
                None => {
                    buf.put_u8(TAG_CAS_ABSENT);
                    put_chunk(&mut buf, key);
                    put_chunk(&mut buf, value);
                }
                Some(e) => {
                    buf.put_u8(TAG_CAS_PRESENT);
                    put_chunk(&mut buf, key);
                    put_chunk(&mut buf, e);
                    put_chunk(&mut buf, value);
                }
            },
        }
        buf.freeze()
    }

    /// Decodes an operation from a command payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the payload is truncated, has an unknown
    /// tag, or carries trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let (&tag, mut rest) = payload.split_first().ok_or(DecodeError)?;
        let op = match tag {
            TAG_PUT => {
                let key = take_chunk(&mut rest)?;
                let value = take_chunk(&mut rest)?;
                KvOp::Put { key, value }
            }
            TAG_GET => KvOp::Get {
                key: take_chunk(&mut rest)?,
            },
            TAG_DELETE => KvOp::Delete {
                key: take_chunk(&mut rest)?,
            },
            TAG_CAS_ABSENT => KvOp::Cas {
                key: take_chunk(&mut rest)?,
                expect: None,
                value: take_chunk(&mut rest)?,
            },
            TAG_CAS_PRESENT => KvOp::Cas {
                key: take_chunk(&mut rest)?,
                expect: Some(take_chunk(&mut rest)?),
                value: take_chunk(&mut rest)?,
            },
            _ => return Err(DecodeError),
        };
        if rest.is_empty() {
            Ok(op)
        } else {
            Err(DecodeError)
        }
    }

    /// The key this operation touches.
    pub fn key(&self) -> &Bytes {
        match self {
            KvOp::Put { key, .. }
            | KvOp::Get { key }
            | KvOp::Delete { key }
            | KvOp::Cas { key, .. } => key,
        }
    }

    /// Whether this operation writes (put/delete/cas) rather than reads.
    pub fn is_write(&self) -> bool {
        !matches!(self, KvOp::Get { .. })
    }
}

fn put_chunk(buf: &mut BytesMut, chunk: &Bytes) {
    buf.put_u32(chunk.len() as u32);
    buf.put_slice(chunk);
}

fn take_chunk(rest: &mut &[u8]) -> Result<Bytes, DecodeError> {
    if rest.len() < 4 {
        return Err(DecodeError);
    }
    let (len_bytes, tail) = rest.split_at(4);
    let len = u32::from_be_bytes(len_bytes.try_into().unwrap()) as usize;
    if tail.len() < len {
        return Err(DecodeError);
    }
    let (chunk, tail) = tail.split_at(len);
    *rest = tail;
    Ok(Bytes::copy_from_slice(chunk))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        for op in [
            KvOp::put("k", "v"),
            KvOp::get("k"),
            KvOp::delete("k"),
            KvOp::put("", ""),
            KvOp::put("key", vec![0u8; 1000]),
            KvOp::cas("k", None, "v0"),
            KvOp::cas("k", Some(Bytes::from_static(b"v0")), "v1"),
        ] {
            assert_eq!(KvOp::decode(&op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(KvOp::decode(&[]), Err(DecodeError));
        assert_eq!(KvOp::decode(&[9, 0, 0, 0, 0]), Err(DecodeError));
        assert_eq!(KvOp::decode(&[TAG_GET, 0, 0, 0, 5, b'a']), Err(DecodeError));
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = KvOp::get("k").encode().to_vec();
        bytes.push(0);
        assert_eq!(KvOp::decode(&bytes), Err(DecodeError));
    }

    #[test]
    fn key_and_is_write() {
        assert!(KvOp::put("a", "b").is_write());
        assert!(KvOp::delete("a").is_write());
        assert!(!KvOp::get("a").is_write());
        assert_eq!(KvOp::get("a").key().as_ref(), b"a");
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_random(key in proptest::collection::vec(any::<u8>(), 0..64),
                                value in proptest::collection::vec(any::<u8>(), 0..256),
                                which in 0u8..3) {
                let op = match which {
                    0 => KvOp::put(key.clone(), value),
                    1 => KvOp::get(key.clone()),
                    _ => KvOp::delete(key.clone()),
                };
                prop_assert_eq!(KvOp::decode(&op.encode()).unwrap(), op);
            }

            #[test]
            fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
                let _ = KvOp::decode(&bytes);
            }
        }
    }
}
