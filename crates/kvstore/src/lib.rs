//! # kvstore
//!
//! The replicated **in-memory key-value store** used throughout the
//! Clock-RSM evaluation (Section VI-A of the paper): clients send commands
//! that update the value of a randomly selected key; the replication
//! protocols order and execute them on every replica.
//!
//! The store is a deterministic [`StateMachine`]: applying the same command
//! sequence always yields the same state and outputs, which the test suite
//! uses to assert replica convergence.
//!
//! [`StateMachine`]: rsm_core::StateMachine
//!
//! ## Example
//!
//! ```
//! use kvstore::{KvOp, KvStore};
//! use rsm_core::{Command, CommandId, ClientId, ReplicaId, StateMachine};
//!
//! let mut store = KvStore::new();
//! let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1);
//! let put = Command::new(id, KvOp::put("k", "v1").encode());
//! store.apply(&put);
//!
//! let id2 = CommandId::new(ClientId::new(ReplicaId::new(0), 0), 2);
//! let get = Command::new(id2, KvOp::get("k").encode());
//! let out = store.apply(&get);
//! assert_eq!(&out[1..], b"v1"); // first byte: found flag
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod op;
pub mod store;

pub use op::KvOp;
pub use store::KvStore;
