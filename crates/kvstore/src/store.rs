//! The in-memory key-value store state machine.

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes, BytesMut};

use rsm_core::command::Command;
use rsm_core::sm::StateMachine;

use crate::op::KvOp;

/// A deterministic in-memory key-value store, the replicated state machine
/// of the paper's evaluation.
///
/// Reply format: one status byte (`1` = found / applied, `0` = not found /
/// malformed) followed by the read value for `Get`.
///
/// # Examples
///
/// ```
/// use kvstore::{KvOp, KvStore};
/// use rsm_core::{Command, CommandId, ClientId, ReplicaId, StateMachine};
///
/// let mut store = KvStore::new();
/// let cid = ClientId::new(ReplicaId::new(0), 0);
/// store.apply(&Command::new(CommandId::new(cid, 1), KvOp::put("a", "1").encode()));
/// let out = store.apply(&Command::new(CommandId::new(cid, 2), KvOp::get("a").encode()));
/// assert_eq!(out[0], 1);
/// assert_eq!(&out[1..], b"1");
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct KvStore {
    map: BTreeMap<Bytes, Bytes>,
    applied: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of commands applied since creation (or the last reset).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Reads a value directly (test observability; not part of the
    /// replicated interface).
    pub fn get(&self, key: &[u8]) -> Option<&Bytes> {
        self.map.get(key)
    }
}

impl StateMachine for KvStore {
    fn apply(&mut self, cmd: &Command) -> Bytes {
        self.applied += 1;
        match KvOp::decode(&cmd.payload) {
            Ok(KvOp::Put { key, value }) => {
                self.map.insert(key, value);
                Bytes::from_static(&[1])
            }
            Ok(KvOp::Get { key }) => match self.map.get(&key) {
                Some(v) => {
                    let mut out = BytesMut::with_capacity(1 + v.len());
                    out.put_u8(1);
                    out.put_slice(v);
                    out.freeze()
                }
                None => Bytes::from_static(&[0]),
            },
            Ok(KvOp::Delete { key }) => {
                let existed = self.map.remove(&key).is_some();
                Bytes::from_static(if existed { &[1] } else { &[0] })
            }
            Ok(KvOp::Cas { key, expect, value }) => {
                let current = self.map.get(&key);
                let matches = match (&expect, current) {
                    (None, None) => true,
                    (Some(e), Some(v)) => e == v,
                    _ => false,
                };
                if matches {
                    self.map.insert(key, value);
                    Bytes::from_static(&[1])
                } else {
                    Bytes::from_static(&[0])
                }
            }
            Err(_) => Bytes::from_static(&[0]),
        }
    }

    fn snapshot(&self) -> Bytes {
        // Canonical full serialization: BTreeMap iteration order is
        // deterministic, so equal states yield equal snapshots.
        let mut buf = BytesMut::new();
        buf.put_u64(self.map.len() as u64);
        for (k, v) in &self.map {
            buf.put_u32(k.len() as u32);
            buf.put_slice(k);
            buf.put_u32(v.len() as u32);
            buf.put_slice(v);
        }
        buf.freeze()
    }

    fn reset(&mut self) {
        self.map.clear();
        self.applied = 0;
    }

    fn query(&self, cmd: &Command) -> Option<Bytes> {
        // Only a well-formed Get is a genuine read; anything else —
        // including a mutating op falsely marked read-only — is refused
        // so the caller replicates it instead.
        match KvOp::decode(&cmd.payload) {
            Ok(KvOp::Get { key }) => Some(match self.map.get(&key) {
                Some(v) => {
                    let mut out = BytesMut::with_capacity(1 + v.len());
                    out.put_u8(1);
                    out.put_slice(v);
                    out.freeze()
                }
                None => Bytes::from_static(&[0]),
            }),
            _ => None,
        }
    }

    fn restore(&mut self, snapshot: &[u8]) -> bool {
        // Parse the canonical serialization produced by `snapshot`.
        fn take<'a>(rest: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if rest.len() < n {
                return None;
            }
            let (head, tail) = rest.split_at(n);
            *rest = tail;
            Some(head)
        }
        let mut rest = snapshot;
        let Some(count_bytes) = take(&mut rest, 8) else {
            return false;
        };
        let count = u64::from_be_bytes(count_bytes.try_into().expect("8 bytes"));
        let mut map = BTreeMap::new();
        for _ in 0..count {
            let Some(klen) = take(&mut rest, 4) else {
                return false;
            };
            let klen = u32::from_be_bytes(klen.try_into().expect("4 bytes")) as usize;
            let Some(k) = take(&mut rest, klen) else {
                return false;
            };
            let Some(vlen) = take(&mut rest, 4) else {
                return false;
            };
            let vlen = u32::from_be_bytes(vlen.try_into().expect("4 bytes")) as usize;
            let Some(v) = take(&mut rest, vlen) else {
                return false;
            };
            map.insert(Bytes::copy_from_slice(k), Bytes::copy_from_slice(v));
        }
        if !rest.is_empty() {
            return false;
        }
        self.map = map;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_core::command::CommandId;
    use rsm_core::id::{ClientId, ReplicaId};

    fn cmd(seq: u64, op: &KvOp) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            op.encode(),
        )
    }

    #[test]
    fn put_get_delete_cycle() {
        let mut s = KvStore::new();
        assert_eq!(s.apply(&cmd(1, &KvOp::put("k", "v")))[0], 1);
        let got = s.apply(&cmd(2, &KvOp::get("k")));
        assert_eq!(&got[..], b"\x01v");
        assert_eq!(s.apply(&cmd(3, &KvOp::delete("k")))[0], 1);
        assert_eq!(s.apply(&cmd(4, &KvOp::get("k")))[0], 0);
        assert_eq!(s.apply(&cmd(5, &KvOp::delete("k")))[0], 0);
        assert_eq!(s.applied(), 5);
    }

    #[test]
    fn malformed_payload_is_a_noop_answer() {
        let mut s = KvStore::new();
        let bad = Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1),
            Bytes::from_static(b"\xFFjunk"),
        );
        assert_eq!(s.apply(&bad)[0], 0);
        assert!(s.is_empty());
    }

    #[test]
    fn snapshots_equal_iff_states_equal() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.apply(&cmd(1, &KvOp::put("x", "1")));
        a.apply(&cmd(2, &KvOp::put("y", "2")));
        // Same state reached by a different command order.
        b.apply(&cmd(1, &KvOp::put("y", "2")));
        b.apply(&cmd(2, &KvOp::put("x", "1")));
        assert_eq!(a.snapshot(), b.snapshot());
        b.apply(&cmd(3, &KvOp::put("x", "9")));
        assert_ne!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn reset_restores_empty() {
        let mut s = KvStore::new();
        s.apply(&cmd(1, &KvOp::put("x", "1")));
        s.reset();
        assert_eq!(s.snapshot(), KvStore::new().snapshot());
        assert_eq!(s.applied(), 0);
    }

    #[test]
    fn query_serves_gets_and_refuses_everything_else() {
        let mut s = KvStore::new();
        s.apply(&cmd(1, &KvOp::put("k", "v")));
        let applied = s.applied();
        // A Get query answers exactly like apply would, without counting.
        let got = s.query(&cmd(2, &KvOp::get("k"))).unwrap();
        assert_eq!(&got[..], b"\x01v");
        assert_eq!(s.query(&cmd(3, &KvOp::get("zz"))).unwrap()[..], [0]);
        assert_eq!(s.applied(), applied, "query must not count as applied");
        // Mutating ops (even falsely marked read-only upstream) refuse.
        assert!(s.query(&cmd(4, &KvOp::put("k", "w"))).is_none());
        assert!(s.query(&cmd(5, &KvOp::delete("k"))).is_none());
        let bad = Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), 6),
            Bytes::from_static(b"\xFFjunk"),
        );
        assert!(s.query(&bad).is_none());
        assert_eq!(s.get(b"k").unwrap().as_ref(), b"v", "state untouched");
    }

    #[test]
    fn overwrite_updates_value() {
        let mut s = KvStore::new();
        s.apply(&cmd(1, &KvOp::put("k", "old")));
        s.apply(&cmd(2, &KvOp::put("k", "new")));
        assert_eq!(s.get(b"k").unwrap().as_ref(), b"new");
        assert_eq!(s.len(), 1);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Replicas applying the same op sequence converge (determinism).
            #[test]
            fn determinism(ops in proptest::collection::vec((0u8..3, 0u8..16, any::<u8>()), 0..200)) {
                let mut a = KvStore::new();
                let mut b = KvStore::new();
                for (i, (which, k, v)) in ops.iter().enumerate() {
                    let key = vec![*k];
                    let op = match which {
                        0 => KvOp::put(key, vec![*v]),
                        1 => KvOp::get(key),
                        _ => KvOp::delete(key),
                    };
                    let c = cmd(i as u64, &op);
                    let ra = a.apply(&c);
                    let rb = b.apply(&c);
                    prop_assert_eq!(ra, rb);
                }
                prop_assert_eq!(a.snapshot(), b.snapshot());
            }
        }
    }
}
