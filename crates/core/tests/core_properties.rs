//! Property tests for the core vocabulary types: timestamp total order,
//! monotonic stamping, and latency-matrix helper consistency.

use proptest::prelude::*;
use rsm_core::time::MonotonicStamper;
use rsm_core::{LatencyMatrix, ReplicaId, Timestamp};

proptest! {
    /// Timestamps form a strict total order: distinct (micros, replica)
    /// pairs always compare unequal, and ordering is transitive with
    /// micros dominant.
    #[test]
    fn timestamps_total_order(
        pairs in proptest::collection::vec((0u64..1_000_000, 0u16..16), 2..50),
    ) {
        let ts: Vec<Timestamp> = pairs
            .iter()
            .map(|&(m, r)| Timestamp::new(m, ReplicaId::new(r)))
            .collect();
        for a in &ts {
            for b in &ts {
                // Strict totality: exactly one of <, ==, > holds.
                let lt = a < b;
                let gt = a > b;
                let eq = a == b;
                prop_assert_eq!(1, lt as u8 + gt as u8 + eq as u8);
                // Equality iff both fields agree.
                prop_assert_eq!(
                    eq,
                    a.micros() == b.micros() && a.replica() == b.replica()
                );
                // micros dominates replica.
                if a.micros() < b.micros() {
                    prop_assert!(a < b);
                }
            }
        }
    }

    /// The monotonic stamper is strictly increasing for ANY raw input
    /// sequence, and is the identity on strictly increasing inputs.
    #[test]
    fn stamper_invariants(raws in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut s = MonotonicStamper::new();
        let mut prev = None;
        for &raw in &raws {
            let v = s.stamp(raw);
            prop_assert!(v >= raw, "stamp never lags the clock");
            if let Some(p) = prev {
                prop_assert!(v > p, "stamps strictly increase");
            }
            prev = Some(v);
        }
        // Identity on strictly increasing inputs.
        let mut s2 = MonotonicStamper::new();
        let mut sorted: Vec<u64> = raws.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for &raw in &sorted {
            prop_assert_eq!(s2.stamp(raw), raw);
        }
    }

    /// Matrix helpers agree with first-principles recomputation.
    #[test]
    fn matrix_helpers_from_first_principles(
        vals in proptest::collection::vec(1u64..100_000, 10), // C(5,2)
        r in 0u16..5,
    ) {
        let n = 5;
        let mut m = vec![vec![0u64; n]; n];
        let mut it = vals.into_iter();
        #[allow(clippy::needless_range_loop)] // triangular fill is clearest with indices
        for i in 0..n {
            for j in (i + 1)..n {
                let v = it.next().expect("10 values");
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        let matrix = LatencyMatrix::from_one_way_micros(m.clone());
        let r_id = ReplicaId::new(r);
        let mut dists: Vec<u64> = m[r as usize].clone();
        dists.sort_unstable();
        prop_assert_eq!(matrix.median_from(r_id), dists[n / 2]);
        prop_assert_eq!(matrix.max_from(r_id), *dists.last().expect("non-empty"));
        // The majority interpretation: at least ⌈(n+1)/2⌉ replicas
        // (including r itself) are within median_from.
        let within = m[r as usize]
            .iter()
            .filter(|&&d| d <= matrix.median_from(r_id))
            .count();
        prop_assert!(within > n / 2);
    }
}
