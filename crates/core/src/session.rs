//! Client sessions and the server-side exactly-once dedup window.
//!
//! State machine replication gives every *committed* command at-most-once
//! execution, but nothing in the commit path protects against the same
//! *logical* operation being committed twice: a client that times out and
//! retries after a fail-over used to mint a fresh [`CommandId`], and both
//! the original and the retry would commit and apply. This module closes
//! that hole end to end:
//!
//! * [`ClientSession`] — the client half: a stable [`ClientId`] plus a
//!   monotone sequence number. A *retry* keeps the **same** `CommandId`
//!   ([`ClientSession::current_id`]); only a *new* operation advances the
//!   sequence ([`ClientSession::next_id`]).
//! * [`SessionTable`] — the server half, owned by each protocol replica
//!   beside its read-probe bookkeeping: per client, the highest applied
//!   sequence number and the cached [`Reply`] of that newest command.
//!   Protocols route every decided command through
//!   [`SessionTable::commit_dedup`] at execution time; a duplicate is
//!   **not** re-applied, and at the origin replica the cached reply is
//!   re-sent instead.
//! * [`SessionOpen`] / [`SessionRetry`] / [`SessionEvict`] — the wire
//!   vocabulary of the client plane (encoded via `rsm_core::wire` like
//!   every other frame), so session establishment and explicit eviction
//!   work across the socket transport exactly as in-process.
//!
//! # The exactly-once contract
//!
//! For a client that (a) keeps one command in flight per session and
//! (b) retries with the same `CommandId`, a write is applied **exactly
//! once** provided the client's entry has not been evicted from the
//! window (below). The table tracks only the *highest* applied sequence
//! per client — which is precisely enough for rule (a) — so sequence
//! numbers must be issued and submitted in monotone order within a
//! session. Concurrent submissions under one `ClientId` are outside the
//! contract: a lower-sequence command arriving after a higher one is
//! treated as a duplicate and dropped.
//!
//! # Window size and the eviction staleness caveat
//!
//! The table is bounded to [`DEFAULT_SESSION_WINDOW`] client entries
//! (configurable per table). Eviction is strictly LRU in **apply order**:
//! the tick is the count of applied writes, identical at every replica,
//! so all replicas evict the same entry at the same point in the command
//! sequence — never wall-clock time, which would diverge across replicas
//! and break snapshot equality. The staleness contract is: **a retry that
//! arrives after its client's entry was evicted is indistinguishable from
//! a new command and may re-apply**. Size the window above the number of
//! clients that can plausibly have a retry outstanding (the default of
//! 1024 covers every workload in this tree), or accept at-most-twice for
//! clients that retry later than `window` other clients' writes.
//!
//! # What survives checkpoint install
//!
//! The encoded table ([`SessionTable::export`]) rides every
//! [`Checkpoint`](crate::checkpoint::Checkpoint) — both periodic local
//! checkpoints and peer state transfer — and is restored by
//! [`SessionTable::install`]. A replica that installs a checkpoint at
//! watermark `w` therefore holds exactly the dedup window of the replica
//! that executed through `w`: the exactly-once guarantee is preserved
//! across recovery, log compaction, and state transfer. Replay of log
//! records above `w` rebuilds the newer entries deterministically because
//! replayed commands flow through the same `commit_dedup` path.
//!
//! Read-only commands (including timestamped snapshot reads) **bypass**
//! the table entirely: reads are idempotent, and caching their replies
//! would serve stale data after a retry. They neither consult nor occupy
//! the window.

use std::collections::{BTreeMap, HashMap};

use bytes::{BufMut, Bytes, BytesMut};

use crate::command::{CommandId, Committed, Reply};
use crate::id::{ClientId, ReplicaId};
use crate::protocol::{Context, Protocol};
use crate::wire::{WireDecode, WireEncode, WireError, WireReader, WireSize, MSG_HEADER_BYTES};

/// Default bound on distinct client entries a replica's dedup window
/// holds before LRU eviction (see the module docs for the staleness
/// contract this implies).
pub const DEFAULT_SESSION_WINDOW: usize = 1024;

/// The client half of a session: a stable identity and a monotone
/// sequence number.
///
/// # Examples
///
/// ```
/// use rsm_core::id::{ClientId, ReplicaId};
/// use rsm_core::session::ClientSession;
///
/// let mut s = ClientSession::new(ClientId::new(ReplicaId::new(0), 7));
/// let first = s.next_id();
/// // A retry of the in-flight command reuses the SAME id…
/// assert_eq!(s.current_id(), Some(first));
/// // …and only a new operation advances the sequence.
/// assert_eq!(s.next_id().seq, first.seq + 1);
/// ```
#[derive(Debug, Clone)]
pub struct ClientSession {
    client: ClientId,
    seq: u64,
}

impl ClientSession {
    /// Opens a session for `client` with no commands issued yet.
    pub fn new(client: ClientId) -> Self {
        ClientSession { client, seq: 0 }
    }

    /// The session's stable client identity.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Sequence number of the most recently issued command (0 = none).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Mints the id for the **next** operation, advancing the sequence.
    pub fn next_id(&mut self) -> CommandId {
        self.seq += 1;
        CommandId::new(self.client, self.seq)
    }

    /// The id of the current (most recently issued) operation — what a
    /// **retry** must reuse. `None` before the first `next_id`.
    pub fn current_id(&self) -> Option<CommandId> {
        (self.seq > 0).then(|| CommandId::new(self.client, self.seq))
    }
}

/// Outcome of consulting the dedup window for a decided write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionCheck {
    /// Not yet applied for this client: execute and record.
    Fresh,
    /// The client's newest applied command: already executed, cached
    /// reply available — the origin re-serves it instead of re-applying.
    Duplicate(Reply),
    /// At or below the client's applied watermark but older than the
    /// cached reply (or the entry was superseded): must not re-apply,
    /// and there is nothing left to answer with. Only reachable outside
    /// the one-in-flight-per-session contract.
    Stale,
}

#[derive(Debug, Clone)]
struct SessionEntry {
    /// Highest applied sequence number for this client.
    seq: u64,
    /// Cached reply of the command at `seq`.
    reply: Reply,
    /// LRU coordinate: the value of the apply-order tick when this entry
    /// was last written. Identical at every replica.
    touched: u64,
}

/// A replica's dedup window: per client, the highest applied sequence
/// number and the cached reply of that newest command.
///
/// Owned by each protocol replica and consulted at execution time via
/// [`commit_dedup`](SessionTable::commit_dedup); see the module docs for
/// the exactly-once contract, the eviction staleness caveat, and what
/// survives checkpoint install.
#[derive(Debug, Clone)]
pub struct SessionTable {
    window: usize,
    /// Apply-order tick: increments once per recorded write. Replicas
    /// apply identical command sequences, so ticks (and therefore LRU
    /// eviction decisions) are identical everywhere.
    tick: u64,
    entries: HashMap<ClientId, SessionEntry>,
    /// LRU index: `touched` tick → client. Ticks are unique, so this is
    /// a total order; the first key is the eviction victim.
    lru: BTreeMap<u64, ClientId>,
    /// Chaos-canary knob, **test-only**: when set, [`commit_dedup`]
    /// (SessionTable::commit_dedup) skips the window and re-applies
    /// duplicates — deliberately re-introducing the pre-session retry
    /// double-apply bug so the chaos fuzzer can prove it finds and
    /// shrinks it. Never set on a production path.
    canary_skip_dedup: bool,
}

impl Default for SessionTable {
    fn default() -> Self {
        SessionTable::new(DEFAULT_SESSION_WINDOW)
    }
}

impl SessionTable {
    /// An empty table bounded to `window` client entries.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "session window must be positive");
        SessionTable {
            window,
            tick: 0,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            canary_skip_dedup: false,
        }
    }

    /// Sets the chaos-canary knob (**test-only**; see the field docs):
    /// when on, `commit_dedup` re-applies duplicate writes instead of
    /// deduplicating them.
    pub fn set_canary_skip_dedup(&mut self, on: bool) {
        self.canary_skip_dedup = on;
    }

    /// Number of client entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured window bound.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Classifies a decided write against the window without mutating it.
    pub fn check(&self, id: CommandId) -> SessionCheck {
        match self.entries.get(&id.client) {
            None => SessionCheck::Fresh,
            Some(e) if id.seq > e.seq => SessionCheck::Fresh,
            Some(e) if id.seq == e.seq => SessionCheck::Duplicate(e.reply.clone()),
            Some(_) => SessionCheck::Stale,
        }
    }

    /// Records an applied write and its reply, advancing the LRU tick and
    /// evicting the least-recently-written entry beyond the window.
    pub fn record(&mut self, id: CommandId, reply: Reply) {
        self.tick += 1;
        let touched = self.tick;
        if let Some(old) = self.entries.insert(
            id.client,
            SessionEntry {
                seq: id.seq,
                reply,
                touched,
            },
        ) {
            self.lru.remove(&old.touched);
        }
        self.lru.insert(touched, id.client);
        if self.entries.len() > self.window {
            if let Some((&oldest, &victim)) = self.lru.iter().next() {
                self.lru.remove(&oldest);
                self.entries.remove(&victim);
            }
        }
    }

    /// Explicitly evicts `client`'s entry (the [`SessionEvict`] wire
    /// shape): a client that closes its session releases its window slot.
    pub fn evict(&mut self, client: ClientId) {
        if let Some(e) = self.entries.remove(&client) {
            self.lru.remove(&e.touched);
        }
    }

    /// Drops every entry (recovery from scratch; replay rebuilds).
    pub fn reset(&mut self) {
        self.tick = 0;
        self.entries.clear();
        self.lru.clear();
    }

    /// Routes one decided command through the dedup window.
    ///
    /// Read-only commands bypass the table entirely (reads are
    /// idempotent; caching their replies would serve stale data). A
    /// fresh write is executed via [`Context::commit`] and its reply
    /// recorded; a duplicate is **not** re-applied, and at the origin
    /// replica the cached reply is re-sent via [`Context::send_reply`].
    ///
    /// Returns whether the command was actually applied — protocols use
    /// this to keep apply-coupled accounting (checkpoint triggers) in
    /// step with the state machine.
    pub fn commit_dedup<P: Protocol + ?Sized>(
        &mut self,
        me: ReplicaId,
        committed: Committed,
        ctx: &mut dyn Context<P>,
    ) -> bool {
        if committed.cmd.read_only {
            ctx.commit(committed);
            return true;
        }
        if self.canary_skip_dedup {
            // Chaos-canary (test-only): behave like the tree before client
            // sessions existed — every decided write applies, retries
            // included.
            ctx.commit(committed);
            return true;
        }
        let id = committed.cmd.id;
        match self.check(id) {
            SessionCheck::Fresh => {
                let result = ctx.commit(committed);
                self.record(id, Reply::new(id, result));
                true
            }
            SessionCheck::Duplicate(reply) => {
                ctx.obs_count(crate::obs::names::SESSION_DEDUP_HITS, 1);
                if committed.origin == me {
                    ctx.send_reply(reply);
                }
                false
            }
            SessionCheck::Stale => {
                ctx.obs_count(crate::obs::names::SESSION_STALE_DROPS, 1);
                false
            }
        }
    }

    /// Serializes the table for a checkpoint, deterministically (entries
    /// sorted by client id) so replicas' checkpoints stay byte-identical.
    pub fn export(&self) -> Bytes {
        let mut sorted: Vec<(&ClientId, &SessionEntry)> = self.entries.iter().collect();
        sorted.sort_by_key(|(c, _)| **c);
        let mut buf = BytesMut::new();
        buf.put_u64(self.tick);
        buf.put_u32(sorted.len() as u32);
        for (client, e) in sorted {
            client.encode(&mut buf);
            buf.put_u64(e.seq);
            buf.put_u64(e.touched);
            e.reply.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Restores the table from a checkpoint's encoded form, replacing
    /// the current contents but keeping this table's configured window.
    ///
    /// # Errors
    ///
    /// Returns the wire error (table left empty) on a malformed frame.
    pub fn install(&mut self, frame: &Bytes) -> Result<(), WireError> {
        self.reset();
        let mut r = WireReader::new(frame.clone());
        let tick = r.u64()?;
        let count = r.u32()? as usize;
        for _ in 0..count {
            let client = ClientId::decode(&mut r)?;
            let seq = r.u64()?;
            let touched = r.u64()?;
            let reply = Reply::decode(&mut r)?;
            self.lru.insert(touched, client);
            self.entries.insert(
                client,
                SessionEntry {
                    seq,
                    reply,
                    touched,
                },
            );
        }
        self.tick = tick;
        // A peer's window may have been larger: trim to ours, oldest
        // first, preserving the local staleness contract.
        while self.entries.len() > self.window {
            if let Some((&oldest, &victim)) = self.lru.iter().next() {
                self.lru.remove(&oldest);
                self.entries.remove(&victim);
            }
        }
        Ok(())
    }
}

/// A client announces its session identity to a replica (the client
/// plane's `open`): the server allocates or confirms the window slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOpen {
    /// The session's stable client identity.
    pub client: ClientId,
}

impl WireSize for SessionOpen {
    fn wire_size(&self) -> usize {
        MSG_HEADER_BYTES + 6
    }
}

/// A client re-submits its in-flight command after a timeout: same
/// [`CommandId`] as the original, which is what lets the dedup window
/// recognise it. The command payload travels exactly as on first send;
/// this shape marks the frame as a retry so admission control lets it
/// through a saturated inbox (rejecting retries would deadlock the
/// client against its own backlog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRetry {
    /// The original command's id, reused verbatim.
    pub id: CommandId,
}

impl WireSize for SessionRetry {
    fn wire_size(&self) -> usize {
        MSG_HEADER_BYTES + 14
    }
}

/// A client closes its session (or a server instructs a client that its
/// entry was evicted): the window slot is released immediately instead
/// of aging out by LRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionEvict {
    /// The session being closed.
    pub client: ClientId,
}

impl WireSize for SessionEvict {
    fn wire_size(&self) -> usize {
        MSG_HEADER_BYTES + 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Command;

    fn client(n: u32) -> ClientId {
        ClientId::new(ReplicaId::new(0), n)
    }

    fn reply(id: CommandId, byte: u8) -> Reply {
        Reply::new(id, Bytes::from(vec![byte]))
    }

    #[test]
    fn session_retry_reuses_id() {
        let mut s = ClientSession::new(client(3));
        assert_eq!(s.current_id(), None);
        let a = s.next_id();
        assert_eq!(s.current_id(), Some(a));
        assert_eq!(s.current_id(), Some(a), "retries never advance the seq");
        let b = s.next_id();
        assert_eq!(b.seq, a.seq + 1);
        assert_eq!(b.client, a.client);
    }

    #[test]
    fn duplicate_returns_cached_reply_and_stale_is_dropped() {
        let mut t = SessionTable::new(8);
        let c = client(1);
        let id1 = CommandId::new(c, 1);
        let id2 = CommandId::new(c, 2);
        assert_eq!(t.check(id1), SessionCheck::Fresh);
        t.record(id1, reply(id1, 0xAA));
        assert_eq!(t.check(id1), SessionCheck::Duplicate(reply(id1, 0xAA)));
        assert_eq!(t.check(id2), SessionCheck::Fresh);
        t.record(id2, reply(id2, 0xBB));
        // The older command is below the watermark with its reply gone.
        assert_eq!(t.check(id1), SessionCheck::Stale);
        assert_eq!(t.check(id2), SessionCheck::Duplicate(reply(id2, 0xBB)));
    }

    #[test]
    fn lru_eviction_is_by_apply_order_and_retry_after_eviction_is_fresh() {
        let mut t = SessionTable::new(2);
        let ids: Vec<CommandId> = (0..3).map(|n| CommandId::new(client(n), 1)).collect();
        t.record(ids[0], reply(ids[0], 0));
        t.record(ids[1], reply(ids[1], 1));
        // Touch client 0 again so client 1 becomes the LRU victim.
        let id0b = CommandId::new(client(0), 2);
        t.record(id0b, reply(id0b, 2));
        t.record(ids[2], reply(ids[2], 3));
        assert_eq!(t.len(), 2);
        // The documented staleness contract: the evicted client's retry
        // is indistinguishable from a new command.
        assert_eq!(t.check(ids[1]), SessionCheck::Fresh);
        assert_eq!(t.check(id0b), SessionCheck::Duplicate(reply(id0b, 2)));
    }

    #[test]
    fn explicit_evict_releases_the_slot() {
        let mut t = SessionTable::new(4);
        let id = CommandId::new(client(9), 5);
        t.record(id, reply(id, 1));
        t.evict(client(9));
        assert!(t.is_empty());
        assert_eq!(t.check(id), SessionCheck::Fresh);
    }

    #[test]
    fn export_install_round_trips_and_is_deterministic() {
        let mut a = SessionTable::new(16);
        // Insert in one order…
        for n in [5u32, 1, 9, 3] {
            let id = CommandId::new(client(n), u64::from(n) + 1);
            a.record(id, reply(id, n as u8));
        }
        // …and in another: the export must be byte-identical because
        // entries are written sorted by client id.
        let mut b = SessionTable::new(16);
        for n in [5u32, 1, 9, 3] {
            let id = CommandId::new(client(n), u64::from(n) + 1);
            b.record(id, reply(id, n as u8));
        }
        assert_eq!(a.export(), b.export());

        let mut c = SessionTable::new(16);
        c.install(&a.export()).unwrap();
        assert_eq!(c.export(), a.export());
        let id5 = CommandId::new(client(5), 6);
        assert_eq!(c.check(id5), SessionCheck::Duplicate(reply(id5, 5)));
        // The restored tick continues the apply order: new records evict
        // in the same sequence the exporter would have.
        let idn = CommandId::new(client(77), 1);
        c.record(idn, reply(idn, 7));
        assert_eq!(c.check(idn), SessionCheck::Duplicate(reply(idn, 7)));
    }

    #[test]
    fn install_trims_to_local_window() {
        let mut big = SessionTable::new(64);
        for n in 0..10u32 {
            let id = CommandId::new(client(n), 1);
            big.record(id, reply(id, n as u8));
        }
        let mut small = SessionTable::new(4);
        small.install(&big.export()).unwrap();
        assert_eq!(small.len(), 4);
        // The newest four survive.
        for n in 6..10u32 {
            assert!(matches!(
                small.check(CommandId::new(client(n), 1)),
                SessionCheck::Duplicate(_)
            ));
        }
    }

    #[test]
    fn install_rejects_garbage() {
        let mut t = SessionTable::new(4);
        let id = CommandId::new(client(1), 1);
        t.record(id, reply(id, 1));
        assert!(t.install(&Bytes::from_static(b"\x00\x01")).is_err());
        assert!(t.is_empty(), "failed install leaves the table empty");
    }

    #[test]
    fn read_only_commands_bypass_the_window() {
        // Exercised through `commit_dedup` with a recording context in
        // `protocol::tests`; here assert the classification contract
        // that makes the bypass safe: reads never occupy entries.
        let t = SessionTable::new(4);
        let id = CommandId::new(client(1), 1);
        let _read = Command::read(id, Bytes::new());
        assert_eq!(t.check(id), SessionCheck::Fresh);
        assert_eq!(t.len(), 0);
    }
}
