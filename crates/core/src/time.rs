//! Physical time and command timestamps.

use std::fmt;

use crate::id::ReplicaId;

/// Microseconds, the time unit used throughout the workspace.
///
/// Both virtual simulation time and physical clock readings are expressed in
/// microseconds. One-way wide-area latencies are tens of milliseconds, clock
/// skews are sub-millisecond, so microsecond resolution leaves three orders
/// of magnitude of headroom in both directions.
pub type Micros = u64;

/// Number of microseconds in one millisecond.
pub const MILLIS: Micros = 1_000;

/// Number of microseconds in one second.
pub const SECONDS: Micros = 1_000_000;

/// A Clock-RSM command timestamp: a physical clock reading paired with the
/// originating replica's id as a tie-breaker.
///
/// Timestamps form the *total order* in which every replica executes
/// commands (Section III-B, step 1 of the paper): they are compared first by
/// clock value, then by replica id, so two distinct replicas can never
/// produce equal timestamps for different commands.
///
/// # Examples
///
/// ```
/// use rsm_core::{ReplicaId, Timestamp};
/// let a = Timestamp::new(5_000, ReplicaId::new(0));
/// let b = Timestamp::new(5_000, ReplicaId::new(1));
/// let c = Timestamp::new(5_001, ReplicaId::new(0));
/// assert!(a < b); // tie on clock value broken by replica id
/// assert!(b < c); // clock value dominates
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    micros: Micros,
    replica: ReplicaId,
}

impl Timestamp {
    /// The smallest possible timestamp; strictly less than any clock reading.
    pub const ZERO: Timestamp = Timestamp {
        micros: 0,
        replica: ReplicaId::new(0),
    };

    /// Creates a timestamp from a clock reading and the issuing replica.
    pub fn new(micros: Micros, replica: ReplicaId) -> Self {
        Timestamp { micros, replica }
    }

    /// The physical clock reading, in microseconds.
    pub fn micros(self) -> Micros {
        self.micros
    }

    /// The replica id used as the tie-breaker.
    pub fn replica(self) -> ReplicaId {
        self.replica
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us.{}", self.micros, self.replica)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A monotonically increasing wrapper over a physical clock reading.
///
/// Algorithm 1 of the paper requires replicas to send `PREPARE`,
/// `PREPAREOK`, and `CLOCKTIME` messages in strictly increasing timestamp
/// order. A raw clock is only non-decreasing (and in a simulation, several
/// events can share the same instant), so every replica pipes its clock
/// readings through one `MonotonicStamper`, which bumps repeated readings by
/// one microsecond.
///
/// # Examples
///
/// ```
/// use rsm_core::time::MonotonicStamper;
/// let mut s = MonotonicStamper::new();
/// let a = s.stamp(1_000);
/// let b = s.stamp(1_000); // same raw reading
/// let c = s.stamp(900);   // clock went backwards (should not happen, but safe)
/// assert!(a < b && b < c);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MonotonicStamper {
    last: Option<Micros>,
}

impl MonotonicStamper {
    /// Creates a stamper that has issued no timestamps yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts a raw clock reading into a strictly increasing one.
    pub fn stamp(&mut self, raw: Micros) -> Micros {
        let next = match self.last {
            Some(last) => raw.max(last + 1),
            None => raw,
        };
        self.last = Some(next);
        next
    }

    /// The most recently issued value, if any.
    pub fn last(&self) -> Option<Micros> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_total_order() {
        let a = Timestamp::new(1, ReplicaId::new(2));
        let b = Timestamp::new(2, ReplicaId::new(0));
        let c = Timestamp::new(2, ReplicaId::new(1));
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn timestamp_zero_is_minimal() {
        let t = Timestamp::new(0, ReplicaId::new(0));
        assert_eq!(Timestamp::ZERO, t);
        assert!(Timestamp::ZERO <= Timestamp::new(0, ReplicaId::new(1)));
        assert!(Timestamp::ZERO <= Timestamp::new(1, ReplicaId::new(0)));
    }

    #[test]
    fn timestamp_accessors() {
        let t = Timestamp::new(77, ReplicaId::new(3));
        assert_eq!(t.micros(), 77);
        assert_eq!(t.replica(), ReplicaId::new(3));
        assert_eq!(format!("{t}"), "77us.r3");
    }

    #[test]
    fn stamper_strictly_increases() {
        let mut s = MonotonicStamper::new();
        let mut prev = s.stamp(10);
        for raw in [10, 10, 9, 11, 11, 5, 100] {
            let next = s.stamp(raw);
            assert!(next > prev, "{next} should exceed {prev}");
            prev = next;
        }
        assert_eq!(s.last(), Some(prev));
    }

    #[test]
    fn stamper_passes_through_advancing_clock() {
        let mut s = MonotonicStamper::new();
        assert_eq!(s.stamp(5), 5);
        assert_eq!(s.stamp(9), 9);
        assert_eq!(s.stamp(20), 20);
    }
}
