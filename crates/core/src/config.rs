//! System specification, active configuration, and epochs.

use std::fmt;

use crate::id::ReplicaId;

/// Reconfiguration epoch number (Section V of the paper).
///
/// `Epoch` is a hard state: it starts at 0 and is incremented by every
/// successful reconfiguration. Messages from older epochs are ignored by
/// replicas that have already moved on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The initial epoch.
    pub const ZERO: Epoch = Epoch(0);

    /// The epoch following this one.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The membership state of a replica: the fixed system specification `Spec`
/// and the current active configuration `Config ⊆ Spec` (Table I of the
/// paper).
///
/// `Spec` is written by the system administrator before the system starts
/// and never changes; `Config` shrinks when the reconfiguration protocol
/// removes suspected replicas and grows when recovered replicas rejoin.
/// Majorities are always computed over `Spec` (`⌊|Spec|/2⌋ + 1`), which is
/// what makes reconfiguration decisions durable across overlapping
/// majorities.
///
/// # Examples
///
/// ```
/// use rsm_core::{Membership, ReplicaId};
/// let m = Membership::uniform(5);
/// assert_eq!(m.spec().len(), 5);
/// assert_eq!(m.majority(), 3);
/// assert!(m.in_config(ReplicaId::new(4)));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Membership {
    spec: Vec<ReplicaId>,
    config: Vec<ReplicaId>,
    epoch: Epoch,
}

impl Membership {
    /// Creates a membership whose `Config` initially equals `Spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is empty or contains duplicate ids.
    pub fn new(spec: Vec<ReplicaId>) -> Self {
        assert!(!spec.is_empty(), "spec must contain at least one replica");
        let mut sorted = spec.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), spec.len(), "spec contains duplicate replicas");
        Membership {
            config: spec.clone(),
            spec,
            epoch: Epoch::ZERO,
        }
    }

    /// Creates a membership of `n` replicas with ids `0..n`.
    pub fn uniform(n: u16) -> Self {
        Membership::new((0..n).map(ReplicaId::new).collect())
    }

    /// All replicas, active or failed, in the system specification.
    pub fn spec(&self) -> &[ReplicaId] {
        &self.spec
    }

    /// The replicas in the current active configuration.
    pub fn config(&self) -> &[ReplicaId] {
        &self.config
    }

    /// The current epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The majority size of `Spec`: `⌊|Spec|/2⌋ + 1`.
    pub fn majority(&self) -> usize {
        self.spec.len() / 2 + 1
    }

    /// Whether `r` belongs to `Spec`.
    pub fn in_spec(&self, r: ReplicaId) -> bool {
        self.spec.contains(&r)
    }

    /// Whether `r` belongs to the current configuration.
    pub fn in_config(&self, r: ReplicaId) -> bool {
        self.config.contains(&r)
    }

    /// Installs a new configuration and epoch, as decided by the
    /// reconfiguration protocol (Algorithm 3, lines 21–22).
    ///
    /// # Panics
    ///
    /// Panics if the new configuration is not a subset of `Spec` or smaller
    /// than a majority of `Spec` (the protocol requires a majority of `Spec`
    /// to be active).
    pub fn install(&mut self, epoch: Epoch, config: Vec<ReplicaId>) {
        assert!(
            config.iter().all(|r| self.in_spec(*r)),
            "new config {config:?} must be a subset of spec {:?}",
            self.spec
        );
        assert!(
            config.len() >= self.majority(),
            "new config must contain a majority of spec"
        );
        self.epoch = epoch;
        self.config = config;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_next_increments() {
        assert_eq!(Epoch::ZERO.next(), Epoch(1));
        assert_eq!(Epoch(41).next(), Epoch(42));
        assert_eq!(Epoch(7).to_string(), "e7");
    }

    #[test]
    fn uniform_membership() {
        let m = Membership::uniform(7);
        assert_eq!(m.spec().len(), 7);
        assert_eq!(m.config().len(), 7);
        assert_eq!(m.majority(), 4);
        assert_eq!(m.epoch(), Epoch::ZERO);
    }

    #[test]
    fn majority_of_even_spec() {
        let m = Membership::uniform(4);
        assert_eq!(m.majority(), 3);
    }

    #[test]
    fn install_shrinks_config_and_bumps_epoch() {
        let mut m = Membership::uniform(5);
        let survivors: Vec<ReplicaId> = (0..4).map(ReplicaId::new).collect();
        m.install(Epoch(1), survivors.clone());
        assert_eq!(m.config(), survivors.as_slice());
        assert_eq!(m.spec().len(), 5);
        assert_eq!(m.epoch(), Epoch(1));
        assert!(!m.in_config(ReplicaId::new(4)));
        assert!(m.in_spec(ReplicaId::new(4)));
    }

    #[test]
    #[should_panic(expected = "majority")]
    fn install_rejects_sub_majority_config() {
        let mut m = Membership::uniform(5);
        m.install(Epoch(1), vec![ReplicaId::new(0), ReplicaId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "subset")]
    fn install_rejects_foreign_replica() {
        let mut m = Membership::uniform(3);
        m.install(
            Epoch(1),
            vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(9)],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn new_rejects_duplicates() {
        Membership::new(vec![ReplicaId::new(1), ReplicaId::new(1)]);
    }
}
