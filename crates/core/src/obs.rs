//! Observability vocabulary shared by protocols and drivers.
//!
//! `rsm-core` deliberately does **not** depend on the `rsm-obs`
//! registry crate: protocols emit observations through the default-
//! no-op hooks on [`Context`](crate::protocol::Context)
//! (`obs_count` / `obs_gauge` / `trace`) and the periodic
//! [`Protocol::obs_poll`](crate::protocol::Protocol::obs_poll)
//! callback, and each driver decides whether (and into what) to record
//! them. This module pins down the shared vocabulary: the trace-stage
//! enum, the span-key packing, and the metric name constants, so both
//! drivers and the report tooling agree on what every series means.

use crate::command::CommandId;

/// The stages of a command's life, in pipeline order. Drivers stamp the
/// driver-owned stages (submission, commit, execution, reply); protocols
/// stamp the ordering stages through
/// [`Context::trace`](crate::protocol::Context::trace).
///
/// The numeric value is the span stage index (all below
/// `rsm_obs::MAX_STAGES`), and stamps must be monotone along the enum
/// order — the breakdown terms are differences of adjacent stamped
/// stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum TraceStage {
    /// The client handed the command to its local replica.
    Submitted = 0,
    /// The protocol assigned the command its order coordinate (a
    /// Clock-RSM timestamp, a Paxos slot under a ballot, a Mencius
    /// slot) and started replicating it.
    Proposed = 1,
    /// A majority acknowledged the command's prepare/accept — the
    /// paper's prepare-replication term ends here.
    Replicated = 2,
    /// Clock-RSM only: the stable timestamp passed the command's
    /// timestamp (every replica's `LatestTV` caught up) — the paper's
    /// stable-wait term ends here.
    Stable = 3,
    /// The origin replica decided the command (all commit conditions
    /// held) and enqueued it for execution.
    Committed = 4,
    /// The origin replica's state machine executed the command.
    Executed = 5,
    /// The reply reached the issuing client (terminal).
    Replied = 6,
}

impl TraceStage {
    /// All stages in pipeline order.
    pub const ALL: [TraceStage; 7] = [
        TraceStage::Submitted,
        TraceStage::Proposed,
        TraceStage::Replicated,
        TraceStage::Stable,
        TraceStage::Committed,
        TraceStage::Executed,
        TraceStage::Replied,
    ];

    /// The span stage slot this stage stamps.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (JSON keys, test labels).
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Submitted => "submitted",
            TraceStage::Proposed => "proposed",
            TraceStage::Replicated => "replicated",
            TraceStage::Stable => "stable",
            TraceStage::Committed => "committed",
            TraceStage::Executed => "executed",
            TraceStage::Replied => "replied",
        }
    }
}

/// Packs a [`CommandId`] into the 64-bit span key drivers hand to the
/// tracer: origin site in the top 8 bits, client number in the middle
/// 32, command sequence (mod 2^24) in the bottom 24. Client retries
/// reuse their command id and therefore its key, so a retry re-enters
/// the same span. The packing is unique for deployments under 256
/// sites and per-client sequences under ~16.7M commands — beyond any
/// run in this workspace — and collision merely merges two spans.
pub fn span_key(id: CommandId) -> u64 {
    (u64::from(id.client.site().as_u16()) << 56)
        | (u64::from(id.client.number()) << 24)
        | (id.seq & 0xFF_FFFF)
}

/// Metric name constants. Driver-side recording prefixes each with the
/// replica (`r<id>.`), so e.g. replica 2's dedup hits appear as
/// `r2.session.dedup_hits` in a snapshot.
pub mod names {
    /// Commands the replica's state machine executed (one per command,
    /// batches counted per member).
    pub const EXECUTED: &str = "commands.executed";
    /// Duplicate writes absorbed by the session dedup window.
    pub const SESSION_DEDUP_HITS: &str = "session.dedup_hits";
    /// Stale (below-window) writes dropped by the session table.
    pub const SESSION_STALE_DROPS: &str = "session.stale_drops";
    /// The batch controller's current drain threshold.
    pub const BATCH_THRESHOLD: &str = "batch.threshold";
    /// Lag between the replica's clock and its stable timestamp, µs
    /// (Clock-RSM; the stable-wait a fresh command would pay locally).
    pub const STABLE_LAG_US: &str = "clock_rsm.stable_lag_us";
    /// Per-peer `LatestTV` staleness, µs (Clock-RSM; indexed by peer).
    pub const LATEST_TV_STALENESS_US: &str = "clock_rsm.latest_tv_staleness_us";
    /// Elections started (Paxos: a candidacy began).
    pub const ELECTIONS_STARTED: &str = "paxos.elections_started";
    /// Elections won (Paxos: this replica became leader).
    pub const ELECTIONS_WON: &str = "paxos.elections_won";
    /// The replica's current ballot number (Paxos).
    pub const BALLOT: &str = "paxos.ballot";
    /// Pre-vote rounds begun (Paxos).
    pub const PREVOTES: &str = "paxos.prevotes";
    /// Slots resolved as no-ops (skips) under an absent peer's skip
    /// promise (Mencius).
    pub const GAP_FILLS: &str = "mencius.gap_fills";
    /// Gap-fill requests sent while blocked on a missing slot (Mencius).
    pub const GAP_REQUESTS: &str = "mencius.gap_requests";
    /// Resync rounds started after a desync was detected (Mencius).
    pub const RESYNCS: &str = "mencius.resyncs";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ClientId, ReplicaId};

    #[test]
    fn stage_indexes_are_ordered_and_distinct() {
        let mut last = None;
        for stage in TraceStage::ALL {
            assert!(stage.index() < 8);
            if let Some(prev) = last {
                assert!(stage.index() > prev);
            }
            last = Some(stage.index());
        }
    }

    #[test]
    fn span_keys_distinguish_site_client_and_seq() {
        let id =
            |site, number, seq| CommandId::new(ClientId::new(ReplicaId::new(site), number), seq);
        let a = span_key(id(0, 0, 1));
        assert_ne!(a, span_key(id(1, 0, 1)));
        assert_ne!(a, span_key(id(0, 1, 1)));
        assert_ne!(a, span_key(id(0, 0, 2)));
        // Retries reuse the id, hence the key.
        assert_eq!(a, span_key(id(0, 0, 1)));
    }
}
