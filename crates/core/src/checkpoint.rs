//! Protocol-agnostic checkpointing and peer-to-peer state transfer.
//!
//! Section V-B of the paper: "Checkpointing can be used to avoid replaying
//! the whole log and speed up the recovery process." This module lifts that
//! mechanism out of any single protocol into a shared subsystem with three
//! pieces:
//!
//! * [`CheckpointPolicy`] / [`Checkpointer`] — *when* to checkpoint: every
//!   N applied commands and/or every M applied payload bytes, whichever
//!   trips first, optionally followed by **log compaction** (truncating
//!   log records at or below the checkpoint watermark).
//! * [`Checkpoint`] — *what* a checkpoint is: a canonical state machine
//!   snapshot plus the **applied watermark** (the protocol's own ordering
//!   coordinate — a Clock-RSM timestamp, a Paxos instance, a Mencius
//!   slot), and the epoch/configuration it was taken in.
//! * [`StateTransferRequest`] / [`StateTransferReply`] — the wire shapes
//!   of peer-to-peer checkpoint transfer: a replica that cannot make
//!   execution progress from its log and live traffic alone (committed
//!   holes whose proposals were lost while it was down, or holes whose
//!   retransmission history the owner has since pruned) asks any peer
//!   whose commit watermark covers the gap; the peer answers with a
//!   checkpoint, the requester installs it via
//!   [`Context::sm_install`](crate::protocol::Context::sm_install) and
//!   resumes — acknowledgements included — from the installed watermark.
//!
//! # Watermark and epoch invariants
//!
//! The whole subsystem rests on two invariants, shared by every protocol
//! in this workspace:
//!
//! 1. **Watermark coverage.** A checkpoint with applied watermark `w`
//!    reflects *exactly* the commands the protocol executed before `w` in
//!    its execution order — no more, no less. Because execution order is
//!    total and identical at every replica (the state machine safety
//!    property, Section II-B), installing a peer's checkpoint at `w` is
//!    indistinguishable from having executed that prefix locally.
//! 2. **Watermark finality.** Everything below a checkpoint's watermark
//!    is *globally decided*: the serving replica executed it, and a
//!    protocol only executes commands that are committed. Hence a
//!    requester that installs a checkpoint may also resume cumulative
//!    acknowledgements from `w` — vouching for a decided prefix adds no
//!    false quorum weight (the same argument that lets a recovered
//!    replica's cumulative ack jump a committed gap) — and may truncate
//!    its log below `w`: nothing there can ever be needed again, because
//!    any peer that still needs the prefix can be served a checkpoint
//!    instead of log records.
//!
//! The `epoch`/`config` fields pin the configuration the snapshot was
//! taken in. Protocols with reconfiguration (Clock-RSM) order epochs
//! before timestamps, so a checkpoint is only installable by a replica in
//! the same epoch; the static-membership baselines always carry
//! [`Epoch::ZERO`] and their fixed configuration.

use std::fmt;

use bytes::Bytes;

use crate::config::Epoch;
use crate::id::ReplicaId;
use crate::wire::{WireSize, MSG_HEADER_BYTES};

/// When a replica writes a checkpoint: after this many applied commands
/// and/or after this many applied payload bytes, whichever trips first.
///
/// `compact` additionally truncates the stable log at checkpoint time,
/// keeping only the checkpoint record and the records still above its
/// watermark — this is what bounds replica memory (and recovery time)
/// under long runs. Compaction assumes the recovering driver can restore
/// snapshots ([`Context::sm_install`](crate::protocol::Context::sm_install)
/// returns `true`); both in-tree drivers can.
///
/// # Examples
///
/// ```
/// use rsm_core::CheckpointPolicy;
/// let p = CheckpointPolicy::every(64).with_compaction(true);
/// assert!(p.enabled() && p.compact);
/// assert!(!CheckpointPolicy::DISABLED.enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint every this many applied commands (`None` = no count
    /// trigger).
    pub every_commits: Option<u64>,
    /// Checkpoint every this many applied payload bytes (`None` = no byte
    /// trigger).
    pub every_bytes: Option<u64>,
    /// Truncate the stable log at or below the watermark when a
    /// checkpoint is written or installed.
    pub compact: bool,
}

impl CheckpointPolicy {
    /// Checkpointing off: recovery replays the whole log.
    pub const DISABLED: CheckpointPolicy = CheckpointPolicy {
        every_commits: None,
        every_bytes: None,
        compact: false,
    };

    /// Checkpoint every `n` applied commands.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn every(n: u64) -> Self {
        assert!(n > 0, "checkpoint interval must be positive");
        CheckpointPolicy {
            every_commits: Some(n),
            ..CheckpointPolicy::DISABLED
        }
    }

    /// Checkpoint every `n` applied payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn every_bytes(n: u64) -> Self {
        assert!(n > 0, "checkpoint byte budget must be positive");
        CheckpointPolicy {
            every_bytes: Some(n),
            ..CheckpointPolicy::DISABLED
        }
    }

    /// Adds a command-count trigger.
    pub fn with_every(mut self, n: Option<u64>) -> Self {
        assert!(n != Some(0), "checkpoint interval must be positive");
        self.every_commits = n;
        self
    }

    /// Adds a byte-budget trigger.
    pub fn with_every_bytes(mut self, n: Option<u64>) -> Self {
        assert!(n != Some(0), "checkpoint byte budget must be positive");
        self.every_bytes = n;
        self
    }

    /// Enables or disables log compaction at checkpoint time.
    pub fn with_compaction(mut self, on: bool) -> Self {
        self.compact = on;
        self
    }

    /// Whether any trigger is configured.
    pub fn enabled(&self) -> bool {
        self.every_commits.is_some() || self.every_bytes.is_some()
    }
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy::DISABLED
    }
}

/// Tracks applied commands and bytes since the last checkpoint and decides
/// when the next one is due, per a [`CheckpointPolicy`].
///
/// Protocols call [`note_commit`](Checkpointer::note_commit) once per
/// executed command, check [`due`](Checkpointer::due) at a convenient
/// boundary (after an execution burst), and call
/// [`taken`](Checkpointer::taken) when the checkpoint record has actually
/// been written — `due` keeps answering `true` until then, so a driver
/// without snapshot support simply never resets the counters (and never
/// pays for them either).
#[derive(Debug, Clone)]
pub struct Checkpointer {
    policy: CheckpointPolicy,
    commits_since: u64,
    bytes_since: u64,
}

impl Checkpointer {
    /// A tracker for the given policy.
    pub fn new(policy: CheckpointPolicy) -> Self {
        Checkpointer {
            policy,
            commits_since: 0,
            bytes_since: 0,
        }
    }

    /// The policy this tracker enforces.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }

    /// Records one applied command of `payload_bytes` bytes.
    pub fn note_commit(&mut self, payload_bytes: usize) {
        if !self.policy.enabled() {
            return;
        }
        self.commits_since += 1;
        self.bytes_since += payload_bytes as u64;
    }

    /// Whether a checkpoint is due under the policy.
    pub fn due(&self) -> bool {
        let by_count = self
            .policy
            .every_commits
            .is_some_and(|n| self.commits_since >= n);
        let by_bytes = self
            .policy
            .every_bytes
            .is_some_and(|n| self.bytes_since >= n);
        by_count || by_bytes
    }

    /// Resets the counters after a checkpoint was durably written.
    pub fn taken(&mut self) {
        self.commits_since = 0;
        self.bytes_since = 0;
    }
}

/// A protocol-agnostic checkpoint: a state machine snapshot pinned to an
/// applied watermark and the epoch/configuration it was taken in.
///
/// `W` is the protocol's execution-order coordinate (Clock-RSM
/// `Timestamp`, Paxos instance `u64`, Mencius slot `u64`); each protocol
/// documents whether its watermark is inclusive or exclusive. See the
/// module docs for the invariants a checkpoint must satisfy.
#[derive(Clone, PartialEq, Eq)]
pub struct Checkpoint<W> {
    /// The applied watermark: the snapshot reflects exactly the commands
    /// the protocol executed before (or through — protocol-defined) this
    /// coordinate.
    pub applied: W,
    /// The epoch the snapshot was taken in.
    pub epoch: Epoch,
    /// The configuration at snapshot time.
    pub config: Vec<ReplicaId>,
    /// Canonical state machine snapshot
    /// ([`StateMachine::snapshot`](crate::sm::StateMachine::snapshot)).
    pub snapshot: Bytes,
    /// The replica's client-session dedup window at the watermark
    /// ([`SessionTable::export`](crate::session::SessionTable::export)):
    /// riding the checkpoint is what keeps the exactly-once guarantee
    /// alive across recovery, log compaction, and state transfer. Empty
    /// when the protocol tracks no sessions.
    pub sessions: Bytes,
}

impl<W: fmt::Debug> fmt::Debug for Checkpoint<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Checkpoint(applied: {:?}, epoch: {:?}, {}B)",
            self.applied,
            self.epoch,
            self.snapshot.len()
        )
    }
}

impl<W> WireSize for Checkpoint<W> {
    fn wire_size(&self) -> usize {
        // watermark + epoch + config ids + length-prefixed snapshot and
        // session table.
        8 + 8 + 2 * self.config.len() + 4 + self.snapshot.len() + 4 + self.sessions.len()
    }
}

/// A replica asks a peer for its latest checkpoint covering everything the
/// requester has already executed.
///
/// Sent when execution cannot progress from the log and live traffic
/// alone: a Paxos replica stalled at a committed hole whose `ACCEPT` was
/// lost while it was down, or a Mencius replica stalled at a hole whose
/// owner has pruned the retransmission history past its retention cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateTransferRequest<W> {
    /// The requester's applied watermark: it has executed everything
    /// strictly below this coordinate. Any checkpoint with
    /// `applied > have` helps.
    pub have: W,
}

impl<W> WireSize for StateTransferRequest<W> {
    fn wire_size(&self) -> usize {
        MSG_HEADER_BYTES + 8
    }
}

/// A peer's answer to a [`StateTransferRequest`]: its checkpoint (taken on
/// demand from the live state machine, so it always covers the peer's own
/// applied prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTransferReply<W> {
    /// The checkpoint; `applied` exceeds the request's `have` or the peer
    /// would not have answered.
    pub checkpoint: Checkpoint<W>,
}

impl<W> WireSize for StateTransferReply<W> {
    fn wire_size(&self) -> usize {
        MSG_HEADER_BYTES + self.checkpoint.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_fires() {
        let mut c = Checkpointer::new(CheckpointPolicy::DISABLED);
        for _ in 0..1_000 {
            c.note_commit(1 << 20);
        }
        assert!(!c.due());
    }

    #[test]
    fn count_trigger_fires_at_interval() {
        let mut c = Checkpointer::new(CheckpointPolicy::every(3));
        c.note_commit(0);
        c.note_commit(0);
        assert!(!c.due());
        c.note_commit(0);
        assert!(c.due());
        // Stays due until taken (driver may lack snapshot support).
        c.note_commit(0);
        assert!(c.due());
        c.taken();
        assert!(!c.due());
    }

    #[test]
    fn byte_trigger_fires_before_count() {
        let policy = CheckpointPolicy::every(1_000).with_every_bytes(Some(100));
        let mut c = Checkpointer::new(policy);
        c.note_commit(64);
        assert!(!c.due());
        c.note_commit(64);
        assert!(c.due(), "128 bytes over a 100-byte budget");
        c.taken();
        assert!(!c.due());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = CheckpointPolicy::every(0);
    }

    #[test]
    fn wire_sizes_scale_with_snapshot() {
        let small = Checkpoint {
            applied: 5u64,
            epoch: Epoch::ZERO,
            config: vec![ReplicaId::new(0), ReplicaId::new(1)],
            snapshot: Bytes::from(vec![0u8; 10]),
            sessions: Bytes::new(),
        };
        let large = Checkpoint {
            snapshot: Bytes::from(vec![0u8; 1_000]),
            ..small.clone()
        };
        assert_eq!(large.wire_size() - small.wire_size(), 990);
        let req: StateTransferRequest<u64> = StateTransferRequest { have: 1 };
        assert_eq!(req.wire_size(), MSG_HEADER_BYTES + 8);
        let reply = StateTransferReply { checkpoint: large };
        assert!(reply.wire_size() > 1_000);
    }
}
