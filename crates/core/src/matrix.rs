//! Inter-replica latency matrices.

use std::fmt;

use crate::id::ReplicaId;
use crate::time::{Micros, MILLIS};

/// A symmetric matrix of **one-way** message latencies between replicas,
/// in microseconds.
///
/// This is `d(r_i, r_j)` from Section IV of the paper: the paper assumes
/// symmetric network latency (`d(r_i, r_j) = d(r_j, r_i)`) and measures
/// round-trip times between EC2 data centers (Table III); the matrix stores
/// half of each RTT. `d(r_i, r_i)` is zero.
///
/// The same type feeds both the analytical model (`analysis` crate,
/// Table II formulas) and the discrete-event simulator (`simnet`), so the
/// two can be cross-checked against each other in tests.
///
/// # Examples
///
/// ```
/// use rsm_core::{LatencyMatrix, ReplicaId};
/// // Three sites; RTTs in ms: 0-1: 80, 0-2: 160, 1-2: 100.
/// let m = LatencyMatrix::from_rtt_ms(&[
///     vec![0.0, 80.0, 160.0],
///     vec![80.0, 0.0, 100.0],
///     vec![160.0, 100.0, 0.0],
/// ]);
/// let (a, b) = (ReplicaId::new(0), ReplicaId::new(1));
/// assert_eq!(m.one_way(a, b), 40_000); // half of 80 ms, in µs
/// assert_eq!(m.one_way(a, a), 0);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyMatrix {
    /// `one_way[i][j]` = one-way latency from replica `i` to replica `j`.
    one_way: Vec<Vec<Micros>>,
}

impl LatencyMatrix {
    /// Builds a matrix from **one-way** latencies in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, has a non-zero diagonal, or is
    /// asymmetric (the paper's model assumes symmetric latencies).
    pub fn from_one_way_micros(one_way: Vec<Vec<Micros>>) -> Self {
        let n = one_way.len();
        assert!(n > 0, "latency matrix must be non-empty");
        for (i, row) in one_way.iter().enumerate() {
            assert_eq!(row.len(), n, "latency matrix must be square");
            assert_eq!(row[i], 0, "diagonal must be zero");
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, one_way[j][i], "latency matrix must be symmetric");
            }
        }
        LatencyMatrix { one_way }
    }

    /// Builds a matrix from **round-trip** times in milliseconds, the format
    /// of Table III of the paper. One-way latency is RTT/2.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`from_one_way_micros`]
    /// (checked after conversion).
    ///
    /// [`from_one_way_micros`]: LatencyMatrix::from_one_way_micros
    pub fn from_rtt_ms(rtt_ms: &[Vec<f64>]) -> Self {
        let one_way = rtt_ms
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&rtt| (rtt * MILLIS as f64 / 2.0).round() as Micros)
                    .collect()
            })
            .collect();
        Self::from_one_way_micros(one_way)
    }

    /// Builds a uniform matrix where every distinct pair is `one_way_us`
    /// apart. Handy for tests and for the "uniform latency" thought
    /// experiment of Section IV-D.
    pub fn uniform(n: usize, one_way_us: Micros) -> Self {
        let one_way = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| if i == j { 0 } else { one_way_us })
                    .collect()
            })
            .collect();
        Self::from_one_way_micros(one_way)
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.one_way.len()
    }

    /// Whether the matrix is empty (never true for a constructed matrix).
    pub fn is_empty(&self) -> bool {
        self.one_way.is_empty()
    }

    /// One-way latency `d(from, to)` in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if either replica index is out of range.
    pub fn one_way(&self, from: ReplicaId, to: ReplicaId) -> Micros {
        self.one_way[from.index()][to.index()]
    }

    /// Round-trip latency `2·d(from, to)` in microseconds.
    pub fn rtt(&self, from: ReplicaId, to: ReplicaId) -> Micros {
        2 * self.one_way(from, to)
    }

    /// All one-way latencies from `from` (including the zero to itself),
    /// i.e. the multiset `{d(from, r_k) | ∀ r_k ∈ R}` of Section IV.
    pub fn distances_from(&self, from: ReplicaId) -> Vec<Micros> {
        self.one_way[from.index()].clone()
    }

    /// `median({d(from, r_k) | ∀ r_k ∈ R})` as the paper uses it: the
    /// distance to the majority-th closest replica, counting `from` itself
    /// at distance zero. For `n` replicas this is the element at (0-based)
    /// index `n/2` of the sorted distance list — the true median for odd
    /// `n`, the upper median for even `n`, matching `⌊n/2⌋ + 1` majorities.
    pub fn median_from(&self, from: ReplicaId) -> Micros {
        let mut d = self.distances_from(from);
        d.sort_unstable();
        d[d.len() / 2]
    }

    /// `max({d(from, r_k) | ∀ r_k ∈ R})`: distance to the farthest replica.
    pub fn max_from(&self, from: ReplicaId) -> Micros {
        *self.one_way[from.index()].iter().max().expect("non-empty")
    }

    /// `median({d(via, r_k) + d(r_k, to) | ∀ r_k ∈ R})`: the two-hop
    /// majority latency from `via` to `to` through intermediate replicas.
    /// Used by the prefix-replication term of Clock-RSM and the non-leader
    /// latency of Paxos-bcast (Table II).
    pub fn median_two_hop(&self, via: ReplicaId, to: ReplicaId) -> Micros {
        let n = self.len();
        let mut d: Vec<Micros> = (0..n)
            .map(|k| {
                let rk = ReplicaId::new(k as u16);
                self.one_way(via, rk) + self.one_way(rk, to)
            })
            .collect();
        d.sort_unstable();
        d[n / 2]
    }

    /// Restricts the matrix to the given replicas, renumbering them densely
    /// in the given order. Used by the numerical evaluation (Figure 7,
    /// Table IV) to form every 3/5/7-site subgroup of the EC2 matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or duplicated.
    pub fn subgroup(&self, sites: &[usize]) -> LatencyMatrix {
        let mut seen = vec![false; self.len()];
        for &s in sites {
            assert!(s < self.len(), "site index {s} out of range");
            assert!(!seen[s], "site index {s} duplicated");
            seen[s] = true;
        }
        let one_way = sites
            .iter()
            .map(|&i| sites.iter().map(|&j| self.one_way[i][j]).collect())
            .collect();
        LatencyMatrix { one_way }
    }

    /// Iterates over all replica ids covered by this matrix.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.len() as u16).map(ReplicaId::new)
    }
}

impl fmt::Debug for LatencyMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "LatencyMatrix (one-way ms):")?;
        for row in &self.one_way {
            for d in row {
                write!(f, "{:>7.1}", *d as f64 / MILLIS as f64)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_site() -> LatencyMatrix {
        LatencyMatrix::from_rtt_ms(&[
            vec![0.0, 80.0, 160.0],
            vec![80.0, 0.0, 100.0],
            vec![160.0, 100.0, 0.0],
        ])
    }

    #[test]
    fn rtt_halved_to_one_way() {
        let m = three_site();
        assert_eq!(m.one_way(ReplicaId::new(0), ReplicaId::new(2)), 80_000);
        assert_eq!(m.rtt(ReplicaId::new(0), ReplicaId::new(2)), 160_000);
    }

    #[test]
    fn median_counts_self_at_zero() {
        let m = three_site();
        // Distances from r0: [0, 40ms, 80ms] -> median (index 1) = 40ms.
        assert_eq!(m.median_from(ReplicaId::new(0)), 40_000);
        // From r1: [40ms, 0, 50ms] sorted [0, 40, 50] -> 40ms.
        assert_eq!(m.median_from(ReplicaId::new(1)), 40_000);
    }

    #[test]
    fn max_from_is_farthest() {
        let m = three_site();
        assert_eq!(m.max_from(ReplicaId::new(0)), 80_000);
        assert_eq!(m.max_from(ReplicaId::new(1)), 50_000);
    }

    #[test]
    fn two_hop_median() {
        let m = three_site();
        let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
        // via r0 -> k -> r1 for k in {0,1,2}: [0+40, 40+0, 80+50] = [40,40,130]
        // sorted [40,40,130], index 1 -> 40ms.
        assert_eq!(m.median_two_hop(r0, r1), 40_000);
    }

    #[test]
    fn uniform_matrix() {
        let m = LatencyMatrix::uniform(5, 10_000);
        assert_eq!(m.len(), 5);
        assert_eq!(m.median_from(ReplicaId::new(2)), 10_000);
        assert_eq!(m.max_from(ReplicaId::new(2)), 10_000);
    }

    #[test]
    fn subgroup_renumbers() {
        let m = three_site();
        let s = m.subgroup(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.one_way(ReplicaId::new(0), ReplicaId::new(1)), 80_000);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        LatencyMatrix::from_one_way_micros(vec![vec![0, 1], vec![2, 0]]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        LatencyMatrix::from_one_way_micros(vec![vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "duplicated")]
    fn subgroup_rejects_duplicates() {
        three_site().subgroup(&[0, 0]);
    }
}
