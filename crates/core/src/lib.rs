//! # rsm-core
//!
//! Shared vocabulary types and the **sans-io protocol abstraction** used by
//! the Clock-RSM reproduction (Du et al., DSN 2014).
//!
//! Every replication protocol in this workspace — [Clock-RSM], Multi-Paxos,
//! Paxos-bcast, and Mencius-bcast — is written as a deterministic,
//! event-driven state machine implementing the [`Protocol`] trait. A protocol
//! never touches a socket, a disk, or a wall clock directly: all its
//! interactions with the outside world go through a [`Context`], which the
//! embedding driver provides. Two drivers exist in this workspace:
//!
//! * `simnet` — a deterministic discrete-event simulator with virtual time,
//!   a configurable wide-area latency matrix, loosely synchronized physical
//!   clocks, stable storage, and fault injection. All paper experiments run
//!   on it.
//! * `rsm-runtime` — a threaded real-time runtime that emulates WAN latency
//!   with real delays, demonstrating that the same protocol cores run
//!   unmodified outside the simulator.
//!
//! The split mirrors the paper's model (Section II): an asynchronous message
//! passing system, FIFO channels, crash-recovery failures, stable storage,
//! and loosely synchronized physical clocks whose precision affects only
//! performance, never safety.
//!
//! ## Batching
//!
//! Every protocol in the workspace replicates whole [`Batch`]es of client
//! commands: drivers coalesce queued requests (up to
//! [`BatchPolicy::max_batch`] commands and [`BatchPolicy::max_bytes`] of
//! payload, never waiting intentionally) and deliver them via
//! [`Protocol::on_client_batch`]; protocols bind each batch to a
//! contiguous run of ordering coordinates and acknowledge it with one
//! cumulative watermark message. `BatchPolicy::DISABLED` (the default
//! everywhere) reproduces per-command behaviour exactly — batching is
//! never observable in the committed sequence, only in throughput.
//!
//! The flush threshold can also adapt to load: an
//! [`adaptive`](BatchPolicy::adaptive) policy gives each driver node a
//! [`BatchController`] that widens batches as its inbox deepens and
//! narrows them back when load (and commit latency) subsides, so a
//! single knob serves both light-load latency and heavy-load
//! amortization. Batches themselves are `Arc`-shared, so the per-peer
//! message clones of a broadcast never deep-copy command payloads.
//!
//! ## Linearizable reads
//!
//! The [`read`] module is the protocol-agnostic half of the local read
//! subsystem: a [`ReadPath`] capability each protocol reports, a
//! [`ReadQueue`] parking pending reads against a watermark, and the
//! [`ReadRequest`]/[`ReadReply`] quorum-probe wire shapes. Drivers route
//! commands marked [`Command::read_only`] to
//! [`Protocol::on_client_read`] **outside** the write batching pipeline
//! (a `Get` is never delayed behind a flush threshold), and protocols
//! serve them from the local state machine via
//! [`Context::sm_read`]/[`Context::send_reply`] once their stable
//! prefix provably covers the read. See the module docs for the
//! critical invariant split: where clock skew is latency-only
//! (Clock-RSM stable-timestamp reads) versus where a bounded-skew
//! assumption is load-bearing (Paxos leader-lease reads).
//!
//! ## Checkpointing & state transfer
//!
//! The [`checkpoint`] module (Section V-B of the paper) is shared by all
//! protocols: a [`CheckpointPolicy`] schedules periodic state machine
//! snapshots (every N commands / M bytes), optionally compacting the
//! stable log below the checkpoint watermark, and the
//! [`StateTransferRequest`]/[`StateTransferReply`] wire shapes let a
//! recovered replica install a peer's checkpoint when nothing can
//! retransmit what it missed — turning recovery from "sound only if the
//! outage was short" into "sound for any outage length" while bounding
//! per-replica memory. See the module docs for the watermark and epoch
//! invariants.
//!
//! [Clock-RSM]: https://doi.org/10.1109/DSN.2014.42
//!
//! ## Example
//!
//! ```
//! use rsm_core::{Command, CommandId, ClientId, ReplicaId, Timestamp};
//! use bytes::Bytes;
//!
//! let origin = ReplicaId::new(0);
//! let client = ClientId::new(origin, 7);
//! let cmd = Command::new(CommandId::new(client, 1), Bytes::from_static(b"put k v"));
//! let ts = Timestamp::new(1_000_000, origin);
//! assert!(ts < Timestamp::new(1_000_000, ReplicaId::new(1)));
//! assert_eq!(cmd.id.client, client);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod checkpoint;
pub mod command;
pub mod config;
pub mod error;
pub mod id;
pub mod lease;
pub mod matrix;
pub mod obs;
pub mod protocol;
pub mod read;
pub mod session;
pub mod sm;
pub mod time;
pub mod wire;

pub use batch::{Batch, BatchController, BatchPolicy};
pub use checkpoint::{
    Checkpoint, CheckpointPolicy, Checkpointer, StateTransferReply, StateTransferRequest,
};
pub use command::{Command, CommandId, Committed, Reply};
pub use config::{Epoch, Membership};
pub use error::{ProtocolError, Result};
pub use id::{ClientId, ReplicaId};
pub use lease::{Lease, LeaseConfig};
pub use matrix::LatencyMatrix;
pub use obs::TraceStage;
pub use protocol::{Context, Protocol, TimerToken};
pub use read::{ReadPath, ReadProbes, ReadQueue, ReadReply, ReadRequest};
pub use session::{
    ClientSession, SessionCheck, SessionEvict, SessionOpen, SessionRetry, SessionTable,
    DEFAULT_SESSION_WINDOW,
};
pub use sm::StateMachine;
pub use time::{Micros, Timestamp};
pub use wire::{
    decode_payload, encode_payload, FrameHeader, WireDecode, WireEncode, WireError, WireMsg,
    WireReader, WireSize, MSG_HEADER_BYTES,
};
