//! Wire-size accounting for protocol messages.

use crate::command::Command;

/// Number of bytes a value occupies on the wire.
///
/// The discrete-event simulator's CPU model (used by the throughput
/// experiments, Figure 8 of the paper) charges per-byte costs for message
/// sending and receiving; each protocol implements `WireSize` for its
/// message type. Sizes are estimates of a compact binary encoding — a small
/// fixed header per message plus any command payload — which is what the
/// paper's Protocol Buffers encoding amounts to for these simple message
/// shapes.
pub trait WireSize {
    /// Estimated encoded size in bytes.
    fn wire_size(&self) -> usize;
}

/// Fixed per-message header estimate: message type tag, sender, epoch,
/// timestamps/sequence numbers. Matches a compact binary framing.
pub const MSG_HEADER_BYTES: usize = 32;

impl WireSize for () {
    fn wire_size(&self) -> usize {
        MSG_HEADER_BYTES
    }
}

impl WireSize for Command {
    fn wire_size(&self) -> usize {
        // id (client site + number + seq) + length prefix + payload,
        // plus the optional pinned snapshot timestamp
        24 + if self.read_at.is_some() { 8 } else { 0 } + self.payload.len()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandId;
    use crate::id::{ClientId, ReplicaId};
    use bytes::Bytes;

    #[test]
    fn command_size_scales_with_payload() {
        let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1);
        let small = Command::new(id, Bytes::from(vec![0; 10]));
        let large = Command::new(id, Bytes::from(vec![0; 1000]));
        assert_eq!(large.wire_size() - small.wire_size(), 990);
    }

    #[test]
    fn option_and_vec_compose() {
        let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1);
        let c = Command::new(id, Bytes::from(vec![0; 8]));
        assert_eq!(Some(c.clone()).wire_size(), 1 + c.wire_size());
        assert_eq!(None::<Command>.wire_size(), 1);
        assert_eq!(
            vec![c.clone(), c.clone()].wire_size(),
            4 + 2 * c.wire_size()
        );
    }
}
