//! Wire format: framing, binary codecs, and size accounting.
//!
//! Everything replicas exchange over a real transport is carried in
//! **length-prefixed frames** with a fixed 32-byte header
//! ([`MSG_HEADER_BYTES`]) followed by the message payload:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     4  magic        0x52534D57 ("RSMW", big-endian)
//!      4     2  version      wire format version (WIRE_VERSION)
//!      6     2  flags        reserved; zero on send, ignored on receive
//!      8     2  from         sending replica id
//!     10     2  to           destination replica id
//!     12     4  payload_len  payload bytes following the header
//!     16     8  seq          per-link frame sequence (diagnostics)
//!     24     4  checksum     FNV-1a 32 over the payload
//!     28     4  reserved     zero
//! ```
//!
//! All integers are big-endian. The payload is the [`WireEncode`]
//! encoding of one protocol message; enum messages lead with a one-byte
//! variant tag. A decoder must consume the payload **exactly** —
//! leftover bytes are a [`WireError::TrailingBytes`] error, so a frame
//! can never smuggle garbage past the codec.
//!
//! # Versioning rule
//!
//! The format is version-gated, not self-describing: a receiver rejects
//! any frame whose `version` differs from its own [`WIRE_VERSION`]
//! ([`WireError::BadVersion`]) — there is no negotiation and no
//! cross-version decoding. **Any** change to the frame layout, to a
//! message's field order, or to an enum's variant tags requires bumping
//! [`WIRE_VERSION`]. Within a version, the only compatible evolution is
//! via the reserved `flags` field (zero on send, ignored on receive) and
//! by appending new enum variants with previously unused tags (old
//! receivers reject them cleanly as [`WireError::BadTag`]).
//!
//! # Zero-copy discipline
//!
//! Decoding is zero-copy for bulk data: a [`WireReader`] wraps the
//! received payload [`Bytes`] and hands out sub-slices sharing the same
//! backing storage ([`WireReader::take_bytes`]), so a decoded command's
//! payload references the receive buffer instead of copying it. On the
//! encode side, a broadcast encodes its message **once** and shares the
//! encoded buffer across per-peer frames (only the 32-byte header is
//! per-peer); [`WireMsg::shares_encoding`] is the hook a send path uses
//! to recognize the clones of one broadcast (batch messages compare
//! their [`Batch`] by `Arc` identity).
//!
//! # Examples
//!
//! ```
//! use rsm_core::wire::{decode_payload, encode_payload, WireDecode, WireEncode};
//! use rsm_core::{Command, CommandId, ClientId, ReplicaId};
//! use bytes::Bytes;
//!
//! let cmd = Command::new(
//!     CommandId::new(ClientId::new(ReplicaId::new(1), 7), 42),
//!     Bytes::from_static(b"set k v"),
//! );
//! let payload = encode_payload(&cmd);
//! let back: Command = decode_payload(payload).unwrap();
//! assert_eq!(back, cmd);
//! ```

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::batch::Batch;
use crate::checkpoint::{Checkpoint, StateTransferReply, StateTransferRequest};
use crate::command::{Command, CommandId, Reply};
use crate::config::Epoch;
use crate::id::{ClientId, ReplicaId};
use crate::read::{ReadReply, ReadRequest};
use crate::session::{SessionEvict, SessionOpen, SessionRetry};
use crate::time::Timestamp;

/// Number of bytes a value occupies on the wire.
///
/// The discrete-event simulator's CPU model (used by the throughput
/// experiments, Figure 8 of the paper) charges per-byte costs for message
/// sending and receiving; each protocol implements `WireSize` for its
/// message type. Sizes are estimates of a compact binary encoding — a small
/// fixed header per message plus any command payload — which is what the
/// real frame codec in this module produces for these simple message
/// shapes.
pub trait WireSize {
    /// Estimated encoded size in bytes.
    fn wire_size(&self) -> usize;
}

/// Fixed per-message frame header size: magic, version, route, length,
/// sequence, checksum (see the [module docs](self) for the exact layout).
pub const MSG_HEADER_BYTES: usize = 32;

/// Frame magic, `"RSMW"` big-endian.
pub const FRAME_MAGIC: u32 = 0x5253_4D57;

/// Current wire format version (see the module-level versioning rule).
pub const WIRE_VERSION: u16 = 1;

/// Upper bound on a frame's payload length; a header announcing more is
/// rejected before any allocation (a corrupt or hostile length prefix
/// must not OOM the receiver).
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

impl WireSize for () {
    fn wire_size(&self) -> usize {
        MSG_HEADER_BYTES
    }
}

impl WireSize for Command {
    fn wire_size(&self) -> usize {
        // id (client site + number + seq) + length prefix + payload,
        // plus the optional pinned snapshot timestamp
        24 + if self.read_at.is_some() { 8 } else { 0 } + self.payload.len()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value it promised.
    Truncated,
    /// The frame header's magic was not [`FRAME_MAGIC`].
    BadMagic(u32),
    /// The frame's wire version differs from [`WIRE_VERSION`].
    BadVersion(u16),
    /// An enum payload carried an unknown variant tag.
    BadTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The payload checksum did not match the header's.
    BadChecksum,
    /// Bytes were left over after the payload decoded completely.
    TrailingBytes(usize),
    /// The header announced a payload larger than [`MAX_FRAME_PAYLOAD`].
    FrameTooLarge(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated mid-value"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => {
                write!(f, "wire version {v} (expected {WIRE_VERSION})")
            }
            WireError::BadTag { ty, tag } => write!(f, "unknown {ty} tag {tag}"),
            WireError::BadChecksum => write!(f, "payload checksum mismatch"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::FrameTooLarge(n) => {
                write!(f, "payload of {n} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 32-bit checksum of the payload (cheap, catches the torn and
/// bit-flipped frames a length-prefixed stream is exposed to; not a
/// cryptographic integrity guarantee).
pub fn checksum(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in payload {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A fallible big-endian read cursor over a received payload.
///
/// Wraps [`Bytes`] so bulk reads ([`take_bytes`](WireReader::take_bytes))
/// share the receive buffer's storage instead of copying.
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// A reader over `buf`.
    pub fn new(buf: Bytes) -> Self {
        WireReader { buf }
    }

    /// Bytes left to consume.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.buf.len() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        self.need(2)?;
        Ok(self.buf.get_u16())
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    /// Reads a `bool` encoded as one byte (0 or 1; anything else is a
    /// [`WireError::BadTag`]).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { ty: "bool", tag }),
        }
    }

    /// Takes the next `len` bytes **zero-copy**: the returned [`Bytes`]
    /// shares the receive buffer's backing storage.
    pub fn take_bytes(&mut self, len: usize) -> Result<Bytes, WireError> {
        self.need(len)?;
        Ok(self.buf.split_to(len))
    }
}

/// A value with a canonical binary encoding (see the [module docs](self)
/// for the format rules).
pub trait WireEncode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
}

/// A value decodable from its [`WireEncode`] encoding.
pub trait WireDecode: Sized {
    /// Decodes one value, consuming exactly its encoding from `r`.
    fn decode(r: &mut WireReader) -> Result<Self, WireError>;
}

/// A message type a transport can frame: codec plus the shared-encoding
/// test that powers encode-once broadcasts.
pub trait WireMsg: WireEncode + WireDecode + Clone + Send + 'static {
    /// Whether `self` is a clone of `prev` with an identical encoding, so
    /// a send path may reuse `prev`'s encoded buffer instead of encoding
    /// again. Must only return `true` when the encodings are literally
    /// byte-identical; batch-bearing messages implement this by comparing
    /// their [`Batch`] by `Arc` identity plus the
    /// scalar fields, which is exactly the shape of a broadcast's clones.
    /// `false` is always safe (it merely re-encodes).
    fn shares_encoding(&self, _prev: &Self) -> bool {
        false
    }
}

/// Encodes a value into a fresh payload buffer.
pub fn encode_payload<M: WireEncode + ?Sized>(msg: &M) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    msg.encode(&mut buf);
    buf.freeze()
}

/// Decodes a complete payload, rejecting leftover bytes
/// ([`WireError::TrailingBytes`]).
pub fn decode_payload<M: WireDecode>(payload: Bytes) -> Result<M, WireError> {
    let mut r = WireReader::new(payload);
    let msg = M::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(msg)
}

/// A decoded frame header (see the [module docs](self) for the layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sending replica.
    pub from: ReplicaId,
    /// Destination replica.
    pub to: ReplicaId,
    /// Payload length in bytes.
    pub len: u32,
    /// Per-link frame sequence number, strictly increasing. Receivers
    /// drop non-increasing sequences so a reconnect resend of frames the
    /// sender could not prove fully written never duplicates delivery.
    pub seq: u64,
    /// FNV-1a 32 checksum of the payload.
    pub checksum: u32,
}

impl FrameHeader {
    /// Builds the header for `payload` on the `from → to` link.
    pub fn for_payload(from: ReplicaId, to: ReplicaId, seq: u64, payload: &[u8]) -> Self {
        FrameHeader {
            from,
            to,
            len: payload.len() as u32,
            seq,
            checksum: checksum(payload),
        }
    }

    /// Encodes the header into its fixed 32-byte form.
    pub fn encode(&self) -> [u8; MSG_HEADER_BYTES] {
        let mut h = [0u8; MSG_HEADER_BYTES];
        h[0..4].copy_from_slice(&FRAME_MAGIC.to_be_bytes());
        h[4..6].copy_from_slice(&WIRE_VERSION.to_be_bytes());
        // 6..8 flags: reserved, zero.
        h[8..10].copy_from_slice(&self.from.as_u16().to_be_bytes());
        h[10..12].copy_from_slice(&self.to.as_u16().to_be_bytes());
        h[12..16].copy_from_slice(&self.len.to_be_bytes());
        h[16..24].copy_from_slice(&self.seq.to_be_bytes());
        h[24..28].copy_from_slice(&self.checksum.to_be_bytes());
        // 28..32 reserved, zero.
        h
    }

    /// Decodes and validates a 32-byte header: magic, version, and the
    /// announced length against [`MAX_FRAME_PAYLOAD`]. The payload
    /// checksum is verified separately once the payload has been read
    /// ([`FrameHeader::verify_payload`]).
    pub fn decode(h: &[u8; MSG_HEADER_BYTES]) -> Result<Self, WireError> {
        let magic = u32::from_be_bytes(h[0..4].try_into().unwrap());
        if magic != FRAME_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_be_bytes(h[4..6].try_into().unwrap());
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let len = u32::from_be_bytes(h[12..16].try_into().unwrap());
        if len as usize > MAX_FRAME_PAYLOAD {
            return Err(WireError::FrameTooLarge(len as usize));
        }
        Ok(FrameHeader {
            from: ReplicaId::new(u16::from_be_bytes(h[8..10].try_into().unwrap())),
            to: ReplicaId::new(u16::from_be_bytes(h[10..12].try_into().unwrap())),
            len,
            seq: u64::from_be_bytes(h[16..24].try_into().unwrap()),
            checksum: u32::from_be_bytes(h[24..28].try_into().unwrap()),
        })
    }

    /// Checks `payload` against the header's checksum.
    pub fn verify_payload(&self, payload: &[u8]) -> Result<(), WireError> {
        if payload.len() != self.len as usize || checksum(payload) != self.checksum {
            return Err(WireError::BadChecksum);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Codec impls for primitives and the shared protocol vocabulary.
// ---------------------------------------------------------------------

impl WireEncode for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
}
impl WireDecode for u8 {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        r.u8()
    }
}

impl WireEncode for u16 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(*self);
    }
}
impl WireDecode for u16 {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        r.u16()
    }
}

impl WireEncode for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(*self);
    }
}
impl WireDecode for u32 {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        r.u32()
    }
}

impl WireEncode for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(*self);
    }
}
impl WireDecode for u64 {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        r.u64()
    }
}

impl WireEncode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
}
impl WireDecode for bool {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        r.bool()
    }
}

impl WireEncode for () {
    fn encode(&self, _buf: &mut BytesMut) {}
}
impl WireDecode for () {
    fn decode(_r: &mut WireReader) -> Result<Self, WireError> {
        Ok(())
    }
}
impl WireMsg for () {
    fn shares_encoding(&self, _prev: &Self) -> bool {
        true
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}
impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag { ty: "Option", tag }),
        }
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.len() as u32);
        for v in self {
            v.encode(buf);
        }
    }
}
impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let len = r.u32()? as usize;
        // Cap the pre-allocation: a corrupt length prefix must not OOM
        // before Truncated is detected element by element.
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}
impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl WireEncode for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.len() as u32);
        buf.put_slice(self);
    }
}
impl WireDecode for Bytes {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let len = r.u32()? as usize;
        r.take_bytes(len)
    }
}

impl WireEncode for ReplicaId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.as_u16());
    }
}
impl WireDecode for ReplicaId {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(ReplicaId::new(r.u16()?))
    }
}

impl WireEncode for ClientId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.site().as_u16());
        buf.put_u32(self.number());
    }
}
impl WireDecode for ClientId {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let site = ReplicaId::new(r.u16()?);
        Ok(ClientId::new(site, r.u32()?))
    }
}

impl WireEncode for CommandId {
    fn encode(&self, buf: &mut BytesMut) {
        self.client.encode(buf);
        buf.put_u64(self.seq);
    }
}
impl WireDecode for CommandId {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(CommandId {
            client: ClientId::decode(r)?,
            seq: r.u64()?,
        })
    }
}

impl WireEncode for Timestamp {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.micros());
        buf.put_u16(self.replica().as_u16());
    }
}
impl WireDecode for Timestamp {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let micros = r.u64()?;
        Ok(Timestamp::new(micros, ReplicaId::new(r.u16()?)))
    }
}

impl WireEncode for Epoch {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.0);
    }
}
impl WireDecode for Epoch {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Epoch(r.u64()?))
    }
}

impl WireEncode for Command {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        buf.put_u8(self.read_only as u8);
        self.read_at.encode(buf);
        self.payload.encode(buf);
    }
}
impl WireDecode for Command {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let id = CommandId::decode(r)?;
        let read_only = r.bool()?;
        let read_at = Option::<u64>::decode(r)?;
        let payload = Bytes::decode(r)?;
        Ok(Command {
            id,
            payload,
            read_only,
            read_at,
        })
    }
}

impl WireEncode for Reply {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.result.encode(buf);
    }
}
impl WireDecode for Reply {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let id = CommandId::decode(r)?;
        let result = Bytes::decode(r)?;
        Ok(Reply::new(id, result))
    }
}

impl WireEncode for SessionOpen {
    fn encode(&self, buf: &mut BytesMut) {
        self.client.encode(buf);
    }
}
impl WireDecode for SessionOpen {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(SessionOpen {
            client: ClientId::decode(r)?,
        })
    }
}

impl WireEncode for SessionRetry {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
    }
}
impl WireDecode for SessionRetry {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(SessionRetry {
            id: CommandId::decode(r)?,
        })
    }
}

impl WireEncode for SessionEvict {
    fn encode(&self, buf: &mut BytesMut) {
        self.client.encode(buf);
    }
}
impl WireDecode for SessionEvict {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(SessionEvict {
            client: ClientId::decode(r)?,
        })
    }
}

impl WireEncode for Batch {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.len() as u32);
        for cmd in self.iter() {
            cmd.encode(buf);
        }
    }
}
impl WireDecode for Batch {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Batch::new(Vec::<Command>::decode(r)?))
    }
}

impl WireEncode for ReadRequest {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.seq);
    }
}
impl WireDecode for ReadRequest {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(ReadRequest { seq: r.u64()? })
    }
}

impl WireEncode for ReadReply {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.seq);
        buf.put_u64(self.mark);
    }
}
impl WireDecode for ReadReply {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(ReadReply {
            seq: r.u64()?,
            mark: r.u64()?,
        })
    }
}

impl<W: WireEncode> WireEncode for Checkpoint<W> {
    fn encode(&self, buf: &mut BytesMut) {
        self.applied.encode(buf);
        self.epoch.encode(buf);
        self.config.encode(buf);
        self.snapshot.encode(buf);
        self.sessions.encode(buf);
    }
}
impl<W: WireDecode> WireDecode for Checkpoint<W> {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Checkpoint {
            applied: W::decode(r)?,
            epoch: Epoch::decode(r)?,
            config: Vec::<ReplicaId>::decode(r)?,
            snapshot: Bytes::decode(r)?,
            sessions: Bytes::decode(r)?,
        })
    }
}

impl<W: WireEncode> WireEncode for StateTransferRequest<W> {
    fn encode(&self, buf: &mut BytesMut) {
        self.have.encode(buf);
    }
}
impl<W: WireDecode> WireDecode for StateTransferRequest<W> {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(StateTransferRequest {
            have: W::decode(r)?,
        })
    }
}

impl<W: WireEncode> WireEncode for StateTransferReply<W> {
    fn encode(&self, buf: &mut BytesMut) {
        self.checkpoint.encode(buf);
    }
}
impl<W: WireDecode> WireDecode for StateTransferReply<W> {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(StateTransferReply {
            checkpoint: Checkpoint::<W>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandId;
    use crate::id::{ClientId, ReplicaId};
    use bytes::Bytes;

    #[test]
    fn command_size_scales_with_payload() {
        let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1);
        let small = Command::new(id, Bytes::from(vec![0; 10]));
        let large = Command::new(id, Bytes::from(vec![0; 1000]));
        assert_eq!(large.wire_size() - small.wire_size(), 990);
    }

    #[test]
    fn option_and_vec_compose() {
        let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1);
        let c = Command::new(id, Bytes::from(vec![0; 8]));
        assert_eq!(Some(c.clone()).wire_size(), 1 + c.wire_size());
        assert_eq!(None::<Command>.wire_size(), 1);
        assert_eq!(
            vec![c.clone(), c.clone()].wire_size(),
            4 + 2 * c.wire_size()
        );
    }

    fn cmd(seq: u64, payload: &[u8]) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(2), 9), seq),
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn command_round_trips_including_read_fields() {
        for c in [
            cmd(1, b"plain write"),
            Command::read(
                CommandId::new(ClientId::new(ReplicaId::new(1), 3), 7),
                Bytes::from_static(b"get k"),
            ),
            Command::read_at(
                CommandId::new(ClientId::new(ReplicaId::new(0), 0), 8),
                Bytes::from_static(b"get k"),
                123_456,
            ),
        ] {
            let back: Command = decode_payload(encode_payload(&c)).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn decoded_command_payload_shares_the_receive_buffer() {
        let c = cmd(1, b"a payload long enough to matter");
        let wire = encode_payload(&c);
        let back: Command = decode_payload(wire.clone()).unwrap();
        // Zero-copy: the decoded payload points into the received frame.
        let wire_range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        assert!(wire_range.contains(&(back.payload.as_ptr() as usize)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let c = cmd(1, b"x");
        let mut buf = BytesMut::new();
        c.encode(&mut buf);
        buf.put_u8(0xEE);
        assert_eq!(
            decode_payload::<Command>(buf.freeze()),
            Err(WireError::TrailingBytes(1))
        );
    }

    #[test]
    fn truncated_buffers_are_rejected_at_every_length() {
        let c = cmd(3, b"some payload");
        let wire = encode_payload(&c);
        for cut in 0..wire.len() {
            let err = decode_payload::<Command>(wire.slice(0..cut));
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn frame_header_round_trips_and_validates() {
        let payload = b"hello frame";
        let h = FrameHeader::for_payload(ReplicaId::new(1), ReplicaId::new(2), 77, payload);
        let enc = h.encode();
        let back = FrameHeader::decode(&enc).unwrap();
        assert_eq!(back, h);
        back.verify_payload(payload).unwrap();
        assert_eq!(
            back.verify_payload(b"hello frame!"),
            Err(WireError::BadChecksum)
        );

        let mut bad_magic = enc;
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            FrameHeader::decode(&bad_magic),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = enc;
        bad_version[5] = 0xFE;
        assert!(matches!(
            FrameHeader::decode(&bad_version),
            Err(WireError::BadVersion(_))
        ));

        let mut huge = enc;
        huge[12..16].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            FrameHeader::decode(&huge),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn checkpoint_and_state_transfer_round_trip() {
        let cp = Checkpoint {
            applied: 42u64,
            epoch: Epoch(3),
            config: vec![ReplicaId::new(0), ReplicaId::new(2)],
            snapshot: Bytes::from_static(b"snappy"),
            sessions: Bytes::from_static(b"window"),
        };
        let reply = StateTransferReply {
            checkpoint: cp.clone(),
        };
        let back: StateTransferReply<u64> = decode_payload(encode_payload(&reply)).unwrap();
        assert_eq!(back.checkpoint, cp);
        let req = StateTransferRequest { have: 41u64 };
        let back: StateTransferRequest<u64> = decode_payload(encode_payload(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn timestamp_keyed_checkpoint_round_trips() {
        let cp = Checkpoint {
            applied: Timestamp::new(9_000, ReplicaId::new(1)),
            epoch: Epoch(1),
            config: vec![ReplicaId::new(1)],
            snapshot: Bytes::new(),
            sessions: Bytes::new(),
        };
        let back: Checkpoint<Timestamp> = decode_payload(encode_payload(&cp)).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn reply_and_session_shapes_round_trip() {
        let id = CommandId::new(ClientId::new(ReplicaId::new(2), 40), 17);
        let reply = Reply::new(id, Bytes::from_static(b"ok"));
        let back: Reply = decode_payload(encode_payload(&reply)).unwrap();
        assert_eq!(back, reply);

        let open = SessionOpen {
            client: ClientId::new(ReplicaId::new(1), 9),
        };
        let back: SessionOpen = decode_payload(encode_payload(&open)).unwrap();
        assert_eq!(back, open);

        let retry = SessionRetry { id };
        let back: SessionRetry = decode_payload(encode_payload(&retry)).unwrap();
        assert_eq!(back, retry);

        let evict = SessionEvict {
            client: ClientId::new(ReplicaId::new(0), 3),
        };
        let back: SessionEvict = decode_payload(encode_payload(&evict)).unwrap();
        assert_eq!(back, evict);
    }
}
