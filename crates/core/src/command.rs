//! Client commands, replies, and committed-command records.

use std::fmt;

use bytes::Bytes;

use crate::id::{ClientId, ReplicaId};
use crate::time::Micros;

/// Uniquely identifies one client command: the issuing client plus a
/// per-client sequence number.
///
/// # Examples
///
/// ```
/// use rsm_core::{ClientId, CommandId, ReplicaId};
/// let client = ClientId::new(ReplicaId::new(0), 4);
/// let id = CommandId::new(client, 17);
/// assert_eq!(id.seq, 17);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommandId {
    /// The client that issued the command.
    pub client: ClientId,
    /// Per-client monotonically increasing sequence number.
    pub seq: u64,
}

impl CommandId {
    /// Creates a command id.
    pub fn new(client: ClientId, seq: u64) -> Self {
        CommandId { client, seq }
    }
}

impl fmt::Debug for CommandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

/// An opaque state machine command submitted by a client.
///
/// The replication protocols treat the payload as a black box; the
/// `kvstore` crate gives it meaning (get/put/delete operations). Payloads
/// are [`Bytes`], so cloning a command when rebroadcasting it is cheap
/// (reference counted), matching a production implementation.
#[derive(Clone, PartialEq, Eq)]
pub struct Command {
    /// Unique identity of the command.
    pub id: CommandId,
    /// Opaque operation payload interpreted by the replicated state machine.
    pub payload: Bytes,
    /// Whether the client declares this command **read-only**: it does
    /// not mutate the state machine, so drivers may route it down the
    /// protocol's local read path (`rsm_core::read`) instead of
    /// replicating it. The declaration is advisory — the state machine
    /// re-checks via [`StateMachine::query`](crate::StateMachine::query)
    /// and a mutating payload falsely marked read-only is simply
    /// replicated like any write.
    pub read_only: bool,
    /// An externally chosen snapshot timestamp for a read-only command
    /// (microseconds on the global physical timeline). A sharded router
    /// sets this so every shard of a multi-key read serves its piece at
    /// the **same** cut: a Clock-RSM replica parks the read until its
    /// stable timestamp passes `read_at` and serves it from state
    /// containing exactly the writes stamped at or below it. Protocols
    /// without a stable-timestamp discipline (Paxos, Mencius) ignore the
    /// field and serve their usual per-group linearizable read. `None`
    /// (every ordinary command) means "stamp locally as usual".
    pub read_at: Option<Micros>,
}

impl Command {
    /// Creates a (write) command from its id and payload.
    pub fn new(id: CommandId, payload: Bytes) -> Self {
        Command {
            id,
            payload,
            read_only: false,
            read_at: None,
        }
    }

    /// Creates a command declared read-only (see
    /// [`read_only`](Command::read_only)).
    pub fn read(id: CommandId, payload: Bytes) -> Self {
        Command {
            id,
            payload,
            read_only: true,
            read_at: None,
        }
    }

    /// Creates a read-only command pinned to an external snapshot
    /// timestamp (see [`read_at`](Command::read_at)).
    pub fn read_at(id: CommandId, payload: Bytes, at: Micros) -> Self {
        Command {
            id,
            payload,
            read_only: true,
            read_at: Some(at),
        }
    }

    /// Payload length in bytes — the "command size" knob of the paper's
    /// throughput evaluation (Figure 8: 10 B / 100 B / 1000 B).
    pub fn size(&self) -> usize {
        self.payload.len()
    }
}

impl fmt::Debug for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Command({:?}, {}B)", self.id, self.payload.len())
    }
}

/// The result of executing a command on the replicated state machine,
/// returned to the issuing client by its local replica.
#[derive(Clone, PartialEq, Eq)]
pub struct Reply {
    /// Which command this reply answers.
    pub id: CommandId,
    /// Opaque result produced by the state machine.
    pub result: Bytes,
}

impl Reply {
    /// Creates a reply for the command `id`.
    pub fn new(id: CommandId, result: Bytes) -> Self {
        Reply { id, result }
    }
}

impl fmt::Debug for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reply({:?}, {}B)", self.id, self.result.len())
    }
}

/// A command that a protocol has decided and is handing to the state machine
/// for execution, in execution order.
///
/// `order_hint` is the protocol's own ordering coordinate — the timestamp in
/// microseconds for Clock-RSM, the instance number for Paxos, the slot for
/// Mencius — useful for tracing and for asserting monotonic execution in
/// tests.
#[derive(Clone, Debug)]
pub struct Committed {
    /// The decided command.
    pub cmd: Command,
    /// The replica that coordinated (originated) the command.
    pub origin: ReplicaId,
    /// Protocol-specific ordering coordinate; strictly increasing per replica.
    pub order_hint: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(seq: u64) -> CommandId {
        CommandId::new(ClientId::new(ReplicaId::new(0), 1), seq)
    }

    #[test]
    fn command_size_reports_payload_length() {
        let c = Command::new(cid(1), Bytes::from(vec![0u8; 64]));
        assert_eq!(c.size(), 64);
    }

    #[test]
    fn command_clone_is_cheap_and_equal() {
        let c = Command::new(cid(2), Bytes::from_static(b"payload"));
        let d = c.clone();
        assert_eq!(c, d);
        // Bytes clones share the same backing storage.
        assert_eq!(c.payload.as_ptr(), d.payload.as_ptr());
    }

    #[test]
    fn command_ids_order_by_client_then_seq() {
        assert!(cid(1) < cid(2));
        let other = CommandId::new(ClientId::new(ReplicaId::new(1), 0), 0);
        assert!(cid(9) < other);
    }

    #[test]
    fn debug_formats_are_informative() {
        let c = Command::new(cid(3), Bytes::from_static(b"xyz"));
        let s = format!("{c:?}");
        assert!(s.contains("3B"), "{s}");
        let r = Reply::new(cid(3), Bytes::new());
        assert!(format!("{r:?}").contains("Reply"));
    }
}
