//! The sans-io protocol abstraction.
//!
//! A replication protocol is a deterministic state machine driven by four
//! kinds of events — startup, client requests, peer messages, and timers —
//! and it reacts by invoking operations on a [`Context`]: reading its local
//! physical clock, sending messages, appending to its stable log, committing
//! commands, and arming timers.
//!
//! The embedding driver (the `simnet` simulator or the threaded
//! `rsm-runtime`) owns the transport, the clock, and the stable storage, and
//! is responsible for:
//!
//! * delivering messages FIFO per sender→receiver pair (the paper's channel
//!   assumption, Section II-A);
//! * delivering self-addressed messages (a protocol broadcasting "to all
//!   replicas in Config" includes itself, as in the paper's pseudocode);
//! * applying committed commands to the replicated state machine in the
//!   exact order [`Context::commit`] was called, and replying to the client
//!   when the committed command originated at this replica;
//! * persisting appended log records so they survive crash/recovery.

use std::fmt;

use crate::batch::Batch;
use crate::command::{Command, Committed, Reply};
use crate::id::ReplicaId;
use crate::read::ReadPath;
use crate::time::Micros;

/// A protocol-chosen timer discriminant, echoed back in
/// [`Protocol::on_timer`] when the timer fires.
///
/// Protocols encode what the timer means in the value (e.g. "CLOCKTIME
/// broadcast due", "ack for timestamp t can now be sent"). Timers are
/// one-shot; periodic behaviour is obtained by re-arming.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub u64);

impl fmt::Debug for TimerToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer({})", self.0)
    }
}

/// The environment a protocol runs in. Implemented by drivers; used by
/// protocols.
///
/// All methods take `&mut self` because the driver records effects (and the
/// clock applies a monotonicity bump on every read).
pub trait Context<P: Protocol + ?Sized> {
    /// Reads this replica's **physical clock**, in microseconds.
    ///
    /// The clock is loosely synchronized across replicas (e.g. by NTP) and
    /// strictly monotonic: repeated reads return strictly increasing values.
    /// Nothing about protocol *safety* may depend on the synchronization
    /// quality — only latency may (the paper's central design rule).
    fn clock(&mut self) -> Micros;

    /// Sends `msg` to replica `to`. Sending to self is allowed and is
    /// delivered like any other message (with near-zero latency), so
    /// protocol code can broadcast "to all replicas in Config" exactly as
    /// the paper's pseudocode does.
    fn send(&mut self, to: ReplicaId, msg: P::Msg);

    /// Appends a record to this replica's stable log. The record is durable
    /// once the call returns (the simulator models write latency by
    /// scheduling, the runtime by synchronous appends).
    fn log_append(&mut self, rec: P::LogRec);

    /// Rewrites the entire stable log. Only the reconfiguration protocol
    /// uses this (Algorithm 3 removes un-executed `PREPARE` records beyond
    /// the decided timestamp); normal operation is append-only.
    fn log_rewrite(&mut self, recs: Vec<P::LogRec>);

    /// Hands a decided command to the state machine for execution.
    ///
    /// Must be called in execution order; the driver applies commands
    /// serially and replies to the issuing client if `committed.origin`
    /// is this replica. Returns the state machine's result for the
    /// command, so protocols can cache it in their session dedup window
    /// ([`SessionTable`](crate::session::SessionTable)) and re-serve it
    /// to a retrying client without re-applying.
    fn commit(&mut self, committed: Committed) -> bytes::Bytes;

    /// Arms a one-shot timer that fires `after` microseconds from now,
    /// delivering `token` to [`Protocol::on_timer`].
    fn set_timer(&mut self, after: Micros, token: TimerToken);

    /// Takes a snapshot of the replicated state machine, if the driver
    /// supports it. Used by protocols implementing checkpointing
    /// (Section V-B of the paper); the default returns `None`, which
    /// simply disables the optimization.
    fn sm_snapshot(&mut self) -> Option<bytes::Bytes> {
        None
    }

    /// Restores the replicated state machine from a checkpoint snapshot
    /// during recovery. Returns false (checkpoint ignored, full replay
    /// required) when the driver does not support snapshots.
    fn sm_install(&mut self, _snapshot: bytes::Bytes) -> bool {
        false
    }

    /// Executes a read-only command against the local state machine's
    /// current applied prefix, returning its result **without** counting
    /// a commit or mutating anything (the local-read path,
    /// `rsm_core::read`). The protocol must only call this once it has
    /// established that the local prefix is linearizable for the read
    /// (stable timestamp passed the stamp, leader lease valid, quorum
    /// mark executed). Returns `None` when the driver has no state
    /// machine access or the command is not actually read-only; the
    /// protocol then falls back to replicating the read as an ordinary
    /// command.
    fn sm_read(&mut self, _cmd: &Command) -> Option<bytes::Bytes> {
        None
    }

    /// Routes `reply` to the issuing client attached to this replica,
    /// bypassing the commit path. Used exclusively for locally served
    /// reads (which never commit); protocols only call it at the read's
    /// origin replica. The default drops the reply, which is only
    /// correct for drivers whose [`sm_read`](Context::sm_read) never
    /// returns `Some` (the two always come as a pair).
    fn send_reply(&mut self, _reply: Reply) {}

    /// Whether the driver is recording observations. Protocols may use
    /// this to skip work that exists only to produce observations (e.g.
    /// scanning pending entries for trace-stage transitions) — never to
    /// change protocol behaviour.
    fn obs_active(&self) -> bool {
        false
    }

    /// Adds `delta` to this replica's counter `name` (see
    /// [`obs::names`](crate::obs::names)). Defaults to a no-op: drivers
    /// with an observability registry forward into it, everything else
    /// pays nothing. Like all `obs_*` hooks this must never influence
    /// protocol behaviour — observations are write-only.
    fn obs_count(&mut self, _name: &'static str, _delta: u64) {}

    /// Sets this replica's gauge `name` (no-op by default).
    fn obs_gauge(&mut self, _name: &'static str, _value: i64) {}

    /// Sets this replica's per-peer gauge `name.idx` (no-op by
    /// default), e.g. `LatestTV` staleness per peer.
    fn obs_gauge_idx(&mut self, _name: &'static str, _idx: ReplicaId, _value: i64) {}

    /// Stamps trace stage `stage` on command `id`'s span at the current
    /// time (no-op by default). Protocols stamp the ordering stages
    /// ([`Proposed`](crate::obs::TraceStage::Proposed),
    /// [`Replicated`](crate::obs::TraceStage::Replicated),
    /// [`Stable`](crate::obs::TraceStage::Stable)) from the command's
    /// origin replica; drivers own submission, commit, execution, and
    /// reply stamps.
    fn trace(&mut self, _id: crate::command::CommandId, _stage: crate::obs::TraceStage) {}
}

/// A replication protocol, written sans-io.
///
/// Implementations in this workspace: `clock_rsm::ClockRsm`,
/// `paxos::MultiPaxos` (plain and bcast), `mencius::MenciusBcast`.
///
/// Determinism contract: given the same sequence of callback invocations
/// with the same arguments and the same `Context` responses, a protocol must
/// perform the same `Context` calls. This is what makes simulation runs
/// reproducible and lets the property tests explore schedules.
pub trait Protocol {
    /// Wire message type exchanged between replicas of this protocol.
    type Msg: Clone + fmt::Debug + Send + crate::wire::WireSize + 'static;

    /// Stable log record type of this protocol.
    type LogRec: Clone + fmt::Debug + Send + 'static;

    /// This replica's id.
    fn id(&self) -> ReplicaId;

    /// Invoked once when the replica starts (or restarts after recovery),
    /// before any other event. Protocols arm their periodic timers here.
    fn on_start(&mut self, ctx: &mut dyn Context<Self>);

    /// A local client submitted `cmd` for replication (the paper's
    /// `⟨REQUEST cmd⟩`).
    fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>);

    /// A driver coalesced several queued client requests into one ordered
    /// [`Batch`] (see [`BatchPolicy`](crate::BatchPolicy)).
    ///
    /// Protocols that replicate whole batches — one wire message, one
    /// acknowledgement, contiguous order coordinates — override this. The
    /// default expands the batch into per-command requests, so a protocol
    /// without native batching still behaves correctly (it merely gains
    /// nothing from coalescing). Implementations must commit the batch's
    /// commands in batch order, exactly as if each had been submitted
    /// individually: batching must never be observable in the committed
    /// sequence.
    fn on_client_batch(&mut self, batch: Batch, ctx: &mut dyn Context<Self>) {
        for cmd in batch {
            self.on_client_request(cmd, ctx);
        }
    }

    /// A local client submitted a **read-only** command (one with
    /// [`Command::read_only`] set; drivers route those here, outside the
    /// write batching pipeline). The default replicates the read as an
    /// ordinary command — always linearizable, full commit latency —
    /// matching a [`read_path`](Protocol::read_path) of
    /// [`ReadPath::Replicated`]. Protocols with a local read path
    /// override both.
    fn on_client_read(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        self.on_client_request(cmd, ctx);
    }

    /// The local-read capability this protocol implements (see
    /// `rsm_core::read` for the invariant behind each variant).
    fn read_path(&self) -> ReadPath {
        ReadPath::Replicated
    }

    /// Where clients of this replica's site should send **read-only**
    /// commands, when somewhere other than their own site is better.
    ///
    /// Leader-lease protocols return the believed lease holder: a read
    /// sent straight there is served from the lease without a quorum
    /// probe, so a client paying one WAN hop to the leader beats paying
    /// a probe round trip from its local follower. Protocols whose reads
    /// are symmetric (Clock-RSM's stable-timestamp reads, Mencius's
    /// commit-watermark probes) return `None`: the local site is already
    /// the right target. The hint is advisory and may be stale across a
    /// fail-over — a read routed to a deposed leader is simply lost and
    /// retried, like any command lost to reconfiguration.
    fn lease_holder_hint(&self) -> Option<ReplicaId> {
        None
    }

    /// A message arrived from replica `from` (possibly self).
    fn on_message(&mut self, from: ReplicaId, msg: Self::Msg, ctx: &mut dyn Context<Self>);

    /// A timer armed via [`Context::set_timer`] fired.
    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Self>);

    /// The replica restarted after a crash with its stable log intact.
    /// `log` is the full sequence of records appended before the crash.
    /// Protocols rebuild volatile state; commands already known committed
    /// must be re-committed (in order) so the driver can rebuild the state
    /// machine.
    fn on_recover(&mut self, log: &[Self::LogRec], ctx: &mut dyn Context<Self>);

    /// Periodic observability poll: the driver invokes this at the
    /// configured interval when observation is on, and the protocol
    /// publishes gauge-shaped state through the `Context::obs_*` hooks
    /// (Clock-RSM: stable-timestamp lag and per-peer `LatestTV`
    /// staleness; Paxos: current ballot). **Read-only by contract**:
    /// implementations must not mutate protocol state, send messages,
    /// or arm timers — an instrumented run must commit the same
    /// sequence as an uninstrumented one. The default publishes
    /// nothing.
    fn obs_poll(&mut self, _ctx: &mut dyn Context<Self>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandId;
    use crate::id::ClientId;
    use bytes::Bytes;

    /// A trivial protocol that commits every request immediately; exercises
    /// the trait surface and documents the driver contract in miniature.
    struct Echo {
        id: ReplicaId,
        order: u64,
    }

    impl Protocol for Echo {
        type Msg = ();
        type LogRec = Command;

        fn id(&self) -> ReplicaId {
            self.id
        }
        fn on_start(&mut self, ctx: &mut dyn Context<Self>) {
            ctx.set_timer(5, TimerToken(1));
        }
        fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
            ctx.log_append(cmd.clone());
            self.order += 1;
            ctx.commit(Committed {
                cmd,
                origin: self.id,
                order_hint: self.order,
            });
        }
        fn on_message(&mut self, _: ReplicaId, _: (), _: &mut dyn Context<Self>) {}
        fn on_timer(&mut self, _: TimerToken, _: &mut dyn Context<Self>) {}
        fn on_recover(&mut self, log: &[Command], ctx: &mut dyn Context<Self>) {
            for cmd in log {
                self.order += 1;
                ctx.commit(Committed {
                    cmd: cmd.clone(),
                    origin: self.id,
                    order_hint: self.order,
                });
            }
        }
    }

    #[derive(Default)]
    struct RecordingCtx {
        now: Micros,
        log: Vec<Command>,
        committed: Vec<Committed>,
        timers: Vec<(Micros, TimerToken)>,
        replies: Vec<Reply>,
    }

    impl Context<Echo> for RecordingCtx {
        fn clock(&mut self) -> Micros {
            self.now += 1;
            self.now
        }
        fn send(&mut self, _to: ReplicaId, _msg: ()) {}
        fn log_append(&mut self, rec: Command) {
            self.log.push(rec);
        }
        fn log_rewrite(&mut self, recs: Vec<Command>) {
            self.log = recs;
        }
        fn commit(&mut self, c: Committed) -> Bytes {
            let result = c.cmd.payload.clone();
            self.committed.push(c);
            result
        }
        fn set_timer(&mut self, after: Micros, token: TimerToken) {
            self.timers.push((after, token));
        }
        fn send_reply(&mut self, reply: Reply) {
            self.replies.push(reply);
        }
    }

    fn cmd(seq: u64) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from_static(b"x"),
        )
    }

    #[test]
    fn echo_protocol_commits_immediately() {
        let mut p = Echo {
            id: ReplicaId::new(0),
            order: 0,
        };
        let mut ctx = RecordingCtx::default();
        p.on_start(&mut ctx);
        assert_eq!(ctx.timers, vec![(5, TimerToken(1))]);
        p.on_client_request(cmd(1), &mut ctx);
        p.on_client_request(cmd(2), &mut ctx);
        assert_eq!(ctx.committed.len(), 2);
        assert!(ctx.committed[0].order_hint < ctx.committed[1].order_hint);
        assert_eq!(ctx.log.len(), 2);
    }

    #[test]
    fn echo_protocol_recovers_from_log() {
        let mut p = Echo {
            id: ReplicaId::new(0),
            order: 0,
        };
        let mut ctx = RecordingCtx::default();
        let log = vec![cmd(1), cmd(2), cmd(3)];
        p.on_recover(&log, &mut ctx);
        assert_eq!(ctx.committed.len(), 3);
    }

    #[test]
    fn commit_dedup_skips_duplicates_and_serves_cached_reply() {
        use crate::session::SessionTable;
        let me = ReplicaId::new(0);
        let mut table = SessionTable::new(4);
        let mut ctx = RecordingCtx::default();
        let committed = Committed {
            cmd: cmd(1),
            origin: me,
            order_hint: 1,
        };
        assert!(table.commit_dedup(me, committed.clone(), &mut ctx));
        assert_eq!(ctx.committed.len(), 1);
        // A duplicate (same CommandId) is not re-applied: the origin gets
        // the cached reply instead.
        assert!(!table.commit_dedup(me, committed.clone(), &mut ctx));
        assert_eq!(ctx.committed.len(), 1);
        assert_eq!(ctx.replies.len(), 1);
        assert_eq!(ctx.replies[0].id, committed.cmd.id);
        assert_eq!(ctx.replies[0].result, committed.cmd.payload);
        // At a non-origin replica the duplicate is dropped silently.
        let elsewhere = Committed {
            origin: ReplicaId::new(1),
            ..committed
        };
        assert!(!table.commit_dedup(me, elsewhere, &mut ctx));
        assert_eq!(ctx.replies.len(), 1);
    }

    #[test]
    fn recording_clock_is_strictly_monotonic() {
        let mut ctx = RecordingCtx::default();
        let a = Context::<Echo>::clock(&mut ctx);
        let b = Context::<Echo>::clock(&mut ctx);
        assert!(b > a);
    }
}
