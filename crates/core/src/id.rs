//! Identifiers for replicas and clients.

use std::fmt;

/// Identifier of a replica within the system specification (`Spec`).
///
/// Replica ids are small dense integers assigned by the system administrator
/// when the specification is written; they double as indices into the
/// wide-area latency matrix and as the tie-breaker of [`Timestamp`]s
/// (Section III of the paper: "ties are resolved by using the id of the
/// command's originating replica").
///
/// [`Timestamp`]: crate::time::Timestamp
///
/// # Examples
///
/// ```
/// use rsm_core::ReplicaId;
/// let r = ReplicaId::new(3);
/// assert_eq!(r.index(), 3);
/// assert!(ReplicaId::new(1) < ReplicaId::new(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(u16);

impl ReplicaId {
    /// Creates a replica id from its dense index.
    pub const fn new(index: u16) -> Self {
        ReplicaId(index)
    }

    /// Returns the dense index of this replica, usable as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric value.
    pub fn as_u16(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u16> for ReplicaId {
    fn from(v: u16) -> Self {
        ReplicaId(v)
    }
}

/// Identifier of a client.
///
/// Following the paper's geo-replication model (Section II-C), clients are
/// application servers *local* to one replica's data center: a client id is
/// the pair of its home replica and a per-site client number.
///
/// # Examples
///
/// ```
/// use rsm_core::{ClientId, ReplicaId};
/// let c = ClientId::new(ReplicaId::new(2), 13);
/// assert_eq!(c.site(), ReplicaId::new(2));
/// assert_eq!(c.number(), 13);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId {
    site: ReplicaId,
    number: u32,
}

impl ClientId {
    /// Creates a client id for the `number`-th client at `site`.
    pub fn new(site: ReplicaId, number: u32) -> Self {
        ClientId { site, number }
    }

    /// The replica (data center) this client is local to.
    pub fn site(self) -> ReplicaId {
        self.site
    }

    /// The per-site client number.
    pub fn number(self) -> u32 {
        self.number
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}@{}", self.number, self.site)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}@{}", self.number, self.site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_id_roundtrip() {
        let r = ReplicaId::new(42);
        assert_eq!(r.index(), 42);
        assert_eq!(r.as_u16(), 42);
        assert_eq!(ReplicaId::from(42u16), r);
    }

    #[test]
    fn replica_id_ordering_is_by_index() {
        let mut ids: Vec<ReplicaId> = (0..5).rev().map(ReplicaId::new).collect();
        ids.sort();
        assert_eq!(ids, (0..5).map(ReplicaId::new).collect::<Vec<_>>());
    }

    #[test]
    fn replica_id_display() {
        assert_eq!(ReplicaId::new(3).to_string(), "r3");
        assert_eq!(format!("{:?}", ReplicaId::new(3)), "r3");
    }

    #[test]
    fn client_id_accessors_and_display() {
        let c = ClientId::new(ReplicaId::new(1), 9);
        assert_eq!(c.site(), ReplicaId::new(1));
        assert_eq!(c.number(), 9);
        assert_eq!(c.to_string(), "c9@r1");
    }

    #[test]
    fn client_id_ordering_groups_by_site() {
        let a = ClientId::new(ReplicaId::new(0), 99);
        let b = ClientId::new(ReplicaId::new(1), 0);
        assert!(a < b);
    }
}
