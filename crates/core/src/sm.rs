//! The replicated state machine interface.

use bytes::Bytes;

use crate::command::Command;

/// A deterministic state machine replicated by the protocols.
///
/// Replicas apply the same commands in the same order; because `apply` is
/// deterministic, all replicas transit through the same states and produce
/// the same outputs (Section II-B of the paper). The `kvstore` crate
/// provides the key-value store used throughout the evaluation.
///
/// # Examples
///
/// ```
/// use rsm_core::{Command, CommandId, ClientId, ReplicaId, StateMachine};
/// use bytes::Bytes;
///
/// /// Counts the bytes it has ever been fed.
/// #[derive(Default)]
/// struct ByteCounter(u64);
///
/// impl StateMachine for ByteCounter {
///     fn apply(&mut self, cmd: &Command) -> Bytes {
///         self.0 += cmd.payload.len() as u64;
///         Bytes::copy_from_slice(&self.0.to_be_bytes())
///     }
///     fn snapshot(&self) -> Bytes {
///         Bytes::copy_from_slice(&self.0.to_be_bytes())
///     }
///     fn reset(&mut self) {
///         self.0 = 0;
///     }
/// }
///
/// let mut sm = ByteCounter::default();
/// let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1);
/// let out = sm.apply(&Command::new(id, Bytes::from_static(b"abc")));
/// assert_eq!(out.as_ref(), 3u64.to_be_bytes());
/// ```
pub trait StateMachine: Send {
    /// Executes `cmd`, mutating the state and producing the client-visible
    /// result. Must be deterministic: same state + same command ⇒ same new
    /// state and same result.
    fn apply(&mut self, cmd: &Command) -> Bytes;

    /// A canonical byte representation of the current state, used by tests
    /// to assert replica convergence. Two state machines that have applied
    /// the same command sequence must produce equal snapshots.
    fn snapshot(&self) -> Bytes;

    /// Returns the machine to its initial state (used when a recovering
    /// replica replays its log from scratch).
    fn reset(&mut self);

    /// Restores the machine from a snapshot previously produced by
    /// [`snapshot`](StateMachine::snapshot). Returns false when the
    /// machine does not support restoration (the default), in which case
    /// callers fall back to replaying the full command log.
    fn restore(&mut self, _snapshot: &[u8]) -> bool {
        false
    }

    /// Executes `cmd` **read-only** against the current state, without
    /// mutating anything, returning the same result [`apply`] would.
    /// Returns `None` (the default) when the command is not actually
    /// read-only — or the machine does not support side-effect-free
    /// queries — in which case the read subsystem falls back to
    /// replicating the command as an ordinary write.
    ///
    /// This is the state machine's half of the local-read contract
    /// (`rsm_core::read`): the protocol decides *when* the local prefix
    /// is linearizable for the read; `query` guarantees serving it
    /// cannot perturb replicated state.
    ///
    /// [`apply`]: StateMachine::apply
    fn query(&self, _cmd: &Command) -> Option<Bytes> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandId;
    use crate::id::{ClientId, ReplicaId};

    #[derive(Default)]
    struct Appender(Vec<u8>);

    impl StateMachine for Appender {
        fn apply(&mut self, cmd: &Command) -> Bytes {
            self.0.extend_from_slice(&cmd.payload);
            Bytes::copy_from_slice(&self.0)
        }
        fn snapshot(&self) -> Bytes {
            Bytes::copy_from_slice(&self.0)
        }
        fn reset(&mut self) {
            self.0.clear();
        }
    }

    fn cmd(seq: u64, payload: &'static [u8]) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from_static(payload),
        )
    }

    #[test]
    fn same_sequence_same_snapshot() {
        let mut a = Appender::default();
        let mut b = Appender::default();
        for c in [cmd(1, b"x"), cmd(2, b"yz")] {
            a.apply(&c);
            b.apply(&c);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut a = Appender::default();
        a.apply(&cmd(1, b"x"));
        a.reset();
        assert_eq!(a.snapshot(), Appender::default().snapshot());
    }
}
