//! Leader-lease timing and failure detection for leader-based protocols.
//!
//! A leader-based protocol (the Multi-Paxos baseline) keeps exactly one
//! replica driving the data plane. Liveness across a leader crash needs
//! two timing decisions that are policy, not protocol: how long followers
//! wait for leader traffic before suspecting it ([`LeaseConfig::timeout_us`]),
//! and how often an idle leader proves it is alive
//! ([`LeaseConfig::heartbeat_us`]). This module holds that surface so
//! protocols and the experiment harness share one vocabulary, mirroring
//! how [`CheckpointPolicy`](crate::checkpoint::CheckpointPolicy) factors
//! checkpoint timing out of the protocols.
//!
//! **Safety never depends on these clocks.** The lease is purely a
//! liveness mechanism: an expired lease triggers a ballot-based election,
//! and it is the ballots — not the lease — that fence a deposed leader
//! (its stale-ballot traffic is rejected by any acceptor that promised a
//! higher ballot). A lease firing too early merely costs an unnecessary
//! election; it can never cost agreement. This is the paper's central
//! design rule (Section II): clocks may only affect latency.

use crate::time::Micros;

/// Timing policy for leader leases and elections.
///
/// # Examples
///
/// ```
/// use rsm_core::lease::LeaseConfig;
/// let lease = LeaseConfig::after(400_000);
/// assert!(lease.enabled());
/// assert_eq!(lease.heartbeat_us, 100_000);
/// assert!(!LeaseConfig::DISABLED.enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// A follower that has not heard from the leader's regime for this
    /// long suspects it and starts an election. Zero disables fail-over
    /// entirely (the protocol behaves as a fixed-leader deployment).
    pub timeout_us: Micros,
    /// How often the leader broadcasts a heartbeat when the data plane is
    /// otherwise idle (also the tick interval of the follower-side
    /// detector). Must be well below `timeout_us`.
    pub heartbeat_us: Micros,
    /// How long a candidate waits for its election to conclude before
    /// retrying at a higher ballot round (dueling-candidate resolution).
    pub election_retry_us: Micros,
    /// Pre-vote (opt-in): before bumping its ballot, a would-be candidate
    /// probes whether a majority would currently promise it. Peers answer
    /// from their own lease state without mutating anything, so a flapping
    /// replica — one isolated behind a partition, or with a runaway clock
    /// — can no longer disrupt a healthy leader by forcing real ballots
    /// ever higher while partitioned and deposing the leader on heal.
    pub pre_vote: bool,
}

impl LeaseConfig {
    /// Fail-over off: the configured leader is assumed stable, as in the
    /// paper's failure-free evaluation.
    pub const DISABLED: LeaseConfig = LeaseConfig {
        timeout_us: 0,
        heartbeat_us: 0,
        election_retry_us: 0,
        pre_vote: false,
    };

    /// A lease expiring after `timeout_us` of leader silence, with the
    /// derived defaults: heartbeats at a quarter of the timeout and
    /// election retries at half of it.
    ///
    /// # Panics
    ///
    /// Panics if `timeout_us` is below 4 µs (the derived heartbeat would
    /// be zero, which means "disabled").
    pub fn after(timeout_us: Micros) -> Self {
        assert!(timeout_us >= 4, "lease timeout too small to derive ticks");
        LeaseConfig {
            timeout_us,
            heartbeat_us: timeout_us / 4,
            election_retry_us: timeout_us / 2,
            pre_vote: false,
        }
    }

    /// Enables the pre-vote phase: candidates probe electability before
    /// bumping their ballot (see the field docs).
    pub fn with_pre_vote(mut self) -> Self {
        self.pre_vote = true;
        self
    }

    /// Overrides the heartbeat / detector tick interval.
    ///
    /// # Panics
    ///
    /// Panics if `us` is zero or not below the lease timeout.
    pub fn with_heartbeat_us(mut self, us: Micros) -> Self {
        assert!(
            us > 0 && us < self.timeout_us,
            "heartbeat must fit the lease"
        );
        self.heartbeat_us = us;
        self
    }

    /// Overrides the candidate retry interval.
    ///
    /// # Panics
    ///
    /// Panics if `us` is zero.
    pub fn with_election_retry_us(mut self, us: Micros) -> Self {
        assert!(us > 0, "election retry must be positive");
        self.election_retry_us = us;
        self
    }

    /// Whether fail-over is configured at all.
    pub fn enabled(&self) -> bool {
        self.timeout_us > 0
    }

    /// Deterministic per-replica stagger added to the suspicion timeout so
    /// followers do not all turn candidate in the same tick (which would
    /// duel every election). Lower replica indices fire first.
    pub fn stagger_us(&self, replica_index: usize) -> Micros {
        self.timeout_us + replica_index as Micros * self.heartbeat_us
    }
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig::DISABLED
    }
}

/// A follower's view of the leader lease: the last instant the current
/// leader regime proved itself (data-plane traffic, heartbeat, or a
/// granted election promise).
///
/// # Examples
///
/// ```
/// use rsm_core::lease::Lease;
/// let mut lease = Lease::new(1_000);
/// assert!(!lease.expired(1_200, 400));
/// assert!(lease.expired(1_500, 400));
/// lease.renew(1_450);
/// assert!(!lease.expired(1_500, 400));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    renewed_at: Micros,
}

impl Lease {
    /// A lease granted at `now`.
    pub fn new(now: Micros) -> Self {
        Lease { renewed_at: now }
    }

    /// Extends the lease: the leader regime was heard from at `now`.
    /// Renewals never move the lease backwards (a stale clock read
    /// cannot shorten it).
    pub fn renew(&mut self, now: Micros) {
        self.renewed_at = self.renewed_at.max(now);
    }

    /// When the lease was last renewed.
    pub fn renewed_at(&self) -> Micros {
        self.renewed_at
    }

    /// Whether more than `after` microseconds of silence have passed.
    pub fn expired(&self, now: Micros, after: Micros) -> bool {
        now.saturating_sub(self.renewed_at) > after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_reports_disabled() {
        assert!(!LeaseConfig::DISABLED.enabled());
        assert!(!LeaseConfig::default().enabled());
    }

    #[test]
    fn after_derives_ticks() {
        let lease = LeaseConfig::after(400);
        assert_eq!(lease.heartbeat_us, 100);
        assert_eq!(lease.election_retry_us, 200);
        assert!(lease.enabled());
    }

    #[test]
    fn builders_override_derived_ticks() {
        let lease = LeaseConfig::after(1_000)
            .with_heartbeat_us(50)
            .with_election_retry_us(300);
        assert_eq!(lease.heartbeat_us, 50);
        assert_eq!(lease.election_retry_us, 300);
    }

    #[test]
    #[should_panic(expected = "fit the lease")]
    fn heartbeat_must_be_below_timeout() {
        let _ = LeaseConfig::after(100).with_heartbeat_us(100);
    }

    #[test]
    fn stagger_orders_replicas() {
        let lease = LeaseConfig::after(400);
        assert_eq!(lease.stagger_us(0), 400);
        assert!(lease.stagger_us(1) < lease.stagger_us(2));
    }

    #[test]
    fn lease_expiry_is_silence_based() {
        let mut lease = Lease::new(0);
        assert!(
            !lease.expired(400, 400),
            "exactly at the bound is not past it"
        );
        assert!(lease.expired(401, 400));
        lease.renew(300);
        assert!(!lease.expired(700, 400));
        // Renewals never regress.
        lease.renew(100);
        assert_eq!(lease.renewed_at(), 300);
    }
}
