//! Error types shared across the workspace.

use std::error::Error as StdError;
use std::fmt;

use crate::id::ReplicaId;

/// Convenient result alias for fallible protocol-facing operations.
pub type Result<T> = std::result::Result<T, ProtocolError>;

/// Errors surfaced by replication protocols and their drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A request was routed to a replica that is not in the active
    /// configuration (e.g. it has been removed by reconfiguration).
    NotInConfig(ReplicaId),
    /// The replica is currently frozen by an in-flight reconfiguration
    /// (Algorithm 3, line 8) and cannot accept new requests.
    Reconfiguring,
    /// The replica has crashed (simulation) or shut down (runtime).
    Stopped,
    /// A message referred to an unknown replica id.
    UnknownReplica(ReplicaId),
    /// The simulated stable storage rejected a write (injected fault).
    StorageFailed,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::NotInConfig(r) => {
                write!(f, "replica {r} is not in the active configuration")
            }
            ProtocolError::Reconfiguring => {
                write!(f, "replica is frozen by an in-flight reconfiguration")
            }
            ProtocolError::Stopped => write!(f, "replica is stopped"),
            ProtocolError::UnknownReplica(r) => write!(f, "unknown replica {r}"),
            ProtocolError::StorageFailed => write!(f, "stable storage write failed"),
        }
    }
}

impl StdError for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_trailing_punctuation() {
        let cases: Vec<ProtocolError> = vec![
            ProtocolError::NotInConfig(ReplicaId::new(1)),
            ProtocolError::Reconfiguring,
            ProtocolError::Stopped,
            ProtocolError::UnknownReplica(ReplicaId::new(2)),
            ProtocolError::StorageFailed,
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("replica"));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<ProtocolError>();
    }
}
