//! The linearizable read subsystem (protocol-agnostic parts).
//!
//! Every protocol in this workspace can replicate a read like any other
//! command — always correct, always paying the full WAN commit latency.
//! This module is the shared vocabulary for doing better: serving reads
//! **locally**, at the replica the client is attached to, without giving
//! up linearizability. The per-protocol read paths are built from three
//! pieces:
//!
//! * a [`ReadPath`] capability each protocol reports, naming the
//!   mechanism (and therefore the assumptions) behind its local reads;
//! * a [`ReadQueue`] that parks pending reads against a protocol-chosen
//!   watermark coordinate and releases them once the replica's **stable
//!   prefix** passes that coordinate;
//! * [`ReadRequest`]/[`ReadReply`] wire shapes for the quorum-probe
//!   fallback used when no local fast path applies.
//!
//! # Where "clocks only affect latency" holds — and where it does not
//!
//! The subsystem deliberately spans both sides of the paper's central
//! design rule, and the split is the most important thing to understand
//! about it:
//!
//! * **Clock-RSM stable-timestamp reads** ([`ReadPath::LocalStable`])
//!   keep the rule intact. A read is stamped from the replica's own
//!   monotonic send-timestamp discipline and released only once the
//!   replica's stable timestamp — `min(LatestTV)` over the
//!   configuration, with every smaller pending command committed — has
//!   passed the stamp. Any write whose reply preceded the read's issue
//!   necessarily has a smaller timestamp than the stamp (its commit
//!   required this very replica's clock evidence to exceed the write's
//!   timestamp), so the released prefix always contains it. Clock skew
//!   moves the *wait*, never the *answer*: a slow local clock just
//!   stamps low and releases sooner; a fast one stamps high and waits
//!   for the cluster to catch up. **Skew is latency-only here.**
//! * **Paxos leader-lease reads** ([`ReadPath::LeaderLease`]) import a
//!   genuine bounded-skew *safety* assumption — the one piece of this
//!   workspace where a clock bound is load-bearing. The lease-holding
//!   leader serves reads from its committed prefix without talking to
//!   anyone, which is only linearizable while no newer regime can have
//!   committed a write elsewhere; that in turn holds only if follower
//!   suspicion clocks and the leader's lease clock advance at
//!   comparable rates (see the `paxos` crate docs for the exact
//!   margin). Ballot fencing bounds the blast radius: a deposed
//!   leader's *writes* are nacked outright, so the worst a broken clock
//!   can produce is a stale **read** served inside one lease window —
//!   never divergent replicas, never a lost write.
//! * **Quorum-mark reads** ([`ReadPath::CommitWatermark`] and the
//!   follower fallback of the Paxos path) assume nothing about clocks:
//!   the reader probes a majority for their read marks (commit
//!   watermark raised to the top of the accepted log), parks the read
//!   at the maximum, and serves once its own execution passes it. Any
//!   write that completed before the probe was acknowledged by a
//!   majority, which intersects the probed majority, so some reply's
//!   mark covers it.

use std::collections::BTreeMap;

use crate::command::Command;
use crate::id::ReplicaId;
use crate::wire::{WireSize, MSG_HEADER_BYTES};

/// The local-read mechanism a protocol implements, reported via
/// [`Protocol::read_path`](crate::Protocol::read_path).
///
/// Drivers and harnesses use the capability for routing decisions and
/// reporting; the invariant behind each variant is documented in the
/// [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// Reads are served locally at **any** replica once the replica's
    /// stable timestamp passes the read's stamp (Clock-RSM). Clock skew
    /// affects read latency only, never correctness.
    LocalStable,
    /// The lease-holding leader serves reads locally, fenced by ballot
    /// and lease; this introduces a bounded-skew **safety** assumption.
    /// Followers (and a leader whose lease is uncertain) fall back to a
    /// clock-free quorum-mark read.
    LeaderLease,
    /// Reads park at the issuing replica on the all-owners commit
    /// watermark obtained from a majority probe (Mencius). Clock-free.
    CommitWatermark,
    /// No local read path: reads are replicated as ordinary commands
    /// (the default for any protocol that does not override it).
    Replicated,
}

/// A quorum-read probe: asks a peer for its current read mark.
///
/// Sent by a replica that cannot serve a read locally (a follower, a
/// leader with an uncertain lease, or any Mencius replica). The `seq`
/// number pairs replies with the probe they answer; it is scoped to the
/// requesting replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRequest {
    /// Requester-local probe sequence number, echoed in the reply.
    pub seq: u64,
}

impl WireSize for ReadRequest {
    fn wire_size(&self) -> usize {
        MSG_HEADER_BYTES
    }
}

/// A peer's answer to a [`ReadRequest`]: its read mark in the protocol's
/// ordering coordinate (instance for Paxos, slot for Mencius).
///
/// The mark must be an upper bound on every coordinate the responder has
/// ever **logged** — its commit watermark raised to the top of its
/// accepted log — not merely on what it has executed. Commitment of a
/// write requires a majority to log it, and the probe quorum intersects
/// every commit quorum, so the maximum mark over a majority of replies
/// covers every write that completed before the probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadReply {
    /// Echo of the probe's sequence number.
    pub seq: u64,
    /// The responder's read mark (exclusive upper bound: every logged
    /// coordinate is `< mark`).
    pub mark: u64,
}

impl WireSize for ReadReply {
    fn wire_size(&self) -> usize {
        MSG_HEADER_BYTES
    }
}

/// Pending reads parked against a watermark, released in order once the
/// replica's stable coordinate passes them.
///
/// `W` is the protocol's ordering coordinate (a
/// [`Timestamp`](crate::Timestamp) for Clock-RSM, `u64`
/// instances/slots for Paxos and Mencius). Multiple reads may park at
/// the same watermark (e.g. several reads behind one quorum probe);
/// they release together, in park order.
///
/// # Examples
///
/// ```
/// use rsm_core::read::ReadQueue;
/// use rsm_core::{Command, CommandId, ClientId, ReplicaId};
/// use bytes::Bytes;
///
/// let cmd = |seq| Command::read(
///     CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
///     Bytes::from_static(b"get k"),
/// );
/// let mut q: ReadQueue<u64> = ReadQueue::new();
/// q.park(5, cmd(1));
/// q.park(3, cmd(2));
/// assert_eq!(q.len(), 2);
/// let ready = q.release(4); // stable coordinate reached 4
/// assert_eq!(ready.len(), 1);
/// assert_eq!(ready[0].id.seq, 2);
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReadQueue<W: Ord + Copy> {
    parked: BTreeMap<W, Vec<Command>>,
    len: usize,
}

impl<W: Ord + Copy> ReadQueue<W> {
    /// An empty queue.
    pub fn new() -> Self {
        ReadQueue {
            parked: BTreeMap::new(),
            len: 0,
        }
    }

    /// Parks `cmd` until the stable coordinate reaches `mark`.
    pub fn park(&mut self, mark: W, cmd: Command) {
        self.parked.entry(mark).or_default().push(cmd);
        self.len += 1;
    }

    /// Releases every read whose mark is `<= stable`, in mark order
    /// (park order within a mark). Returns an empty vector when nothing
    /// is ready.
    pub fn release(&mut self, stable: W) -> Vec<Command> {
        if self
            .parked
            .keys()
            .next()
            .is_none_or(|&first| first > stable)
        {
            return Vec::new();
        }
        let mut ready = Vec::new();
        while let Some(entry) = self.parked.first_entry() {
            if *entry.key() > stable {
                break;
            }
            ready.extend(entry.remove());
        }
        self.len -= ready.len();
        ready
    }

    /// Releases every read whose mark is **strictly below** `bound`, in
    /// mark order. The exclusive twin of [`release`](ReadQueue::release):
    /// a replica about to apply a write at coordinate `bound` calls this
    /// first, so every released read is served from state that contains
    /// exactly the writes below its own mark — the *exact-cut* discipline
    /// a sharded snapshot read relies on.
    pub fn release_before(&mut self, bound: W) -> Vec<Command> {
        if self
            .parked
            .keys()
            .next()
            .is_none_or(|&first| first >= bound)
        {
            return Vec::new();
        }
        let mut ready = Vec::new();
        while let Some(entry) = self.parked.first_entry() {
            if *entry.key() >= bound {
                break;
            }
            ready.extend(entry.remove());
        }
        self.len -= ready.len();
        ready
    }

    /// Removes and returns every parked read (fallback paths: a replica
    /// that can no longer honor its marks re-routes the reads instead
    /// of serving them).
    pub fn drain_all(&mut self) -> Vec<Command> {
        self.len = 0;
        let mut all = Vec::new();
        for (_, cmds) in std::mem::take(&mut self.parked) {
            all.extend(cmds);
        }
        all
    }

    /// Number of parked reads.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no reads are parked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<W: Ord + Copy> Default for ReadQueue<W> {
    fn default() -> Self {
        ReadQueue::new()
    }
}

/// Cap on in-flight quorum-read probes: beyond this the oldest probe is
/// dropped — its reads are lost and re-issued by client retry, like any
/// command lost to a fault. Bounds memory when probes go unanswered (a
/// crashed or partitioned peer never replies).
pub const MAX_READ_PROBES: usize = 1024;

/// One in-flight quorum-read probe: reads waiting for a majority of
/// read marks before they can park.
#[derive(Debug)]
struct Probe {
    /// Requester-local probe sequence number.
    seq: u64,
    /// Peers that have answered (self is counted implicitly).
    responders: Vec<ReplicaId>,
    /// The largest mark reported so far (seeded with the local mark).
    max_mark: u64,
    /// The reads riding on this probe.
    cmds: Vec<Command>,
}

/// The requester side of the quorum-mark read fallback, shared by every
/// protocol that probes (Paxos followers/uncertain leaders, every
/// Mencius replica): tracks in-flight probes, folds peer marks, and
/// hands back the reads of each probe that reached a majority together
/// with the mark to park them at.
///
/// Protocol glue stays thin: wrap [`begin`](ReadProbes::begin)'s
/// [`ReadRequest`] in the protocol's message type and broadcast it,
/// feed incoming [`ReadReply`]s to [`on_reply`](ReadProbes::on_reply),
/// and drain [`take_ready`](ReadProbes::take_ready) into a
/// [`ReadQueue`] after either.
#[derive(Debug, Default)]
pub struct ReadProbes {
    probes: Vec<Probe>,
    seq: u64,
}

impl ReadProbes {
    /// No probes in flight.
    pub fn new() -> Self {
        ReadProbes::default()
    }

    /// Opens a probe carrying `cmds`, seeded with the caller's own read
    /// mark; returns the request to broadcast to the peers. When
    /// [`MAX_READ_PROBES`] are already in flight the oldest is dropped
    /// (client retry re-issues its reads).
    pub fn begin(&mut self, local_mark: u64, cmds: Vec<Command>) -> ReadRequest {
        self.seq += 1;
        if self.probes.len() >= MAX_READ_PROBES {
            self.probes.remove(0);
        }
        self.probes.push(Probe {
            seq: self.seq,
            responders: Vec::new(),
            max_mark: local_mark,
            cmds,
        });
        ReadRequest { seq: self.seq }
    }

    /// Records a peer's answer (duplicate responders are ignored, so a
    /// retransmitted reply can never double-count toward the majority).
    pub fn on_reply(&mut self, from: ReplicaId, reply: ReadReply) {
        if let Some(p) = self.probes.iter_mut().find(|p| p.seq == reply.seq) {
            if !p.responders.contains(&from) {
                p.responders.push(from);
                p.max_mark = p.max_mark.max(reply.mark);
            }
        }
    }

    /// Removes and returns every probe that reached `majority` counting
    /// the requester itself, as `(seq, mark, reads)` triples ready to
    /// park. The probe sequence number lets protocols that keep richer
    /// per-probe state on the side (e.g. Mencius per-owner marks) join
    /// it back up; callers that park on the folded scalar mark alone
    /// simply ignore it. A single-replica configuration is its own
    /// majority, so a probe can complete the moment it is begun.
    pub fn take_ready(&mut self, majority: usize) -> Vec<(u64, u64, Vec<Command>)> {
        let mut ready = Vec::new();
        self.probes.retain_mut(|p| {
            if 1 + p.responders.len() >= majority {
                ready.push((p.seq, p.max_mark, std::mem::take(&mut p.cmds)));
                false
            } else {
                true
            }
        });
        ready
    }

    /// Number of reads riding in-flight probes.
    pub fn pending(&self) -> usize {
        self.probes.iter().map(|p| p.cmds.len()).sum()
    }

    /// Number of probes currently in flight. Callers batching reads onto
    /// probes use this as the gate: while a probe is out, newly arrived
    /// reads queue locally and ride the **next** probe together (a probe
    /// must begin *after* every read it carries arrived — attaching a
    /// read to an already-launched probe could park it at a mark that
    /// predates a write the read must see).
    pub fn in_flight(&self) -> usize {
        self.probes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandId;
    use crate::id::{ClientId, ReplicaId};
    use bytes::Bytes;

    fn cmd(seq: u64) -> Command {
        Command::read(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from_static(b"r"),
        )
    }

    #[test]
    fn releases_in_mark_order_up_to_stable() {
        let mut q: ReadQueue<u64> = ReadQueue::new();
        q.park(10, cmd(1));
        q.park(5, cmd(2));
        q.park(7, cmd(3));
        assert_eq!(q.len(), 3);
        let ready = q.release(7);
        assert_eq!(
            ready.iter().map(|c| c.id.seq).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(q.len(), 1);
        assert!(q.release(9).is_empty());
        assert_eq!(q.release(10).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn same_mark_reads_release_together_in_park_order() {
        let mut q: ReadQueue<u64> = ReadQueue::new();
        q.park(4, cmd(1));
        q.park(4, cmd(2));
        let ready = q.release(4);
        assert_eq!(
            ready.iter().map(|c| c.id.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn drain_all_empties_the_queue() {
        let mut q: ReadQueue<u64> = ReadQueue::new();
        q.park(3, cmd(1));
        q.park(9, cmd(2));
        assert_eq!(q.drain_all().len(), 2);
        assert!(q.is_empty());
        assert!(q.release(u64::MAX).is_empty());
    }

    #[test]
    fn probes_complete_on_a_majority_with_the_max_mark() {
        let mut probes = ReadProbes::new();
        let req = probes.begin(5, vec![cmd(1), cmd(2)]);
        assert_eq!(req.seq, 1);
        assert_eq!(probes.pending(), 2);
        assert!(probes.take_ready(2).is_empty(), "self alone is not 2");
        probes.on_reply(ReplicaId::new(1), ReadReply { seq: 1, mark: 9 });
        // A duplicate reply from the same peer never double-counts.
        probes.on_reply(ReplicaId::new(1), ReadReply { seq: 1, mark: 50 });
        let ready = probes.take_ready(3);
        assert!(ready.is_empty(), "1 peer + self is not 3");
        let ready = probes.take_ready(2);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].0, 1, "probe seq is echoed back");
        assert_eq!(ready[0].1, 9, "max of local seed (5) and peer mark (9)");
        assert_eq!(ready[0].2.len(), 2);
        assert_eq!(probes.pending(), 0);
    }

    #[test]
    fn single_replica_probe_is_immediately_ready() {
        let mut probes = ReadProbes::new();
        probes.begin(3, vec![cmd(1)]);
        let ready = probes.take_ready(1);
        assert_eq!(ready, vec![(1, 3, vec![cmd(1)])]);
    }

    #[test]
    fn probe_cap_drops_the_oldest() {
        let mut probes = ReadProbes::new();
        for i in 0..=MAX_READ_PROBES as u64 {
            probes.begin(0, vec![cmd(i)]);
        }
        assert_eq!(probes.pending(), MAX_READ_PROBES);
        // The first probe (seq 1) was dropped: its reply finds nothing.
        probes.on_reply(ReplicaId::new(1), ReadReply { seq: 1, mark: 9 });
        assert!(probes.take_ready(2).is_empty());
    }

    #[test]
    fn wire_shapes_have_header_weight() {
        assert_eq!(ReadRequest { seq: 1 }.wire_size(), MSG_HEADER_BYTES);
        assert_eq!(ReadReply { seq: 1, mark: 9 }.wire_size(), MSG_HEADER_BYTES);
    }

    #[test]
    fn read_path_is_comparable() {
        assert_eq!(ReadPath::LocalStable, ReadPath::LocalStable);
        assert_ne!(ReadPath::LeaderLease, ReadPath::Replicated);
    }
}
