//! Command batches and batching policy.
//!
//! The paper's throughput analysis (Section VI-D) attributes Paxos's
//! small-command advantage to the leader "batching more commands when
//! sending and receiving messages". This module makes batching a
//! first-class protocol concept rather than a CPU-model artifact: drivers
//! coalesce queued client requests into a [`Batch`], protocols replicate
//! the whole batch with **one** wire message and **one** acknowledgement,
//! and per-command ordering coordinates are derived from a single head
//! coordinate plus each command's offset within the batch.
//!
//! A `Batch` is strictly ordered: command `i` executes before command
//! `i + 1`, and a protocol maps offset `i` onto its own order space —
//! Clock-RSM assigns timestamp `head + i`, Paxos instance `first + i`,
//! Mencius the `i`-th own slot after `first`.
//!
//! Two hot-path concerns live here besides the data type:
//!
//! * **Allocation-lean fan-out.** A batch's command vector is stored
//!   behind an [`Arc`], so cloning a `Batch` (and therefore cloning a
//!   `PrepareBatch`/`Accept`/`Propose` message once per peer during a
//!   broadcast) bumps a reference count instead of deep-copying every
//!   command. An N-peer fan-out of a 64-command batch shares one
//!   allocation N + 1 ways; [`Batch::ptr_eq`] makes the sharing testable.
//! * **Adaptive batching.** [`BatchPolicy`] can be static (a fixed
//!   flush threshold) or adaptive; the per-node [`BatchController`]
//!   turns the policy into an effective per-drain threshold from
//!   observed inbox depth and a decaying commit-latency estimate. See
//!   the controller docs for the algorithm and its tuning constants.

use std::fmt;
use std::sync::Arc;

use crate::command::Command;
use crate::time::Micros;
use crate::wire::WireSize;

/// An ordered, non-empty group of client commands replicated as one unit.
///
/// # Examples
///
/// ```
/// use rsm_core::{Batch, Command, CommandId, ClientId, ReplicaId};
/// use bytes::Bytes;
///
/// let client = ClientId::new(ReplicaId::new(0), 0);
/// let cmds: Vec<Command> = (1..=3)
///     .map(|seq| Command::new(CommandId::new(client, seq), Bytes::from_static(b"op")))
///     .collect();
/// let batch = Batch::new(cmds);
/// assert_eq!(batch.len(), 3);
/// assert_eq!(batch.get(2).id.seq, 3);
/// let shared = batch.clone(); // O(1): clones share the command vector
/// assert!(batch.ptr_eq(&shared));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Batch {
    /// Shared storage: cloning a batch — which every per-peer message
    /// clone in a broadcast does — is a reference-count bump, never a
    /// deep copy of the commands.
    cmds: Arc<Vec<Command>>,
}

impl Batch {
    /// Wraps an ordered command sequence.
    ///
    /// # Panics
    ///
    /// Panics if `cmds` is empty: protocols rely on every batch carrying
    /// at least one command (a head coordinate with zero span is
    /// meaningless).
    pub fn new(cmds: Vec<Command>) -> Self {
        assert!(!cmds.is_empty(), "batches are non-empty");
        Batch {
            cmds: Arc::new(cmds),
        }
    }

    /// A batch holding a single command (the unbatched fast path).
    pub fn single(cmd: Command) -> Self {
        Batch {
            cmds: Arc::new(vec![cmd]),
        }
    }

    /// Whether two batches share the same backing storage (the
    /// `Bytes::ptr_eq` analogue for command vectors). True between a
    /// batch and its clones — which is exactly what a broadcast produces
    /// — and the property the allocation-lean fan-out tests assert.
    pub fn ptr_eq(&self, other: &Batch) -> bool {
        Arc::ptr_eq(&self.cmds, &other.cmds)
    }

    /// Number of commands in the batch.
    #[allow(clippy::len_without_is_empty)] // batches are never empty
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// The command at offset `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &Command {
        &self.cmds[i]
    }

    /// Iterates the commands in batch order.
    pub fn iter(&self) -> std::slice::Iter<'_, Command> {
        self.cmds.iter()
    }

    /// The commands as a slice.
    pub fn as_slice(&self) -> &[Command] {
        &self.cmds
    }

    /// Consumes the batch, yielding its commands. Free when this is the
    /// last reference to the storage; clones the commands once otherwise
    /// (a batch just received off a broadcast usually still shares its
    /// storage with the sender's other in-flight copies, so hot
    /// receive paths should prefer [`iter`](Batch::iter) and clone the
    /// individual commands they keep — `Command` clones are cheap).
    pub fn into_vec(self) -> Vec<Command> {
        Arc::try_unwrap(self.cmds).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Total payload bytes across all commands.
    pub fn payload_bytes(&self) -> usize {
        self.cmds.iter().map(Command::size).sum()
    }
}

impl IntoIterator for Batch {
    type Item = Command;
    type IntoIter = std::vec::IntoIter<Command>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Command;
    type IntoIter = std::slice::Iter<'a, Command>;
    fn into_iter(self) -> Self::IntoIter {
        self.cmds.iter()
    }
}

impl fmt::Debug for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Batch({} cmds, {}B)",
            self.cmds.len(),
            self.payload_bytes()
        )
    }
}

impl WireSize for Batch {
    fn wire_size(&self) -> usize {
        // Encodes exactly like the underlying Vec<Command>; the enclosing
        // message pays its own header once for the whole batch — that
        // amortization is the point.
        self.cmds.wire_size()
    }
}

/// How a driver coalesces queued client requests into batches.
///
/// Drivers flush **opportunistically, never waiting intentionally** (the
/// paper's own batching discipline): whatever requests are queued when the
/// replica gets scheduled form the next batch, capped at
/// [`max_batch`](BatchPolicy::max_batch) commands *and* at
/// [`max_bytes`](BatchPolicy::max_bytes) of accumulated payload — a batch
/// of kilobyte commands flushes on the byte budget long before the count
/// cap, so one wire message never balloons. A batch always carries at
/// least one command, however large. `max_batch == 1` disables batching
/// and reproduces the per-command protocol exactly.
///
/// With [`adaptive`](BatchPolicy::adaptive) set, `max_batch` becomes a
/// ceiling rather than the operating point: each driver node runs a
/// [`BatchController`] that moves the effective flush threshold between 1
/// and `max_batch` with load, so light load keeps single-command latency
/// and heavy load gets full amortization without retuning the knob.
///
/// # Examples
///
/// ```
/// use rsm_core::BatchPolicy;
/// assert_eq!(BatchPolicy::max(8).max_batch, 8);
/// assert_eq!(BatchPolicy::DISABLED.max_batch, 1);
/// let p = BatchPolicy::max(64).with_max_bytes(4 * 1024);
/// assert!(!p.fits(3, 4 * 1024)); // byte budget reached: flush
/// assert!(p.fits(3, 100));
/// let a = BatchPolicy::adaptive(64);
/// assert!(a.adaptive && a.max_batch == 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Hard cap on commands per batch. Under an adaptive policy this is
    /// the ceiling the controller may widen the threshold to.
    pub max_batch: usize,
    /// Budget on accumulated payload bytes per batch: once a batch
    /// reaches it, the batch flushes even if `max_batch` is not. The
    /// first command of a batch is always admitted regardless.
    pub max_bytes: usize,
    /// Whether the flush threshold adapts to load (see
    /// [`BatchController`]) instead of sitting at `max_batch`.
    pub adaptive: bool,
}

impl BatchPolicy {
    /// Batching off: every command travels alone.
    pub const DISABLED: BatchPolicy = BatchPolicy {
        max_batch: 1,
        max_bytes: usize::MAX,
        adaptive: false,
    };

    /// A policy flushing at most `max_batch` commands per batch, with no
    /// byte budget.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn max(max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        BatchPolicy {
            max_batch,
            max_bytes: usize::MAX,
            adaptive: false,
        }
    }

    /// An adaptive policy: the effective flush threshold tracks load
    /// between 1 and `max_batch` (see [`BatchController`] for the
    /// algorithm), with no byte budget unless one is added.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is not at least 2 — an adaptive policy with
    /// nothing to adapt between is a contradiction; use
    /// [`DISABLED`](BatchPolicy::DISABLED) for unbatched runs.
    pub fn adaptive(max_batch: usize) -> Self {
        assert!(max_batch > 1, "adaptive batching needs max_batch > 1");
        BatchPolicy {
            max_batch,
            max_bytes: usize::MAX,
            adaptive: true,
        }
    }

    /// Adds a payload byte budget to the policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes` is zero (a batch always carries at least one
    /// command; a zero budget is a contradiction, not "no batching").
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        assert!(max_bytes > 0, "max_bytes must be at least 1");
        self.max_bytes = max_bytes;
        self
    }

    /// Whether this policy ever coalesces requests at all — i.e. whether
    /// a driver needs to route requests through its inbox to give the
    /// policy something to work with.
    pub fn coalesces(&self) -> bool {
        self.max_batch > 1
    }

    /// Whether a batch currently holding `len` commands and
    /// `payload_bytes` of payload may admit another command, **at the
    /// policy's full threshold** (`max_batch`). The first command
    /// (`len == 0`) is always admitted. Adaptive drivers ask their
    /// [`BatchController`] instead, which applies the current effective
    /// threshold.
    pub fn fits(&self, len: usize, payload_bytes: usize) -> bool {
        len == 0 || (len < self.max_batch && payload_bytes < self.max_bytes)
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::DISABLED
    }
}

// ---------------------------------------------------------------------
// Adaptive batching controller
// ---------------------------------------------------------------------

/// Decay factor for the inbox-depth estimate: each drain folds the
/// observed queued-request count in with weight 1/4 (`depth ← depth +
/// (observed − depth)/4`). Small enough to ride out single-drain bursts,
/// large enough to track a real load shift within a handful of drains.
pub const DEPTH_ALPHA: f64 = 0.25;

/// Decay factor for the commit-latency estimate (weight 1/8). Latency is
/// a noisier, laggier signal than depth — it includes the WAN round trip
/// — so it decays slower.
pub const LATENCY_ALPHA: f64 = 0.125;

/// The latency floor creeps up at this fractional rate per second of
/// **sample time**, so the light-load baseline re-learns after a
/// permanent environment change (say, a replica moving farther away)
/// instead of pinning to a historical minimum forever. The rate is
/// time-based, not per-sample: a node committing tens of thousands of
/// commands per second must not erode the floor thousands of times
/// faster than an idle one — a per-sample creep would race the floor up
/// to an *elevated* latency estimate within a second of heavy load and
/// neutralize the narrowing gate exactly when it matters. At 5 %/s, a
/// genuinely doubled baseline is re-learned in ~15 s, while a transient
/// multi-second backlog keeps the gate closed throughout.
pub const LATENCY_FLOOR_CREEP_PER_SEC: f64 = 0.05;

/// Cap on the creep applied by any single sample, in seconds of
/// elapsed time. Without it, the first commit after a long commit-idle
/// gap would apply the whole gap's worth of creep at once and snap the
/// floor up to the current (possibly backlogged) estimate, opening the
/// narrowing gate exactly when a burst needs it closed. With the cap,
/// re-learning only advances while commits actually flow.
pub const LATENCY_FLOOR_CREEP_MAX_STEP_SECS: f64 = 1.0;

/// Narrowing is suppressed while the latency estimate exceeds the floor
/// by more than this factor: an empty inbox under elevated latency means
/// the backlog lives downstream (in the pipeline), not that load is gone.
pub const LATENCY_SLACK: f64 = 1.25;

/// Narrowing requires the depth estimate to fall below `threshold /
/// NARROW_DIV` — together with doubling-only widening this gives the
/// hysteresis band `[threshold/4, threshold)` in which the threshold
/// holds still, so depth oscillating around the operating point cannot
/// make the threshold thrash.
pub const NARROW_DIV: usize = 4;

/// Per-node adaptive batching state: turns a [`BatchPolicy`] into an
/// *effective* flush threshold for each inbox drain.
///
/// # Algorithm
///
/// The controller keeps two decaying estimates and one output:
///
/// * **depth** — an EWMA (weight [`1/4`](DEPTH_ALPHA)) over the number
///   of client requests waiting in the node's inbox at each drain. This
///   is the load signal: a deep inbox means arrivals outpace drains.
/// * **latency** — an EWMA (weight [`1/8`](LATENCY_ALPHA)) over
///   locally-originated commit latencies, plus a decaying minimum (the
///   *floor*, creeping up [5 %](LATENCY_FLOOR_CREEP_PER_SEC) per second
///   of sample time) that serves as the light-load baseline.
/// * **threshold** — the effective `max_batch` for the next drain,
///   always in `[1, policy.max_batch]`.
///
/// Each drain moves the threshold multiplicatively, with hysteresis:
///
/// * **widen** (`depth ≥ threshold`): the queue fills as fast as we
///   drain it — double the threshold (capped at `max_batch`) so the next
///   batch amortizes more per message.
/// * **narrow** (`depth < threshold/`[`4`](NARROW_DIV) *and* latency
///   within [25 %](LATENCY_SLACK) of its floor): load is gone *and* the
///   pipeline has caught up — halve the threshold (floored at 1), moving
///   back toward single-command latency.
/// * otherwise hold. The dead band `[threshold/4, threshold)` is what
///   prevents thrashing; requiring quiescent latency to narrow prevents
///   a momentarily empty inbox (the drain just emptied it) from
///   shrinking batches while commits are still backed up downstream.
///
/// At light load the threshold decays within a few drains to the
/// trickle floor (`1 · NARROW_DIV = 4` under 1-deep drains; see
/// [`begin_drain`](BatchController::begin_drain)). That floor costs
/// nothing: flushes are opportunistic, so a lone request still commits
/// with batch-of-1 latency under *any* threshold — the threshold only
/// caps how much a deep queue may coalesce. Under a sustained burst the
/// threshold doubles per drain, reaching a ceiling of 64 in six drains.
/// A **static** policy yields a degenerate controller whose threshold
/// is pinned at `max_batch`.
///
/// The byte budget adapts **in lockstep** with the count threshold: under
/// an adaptive policy with a finite `max_bytes`, the effective budget
/// starts at `max_bytes / max_batch` (one count-threshold's worth of
/// average headroom), doubles on every widen and halves on every narrow,
/// clamped to `[max_bytes / max_batch, max_bytes]`. Large-payload load
/// therefore grows the byte budget exactly as small-command load grows
/// the count threshold, and `max_bytes` itself remains the hard
/// transport bound a wire message can never exceed. A policy with no
/// byte budget (`usize::MAX`) never adapts one into existence.
///
/// # Examples
///
/// ```
/// use rsm_core::{BatchController, BatchPolicy};
/// let mut c = BatchController::new(BatchPolicy::adaptive(64));
/// assert_eq!(c.effective_max_batch(), 1); // light-load-first
/// for _ in 0..8 {
///     c.begin_drain(64); // sustained pressure
/// }
/// assert_eq!(c.effective_max_batch(), 64);
/// for _ in 0..24 {
///     c.begin_drain(1); // load subsides to a trickle
/// }
/// assert!(c.effective_max_batch() <= 4);
/// ```
#[derive(Debug, Clone)]
pub struct BatchController {
    policy: BatchPolicy,
    threshold: usize,
    /// Effective payload byte budget, moved in lockstep with
    /// `threshold` between `bytes_floor(policy)` and `policy.max_bytes`.
    bytes_threshold: usize,
    depth_ewma: f64,
    latency_ewma_us: f64,
    latency_floor_us: f64,
    /// Timestamp of the last latency sample (driver clock, µs) — the
    /// time base for the floor's creep.
    last_latency_at_us: Micros,
}

/// The smallest byte budget an adaptive controller may narrow to: one
/// count-threshold's worth of average per-command headroom. A policy
/// without a byte budget keeps `usize::MAX` (nothing to adapt).
fn bytes_floor(policy: &BatchPolicy) -> usize {
    if policy.max_bytes == usize::MAX {
        usize::MAX
    } else {
        (policy.max_bytes / policy.max_batch).max(1)
    }
}

impl BatchController {
    /// Creates a controller for the policy. Adaptive policies start at
    /// threshold 1 (latency-safe until load proves otherwise); static
    /// policies pin the threshold at `max_batch`.
    pub fn new(policy: BatchPolicy) -> Self {
        BatchController {
            threshold: if policy.adaptive { 1 } else { policy.max_batch },
            bytes_threshold: if policy.adaptive {
                bytes_floor(&policy)
            } else {
                policy.max_bytes
            },
            depth_ewma: 0.0,
            latency_ewma_us: 0.0,
            latency_floor_us: f64::INFINITY,
            last_latency_at_us: 0,
            policy,
        }
    }

    /// The policy this controller was built from.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The effective flush threshold the next drain will use.
    pub fn effective_max_batch(&self) -> usize {
        self.threshold
    }

    /// The effective payload byte budget the next drain will use. Pinned
    /// at `policy.max_bytes` for static policies; adapts alongside
    /// [`effective_max_batch`](BatchController::effective_max_batch)
    /// otherwise.
    pub fn effective_max_bytes(&self) -> usize {
        self.bytes_threshold
    }

    /// Called at the start of each inbox drain with the number of client
    /// requests observed waiting; updates the depth estimate and applies
    /// the widen/narrow rules. Returns the threshold for this drain.
    /// No-op (returns `max_batch`) for static policies.
    ///
    /// Drains carrying **no** requests (a message-only inbox) are also a
    /// no-op: under protocol-heavy traffic most drains process only
    /// peer messages, and letting them vote "depth 0" would drag the
    /// estimate to zero and thrash the threshold while clients are in
    /// fact saturating the node. The depth signal is *requests per
    /// request-carrying drain* — its floor is 1, which is why a 1-deep
    /// trickle rests the threshold at 4 (= 1 · [`NARROW_DIV`]) rather
    /// than 1; that costs nothing, because flushes are opportunistic
    /// (a threshold only caps a batch, it never delays one).
    pub fn begin_drain(&mut self, queued_requests: usize) -> usize {
        if !self.policy.adaptive || queued_requests == 0 {
            return self.threshold;
        }
        self.depth_ewma += DEPTH_ALPHA * (queued_requests as f64 - self.depth_ewma);
        if self.depth_ewma >= self.threshold as f64 {
            self.threshold = (self.threshold * 2).min(self.policy.max_batch);
            self.bytes_threshold = self
                .bytes_threshold
                .saturating_mul(2)
                .min(self.policy.max_bytes);
        } else if self.depth_ewma < self.threshold as f64 / NARROW_DIV as f64
            && self.latency_quiescent()
        {
            self.threshold = (self.threshold / 2).max(1);
            self.bytes_threshold = (self.bytes_threshold / 2).max(bytes_floor(&self.policy));
        }
        self.threshold
    }

    /// Feeds one locally-originated commit latency sample, in
    /// microseconds, taken at driver-clock time `now_us`. The sample
    /// should approximate request-to-commit time at the origin; drivers
    /// feed what they can observe (the simulator measures from the
    /// request entering the node's inbox, the threaded runtime from the
    /// drain that dequeued it — the latter misses inbox wait, so it
    /// under-reports backlog slightly). The signal only gates *narrowing*
    /// relative to its own floor, so a consistently-measured
    /// under-estimate still works. The clock only needs to be monotonic
    /// per node — it is the time base for the floor's creep, which is
    /// deliberately per-second rather than per-sample (see
    /// [`LATENCY_FLOOR_CREEP_PER_SEC`]). Ignored for static policies.
    pub fn record_commit_latency(&mut self, latency_us: Micros, now_us: Micros) {
        if !self.policy.adaptive {
            return;
        }
        let sample = latency_us as f64;
        if self.latency_floor_us.is_finite() {
            self.latency_ewma_us += LATENCY_ALPHA * (sample - self.latency_ewma_us);
            let dt_secs = (now_us.saturating_sub(self.last_latency_at_us) as f64 / 1e6)
                .min(LATENCY_FLOOR_CREEP_MAX_STEP_SECS);
            self.latency_floor_us = (self.latency_floor_us
                * (1.0 + LATENCY_FLOOR_CREEP_PER_SEC * dt_secs))
                .min(self.latency_ewma_us);
        } else {
            // First sample seeds both estimates.
            self.latency_ewma_us = sample;
            self.latency_floor_us = sample;
        }
        self.last_latency_at_us = now_us;
    }

    /// Whether recent commit latency sits near its light-load floor (or
    /// no samples exist yet, in which case depth alone governs).
    fn latency_quiescent(&self) -> bool {
        !self.latency_floor_us.is_finite()
            || self.latency_ewma_us <= self.latency_floor_us * LATENCY_SLACK
    }

    /// Whether a batch currently holding `len` commands and
    /// `payload_bytes` of payload may admit another command under the
    /// **current effective thresholds** (count and byte budget both
    /// adapt). The first command is always admitted.
    pub fn fits(&self, len: usize, payload_bytes: usize) -> bool {
        len == 0 || (len < self.threshold && payload_bytes < self.bytes_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandId;
    use crate::id::{ClientId, ReplicaId};
    use crate::wire::MSG_HEADER_BYTES;
    use bytes::Bytes;

    fn cmd(seq: u64, len: usize) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn batch_preserves_order() {
        let b = Batch::new(vec![cmd(1, 4), cmd(2, 4), cmd(3, 4)]);
        let seqs: Vec<u64> = b.iter().map(|c| c.id.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(b.payload_bytes(), 12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_rejected() {
        let _ = Batch::new(Vec::new());
    }

    #[test]
    fn batch_wire_size_amortizes_headers() {
        let cmds: Vec<Command> = (0..10).map(|i| cmd(i, 10)).collect();
        let batched = Batch::new(cmds.clone()).wire_size() + MSG_HEADER_BYTES;
        let unbatched: usize = cmds.iter().map(|c| c.wire_size() + MSG_HEADER_BYTES).sum();
        assert!(batched < unbatched, "{batched} !< {unbatched}");
    }

    #[test]
    fn policy_defaults_to_disabled() {
        assert_eq!(BatchPolicy::default(), BatchPolicy::DISABLED);
        assert_eq!(BatchPolicy::max(16).max_batch, 16);
        assert_eq!(BatchPolicy::max(16).max_bytes, usize::MAX);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cap_rejected() {
        let _ = BatchPolicy::max(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_byte_budget_rejected() {
        let _ = BatchPolicy::max(8).with_max_bytes(0);
    }

    #[test]
    fn clones_share_storage_and_into_vec_recovers_it() {
        let b = Batch::new(vec![cmd(1, 8), cmd(2, 8)]);
        let c = b.clone();
        assert!(b.ptr_eq(&c), "clones must share the command vector");
        assert!(!b.ptr_eq(&Batch::new(vec![cmd(1, 8), cmd(2, 8)])));
        // Shared: into_vec falls back to one copy.
        let v = c.into_vec();
        assert_eq!(v.len(), 2);
        // Unique again: into_vec moves the storage out without copying.
        let payload_ptr = b.get(0).payload.as_ptr();
        let v = b.into_vec();
        assert_eq!(v[0].payload.as_ptr(), payload_ptr);
    }

    #[test]
    fn adaptive_policy_shape() {
        let p = BatchPolicy::adaptive(64);
        assert!(p.adaptive);
        assert_eq!(p.max_batch, 64);
        assert!(p.coalesces());
        assert!(!BatchPolicy::DISABLED.coalesces());
        assert!(!BatchPolicy::max(8).adaptive);
    }

    #[test]
    #[should_panic(expected = "max_batch > 1")]
    fn adaptive_without_headroom_rejected() {
        let _ = BatchPolicy::adaptive(1);
    }

    #[test]
    fn static_controller_is_pinned() {
        let mut c = BatchController::new(BatchPolicy::max(8));
        assert_eq!(c.effective_max_batch(), 8);
        assert_eq!(c.begin_drain(1000), 8);
        c.record_commit_latency(1, 0);
        assert_eq!(c.begin_drain(0), 8);
        assert!(c.fits(7, 0) && !c.fits(8, 0));
    }

    #[test]
    fn adaptive_widens_under_pressure_and_narrows_when_idle() {
        let mut c = BatchController::new(BatchPolicy::adaptive(64));
        assert_eq!(c.effective_max_batch(), 1, "starts latency-safe");
        let mut widen_drains = 0;
        while c.effective_max_batch() < 64 {
            c.begin_drain(64);
            widen_drains += 1;
            assert!(widen_drains <= 10, "widening must be fast");
        }
        let mut narrow_drains = 0;
        while c.effective_max_batch() > 4 {
            c.begin_drain(1);
            narrow_drains += 1;
            assert!(narrow_drains <= 64, "a trickle must decay the threshold");
        }
        // Message-only drains (no requests) carry no depth signal.
        c.begin_drain(0);
        assert_eq!(c.effective_max_batch(), 4, "zero-request drains hold");
        assert!(c.fits(3, 0) && !c.fits(4, 0));
    }

    #[test]
    fn hysteresis_band_holds_the_threshold_still() {
        let mut c = BatchController::new(BatchPolicy::adaptive(64));
        // Push to a mid operating point.
        while c.effective_max_batch() < 16 {
            c.begin_drain(16);
        }
        let t = c.effective_max_batch();
        // Depth oscillating inside [t/4, t) must not move the threshold.
        for depth in [t / 4, t - 1, t / 2, t / 4 + 1, t - 1] {
            c.begin_drain(depth);
            assert_eq!(c.effective_max_batch(), t, "thrash at depth {depth}");
        }
    }

    #[test]
    fn elevated_latency_blocks_narrowing() {
        let mut c = BatchController::new(BatchPolicy::adaptive(64));
        while c.effective_max_batch() < 64 {
            c.begin_drain(64);
        }
        // Establish a light-load floor, then drive latency well above
        // it: 10 ms apart, so the floor's 5 %/s creep stays negligible
        // over the elevated window (~0.32 s).
        let mut now = 0;
        for _ in 0..32 {
            now += 10_000;
            c.record_commit_latency(10_000, now);
        }
        for _ in 0..32 {
            now += 10_000;
            c.record_commit_latency(100_000, now);
        }
        let before = c.effective_max_batch();
        for _ in 0..8 {
            c.begin_drain(1);
        }
        assert_eq!(
            c.effective_max_batch(),
            before,
            "a shallow inbox with backed-up commits must not shrink batches"
        );
        // Once latency returns to the floor, narrowing resumes.
        for _ in 0..64 {
            now += 10_000;
            c.record_commit_latency(10_000, now);
        }
        for _ in 0..32 {
            c.begin_drain(1);
        }
        assert_eq!(c.effective_max_batch(), 4, "trickle floor once quiescent");
    }

    #[test]
    fn floor_creep_is_time_based_not_per_sample() {
        // A node committing 10k samples/s at elevated latency must NOT
        // erode the floor: 2 000 samples spaced 100 µs span only 0.2 s,
        // so the gate stays closed and the threshold holds.
        let mut c = BatchController::new(BatchPolicy::adaptive(64));
        while c.effective_max_batch() < 64 {
            c.begin_drain(64);
        }
        let mut now = 0;
        for _ in 0..32 {
            now += 10_000;
            c.record_commit_latency(10_000, now);
        }
        for _ in 0..2_000 {
            now += 100;
            c.record_commit_latency(100_000, now);
        }
        let before = c.effective_max_batch();
        for _ in 0..8 {
            c.begin_drain(1);
        }
        assert_eq!(
            c.effective_max_batch(),
            before,
            "a sample flood must not open the narrowing gate"
        );
        // The same elevation sustained for ~80 s of sample time is a new
        // baseline: the floor re-learns and narrowing resumes.
        for _ in 0..80 {
            now += 1_000_000;
            c.record_commit_latency(100_000, now);
        }
        for _ in 0..32 {
            c.begin_drain(1);
        }
        assert_eq!(
            c.effective_max_batch(),
            4,
            "a persistent latency shift must re-learn the floor"
        );
    }

    #[test]
    fn idle_gap_does_not_erase_the_floor() {
        // A long commit-free stretch must not apply its whole duration
        // of creep at once: the first burst after the gap may arrive
        // with the pipeline backed up, and the gate must still hold.
        let mut c = BatchController::new(BatchPolicy::adaptive(64));
        while c.effective_max_batch() < 64 {
            c.begin_drain(64);
        }
        let mut now = 0;
        for _ in 0..32 {
            now += 10_000;
            c.record_commit_latency(10_000, now);
        }
        now += 600_000_000; // 10 minutes without a local commit
        for _ in 0..32 {
            now += 10_000;
            c.record_commit_latency(100_000, now);
        }
        let before = c.effective_max_batch();
        for _ in 0..8 {
            c.begin_drain(1);
        }
        assert_eq!(
            c.effective_max_batch(),
            before,
            "an idle gap must not open the narrowing gate"
        );
    }

    #[test]
    fn adaptive_fits_respects_byte_budget() {
        let mut c = BatchController::new(BatchPolicy::adaptive(64).with_max_bytes(1024));
        for _ in 0..8 {
            c.begin_drain(64);
        }
        assert!(c.fits(3, 100));
        assert!(!c.fits(3, 1024), "byte budget still flushes");
    }

    #[test]
    fn large_payload_load_grows_the_byte_budget() {
        // 64 KiB cap over a 64-command ceiling: the budget starts at one
        // threshold's worth (1 KiB) and must widen with sustained load.
        let mut c = BatchController::new(BatchPolicy::adaptive(64).with_max_bytes(64 * 1024));
        assert_eq!(
            c.effective_max_bytes(),
            1024,
            "starts at max_bytes/max_batch"
        );
        assert!(
            !c.fits(1, 1024),
            "a kilobyte batch flushes under the starting budget"
        );
        // Sustained pressure (a backlog of large-payload requests) widens
        // the byte budget in lockstep with the count threshold, up to the
        // policy cap.
        for _ in 0..12 {
            c.begin_drain(64);
        }
        assert_eq!(c.effective_max_batch(), 64);
        assert_eq!(c.effective_max_bytes(), 64 * 1024, "budget reaches the cap");
        assert!(c.fits(4, 32 * 1024), "large batches now amortize");
        assert!(!c.fits(4, 64 * 1024), "the policy cap stays a hard bound");
        // Load subsiding narrows the budget back toward its floor.
        for _ in 0..64 {
            c.begin_drain(1);
        }
        assert!(
            c.effective_max_bytes() <= 4 * 1024,
            "trickle load decays the budget ({} B)",
            c.effective_max_bytes()
        );
        // A policy with no byte budget never adapts one into existence.
        let mut open = BatchController::new(BatchPolicy::adaptive(64));
        assert_eq!(open.effective_max_bytes(), usize::MAX);
        open.begin_drain(64);
        assert_eq!(open.effective_max_bytes(), usize::MAX);
        assert!(open.fits(1, usize::MAX - 1));
    }

    #[test]
    fn byte_budget_flushes_before_the_count_cap() {
        // Kilobyte payloads against a 2 KiB budget: the third command
        // must start a new batch even though max_batch is far away.
        let p = BatchPolicy::max(64).with_max_bytes(2 * 1024);
        assert!(p.fits(0, 0), "first command always admitted");
        assert!(p.fits(1, 1024));
        assert!(!p.fits(2, 2 * 1024), "budget reached: flush");
        // A single oversized command still rides alone in its own batch.
        assert!(p.fits(0, 0));
        assert!(!p.fits(1, 8 * 1024));
        // Count cap still applies when payloads are tiny.
        assert!(!p.fits(64, 64));
    }
}
