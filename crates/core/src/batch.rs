//! Command batches and batching policy.
//!
//! The paper's throughput analysis (Section VI-D) attributes Paxos's
//! small-command advantage to the leader "batching more commands when
//! sending and receiving messages". This module makes batching a
//! first-class protocol concept rather than a CPU-model artifact: drivers
//! coalesce queued client requests into a [`Batch`], protocols replicate
//! the whole batch with **one** wire message and **one** acknowledgement,
//! and per-command ordering coordinates are derived from a single head
//! coordinate plus each command's offset within the batch.
//!
//! A `Batch` is strictly ordered: command `i` executes before command
//! `i + 1`, and a protocol maps offset `i` onto its own order space —
//! Clock-RSM assigns timestamp `head + i`, Paxos instance `first + i`,
//! Mencius the `i`-th own slot after `first`.

use std::fmt;

use crate::command::Command;
use crate::wire::WireSize;

/// An ordered, non-empty group of client commands replicated as one unit.
///
/// # Examples
///
/// ```
/// use rsm_core::{Batch, Command, CommandId, ClientId, ReplicaId};
/// use bytes::Bytes;
///
/// let client = ClientId::new(ReplicaId::new(0), 0);
/// let cmds: Vec<Command> = (1..=3)
///     .map(|seq| Command::new(CommandId::new(client, seq), Bytes::from_static(b"op")))
///     .collect();
/// let batch = Batch::new(cmds);
/// assert_eq!(batch.len(), 3);
/// assert_eq!(batch.get(2).id.seq, 3);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Batch {
    cmds: Vec<Command>,
}

impl Batch {
    /// Wraps an ordered command sequence.
    ///
    /// # Panics
    ///
    /// Panics if `cmds` is empty: protocols rely on every batch carrying
    /// at least one command (a head coordinate with zero span is
    /// meaningless).
    pub fn new(cmds: Vec<Command>) -> Self {
        assert!(!cmds.is_empty(), "batches are non-empty");
        Batch { cmds }
    }

    /// A batch holding a single command (the unbatched fast path).
    pub fn single(cmd: Command) -> Self {
        Batch { cmds: vec![cmd] }
    }

    /// Number of commands in the batch.
    #[allow(clippy::len_without_is_empty)] // batches are never empty
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// The command at offset `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &Command {
        &self.cmds[i]
    }

    /// Iterates the commands in batch order.
    pub fn iter(&self) -> std::slice::Iter<'_, Command> {
        self.cmds.iter()
    }

    /// The commands as a slice.
    pub fn as_slice(&self) -> &[Command] {
        &self.cmds
    }

    /// Consumes the batch, yielding its commands.
    pub fn into_vec(self) -> Vec<Command> {
        self.cmds
    }

    /// Total payload bytes across all commands.
    pub fn payload_bytes(&self) -> usize {
        self.cmds.iter().map(Command::size).sum()
    }
}

impl IntoIterator for Batch {
    type Item = Command;
    type IntoIter = std::vec::IntoIter<Command>;
    fn into_iter(self) -> Self::IntoIter {
        self.cmds.into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Command;
    type IntoIter = std::slice::Iter<'a, Command>;
    fn into_iter(self) -> Self::IntoIter {
        self.cmds.iter()
    }
}

impl fmt::Debug for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Batch({} cmds, {}B)",
            self.cmds.len(),
            self.payload_bytes()
        )
    }
}

impl WireSize for Batch {
    fn wire_size(&self) -> usize {
        // Encodes exactly like the underlying Vec<Command>; the enclosing
        // message pays its own header once for the whole batch — that
        // amortization is the point.
        self.cmds.wire_size()
    }
}

/// How a driver coalesces queued client requests into batches.
///
/// Drivers flush **opportunistically, never waiting intentionally** (the
/// paper's own batching discipline): whatever requests are queued when the
/// replica gets scheduled form the next batch, capped at
/// [`max_batch`](BatchPolicy::max_batch) commands *and* at
/// [`max_bytes`](BatchPolicy::max_bytes) of accumulated payload — a batch
/// of kilobyte commands flushes on the byte budget long before the count
/// cap, so one wire message never balloons. A batch always carries at
/// least one command, however large. `max_batch == 1` disables batching
/// and reproduces the per-command protocol exactly.
///
/// # Examples
///
/// ```
/// use rsm_core::BatchPolicy;
/// assert_eq!(BatchPolicy::max(8).max_batch, 8);
/// assert_eq!(BatchPolicy::DISABLED.max_batch, 1);
/// let p = BatchPolicy::max(64).with_max_bytes(4 * 1024);
/// assert!(!p.fits(3, 4 * 1024)); // byte budget reached: flush
/// assert!(p.fits(3, 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Hard cap on commands per batch.
    pub max_batch: usize,
    /// Budget on accumulated payload bytes per batch: once a batch
    /// reaches it, the batch flushes even if `max_batch` is not. The
    /// first command of a batch is always admitted regardless.
    pub max_bytes: usize,
}

impl BatchPolicy {
    /// Batching off: every command travels alone.
    pub const DISABLED: BatchPolicy = BatchPolicy {
        max_batch: 1,
        max_bytes: usize::MAX,
    };

    /// A policy flushing at most `max_batch` commands per batch, with no
    /// byte budget.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn max(max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        BatchPolicy {
            max_batch,
            max_bytes: usize::MAX,
        }
    }

    /// Adds a payload byte budget to the policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes` is zero (a batch always carries at least one
    /// command; a zero budget is a contradiction, not "no batching").
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        assert!(max_bytes > 0, "max_bytes must be at least 1");
        self.max_bytes = max_bytes;
        self
    }

    /// Whether a batch currently holding `len` commands and
    /// `payload_bytes` of payload may admit another command. The first
    /// command (`len == 0`) is always admitted.
    pub fn fits(&self, len: usize, payload_bytes: usize) -> bool {
        len == 0 || (len < self.max_batch && payload_bytes < self.max_bytes)
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::DISABLED
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandId;
    use crate::id::{ClientId, ReplicaId};
    use crate::wire::MSG_HEADER_BYTES;
    use bytes::Bytes;

    fn cmd(seq: u64, len: usize) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn batch_preserves_order() {
        let b = Batch::new(vec![cmd(1, 4), cmd(2, 4), cmd(3, 4)]);
        let seqs: Vec<u64> = b.iter().map(|c| c.id.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(b.payload_bytes(), 12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_rejected() {
        let _ = Batch::new(Vec::new());
    }

    #[test]
    fn batch_wire_size_amortizes_headers() {
        let cmds: Vec<Command> = (0..10).map(|i| cmd(i, 10)).collect();
        let batched = Batch::new(cmds.clone()).wire_size() + MSG_HEADER_BYTES;
        let unbatched: usize = cmds.iter().map(|c| c.wire_size() + MSG_HEADER_BYTES).sum();
        assert!(batched < unbatched, "{batched} !< {unbatched}");
    }

    #[test]
    fn policy_defaults_to_disabled() {
        assert_eq!(BatchPolicy::default(), BatchPolicy::DISABLED);
        assert_eq!(BatchPolicy::max(16).max_batch, 16);
        assert_eq!(BatchPolicy::max(16).max_bytes, usize::MAX);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cap_rejected() {
        let _ = BatchPolicy::max(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_byte_budget_rejected() {
        let _ = BatchPolicy::max(8).with_max_bytes(0);
    }

    #[test]
    fn byte_budget_flushes_before_the_count_cap() {
        // Kilobyte payloads against a 2 KiB budget: the third command
        // must start a new batch even though max_batch is far away.
        let p = BatchPolicy::max(64).with_max_bytes(2 * 1024);
        assert!(p.fits(0, 0), "first command always admitted");
        assert!(p.fits(1, 1024));
        assert!(!p.fits(2, 2 * 1024), "budget reached: flush");
        // A single oversized command still rides alone in its own batch.
        assert!(p.fits(0, 0));
        assert!(!p.fits(1, 8 * 1024));
        // Count cap still applies when payloads are tiny.
        assert!(!p.fits(64, 64));
    }
}
