//! Property tests of the simulator substrate itself: per-link FIFO under
//! arbitrary jitter, strict clock monotonicity under arbitrary deviation
//! models, and bit-exact determinism.

use bytes::Bytes;
use proptest::prelude::*;
use rsm_core::command::{Command, CommandId, Committed, Reply};
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::matrix::LatencyMatrix;
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::sm::StateMachine;
use rsm_core::time::Micros;
use rsm_core::wire::WireSize;
use simnet::sim::{Application, SimApi};
use simnet::{ClockModel, PhysicalClock, SimConfig, Simulation};

/// A protocol that stamps every message with a send sequence number so
/// receivers can verify FIFO, and reads its clock on every event to
/// verify monotonicity.
struct Probe {
    id: ReplicaId,
    n: u16,
    sent: u64,
    received_from: Vec<u64>,
    last_clock: Micros,
    clock_regressions: Vec<(Micros, Micros)>,
    fifo_ok: bool,
}

#[derive(Clone, Debug)]
struct Seq(u64);

impl WireSize for Seq {
    fn wire_size(&self) -> usize {
        40
    }
}

impl Protocol for Probe {
    type Msg = Seq;
    type LogRec = ();

    fn id(&self) -> ReplicaId {
        self.id
    }
    fn on_start(&mut self, _ctx: &mut dyn Context<Self>) {}
    fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        let c = ctx.clock();
        if c <= self.last_clock {
            self.clock_regressions.push((self.last_clock, c));
        }
        self.last_clock = c;
        self.sent += 1;
        for i in 0..self.n {
            ctx.send(ReplicaId::new(i), Seq(self.sent));
        }
        ctx.commit(Committed {
            cmd,
            origin: self.id,
            order_hint: self.sent,
        });
    }
    fn on_message(&mut self, from: ReplicaId, msg: Seq, ctx: &mut dyn Context<Self>) {
        let c = ctx.clock();
        if c <= self.last_clock {
            self.clock_regressions.push((self.last_clock, c));
        }
        self.last_clock = c;
        let prev = &mut self.received_from[from.index()];
        self.fifo_ok &= msg.0 == *prev + 1;
        *prev = msg.0;
    }
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut dyn Context<Self>) {}
    fn on_recover(&mut self, _log: &[()], _ctx: &mut dyn Context<Self>) {}
}

struct Driver {
    submissions: Vec<(Micros, u16)>,
}

impl Application<Probe> for Driver {
    fn on_init(&mut self, api: &mut SimApi<'_, Probe>) {
        for (i, &(at, _)) in self.submissions.iter().enumerate() {
            api.schedule(at, i as u64);
        }
    }
    fn on_event(&mut self, key: u64, api: &mut SimApi<'_, Probe>) {
        let (_, site) = self.submissions[key as usize];
        let id = CommandId::new(ClientId::new(ReplicaId::new(site), 0), key + 1);
        api.submit(
            ReplicaId::new(site),
            Command::new(id, Bytes::from_static(b"p")),
        );
    }
    fn on_reply(&mut self, _c: ClientId, _r: Reply, _api: &mut SimApi<'_, Probe>) {}
}

#[derive(Default)]
struct NullSm;
impl StateMachine for NullSm {
    fn apply(&mut self, _cmd: &Command) -> Bytes {
        Bytes::new()
    }
    fn snapshot(&self) -> Bytes {
        Bytes::new()
    }
    fn reset(&mut self) {}
}

#[allow(clippy::type_complexity)]
fn run_probe(
    n: u16,
    latency_us: Micros,
    jitter_us: Micros,
    seed: u64,
    clock: ClockModel,
    submissions: Vec<(Micros, u16)>,
) -> Vec<(bool, Vec<(Micros, Micros)>, u64)> {
    let cfg = SimConfig::new(LatencyMatrix::uniform(n as usize, latency_us))
        .seed(seed)
        .jitter_us(jitter_us)
        .clock_model(clock);
    let mut sim = Simulation::new(
        cfg,
        move |id| Probe {
            id,
            n,
            sent: 0,
            received_from: vec![0; n as usize],
            last_clock: 0,
            clock_regressions: Vec::new(),
            fifo_ok: true,
        },
        || Box::new(NullSm),
        Driver { submissions },
    );
    sim.run_until(60_000_000);
    (0..n)
        .map(|i| {
            let p = sim.protocol(ReplicaId::new(i));
            (
                p.fifo_ok,
                p.clock_regressions.clone(),
                p.received_from.iter().sum::<u64>(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FIFO holds per link for any jitter magnitude, and clocks read
    /// strictly monotonically under any deviation model.
    #[test]
    fn fifo_and_clock_invariants(
        n in 2u16..6,
        latency in 100u64..50_000,
        jitter in 0u64..50_000,
        seed in any::<u64>(),
        bound in 0u64..100_000,
        drift in -400f64..400.0,
        subs in proptest::collection::vec((0u64..1_000_000, 0u16..6), 1..60),
    ) {
        let submissions: Vec<(Micros, u16)> =
            subs.into_iter().map(|(t, s)| (t, s % n)).collect();
        let expected: u64 = submissions.len() as u64;
        let clock = ClockModel::ntp(bound).with_drift_ppm(drift);
        let results = run_probe(n, latency, jitter, seed, clock, submissions);
        for (i, (fifo_ok, regressions, received)) in results.iter().enumerate() {
            prop_assert!(*fifo_ok, "replica {}: FIFO violated", i);
            prop_assert!(
                regressions.is_empty(),
                "replica {}: clock regressed: {:?}", i, regressions
            );
            // Every broadcast reaches every replica (no loss in a
            // fault-free run): each submission broadcasts once to all.
            prop_assert_eq!(*received, expected, "replica {} lost messages", i);
        }
    }

    /// Bit-exact determinism for arbitrary seeds and jitter.
    #[test]
    fn runs_are_deterministic(
        seed in any::<u64>(),
        jitter in 0u64..20_000,
    ) {
        let subs = vec![(1_000, 0), (2_000, 1), (2_000, 2), (50_000, 0)];
        let a = run_probe(3, 10_000, jitter, seed, ClockModel::ntp(5_000), subs.clone());
        let b = run_probe(3, 10_000, jitter, seed, ClockModel::ntp(5_000), subs);
        prop_assert_eq!(a, b);
    }

    /// The physical clock itself: raw readings never decrease for valid
    /// models, and reads are strictly increasing.
    #[test]
    fn physical_clock_monotonic(
        offset in -1_000_000i64..1_000_000,
        drift in -400f64..400.0,
        bound in 0u64..2_000_000,
        times in proptest::collection::vec(0u64..100_000_000, 2..50),
    ) {
        let model = ClockModel {
            offset_us: offset,
            drift_ppm: drift,
            sync_bound_us: bound,
        };
        let mut sorted = times;
        sorted.sort_unstable();
        let mut clock = PhysicalClock::new(model);
        let mut last = None;
        for t in sorted {
            let v = clock.read(t);
            if let Some(prev) = last {
                prop_assert!(v > prev, "clock regressed: {v} after {prev}");
            }
            last = Some(v);
        }
    }
}
