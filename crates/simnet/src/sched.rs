//! The discrete-event scheduler.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rsm_core::time::Micros;

/// A generic priority queue of timestamped events.
///
/// Events fire in `(time, insertion order)` order: ties on virtual time are
/// broken by a monotonically increasing sequence number, so same-instant
/// events fire in the order they were scheduled. Together with the
/// simulator's per-link FIFO floors this yields fully deterministic runs.
///
/// # Examples
///
/// ```
/// use simnet::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(20, "b");
/// q.push(10, "a");
/// q.push(20, "c");
/// assert_eq!(q.pop(), Some((10, "a")));
/// assert_eq!(q.pop(), Some((20, "b"))); // FIFO among ties
/// assert_eq!(q.pop(), Some((20, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: Micros,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest event first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute virtual time `at`.
    pub fn push(&mut self, at: Micros, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Micros, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The virtual time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Micros> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7, "x");
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.push(30, "d");
        assert_eq!(q.pop(), Some((10, "a")));
        q.push(20, "b");
        q.push(25, "c");
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((25, "c")));
        assert_eq!(q.pop(), Some((30, "d")));
    }
}
