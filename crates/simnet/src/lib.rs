//! # simnet
//!
//! A **deterministic discrete-event simulator** for wide-area replicated
//! systems: the substrate on which every experiment of the Clock-RSM
//! reproduction runs.
//!
//! The paper (Du et al., DSN 2014) evaluates Clock-RSM and its baselines on
//! replicas deployed across Amazon EC2 data centers. We substitute that
//! testbed with a simulator that models exactly the quantities the paper's
//! analysis says matter:
//!
//! * **non-uniform one-way latencies** between data centers, taken from the
//!   paper's own measured RTT matrix (Table III), with optional jitter and
//!   strict per-link FIFO delivery (the paper's channel assumption);
//! * **loosely synchronized physical clocks** with configurable offset,
//!   drift, and an NTP-like synchronization bound — monotonic, as obtained
//!   from `clock_gettime` in the paper's implementation;
//! * **stable storage** that survives simulated crashes;
//! * **crash / recovery / partition** fault injection;
//! * an optional **CPU cost model** with opportunistic batching, used by
//!   the local-cluster throughput experiments (Figure 8);
//! * **request coalescing** ([`SimConfig::batch_policy`]): client
//!   requests queued at a replica when it gets scheduled are handed to
//!   the protocol as one `Batch` of up to `max_batch` commands, enabling
//!   the protocol-level batching of the replication crates.
//!
//! Runs are fully deterministic given a seed, so every experiment and every
//! failure scenario in the test suite is replayable.
//!
//! ## Example
//!
//! ```
//! use rsm_core::LatencyMatrix;
//! use simnet::{ClockModel, SimConfig};
//!
//! let cfg = SimConfig::new(LatencyMatrix::uniform(3, 25_000))
//!     .seed(7)
//!     .jitter_us(500)
//!     .clock_model(ClockModel::ntp(1_000));
//! assert_eq!(cfg.num_replicas(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod cpu;
pub mod sched;
pub mod sim;
pub mod storage;

pub use clock::{ClockAnomaly, ClockModel, PhysicalClock};
pub use cpu::CpuModel;
pub use sched::EventQueue;
pub use sim::{Application, CommitRecord, NullApplication, SimApi, SimConfig, Simulation};
pub use storage::SimLog;
