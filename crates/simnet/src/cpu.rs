//! CPU cost model for throughput experiments.
//!
//! The paper's local-cluster evaluation (Section VI-D, Figure 8) finds that
//! "in all cases, CPU is the bottleneck and message sending and receiving
//! is the major consumer of CPU cycles", and that replicas "batch the same
//! type of messages being processed whenever possible ... without waiting
//! intentionally". This module prices message processing so the simulator
//! can reproduce those dynamics: a fixed cost per batch (syscall +
//! serialization setup), a small marginal cost per message in the batch,
//! and a per-byte cost.

use rsm_core::time::Micros;

/// Cost parameters for one replica's CPU.
///
/// A *batch* is a group of same-type messages moving between the same pair
/// of replicas in one processing step. Its cost is
/// `fixed_batch_us + per_msg_us·k + per_kb_us·bytes/1024`.
///
/// Defaults are calibrated so that a single replica saturates in the tens
/// of thousands of small commands per second, the order of magnitude of the
/// paper's 2008-era Xeon cluster (Figure 8 peaks around 75 kop/s).
///
/// # Examples
///
/// ```
/// use simnet::CpuModel;
/// let cpu = CpuModel::default();
/// // One 100-byte message alone in a batch:
/// let alone = cpu.batch_cost(1, 100);
/// // Ten of them batched:
/// let batched = cpu.batch_cost(10, 1000);
/// assert!(batched < 10 * alone, "batching must amortize the fixed cost");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Fixed cost of processing one batch (send or receive), microseconds.
    pub fixed_batch_us: Micros,
    /// Marginal cost per message within a batch, microseconds.
    pub per_msg_us: Micros,
    /// Cost per 1024 bytes moved, microseconds.
    pub per_kb_us: Micros,
}

impl CpuModel {
    /// Cost of a batch of `msgs` messages totalling `bytes` bytes.
    pub fn batch_cost(&self, msgs: usize, bytes: usize) -> Micros {
        if msgs == 0 {
            return 0;
        }
        self.fixed_batch_us
            + self.per_msg_us * msgs as Micros
            + (self.per_kb_us * bytes as Micros) / 1024
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        // fixed: syscall + wakeup + protobuf framing; per message: parse and
        // protocol bookkeeping; per KB: copy + (de)serialize.
        CpuModel {
            fixed_batch_us: 18,
            per_msg_us: 2,
            per_kb_us: 9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(CpuModel::default().batch_cost(0, 0), 0);
    }

    #[test]
    fn cost_is_monotonic_in_each_dimension() {
        let cpu = CpuModel::default();
        assert!(cpu.batch_cost(2, 100) > cpu.batch_cost(1, 100));
        assert!(cpu.batch_cost(1, 2048) > cpu.batch_cost(1, 100));
    }

    #[test]
    fn batching_amortizes_fixed_cost() {
        let cpu = CpuModel::default();
        let one_by_one: Micros = (0..50).map(|_| cpu.batch_cost(1, 64)).sum();
        let together = cpu.batch_cost(50, 50 * 64);
        assert!(together < one_by_one / 3);
    }

    #[test]
    fn large_payload_dominates_for_kilobyte_commands() {
        let cpu = CpuModel::default();
        let small = cpu.batch_cost(1, 10);
        let large = cpu.batch_cost(1, 1000);
        assert!(large > small);
        // The byte cost of a 1000B message exceeds its per-message cost.
        assert!((cpu.per_kb_us * 1000) / 1024 > cpu.per_msg_us);
    }
}
