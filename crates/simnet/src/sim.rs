//! The simulation driver: virtual time, network, nodes, and fault injection.

use std::collections::{HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rsm_core::batch::{Batch, BatchController, BatchPolicy};
use rsm_core::command::{Command, Committed, Reply};
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::matrix::LatencyMatrix;
use rsm_core::obs::{names, span_key, TraceStage};
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::sm::StateMachine;
use rsm_core::time::Micros;
use rsm_core::wire::WireSize;
use rsm_core::CommandId;
use rsm_obs::{MetricsSnapshot, NodeObs, ObsConfig, Registry, Tracer};

use crate::clock::{ClockAnomaly, ClockModel, PhysicalClock};
use crate::cpu::CpuModel;
use crate::sched::EventQueue;
use crate::storage::SimLog;

/// Static configuration of a simulation run.
///
/// Built with a fluent API; see the crate-level example.
#[derive(Debug, Clone)]
pub struct SimConfig {
    latency: LatencyMatrix,
    jitter_us: Micros,
    local_delivery_us: Micros,
    seed: u64,
    clock_model: ClockModel,
    clock_overrides: Vec<(usize, ClockModel)>,
    clock_anomalies: Vec<(usize, Micros, ClockAnomaly)>,
    cpu: Option<CpuModel>,
    batch: BatchPolicy,
    record_history: bool,
    max_events: u64,
    observe: Option<ObsConfig>,
}

impl SimConfig {
    /// Creates a configuration for the given wide-area latency matrix with
    /// paper-faithful defaults: no jitter, 0.3 ms client↔replica latency
    /// (the paper reports ~0.6 ms intra-DC RTT), perfect clocks, no CPU
    /// model, history recording on.
    pub fn new(latency: LatencyMatrix) -> Self {
        SimConfig {
            latency,
            jitter_us: 0,
            local_delivery_us: 300,
            seed: 0,
            clock_model: ClockModel::perfect(),
            clock_overrides: Vec::new(),
            clock_anomalies: Vec::new(),
            cpu: None,
            batch: BatchPolicy::DISABLED,
            record_history: true,
            max_events: u64::MAX,
            observe: None,
        }
    }

    /// Sets the RNG seed controlling jitter, clock offsets, and any
    /// application randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum uniform per-message jitter, in microseconds.
    /// Per-link FIFO order is preserved regardless.
    pub fn jitter_us(mut self, jitter: Micros) -> Self {
        self.jitter_us = jitter;
        self
    }

    /// Sets the one-way latency between a client and its local replica.
    pub fn local_delivery_us(mut self, d: Micros) -> Self {
        self.local_delivery_us = d;
        self
    }

    /// Sets the default clock model for all replicas. When the model has a
    /// non-zero sync bound, each replica receives a deterministic random
    /// initial offset within ±bound.
    pub fn clock_model(mut self, m: ClockModel) -> Self {
        self.clock_model = m;
        self
    }

    /// Overrides the clock model of one replica.
    pub fn clock_override(mut self, replica: usize, m: ClockModel) -> Self {
        self.clock_overrides.push((replica, m));
        self
    }

    /// Scripts a [`ClockAnomaly`] on one replica's clock at an absolute
    /// virtual time — steps, freezes, and drift bursts composed into fault
    /// schedules by the chaos fuzzer. Anomalies survive crash/recovery
    /// (the clock is hardware, not process state).
    pub fn clock_anomaly(mut self, replica: usize, at: Micros, anomaly: ClockAnomaly) -> Self {
        self.clock_anomalies.push((replica, at, anomaly));
        self
    }

    /// Enables the CPU cost model (throughput experiments).
    pub fn cpu_model(mut self, cpu: CpuModel) -> Self {
        self.cpu = Some(cpu);
        self
    }

    /// Sets the request-coalescing policy: client requests queued at a
    /// replica when it gets scheduled are handed to the protocol as one
    /// [`Batch`] of up to `max_batch` commands (never waiting
    /// intentionally). The default is [`BatchPolicy::DISABLED`], which
    /// reproduces per-command behaviour exactly. An
    /// [adaptive](BatchPolicy::adaptive) policy gives every node a
    /// [`BatchController`] fed from its inbox depth at each drain and
    /// the commit latency of its own clients' requests.
    pub fn batch_policy(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Disables per-commit history recording (for long throughput runs).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Caps the number of processed events (safety valve for tests).
    pub fn max_events(mut self, n: u64) -> Self {
        self.max_events = n;
        self
    }

    /// Enables observability: a metrics [`Registry`] fed by every
    /// replica (protocol counters/gauges plus driver-side execution
    /// counters), per-command trace [`Span`](rsm_obs::Span)s stamped in
    /// **virtual time**, and a periodic
    /// [`obs_poll`](rsm_core::protocol::Protocol::obs_poll) sweep every
    /// [`ObsConfig::poll_interval`] microseconds. Off by default —
    /// uninstrumented runs pay only a `None` check per hook, and
    /// instrumentation cannot consume virtual time, so enabling it
    /// never perturbs a deterministic schedule.
    pub fn observe(mut self, obs: ObsConfig) -> Self {
        self.observe = Some(obs);
        self
    }

    /// Number of replicas in the topology.
    pub fn num_replicas(&self) -> usize {
        self.latency.len()
    }

    /// The latency matrix of this configuration.
    pub fn latency(&self) -> &LatencyMatrix {
        &self.latency
    }
}

/// One committed command as observed at one replica, for test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// Virtual time of execution at this replica.
    pub at: Micros,
    /// Protocol ordering coordinate (timestamp / instance / slot).
    pub order_hint: u64,
    /// Originating replica of the command.
    pub origin: ReplicaId,
    /// Identity of the command.
    pub cmd_id: CommandId,
}

/// The application driving a simulation: submits client commands, receives
/// replies, and observes commits. Workload generators and fault scripts in
/// the `harness` crate implement this.
pub trait Application<P: Protocol> {
    /// Called once at simulation start; schedule initial work here.
    fn on_init(&mut self, api: &mut SimApi<'_, P>);

    /// A reply reached the issuing client.
    fn on_reply(&mut self, client: ClientId, reply: Reply, api: &mut SimApi<'_, P>);

    /// An event scheduled via [`SimApi::schedule`] fired.
    fn on_event(&mut self, key: u64, api: &mut SimApi<'_, P>);

    /// A replica executed a command (observability hook; default no-op).
    fn on_commit(&mut self, _replica: ReplicaId, _committed: &Committed, _at: Micros) {}
}

/// An application that does nothing; useful when a test drives replicas
/// by scheduling events directly.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullApplication;

impl<P: Protocol> Application<P> for NullApplication {
    fn on_init(&mut self, _api: &mut SimApi<'_, P>) {}
    fn on_reply(&mut self, _client: ClientId, _reply: Reply, _api: &mut SimApi<'_, P>) {}
    fn on_event(&mut self, _key: u64, _api: &mut SimApi<'_, P>) {}
}

/// Capabilities the simulator exposes to the application.
pub struct SimApi<'a, P: Protocol> {
    now: Micros,
    local_delivery_us: Micros,
    latency: &'a LatencyMatrix,
    /// Per-site read-routing hints (see [`SimApi::read_target`]).
    read_hints: &'a [ReplicaId],
    queue: &'a mut EventQueue<Event<P>>,
    rng: &'a mut StdRng,
    stop: &'a mut bool,
}

impl<'a, P: Protocol> SimApi<'a, P> {
    /// Current virtual time, microseconds.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Submits a client command to replica `to`; it arrives after the
    /// configured client↔replica latency.
    pub fn submit(&mut self, to: ReplicaId, cmd: Command) {
        self.queue.push(
            self.now + self.local_delivery_us,
            Event::Request { to, cmd },
        );
    }

    /// Submits a client command from a client at site `from` to replica
    /// `to`. Same-site submission costs the local delivery hop; a
    /// cross-site submission pays the configured one-way WAN latency —
    /// client-side routing to a remote lease holder is not free, and an
    /// honest model must charge it.
    pub fn submit_from(&mut self, from: ReplicaId, to: ReplicaId, cmd: Command) {
        let delay = if from == to {
            self.local_delivery_us
        } else {
            self.latency.one_way(from, to)
        };
        self.queue
            .push(self.now + delay, Event::Request { to, cmd });
    }

    /// Where a client at `site` should send a **read-only** command:
    /// the site replica's [`lease_holder_hint`], or the site itself when
    /// the protocol's reads are local/symmetric. This models a client
    /// caching the leader hint its local replica advertises — the hint
    /// may be stale across a fail-over, in which case the read is lost
    /// at the dead leader and retried like any lost command.
    ///
    /// [`lease_holder_hint`]: rsm_core::protocol::Protocol::lease_holder_hint
    pub fn read_target(&self, site: ReplicaId) -> ReplicaId {
        self.read_hints.get(site.index()).copied().unwrap_or(site)
    }

    /// Schedules an application event `after` microseconds from now.
    pub fn schedule(&mut self, after: Micros, key: u64) {
        self.queue.push(self.now + after, Event::App { key });
    }

    /// Crashes a replica `after` microseconds from now: it stops processing
    /// and loses volatile state, keeping its stable log.
    pub fn crash(&mut self, node: ReplicaId, after: Micros) {
        self.queue.push(self.now + after, Event::Crash { node });
    }

    /// Restarts a crashed replica `after` microseconds from now: it runs
    /// protocol recovery from its stable log.
    pub fn recover(&mut self, node: ReplicaId, after: Micros) {
        self.queue.push(self.now + after, Event::Recover { node });
    }

    /// Cuts the link between `a` and `b` (both directions) `after`
    /// microseconds from now; messages park and deliver on heal, modelling
    /// TCP retransmission.
    pub fn partition(&mut self, a: ReplicaId, b: ReplicaId, after: Micros) {
        self.queue.push(self.now + after, Event::Partition { a, b });
    }

    /// Heals the link between `a` and `b` `after` microseconds from now.
    pub fn heal(&mut self, a: ReplicaId, b: ReplicaId, after: Micros) {
        self.queue.push(self.now + after, Event::Heal { a, b });
    }

    /// Steps a replica's physical clock by `delta_us` (positive or
    /// negative) `after` microseconds from now. Reads stay monotonic; a
    /// backwards step simply freezes the observed clock until true time
    /// catches up.
    pub fn clock_jump(&mut self, node: ReplicaId, delta_us: i64, after: Micros) {
        self.queue
            .push(self.now + after, Event::ClockJump { node, delta_us });
    }

    /// Freezes a replica's physical clock for `dur_us` of virtual time,
    /// starting `after` microseconds from now — a VM pause. The clock
    /// resumes from the pinned value, permanently behind by the freeze.
    pub fn clock_freeze(&mut self, node: ReplicaId, dur_us: Micros, after: Micros) {
        self.queue
            .push(self.now + after, Event::ClockFreeze { node, dur_us });
    }

    /// Adds `ppm` of drift to a replica's clock for `dur_us` of virtual
    /// time, starting `after` microseconds from now. The offset the burst
    /// accumulates persists after it ends.
    pub fn clock_drift_burst(&mut self, node: ReplicaId, ppm: f64, dur_us: Micros, after: Micros) {
        self.queue
            .push(self.now + after, Event::ClockDrift { node, ppm, dur_us });
    }

    /// Sets an extra fixed one-way delay on the link between `a` and `b`
    /// (both directions), starting `after` microseconds from now. Zero
    /// clears it. Per-link FIFO order is preserved; relative to other
    /// links, messages reorder — cross-link reordering is the only kind
    /// the drivers' per-link FIFO contract permits.
    pub fn link_delay(&mut self, a: ReplicaId, b: ReplicaId, extra_us: Micros, after: Micros) {
        self.queue
            .push(self.now + after, Event::LinkDelay { a, b, extra_us });
    }

    /// Sets extra uniform per-message jitter on the link between `a` and
    /// `b` (both directions), starting `after` microseconds from now. Zero
    /// clears it. Per-link FIFO order is preserved regardless.
    pub fn link_jitter(&mut self, a: ReplicaId, b: ReplicaId, jitter_us: Micros, after: Micros) {
        self.queue
            .push(self.now + after, Event::LinkJitter { a, b, jitter_us });
    }

    /// The deterministic RNG shared with the simulator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Requests the simulation to stop after the current event.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

enum Event<P: Protocol> {
    Deliver {
        from: ReplicaId,
        to: ReplicaId,
        msg: P::Msg,
    },
    Timer {
        node: ReplicaId,
        incarnation: u64,
        token: TimerToken,
    },
    Request {
        to: ReplicaId,
        cmd: Command,
    },
    ReplyArrive {
        client: ClientId,
        reply: Reply,
    },
    App {
        key: u64,
    },
    Crash {
        node: ReplicaId,
    },
    Recover {
        node: ReplicaId,
    },
    Partition {
        a: ReplicaId,
        b: ReplicaId,
    },
    Heal {
        a: ReplicaId,
        b: ReplicaId,
    },
    ClockJump {
        node: ReplicaId,
        delta_us: i64,
    },
    ClockFreeze {
        node: ReplicaId,
        dur_us: Micros,
    },
    ClockDrift {
        node: ReplicaId,
        ppm: f64,
        dur_us: Micros,
    },
    LinkDelay {
        a: ReplicaId,
        b: ReplicaId,
        extra_us: Micros,
    },
    LinkJitter {
        a: ReplicaId,
        b: ReplicaId,
        jitter_us: Micros,
    },
    ProcessInbox {
        node: ReplicaId,
        incarnation: u64,
    },
    /// Periodic observability sweep: run every live protocol's
    /// `obs_poll` and re-arm. Only ever scheduled when observing.
    ObsPoll,
}

enum NodeInput<P: Protocol> {
    Msg(ReplicaId, P::Msg),
    Request(Command),
}

struct Node<P: Protocol> {
    proto: P,
    sm: Box<dyn StateMachine>,
    clock: PhysicalClock,
    log: SimLog<P::LogRec>,
    up: bool,
    incarnation: u64,
    commits: Vec<CommitRecord>,
    commit_count: u64,
    inbox: VecDeque<NodeInput<P>>,
    inbox_scheduled: bool,
    cpu_free: Micros,
    /// Per-node batching controller: static policies pin it at
    /// `max_batch`; adaptive policies move the effective flush threshold
    /// each drain from observed inbox depth and commit latency.
    batcher: BatchController,
    /// Arrival time of each locally submitted, not-yet-committed request
    /// — the adaptive controller's commit-latency feed. Populated only
    /// under an adaptive policy; bounded by commands in flight.
    req_arrivals: HashMap<CommandId, Micros>,
    /// This replica's handle-cached view of the shared metrics registry
    /// (`None` unless [`SimConfig::observe`] is set).
    obs: Option<NodeObs>,
}

#[derive(Debug)]
struct Effects<P: Protocol> {
    sends: Vec<(ReplicaId, P::Msg)>,
    /// Committed commands with the result the state machine produced
    /// (applied inline, so snapshots taken mid-callback are accurate).
    commits: Vec<(Committed, bytes::Bytes)>,
    timers: Vec<(Micros, TimerToken)>,
    /// Replies to locally served reads (`Context::send_reply`): routed
    /// to the issuing client without a commit.
    read_replies: Vec<Reply>,
    /// A snapshot was installed during the callback: the state machine
    /// jumped over commands this node never executed one by one.
    installed: bool,
}

impl<P: Protocol> Default for Effects<P> {
    fn default() -> Self {
        Effects {
            sends: Vec::new(),
            commits: Vec::new(),
            timers: Vec::new(),
            read_replies: Vec::new(),
            installed: false,
        }
    }
}

struct NodeCtx<'a, P: Protocol> {
    now: Micros,
    clock: &'a mut PhysicalClock,
    log: &'a mut SimLog<P::LogRec>,
    sm: &'a mut dyn StateMachine,
    eff: &'a mut Effects<P>,
    /// Metrics sink for this replica, when observing.
    obs: Option<&'a mut NodeObs>,
    /// Span collector, when observing. Trace stamps carry **virtual
    /// time** — never the replica's (possibly skewed) physical clock —
    /// so breakdown terms across replicas share one timeline.
    tracer: Option<&'a Tracer>,
}

impl<'a, P: Protocol> Context<P> for NodeCtx<'a, P> {
    fn clock(&mut self) -> Micros {
        self.clock.read(self.now)
    }
    fn send(&mut self, to: ReplicaId, msg: P::Msg) {
        self.eff.sends.push((to, msg));
    }
    fn log_append(&mut self, rec: P::LogRec) {
        self.log.append(rec);
    }
    fn log_rewrite(&mut self, recs: Vec<P::LogRec>) {
        self.log.rewrite(recs);
    }
    fn commit(&mut self, committed: Committed) -> bytes::Bytes {
        let result = self.sm.apply(&committed.cmd);
        self.eff.commits.push((committed, result.clone()));
        result
    }
    fn set_timer(&mut self, after: Micros, token: TimerToken) {
        self.eff.timers.push((after, token));
    }
    fn sm_snapshot(&mut self) -> Option<bytes::Bytes> {
        Some(self.sm.snapshot())
    }
    fn sm_install(&mut self, snapshot: bytes::Bytes) -> bool {
        let ok = self.sm.restore(&snapshot);
        self.eff.installed |= ok;
        ok
    }
    fn sm_read(&mut self, cmd: &Command) -> Option<bytes::Bytes> {
        self.sm.query(cmd)
    }
    fn send_reply(&mut self, reply: Reply) {
        self.eff.read_replies.push(reply);
    }
    fn obs_active(&self) -> bool {
        self.obs.is_some()
    }
    fn obs_count(&mut self, name: &'static str, delta: u64) {
        if let Some(o) = &mut self.obs {
            o.count(name, delta);
        }
    }
    fn obs_gauge(&mut self, name: &'static str, value: i64) {
        if let Some(o) = &mut self.obs {
            o.gauge(name, value);
        }
    }
    fn obs_gauge_idx(&mut self, name: &'static str, idx: ReplicaId, value: i64) {
        if let Some(o) = &mut self.obs {
            o.gauge_idx(name, idx.as_u16(), value);
        }
    }
    fn trace(&mut self, id: CommandId, stage: TraceStage) {
        if let Some(t) = self.tracer {
            t.record(span_key(id), stage.index(), self.now);
        }
    }
}

/// A deterministic discrete-event simulation of `P`-replicas on a wide-area
/// network, driven by an [`Application`].
///
/// See the crate docs for the model; see `harness` for ready-made
/// workloads.
pub struct Simulation<P: Protocol, A: Application<P>> {
    cfg: SimConfig,
    now: Micros,
    queue: EventQueue<Event<P>>,
    nodes: Vec<Node<P>>,
    factory: Box<dyn FnMut(ReplicaId) -> P>,
    app: A,
    rng: StdRng,
    fifo_floor: Vec<Vec<Micros>>,
    partitioned: HashSet<(usize, usize)>,
    /// Per-link chaos: `(extra fixed delay, extra jitter bound)` applied to
    /// cross-node sends on that (unordered) link. FIFO floors still apply,
    /// so within-link order is preserved; only cross-link reordering occurs.
    link_chaos: HashMap<(usize, usize), (Micros, Micros)>,
    parked: ParkedLinks<P::Msg>,
    stop: bool,
    events_processed: u64,
    /// The shared metrics registry (populated only when observing).
    registry: Registry,
    /// The span collector, when observing.
    tracer: Option<Tracer>,
}

/// Messages held on a cut link, in order: `(from, to, msg)`.
type ParkedQueue<M> = VecDeque<(ReplicaId, ReplicaId, M)>;

/// Parked queues keyed by the (unordered) link they wait on.
type ParkedLinks<M> = Vec<((usize, usize), ParkedQueue<M>)>;

impl<P: Protocol, A: Application<P>> Simulation<P, A> {
    /// Builds a simulation: one replica per row of the latency matrix,
    /// protocols created by `factory`, state machines by `sm_factory`.
    /// Calls every protocol's `on_start` and the application's `on_init`.
    pub fn new(
        cfg: SimConfig,
        mut factory: impl FnMut(ReplicaId) -> P + 'static,
        sm_factory: impl Fn() -> Box<dyn StateMachine>,
        app: A,
    ) -> Self {
        let n = cfg.num_replicas();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let id = ReplicaId::new(i as u16);
            let mut model = cfg.clock_model;
            // Spread initial offsets within the sync bound, deterministically.
            if model.sync_bound_us > 0 && model.offset_us == 0 {
                let b = model.sync_bound_us as i64;
                model.offset_us = rng.gen_range(-b..=b);
            }
            if let Some((_, m)) = cfg.clock_overrides.iter().find(|(r, _)| *r == i) {
                model = *m;
            }
            let anomalies: Vec<(Micros, ClockAnomaly)> = cfg
                .clock_anomalies
                .iter()
                .filter(|(r, _, _)| *r == i)
                .map(|&(_, at, a)| (at, a))
                .collect();
            nodes.push(Node {
                proto: factory(id),
                sm: sm_factory(),
                clock: PhysicalClock::with_anomalies(model, anomalies),
                log: SimLog::new(),
                up: true,
                incarnation: 0,
                commits: Vec::new(),
                commit_count: 0,
                inbox: VecDeque::new(),
                inbox_scheduled: false,
                cpu_free: 0,
                batcher: BatchController::new(cfg.batch),
                req_arrivals: HashMap::new(),
                obs: None,
            });
        }
        let registry = Registry::new();
        let tracer = cfg.observe.map(Tracer::new);
        if cfg.observe.is_some() {
            for (i, node) in nodes.iter_mut().enumerate() {
                node.obs = Some(NodeObs::new(registry.clone(), i as u16));
            }
        }
        let mut sim = Simulation {
            fifo_floor: vec![vec![0; n]; n],
            partitioned: HashSet::new(),
            link_chaos: HashMap::new(),
            parked: Vec::new(),
            queue: EventQueue::new(),
            nodes,
            factory: Box::new(factory),
            app,
            rng,
            now: 0,
            stop: false,
            events_processed: 0,
            registry,
            tracer,
            cfg,
        };
        if let Some(obs) = sim.cfg.observe {
            sim.queue.push(obs.poll_interval, Event::ObsPoll);
        }
        for i in 0..n {
            sim.invoke(i, false, |p, ctx| p.on_start(ctx));
        }
        let hints = sim.read_hints();
        let Simulation {
            queue,
            rng,
            app,
            stop,
            cfg,
            now,
            ..
        } = &mut sim;
        let mut api = SimApi {
            now: *now,
            local_delivery_us: cfg.local_delivery_us,
            latency: &cfg.latency,
            read_hints: &hints,
            queue,
            rng,
            stop,
        };
        app.on_init(&mut api);
        sim
    }

    /// Per-site read-routing hints: each site's current
    /// [`lease_holder_hint`], defaulting to the site itself (see
    /// [`SimApi::read_target`]).
    ///
    /// [`lease_holder_hint`]: rsm_core::protocol::Protocol::lease_holder_hint
    fn read_hints(&self) -> Vec<ReplicaId> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                n.proto
                    .lease_holder_hint()
                    .unwrap_or(ReplicaId::new(i as u16))
            })
            .collect()
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// The driving application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable access to the driving application.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Injects a client command from **outside** the application — an
    /// external router (e.g. a sharded driver coordinating several
    /// simulations) submitting into this group. Arrives at `to` after
    /// the client-local delivery hop, exactly like
    /// [`SimApi::submit`].
    pub fn submit(&mut self, to: ReplicaId, cmd: Command) {
        self.queue.push(
            self.now + self.cfg.local_delivery_us,
            Event::Request { to, cmd },
        );
    }

    /// Injects a client command from an external router on behalf of a
    /// client at site `from`, aimed at replica `to`. Same-site costs the
    /// local delivery hop; cross-site pays the configured one-way WAN
    /// latency, exactly like [`SimApi::submit_from`].
    pub fn submit_from(&mut self, from: ReplicaId, to: ReplicaId, cmd: Command) {
        let delay = if from == to {
            self.cfg.local_delivery_us
        } else {
            self.cfg.latency.one_way(from, to)
        };
        self.queue
            .push(self.now + delay, Event::Request { to, cmd });
    }

    /// The read-routing target for a client at `site` (external-router
    /// counterpart of [`SimApi::read_target`]).
    pub fn read_target(&self, site: ReplicaId) -> ReplicaId {
        self.nodes[site.index()]
            .proto
            .lease_holder_hint()
            .unwrap_or(site)
    }

    /// Crashes a replica `after` microseconds from now (external-router
    /// counterpart of [`SimApi::crash`]).
    pub fn crash(&mut self, node: ReplicaId, after: Micros) {
        self.queue.push(self.now + after, Event::Crash { node });
    }

    /// Restarts a crashed replica `after` microseconds from now
    /// (external-router counterpart of [`SimApi::recover`]).
    pub fn recover(&mut self, node: ReplicaId, after: Micros) {
        self.queue.push(self.now + after, Event::Recover { node });
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Commit history of a replica (empty unless history recording is on;
    /// cleared when the replica recovers and replays).
    pub fn commits(&self, r: ReplicaId) -> &[CommitRecord] {
        &self.nodes[r.index()].commits
    }

    /// Total number of commands a replica has executed (monotonic across
    /// recoveries).
    pub fn commit_count(&self, r: ReplicaId) -> u64 {
        self.nodes[r.index()].commit_count
    }

    /// Snapshot of a replica's state machine.
    pub fn snapshot(&self, r: ReplicaId) -> bytes::Bytes {
        self.nodes[r.index()].sm.snapshot()
    }

    /// The stable log of a replica (test observability).
    pub fn log(&self, r: ReplicaId) -> &[P::LogRec] {
        self.nodes[r.index()].log.records()
    }

    /// Whether a replica is currently up.
    pub fn is_up(&self, r: ReplicaId) -> bool {
        self.nodes[r.index()].up
    }

    /// The replica's current effective batch flush threshold (test and
    /// bench observability; `max_batch` under a static policy, moving
    /// with load under an adaptive one).
    pub fn batch_threshold(&self, r: ReplicaId) -> usize {
        self.nodes[r.index()].batcher.effective_max_batch()
    }

    /// Immutable access to a replica's protocol instance.
    pub fn protocol(&self, r: ReplicaId) -> &P {
        &self.nodes[r.index()].proto
    }

    /// A deterministic snapshot of every metric, or `None` when
    /// [`SimConfig::observe`] was not set. Two runs of the same seed and
    /// schedule produce `==`-equal snapshots.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.cfg.observe.map(|_| self.registry.snapshot())
    }

    /// The span collector, when observing. Stage stamps are virtual
    /// time; completed spans are in completion order (deterministic).
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Reads a replica's physical clock at the current virtual time — the
    /// same observation the protocol makes through its context, advancing
    /// the monotonic stamper identically (test observability for clock
    /// anomaly schedules).
    pub fn read_clock(&mut self, r: ReplicaId) -> Micros {
        let now = self.now;
        self.nodes[r.index()].clock.read(now)
    }

    /// Runs until the queue drains, `until` is reached, a stop is
    /// requested, or the event cap triggers. Returns the virtual time.
    pub fn run_until(&mut self, until: Micros) -> Micros {
        while !self.stop && self.events_processed < self.cfg.max_events {
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = self
            .now
            .max(until.min(self.queue.peek_time().unwrap_or(until)));
        self.now
    }

    /// Runs for `duration` more microseconds of virtual time.
    pub fn run_for(&mut self, duration: Micros) -> Micros {
        let until = self.now + duration;
        self.run_until(until)
    }

    /// Processes a single event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;
        self.dispatch(ev);
        true
    }

    fn dispatch(&mut self, ev: Event<P>) {
        match ev {
            Event::Deliver { from, to, msg } => self.handle_deliver(from, to, msg),
            Event::Timer {
                node,
                incarnation,
                token,
            } => {
                let idx = node.index();
                if self.nodes[idx].up && self.nodes[idx].incarnation == incarnation {
                    self.invoke(idx, false, |p, ctx| p.on_timer(token, ctx));
                }
            }
            Event::Request { to, cmd } => {
                let idx = to.index();
                if !self.nodes[idx].up {
                    return; // site down: client request lost
                }
                // Open (or re-enter, for a retry of the same command id)
                // the command's trace span at the replica that will
                // answer the client. Reads are untraced: they skip the
                // ordering pipeline the span stages describe.
                if !cmd.read_only {
                    if let Some(t) = &self.tracer {
                        t.begin(span_key(cmd.id), to.as_u16(), self.now);
                    }
                }
                // Reads never coalesce: batching amortizes replication
                // cost, and a local read replicates nothing, so holding
                // a Get behind an adaptive flush threshold would buy
                // nothing and inflate read latency. They only pass
                // through the inbox when a CPU model prices processing.
                if cmd.read_only {
                    if self.cfg.cpu.is_some() {
                        self.enqueue_input(idx, NodeInput::Request(cmd));
                    } else {
                        self.invoke(idx, false, |p, ctx| p.on_client_read(cmd, ctx));
                    }
                    return;
                }
                // Write requests pass through the node's inbox when that
                // buys something: a CPU model prices the processing
                // step, and a batch policy coalesces same-instant
                // arrivals. With neither (the default for latency
                // experiments) the hop only doubles event-queue traffic,
                // so invoke directly.
                if self.cfg.cpu.is_some() || self.cfg.batch.coalesces() {
                    if self.cfg.batch.adaptive {
                        self.nodes[idx].req_arrivals.insert(cmd.id, self.now);
                    }
                    self.enqueue_input(idx, NodeInput::Request(cmd));
                } else {
                    self.invoke(idx, false, |p, ctx| p.on_client_request(cmd, ctx));
                }
            }
            Event::ReplyArrive { client, reply } => {
                // Terminal stamp: the reply reached the issuing client.
                // No-op for reads (never begun) and unsampled keys.
                if let Some(t) = &self.tracer {
                    t.complete(span_key(reply.id), TraceStage::Replied.index(), self.now);
                }
                let hints = self.read_hints();
                let Simulation {
                    queue,
                    rng,
                    app,
                    stop,
                    cfg,
                    now,
                    ..
                } = self;
                let mut api = SimApi {
                    now: *now,
                    local_delivery_us: cfg.local_delivery_us,
                    latency: &cfg.latency,
                    read_hints: &hints,
                    queue,
                    rng,
                    stop,
                };
                app.on_reply(client, reply, &mut api);
            }
            Event::App { key } => {
                let hints = self.read_hints();
                let Simulation {
                    queue,
                    rng,
                    app,
                    stop,
                    cfg,
                    now,
                    ..
                } = self;
                let mut api = SimApi {
                    now: *now,
                    local_delivery_us: cfg.local_delivery_us,
                    latency: &cfg.latency,
                    read_hints: &hints,
                    queue,
                    rng,
                    stop,
                };
                app.on_event(key, &mut api);
            }
            Event::Crash { node } => {
                let n = &mut self.nodes[node.index()];
                if n.up {
                    n.up = false;
                    n.incarnation += 1;
                    n.inbox.clear();
                    n.inbox_scheduled = false;
                    n.req_arrivals.clear();
                }
            }
            Event::Recover { node } => self.handle_recover(node),
            Event::Partition { a, b } => {
                self.partitioned.insert(link_key(a, b));
            }
            Event::Heal { a, b } => self.handle_heal(a, b),
            Event::ClockJump { node, delta_us } => {
                self.nodes[node.index()].clock.jump(delta_us);
            }
            Event::ClockFreeze { node, dur_us } => {
                let now = self.now;
                self.nodes[node.index()].clock.freeze(now, dur_us);
            }
            Event::ClockDrift { node, ppm, dur_us } => {
                let now = self.now;
                self.nodes[node.index()].clock.drift_burst(now, ppm, dur_us);
            }
            Event::LinkDelay { a, b, extra_us } => {
                let e = self.link_chaos.entry(link_key(a, b)).or_insert((0, 0));
                e.0 = extra_us;
                if *e == (0, 0) {
                    self.link_chaos.remove(&link_key(a, b));
                }
            }
            Event::LinkJitter { a, b, jitter_us } => {
                let e = self.link_chaos.entry(link_key(a, b)).or_insert((0, 0));
                e.1 = jitter_us;
                if *e == (0, 0) {
                    self.link_chaos.remove(&link_key(a, b));
                }
            }
            Event::ProcessInbox { node, incarnation } => {
                self.handle_process_inbox(node, incarnation)
            }
            Event::ObsPoll => {
                for i in 0..self.nodes.len() {
                    if self.nodes[i].up {
                        self.invoke(i, false, |p, ctx| p.obs_poll(ctx));
                    }
                }
                if let Some(obs) = self.cfg.observe {
                    self.queue
                        .push(self.now + obs.poll_interval, Event::ObsPoll);
                }
            }
        }
    }

    fn handle_deliver(&mut self, from: ReplicaId, to: ReplicaId, msg: P::Msg) {
        if from != to && self.partitioned.contains(&link_key(from, to)) {
            // Park until heal: models TCP retransmission after repair.
            let key = link_key(from, to);
            match self.parked.iter_mut().find(|(k, _)| *k == key) {
                Some((_, q)) => q.push_back((from, to, msg)),
                None => {
                    let mut q = VecDeque::new();
                    q.push_back((from, to, msg));
                    self.parked.push((key, q));
                }
            }
            return;
        }
        let idx = to.index();
        if !self.nodes[idx].up {
            return; // destination crashed: message lost
        }
        if self.cfg.cpu.is_some() {
            self.enqueue_input(idx, NodeInput::Msg(from, msg));
        } else {
            self.invoke(idx, false, |p, ctx| p.on_message(from, msg, ctx));
        }
    }

    fn handle_recover(&mut self, node: ReplicaId) {
        let idx = node.index();
        if self.nodes[idx].up {
            return;
        }
        {
            let batch = self.cfg.batch;
            let n = &mut self.nodes[idx];
            n.up = true;
            n.incarnation += 1;
            n.proto = (self.factory)(node);
            n.sm.reset();
            n.commits.clear();
            n.cpu_free = self.now;
            // Batching state is volatile: the fresh incarnation re-learns
            // its operating point instead of trusting pre-crash load.
            n.batcher = BatchController::new(batch);
        }
        let log: Vec<P::LogRec> = self.nodes[idx].log.records().to_vec();
        // Replaying the log re-commits executed commands into the fresh
        // state machine; replies are suppressed (clients saw them already).
        self.invoke(idx, true, |p, ctx| p.on_recover(&log, ctx));
        self.invoke(idx, false, |p, ctx| p.on_start(ctx));
    }

    fn handle_heal(&mut self, a: ReplicaId, b: ReplicaId) {
        let key = link_key(a, b);
        self.partitioned.remove(&key);
        if let Some(pos) = self.parked.iter().position(|(k, _)| *k == key) {
            let (_, q) = self.parked.remove(pos);
            // Deliver the backlog synchronously at the heal instant, in
            // park order, AHEAD of any same-link message already queued
            // for this or a later instant. Spreading the flush over
            // future ticks (or re-queueing it) would let a later-sent
            // in-flight message overtake the backlog — a per-link FIFO
            // violation, and FIFO is a driver contract the protocols'
            // cumulative acknowledgements rely on for safety.
            for (from, to, msg) in q {
                self.handle_deliver(from, to, msg);
            }
        }
    }

    fn enqueue_input(&mut self, idx: usize, input: NodeInput<P>) {
        let (at, incarnation) = {
            let n = &mut self.nodes[idx];
            n.inbox.push_back(input);
            if n.inbox_scheduled {
                return;
            }
            n.inbox_scheduled = true;
            (n.cpu_free.max(self.now), n.incarnation)
        };
        self.queue.push(
            at,
            Event::ProcessInbox {
                node: ReplicaId::new(idx as u16),
                incarnation,
            },
        );
    }

    /// Inbox processing step: drain the inbox as one receive batch,
    /// coalesce runs of queued client requests into [`Batch`]es (capped
    /// by the batch policy), run the protocol, then ship all produced
    /// messages as per-destination send batches. With a CPU model the
    /// node is busy for the step's total cost and outgoing messages hit
    /// the network when it completes; without one the step is free and
    /// instantaneous (pure coalescing).
    fn handle_process_inbox(&mut self, node: ReplicaId, incarnation: u64) {
        let idx = node.index();
        // Same staleness guard as Timer: a crash (and the subsequent
        // recovery) bumps the incarnation, so an event scheduled before
        // the crash must not drain the recovered node's inbox — it would
        // process input at the pre-crash instant and regress cpu_free
        // below work the recovery already planned.
        if self.nodes[idx].incarnation != incarnation {
            return;
        }
        let cpu = self.cfg.cpu;
        let inputs: Vec<NodeInput<P>> = {
            let n = &mut self.nodes[idx];
            n.inbox_scheduled = false;
            if !n.up || n.inbox.is_empty() {
                n.inbox.clear();
                return;
            }
            n.inbox.drain(..).collect()
        };
        let recv_cost = match cpu {
            Some(cpu) => {
                let recv_bytes: usize = inputs
                    .iter()
                    .map(|i| match i {
                        NodeInput::Msg(_, m) => m.wire_size(),
                        NodeInput::Request(c) => c.wire_size(),
                    })
                    .sum();
                cpu.batch_cost(inputs.len(), recv_bytes)
            }
            None => 0,
        };

        // Run the protocol over every input, accumulating effects.
        // Consecutive requests coalesce into one client batch each, up to
        // the policy cap; messages flush the run so relative order with
        // requests is preserved.
        let mut eff = Effects::default();
        {
            let tracer = self.tracer.as_ref();
            let n = &mut self.nodes[idx];
            let Node {
                proto,
                clock,
                log,
                sm,
                batcher,
                obs,
                ..
            } = n;
            // Hand the controller this drain's load signal (queued client
            // requests); it returns by mutating its effective threshold,
            // which `batcher.fits` below applies. Static policies pass
            // through unchanged.
            // Reads never join batches, so they carry no depth signal:
            // letting a read-heavy mix widen the flush threshold would
            // only delay the writes it is interleaved with.
            let queued_requests = inputs
                .iter()
                .filter(|i| matches!(i, NodeInput::Request(c) if !c.read_only))
                .count();
            batcher.begin_drain(queued_requests);
            if let Some(o) = obs.as_mut() {
                // The controller's operating point, freshly adjusted for
                // this drain's load signal.
                o.gauge(names::BATCH_THRESHOLD, batcher.effective_max_batch() as i64);
            }
            let mut ctx = NodeCtx {
                now: self.now,
                clock,
                log,
                sm: sm.as_mut(),
                eff: &mut eff,
                obs: obs.as_mut(),
                tracer,
            };
            let mut run: Vec<Command> = Vec::new();
            let mut run_bytes = 0usize;
            for input in inputs {
                match input {
                    NodeInput::Msg(from, m) => {
                        if !run.is_empty() {
                            proto.on_client_batch(Batch::new(std::mem::take(&mut run)), &mut ctx);
                            run_bytes = 0;
                        }
                        proto.on_message(from, m, &mut ctx);
                    }
                    NodeInput::Request(c) if c.read_only => {
                        // Reads bypass coalescing entirely: flush the
                        // open write run (relative order is preserved)
                        // and hand the read straight to the protocol's
                        // read path.
                        if !run.is_empty() {
                            proto.on_client_batch(Batch::new(std::mem::take(&mut run)), &mut ctx);
                            run_bytes = 0;
                        }
                        proto.on_client_read(c, &mut ctx);
                    }
                    NodeInput::Request(c) => {
                        // Flush when the effective command count or byte
                        // budget is full — kilobyte payloads flush long
                        // before the count cap.
                        if !batcher.fits(run.len(), run_bytes) {
                            proto.on_client_batch(Batch::new(std::mem::take(&mut run)), &mut ctx);
                            run_bytes = 0;
                        }
                        run_bytes += c.size();
                        run.push(c);
                    }
                }
            }
            if !run.is_empty() {
                proto.on_client_batch(Batch::new(run), &mut ctx);
            }
        }

        // Send batches: group by destination (order-preserving).
        let mut send_cost: Micros = 0;
        if let Some(cpu) = cpu {
            let mut dests: Vec<ReplicaId> = Vec::new();
            for (to, _) in &eff.sends {
                if !dests.contains(to) {
                    dests.push(*to);
                }
            }
            for d in &dests {
                let (k, bytes) = eff
                    .sends
                    .iter()
                    .filter(|(to, _)| to == d)
                    .fold((0usize, 0usize), |(k, b), (_, m)| {
                        (k + 1, b + m.wire_size())
                    });
                send_cost += cpu.batch_cost(k, bytes);
            }
            // Replies to local clients are one more small send batch.
            let reply_count = eff.commits.iter().filter(|(c, _)| c.origin == node).count();
            if reply_count > 0 {
                send_cost += cpu.batch_cost(reply_count, reply_count * 16);
            }
        }

        let done = self.now + recv_cost + send_cost;
        self.nodes[idx].cpu_free = done;
        self.apply_effects(idx, eff, done, false);

        // More input may have queued while this step was being planned.
        let n = &mut self.nodes[idx];
        if !n.inbox.is_empty() && !n.inbox_scheduled {
            n.inbox_scheduled = true;
            let incarnation = n.incarnation;
            self.queue
                .push(done, Event::ProcessInbox { node, incarnation });
        }
    }

    /// Runs `f` against node `idx`'s protocol with a fresh effect buffer,
    /// then applies the effects at the current instant.
    fn invoke(
        &mut self,
        idx: usize,
        suppress_replies: bool,
        f: impl FnOnce(&mut P, &mut NodeCtx<'_, P>),
    ) {
        let mut eff = Effects::default();
        {
            let tracer = self.tracer.as_ref();
            let n = &mut self.nodes[idx];
            let Node {
                proto,
                clock,
                log,
                sm,
                obs,
                ..
            } = n;
            let mut ctx = NodeCtx {
                now: self.now,
                clock,
                log,
                sm: sm.as_mut(),
                eff: &mut eff,
                obs: obs.as_mut(),
                tracer,
            };
            f(proto, &mut ctx);
        }
        self.apply_effects(idx, eff, self.now, suppress_replies);
    }

    /// Applies buffered effects produced by node `idx`: schedules message
    /// deliveries (with latency, jitter, and per-link FIFO floors), arms
    /// timers, executes commits on the state machine, and routes replies.
    fn apply_effects(&mut self, idx: usize, eff: Effects<P>, at: Micros, suppress_replies: bool) {
        let from = ReplicaId::new(idx as u16);
        for (to, msg) in eff.sends {
            // Link chaos (extra delay + jitter set by the fuzzer) applies
            // only to cross-node links; the FIFO floor below keeps each
            // link in order regardless, so chaos reorders across links
            // only — the one kind the drivers' FIFO contract permits.
            let (chaos_delay, chaos_jitter) = if to != from {
                self.link_chaos
                    .get(&link_key(from, to))
                    .copied()
                    .unwrap_or((0, 0))
            } else {
                (0, 0)
            };
            let base = if to == from {
                0
            } else {
                self.cfg.latency.one_way(from, to) + chaos_delay
            };
            let jitter_bound = if to != from {
                self.cfg.jitter_us + chaos_jitter
            } else {
                0
            };
            let jitter = if jitter_bound > 0 {
                self.rng.gen_range(0..=jitter_bound)
            } else {
                0
            };
            let floor = self.fifo_floor[idx][to.index()];
            let deliver_at = (at + base + jitter).max(floor);
            self.fifo_floor[idx][to.index()] = deliver_at;
            self.queue
                .push(deliver_at, Event::Deliver { from, to, msg });
        }
        for (after, token) in eff.timers {
            let incarnation = self.nodes[idx].incarnation;
            self.queue.push(
                at + after,
                Event::Timer {
                    node: from,
                    incarnation,
                    token,
                },
            );
        }
        if eff.installed {
            // A snapshot install jumped the state machine over commands
            // this node never executed individually, so its recorded
            // history would have a hole mid-stream. Restart the history
            // at the install (exactly like crash-recovery restarts it):
            // the total-order checker aligns mid-stream starts, but it
            // cannot align across interior gaps. The cumulative
            // commit_count is deliberately left alone.
            self.nodes[idx].commits.clear();
        }
        // Locally served reads: route straight back to the issuing
        // client — no commit, no history record, one delivery hop
        // (local, or the WAN hop home when the client routed the read
        // to a remote replica).
        if !suppress_replies {
            for reply in eff.read_replies {
                let client = reply.id.client;
                self.queue.push(
                    at + self.reply_delay(from, client),
                    Event::ReplyArrive { client, reply },
                );
            }
        }
        // Executing a flushed batch is not instantaneous: under a CPU
        // model, the k-th commit of one callback finishes (and its
        // reply departs) k executions later than the first. Without the
        // spread, every reply of a saturating flush lands at one
        // instant and the sampled latency distribution collapses to a
        // point (p99 == p50) under heavy batched load.
        let per_exec_us = self.cfg.cpu.as_ref().map(|c| c.per_msg_us).unwrap_or(0);
        for (k, (committed, result)) in eff.commits.into_iter().enumerate() {
            let done_at = at + per_exec_us * k as Micros;
            let n = &mut self.nodes[idx];
            n.commit_count += 1;
            if let Some(o) = &mut n.obs {
                // Mirrors `commit_count` exactly, replays included.
                o.count(names::EXECUTED, 1);
            }
            // Commit/execute stamps stay on the origin replica (the
            // client's pipeline); recovery replays re-execute old
            // commands and must not re-stamp still-open spans.
            if !suppress_replies && committed.origin == from {
                if let Some(t) = &self.tracer {
                    let key = span_key(committed.cmd.id);
                    let r = from.as_u16();
                    t.record_at_origin(key, r, TraceStage::Committed.index(), at);
                    t.record_at_origin(key, r, TraceStage::Executed.index(), done_at);
                }
            }
            // Close the adaptive controller's latency loop for requests
            // this node originated (the map is empty otherwise).
            if let Some(t0) = n.req_arrivals.remove(&committed.cmd.id) {
                n.batcher.record_commit_latency(at.saturating_sub(t0), at);
            }
            if self.cfg.record_history {
                n.commits.push(CommitRecord {
                    at,
                    order_hint: committed.order_hint,
                    origin: committed.origin,
                    cmd_id: committed.cmd.id,
                });
            }
            self.app.on_commit(from, &committed, at);
            if committed.origin == from && !suppress_replies {
                let client = committed.cmd.id.client;
                let reply = Reply::new(committed.cmd.id, result);
                self.queue.push(
                    done_at + self.reply_delay(from, client),
                    Event::ReplyArrive { client, reply },
                );
            }
        }
    }

    /// Delay for a reply travelling from the replica that produced it
    /// back to the issuing client: the local hop when the client is
    /// co-located, the one-way WAN latency otherwise (a client that
    /// routed its request to a remote replica pays the trip home too).
    fn reply_delay(&self, from: ReplicaId, client: ClientId) -> Micros {
        if client.site() == from {
            self.cfg.local_delivery_us
        } else {
            self.cfg.latency.one_way(from, client.site())
        }
    }
}

fn link_key(a: ReplicaId, b: ReplicaId) -> (usize, usize) {
    let (x, y) = (a.index(), b.index());
    if x <= y {
        (x, y)
    } else {
        (y, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::CommandId;

    /// A toy protocol: the origin broadcasts a command; every replica
    /// commits on receipt (no coordination). Exercises delivery, FIFO,
    /// commits, replies, crash/recover, and CPU batching paths.
    struct Flood {
        id: ReplicaId,
        n: u16,
        delivered: u64,
    }

    #[derive(Clone, Debug)]
    struct FloodMsg(Command, ReplicaId);

    impl WireSize for FloodMsg {
        fn wire_size(&self) -> usize {
            32 + self.0.payload.len()
        }
    }

    impl Protocol for Flood {
        type Msg = FloodMsg;
        type LogRec = Command;

        fn id(&self) -> ReplicaId {
            self.id
        }
        fn on_start(&mut self, _ctx: &mut dyn Context<Self>) {}
        fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
            for i in 0..self.n {
                ctx.send(ReplicaId::new(i), FloodMsg(cmd.clone(), self.id));
            }
        }
        fn on_message(&mut self, _from: ReplicaId, msg: FloodMsg, ctx: &mut dyn Context<Self>) {
            ctx.log_append(msg.0.clone());
            self.delivered += 1;
            ctx.commit(Committed {
                cmd: msg.0,
                origin: msg.1,
                order_hint: self.delivered,
            });
        }
        fn on_timer(&mut self, _t: TimerToken, _ctx: &mut dyn Context<Self>) {}
        fn on_recover(&mut self, log: &[Command], ctx: &mut dyn Context<Self>) {
            for cmd in log {
                self.delivered += 1;
                ctx.commit(Committed {
                    cmd: cmd.clone(),
                    origin: self.id,
                    order_hint: self.delivered,
                });
            }
        }
    }

    struct CollectApp {
        replies: Vec<(Micros, CommandId)>,
        submitted: bool,
    }

    impl Application<Flood> for CollectApp {
        fn on_init(&mut self, api: &mut SimApi<'_, Flood>) {
            api.schedule(1_000, 0);
        }
        fn on_event(&mut self, _key: u64, api: &mut SimApi<'_, Flood>) {
            if !self.submitted {
                self.submitted = true;
                let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1);
                api.submit(
                    ReplicaId::new(0),
                    Command::new(id, Bytes::from_static(b"x")),
                );
            }
        }
        fn on_reply(&mut self, _c: ClientId, reply: Reply, api: &mut SimApi<'_, Flood>) {
            self.replies.push((api.now(), reply.id));
        }
    }

    fn sm() -> Box<dyn StateMachine> {
        #[derive(Default)]
        struct Count(u64);
        impl StateMachine for Count {
            fn apply(&mut self, _cmd: &Command) -> Bytes {
                self.0 += 1;
                Bytes::copy_from_slice(&self.0.to_be_bytes())
            }
            fn snapshot(&self) -> Bytes {
                Bytes::copy_from_slice(&self.0.to_be_bytes())
            }
            fn reset(&mut self) {
                self.0 = 0;
            }
        }
        Box::new(Count::default())
    }

    fn flood_sim(cfg: SimConfig) -> Simulation<Flood, CollectApp> {
        let n = cfg.num_replicas() as u16;
        Simulation::new(
            cfg,
            move |id| Flood {
                id,
                n,
                delivered: 0,
            },
            sm,
            CollectApp {
                replies: Vec::new(),
                submitted: false,
            },
        )
    }

    #[test]
    fn command_floods_and_reply_arrives() {
        let cfg = SimConfig::new(LatencyMatrix::uniform(3, 10_000));
        let mut sim = flood_sim(cfg);
        sim.run_until(1_000_000);
        // Reply path: 1ms sched + 0.3ms to replica + self deliver(0) + 0.3ms back.
        assert_eq!(sim.app().replies.len(), 1);
        let (at, _) = sim.app().replies[0];
        assert_eq!(at, 1_000 + 300 + 300);
        // All three replicas committed the command.
        for r in 0..3 {
            assert_eq!(sim.commit_count(ReplicaId::new(r)), 1);
        }
    }

    #[test]
    fn remote_delivery_takes_one_way_latency() {
        let cfg = SimConfig::new(LatencyMatrix::uniform(3, 10_000));
        let mut sim = flood_sim(cfg);
        sim.run_until(1_000_000);
        let far = sim.commits(ReplicaId::new(1));
        assert_eq!(far.len(), 1);
        assert_eq!(far[0].at, 1_000 + 300 + 10_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = SimConfig::new(LatencyMatrix::uniform(5, 20_000))
                .seed(seed)
                .jitter_us(2_000);
            let mut sim = flood_sim(cfg);
            sim.run_until(1_000_000);
            sim.commits(ReplicaId::new(3)).to_vec()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn jitter_preserves_per_link_fifo() {
        // Two requests back-to-back; with huge jitter the two PREPAREs from
        // r0 to r1 must still arrive in order.
        struct TwoApp;
        impl Application<Flood> for TwoApp {
            fn on_init(&mut self, api: &mut SimApi<'_, Flood>) {
                for seq in 0..20 {
                    let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq);
                    api.submit(
                        ReplicaId::new(0),
                        Command::new(id, Bytes::from_static(b"y")),
                    );
                }
            }
            fn on_reply(&mut self, _: ClientId, _: Reply, _: &mut SimApi<'_, Flood>) {}
            fn on_event(&mut self, _: u64, _: &mut SimApi<'_, Flood>) {}
        }
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 10_000))
            .seed(9)
            .jitter_us(9_000);
        let mut sim = Simulation::new(
            cfg,
            |id| Flood {
                id,
                n: 2,
                delivered: 0,
            },
            sm,
            TwoApp,
        );
        sim.run_until(10_000_000);
        let seqs: Vec<u64> = sim
            .commits(ReplicaId::new(1))
            .iter()
            .map(|c| c.cmd_id.seq)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "FIFO violated: {seqs:?}");
    }

    #[test]
    fn crash_drops_messages_and_recovery_replays_log() {
        let cfg = SimConfig::new(LatencyMatrix::uniform(3, 10_000));
        let mut sim = flood_sim(cfg);
        // Crash r1 before the command reaches it (in flight at 1.3ms+10ms).
        sim.app_mut();
        {
            // Schedule crash at t=5ms (message in flight), recover at 50ms.
            let Simulation { queue, .. } = &mut sim;
            queue.push(
                5_000,
                Event::Crash {
                    node: ReplicaId::new(1),
                },
            );
            queue.push(
                50_000,
                Event::Recover {
                    node: ReplicaId::new(1),
                },
            );
        }
        sim.run_until(1_000_000);
        // r1 lost the in-flight message and its log is empty: zero commits.
        assert_eq!(sim.commit_count(ReplicaId::new(1)), 0);
        assert!(sim.is_up(ReplicaId::new(1)));
        // Other replicas unaffected.
        assert_eq!(sim.commit_count(ReplicaId::new(0)), 1);
        assert_eq!(sim.commit_count(ReplicaId::new(2)), 1);
    }

    #[test]
    fn stale_process_inbox_from_previous_incarnation_is_ignored() {
        // A ProcessInbox event scheduled while the node was busy, then
        // orphaned by a crash + recovery, must not fire against the new
        // incarnation: it would drain the recovered inbox early and
        // regress cpu_free below work the recovery already planned.
        struct NullApp;
        impl Application<Flood> for NullApp {
            fn on_init(&mut self, _: &mut SimApi<'_, Flood>) {}
            fn on_reply(&mut self, _: ClientId, _: Reply, _: &mut SimApi<'_, Flood>) {}
            fn on_event(&mut self, _: u64, _: &mut SimApi<'_, Flood>) {}
        }
        let cpu = CpuModel {
            fixed_batch_us: 100_000,
            per_msg_us: 0,
            per_kb_us: 0,
        };
        let cfg = SimConfig::new(LatencyMatrix::uniform(1, 10_000)).cpu_model(cpu);
        let mut sim = Simulation::new(
            cfg,
            |id| Flood {
                id,
                n: 1,
                delivered: 0,
            },
            sm,
            NullApp,
        );
        let node = ReplicaId::new(0);
        let req = |seq| Event::Request {
            to: node,
            cmd: Command::new(
                CommandId::new(ClientId::new(node, 0), seq),
                Bytes::from_static(b"x"),
            ),
        };
        {
            let Simulation { queue, .. } = &mut sim;
            // Processed at t=1ms; the node is then busy until ~201ms.
            queue.push(1_000, req(1));
            // Arrives while busy: ProcessInbox scheduled at ~201ms with
            // the pre-crash incarnation — the stale event under test.
            queue.push(2_000, req(2));
            queue.push(3_000, Event::Crash { node });
            queue.push(4_000, Event::Recover { node });
            // Post-recovery: one request processed immediately (busy
            // until ~205ms), one queued behind it.
            queue.push(5_000, req(3));
            queue.push(6_000, req(4));
        }
        sim.run_until(7_000);
        let busy_until = sim.nodes[0].cpu_free;
        assert!(
            busy_until > 201_000,
            "setup: node busy past the stale event"
        );
        assert_eq!(sim.nodes[0].inbox.len(), 1, "setup: one request queued");
        // Run past the stale event's fire time (but before the real one).
        sim.run_until(203_000);
        assert_eq!(
            sim.nodes[0].cpu_free, busy_until,
            "stale ProcessInbox regressed cpu_free"
        );
        assert!(
            !sim.nodes[0].inbox.is_empty(),
            "stale ProcessInbox drained the recovered inbox early"
        );
    }

    #[test]
    fn partition_parks_and_heal_delivers_in_order() {
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 10_000));
        struct ManyApp;
        impl Application<Flood> for ManyApp {
            fn on_init(&mut self, api: &mut SimApi<'_, Flood>) {
                api.partition(ReplicaId::new(0), ReplicaId::new(1), 0);
                for seq in 0..5 {
                    let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq);
                    api.submit(
                        ReplicaId::new(0),
                        Command::new(id, Bytes::from_static(b"z")),
                    );
                }
                api.heal(ReplicaId::new(0), ReplicaId::new(1), 200_000);
            }
            fn on_reply(&mut self, _: ClientId, _: Reply, _: &mut SimApi<'_, Flood>) {}
            fn on_event(&mut self, _: u64, _: &mut SimApi<'_, Flood>) {}
        }
        let mut sim = Simulation::new(
            cfg,
            |id| Flood {
                id,
                n: 2,
                delivered: 0,
            },
            sm,
            ManyApp,
        );
        sim.run_until(1_000_000);
        let commits = sim.commits(ReplicaId::new(1));
        assert_eq!(commits.len(), 5, "parked messages must deliver after heal");
        assert!(commits[0].at >= 200_000);
        let seqs: Vec<u64> = commits.iter().map(|c| c.cmd_id.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn heal_flush_never_lets_in_flight_messages_overtake_the_backlog() {
        // Three messages park during a partition. A fourth is sent late
        // enough that its in-flight delivery time lands exactly on the
        // heal instant — its Deliver event sits in the queue with an
        // older sequence number than anything the heal schedules. Per-
        // link FIFO (a contract the protocols' cumulative acks rely on)
        // demands it still arrive AFTER the whole parked backlog.
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 10_000));
        struct TieApp;
        impl Application<Flood> for TieApp {
            fn on_init(&mut self, api: &mut SimApi<'_, Flood>) {
                api.partition(ReplicaId::new(0), ReplicaId::new(1), 0);
                for seq in 0..3 {
                    let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq);
                    api.submit(
                        ReplicaId::new(0),
                        Command::new(id, Bytes::from_static(b"z")),
                    );
                }
                // Request lands at 9_700 + 300 = 10_000; its broadcast
                // departs then and would arrive at 20_000 — the heal
                // instant — ahead of any event the heal enqueues.
                api.schedule(9_700, 42);
                api.heal(ReplicaId::new(0), ReplicaId::new(1), 20_000);
            }
            fn on_event(&mut self, _: u64, api: &mut SimApi<'_, Flood>) {
                let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), 99);
                api.submit(
                    ReplicaId::new(0),
                    Command::new(id, Bytes::from_static(b"t")),
                );
            }
            fn on_reply(&mut self, _: ClientId, _: Reply, _: &mut SimApi<'_, Flood>) {}
        }
        let mut sim = Simulation::new(
            cfg,
            |id| Flood {
                id,
                n: 2,
                delivered: 0,
            },
            sm,
            TieApp,
        );
        sim.run_until(1_000_000);
        let seqs: Vec<u64> = sim
            .commits(ReplicaId::new(1))
            .iter()
            .map(|c| c.cmd_id.seq)
            .collect();
        assert_eq!(
            seqs,
            vec![0, 1, 2, 99],
            "the late message must not overtake the parked backlog"
        );
    }

    #[test]
    fn cpu_model_delays_processing_and_batches() {
        let cpu = CpuModel {
            fixed_batch_us: 100,
            per_msg_us: 10,
            per_kb_us: 0,
        };
        struct BurstApp;
        impl Application<Flood> for BurstApp {
            fn on_init(&mut self, api: &mut SimApi<'_, Flood>) {
                for seq in 0..10 {
                    let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq);
                    api.submit(
                        ReplicaId::new(0),
                        Command::new(id, Bytes::from_static(b"c")),
                    );
                }
            }
            fn on_reply(&mut self, _: ClientId, _: Reply, _: &mut SimApi<'_, Flood>) {}
            fn on_event(&mut self, _: u64, _: &mut SimApi<'_, Flood>) {}
        }
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 1_000)).cpu_model(cpu);
        let mut sim = Simulation::new(
            cfg,
            |id| Flood {
                id,
                n: 2,
                delivered: 0,
            },
            sm,
            BurstApp,
        );
        sim.run_until(10_000_000);
        assert_eq!(sim.commit_count(ReplicaId::new(1)), 10);
        // The 10 requests arrive together at t=300; the first CPU step
        // handles the whole batch: recv cost 100+10*10 = 200.
        let first_remote_commit = sim.commits(ReplicaId::new(1))[0].at;
        // Send batch to r1: 10 msgs -> 100+100 = 200; self batch too.
        // Departure at 300+200+200+200(self)=900, + 1000 link.
        assert!(first_remote_commit >= 300 + 200 + 1_000);
    }

    /// A protocol that records the sizes of the client batches handed to
    /// it, to observe driver coalescing directly.
    struct BatchObserver {
        id: ReplicaId,
        batch_sizes: Vec<usize>,
    }

    impl Protocol for BatchObserver {
        type Msg = ();
        type LogRec = ();

        fn id(&self) -> ReplicaId {
            self.id
        }
        fn on_start(&mut self, _ctx: &mut dyn Context<Self>) {}
        fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
            self.on_client_batch(rsm_core::Batch::single(cmd), ctx);
        }
        fn on_client_batch(&mut self, batch: rsm_core::Batch, ctx: &mut dyn Context<Self>) {
            self.batch_sizes.push(batch.len());
            for cmd in batch {
                ctx.commit(Committed {
                    cmd,
                    origin: self.id,
                    order_hint: self.batch_sizes.len() as u64,
                });
            }
        }
        fn on_message(&mut self, _: ReplicaId, _: (), _: &mut dyn Context<Self>) {}
        fn on_timer(&mut self, _: TimerToken, _: &mut dyn Context<Self>) {}
        fn on_recover(&mut self, _: &[()], _: &mut dyn Context<Self>) {}
    }

    struct TenAtOnce;
    impl Application<BatchObserver> for TenAtOnce {
        fn on_init(&mut self, api: &mut SimApi<'_, BatchObserver>) {
            for seq in 0..10 {
                let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq);
                api.submit(
                    ReplicaId::new(0),
                    Command::new(id, Bytes::from_static(b"b")),
                );
            }
        }
        fn on_reply(&mut self, _: ClientId, _: Reply, _: &mut SimApi<'_, BatchObserver>) {}
        fn on_event(&mut self, _: u64, _: &mut SimApi<'_, BatchObserver>) {}
    }

    fn observer_sim(batch: rsm_core::BatchPolicy) -> Vec<usize> {
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 1_000)).batch_policy(batch);
        let mut sim = Simulation::new(
            cfg,
            |id| BatchObserver {
                id,
                batch_sizes: Vec::new(),
            },
            sm,
            TenAtOnce,
        );
        sim.run_until(1_000_000);
        sim.protocol(ReplicaId::new(0)).batch_sizes.clone()
    }

    #[test]
    fn same_instant_requests_coalesce_up_to_the_policy_cap() {
        // All ten requests arrive at t = 300 (same local delivery delay).
        assert_eq!(observer_sim(rsm_core::BatchPolicy::DISABLED), vec![1; 10]);
        assert_eq!(observer_sim(rsm_core::BatchPolicy::max(4)), vec![4, 4, 2]);
        assert_eq!(observer_sim(rsm_core::BatchPolicy::max(64)), vec![10]);
    }

    struct MixedAtOnce;
    impl Application<BatchObserver> for MixedAtOnce {
        fn on_init(&mut self, api: &mut SimApi<'_, BatchObserver>) {
            // Five writes and five reads, all landing at t = 300.
            for seq in 0..10 {
                let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq);
                let cmd = if seq % 2 == 0 {
                    Command::new(id, Bytes::from_static(b"w"))
                } else {
                    Command::read(id, Bytes::from_static(b"r"))
                };
                api.submit(ReplicaId::new(0), cmd);
            }
        }
        fn on_reply(&mut self, _: ClientId, _: Reply, _: &mut SimApi<'_, BatchObserver>) {}
        fn on_event(&mut self, _: u64, _: &mut SimApi<'_, BatchObserver>) {}
    }

    #[test]
    fn reads_never_join_write_batches() {
        // With a generous cap, the five writes coalesce into one batch;
        // the five reads bypass the coalescing path entirely (the
        // observer's default read path maps each to a single-command
        // dispatch). A read must never wait for a flush threshold.
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 1_000))
            .batch_policy(rsm_core::BatchPolicy::max(64));
        let mut sim = Simulation::new(
            cfg,
            |id| BatchObserver {
                id,
                batch_sizes: Vec::new(),
            },
            sm,
            MixedAtOnce,
        );
        sim.run_until(1_000_000);
        let sizes = sim.protocol(ReplicaId::new(0)).batch_sizes.clone();
        assert_eq!(sizes.iter().sum::<usize>(), 10, "nothing lost");
        assert!(
            sizes.contains(&5),
            "the five writes must coalesce: {sizes:?}"
        );
        assert_eq!(
            sizes.iter().filter(|&&s| s == 1).count(),
            5,
            "each read dispatches alone: {sizes:?}"
        );
    }

    /// Sustained bursts under an adaptive policy, then a trickle: the
    /// effective threshold must widen to the cap under pressure and
    /// narrow again once the load subsides.
    struct BurstsThenTrickle {
        seq: u64,
    }
    impl BurstsThenTrickle {
        fn submit(&mut self, k: usize, api: &mut SimApi<'_, BatchObserver>) {
            for _ in 0..k {
                self.seq += 1;
                let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), self.seq);
                api.submit(
                    ReplicaId::new(0),
                    Command::new(id, Bytes::from_static(b"a")),
                );
            }
        }
    }
    impl Application<BatchObserver> for BurstsThenTrickle {
        fn on_init(&mut self, api: &mut SimApi<'_, BatchObserver>) {
            // 30 bursts of 16 same-instant requests, 1 ms apart…
            for burst in 0..30u64 {
                api.schedule(burst * 1_000, 0);
            }
            // …then 40 lone requests 10 ms apart.
            for i in 0..40u64 {
                api.schedule(100_000 + i * 10_000, 1);
            }
        }
        fn on_event(&mut self, key: u64, api: &mut SimApi<'_, BatchObserver>) {
            let k = if key == 0 { 16 } else { 1 };
            self.submit(k, api);
        }
        fn on_reply(&mut self, _: ClientId, _: Reply, _: &mut SimApi<'_, BatchObserver>) {}
    }

    #[test]
    fn adaptive_policy_widens_with_load_and_narrows_back() {
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 1_000))
            .batch_policy(rsm_core::BatchPolicy::adaptive(8));
        let mut sim = Simulation::new(
            cfg,
            |id| BatchObserver {
                id,
                batch_sizes: Vec::new(),
            },
            sm,
            BurstsThenTrickle { seq: 0 },
        );
        let r0 = ReplicaId::new(0);
        // Run through the burst phase: the threshold must hit the cap.
        sim.run_until(50_000);
        assert_eq!(
            sim.batch_threshold(r0),
            8,
            "sustained 16-deep bursts must widen the threshold to the cap"
        );
        let sizes = sim.protocol(r0).batch_sizes.clone();
        assert_eq!(sizes.iter().sum::<usize>(), 16 * 30);
        assert!(
            sizes[0] <= 2,
            "the first drain must stay near batch-of-1 latency: {sizes:?}"
        );
        assert!(
            sizes.contains(&8),
            "later bursts must coalesce at the cap: {sizes:?}"
        );
        // Run through the trickle: the threshold must narrow again.
        sim.run_until(1_000_000);
        assert!(
            sim.batch_threshold(r0) < 8,
            "a 1-deep trickle must narrow the threshold from the cap"
        );
        let sizes = sim.protocol(r0).batch_sizes.clone();
        assert_eq!(sizes.iter().sum::<usize>(), 16 * 30 + 40);
        assert!(
            sizes[sizes.len() - 40..].iter().all(|&s| s == 1),
            "trickle requests flush immediately"
        );
    }

    struct OversizedBurst;
    impl Application<BatchObserver> for OversizedBurst {
        fn on_init(&mut self, api: &mut SimApi<'_, BatchObserver>) {
            for seq in 0..6 {
                let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq);
                api.submit(
                    ReplicaId::new(0),
                    Command::new(id, Bytes::from(vec![0u8; 1_000])),
                );
            }
        }
        fn on_reply(&mut self, _: ClientId, _: Reply, _: &mut SimApi<'_, BatchObserver>) {}
        fn on_event(&mut self, _: u64, _: &mut SimApi<'_, BatchObserver>) {}
    }

    #[test]
    fn byte_budget_flushes_oversized_commands_before_the_count_cap() {
        // Six kilobyte commands under a 2 000-byte budget: the count cap
        // (64) never fills, but each pair of commands exhausts the byte
        // budget, so three two-command batches come out.
        let policy = rsm_core::BatchPolicy::max(64).with_max_bytes(2_000);
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 1_000)).batch_policy(policy);
        let mut sim = Simulation::new(
            cfg,
            |id| BatchObserver {
                id,
                batch_sizes: Vec::new(),
            },
            sm,
            OversizedBurst,
        );
        sim.run_until(1_000_000);
        assert_eq!(
            sim.protocol(ReplicaId::new(0)).batch_sizes,
            vec![2, 2, 2],
            "the byte budget must flush before the count cap"
        );
    }

    #[test]
    fn run_until_stops_at_bound() {
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 10_000));
        let mut sim = flood_sim(cfg);
        sim.run_until(500);
        assert!(sim.now() <= 1_000);
        assert_eq!(sim.app().replies.len(), 0);
    }

    #[test]
    fn scripted_clock_anomalies_stay_monotonic_through_the_sim() {
        // The observed-clock monotonicity guard must hold across every
        // anomaly kind when driven through the simulation, and the net
        // offsets must land where the schedule says.
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 10_000))
            .clock_anomaly(1, 50_000, ClockAnomaly::Step(-40_000))
            .clock_anomaly(1, 120_000, ClockAnomaly::Freeze(30_000))
            .clock_anomaly(
                1,
                200_000,
                ClockAnomaly::DriftBurst {
                    ppm: 50_000.0,
                    dur_us: 100_000,
                },
            );
        let mut sim = flood_sim(cfg);
        let r = ReplicaId::new(1);
        let mut prev = 0;
        for k in 1..=40u64 {
            sim.run_until(k * 10_000);
            let v = sim.read_clock(r);
            assert!(
                v > prev,
                "clock regressed at t={}: {v} <= {prev}",
                k * 10_000
            );
            prev = v;
        }
        // Net: −40ms step, −30ms freeze, +5ms accumulated burst drift.
        assert_eq!(sim.now(), 400_000);
        assert_eq!(sim.read_clock(r), 400_000 - 40_000 - 30_000 + 5_000 + 1);
        // Replica 0's clock is untouched by replica 1's schedule.
        assert_eq!(sim.read_clock(ReplicaId::new(0)), 400_000);
    }

    #[test]
    fn link_delay_reorders_across_links_only() {
        // Extra delay on link (0,1) slows that link's delivery while the
        // (0,2) link is unaffected — cross-link reordering.
        let cfg = SimConfig::new(LatencyMatrix::uniform(3, 10_000));
        let mut sim = flood_sim(cfg);
        sim.queue.push(
            0,
            Event::LinkDelay {
                a: ReplicaId::new(0),
                b: ReplicaId::new(1),
                extra_us: 50_000,
            },
        );
        sim.run_until(1_000_000);
        let r1 = sim.commits(ReplicaId::new(1))[0].at;
        let r2 = sim.commits(ReplicaId::new(2))[0].at;
        assert_eq!(r2, 1_000 + 300 + 10_000, "untouched link: base latency");
        assert_eq!(r1, 1_000 + 300 + 10_000 + 50_000, "chaos link: +50ms");
    }

    #[test]
    fn link_jitter_preserves_per_link_fifo() {
        // Same contract as global jitter, but injected per-link: the 20
        // floods from r0 to r1 must still commit in submission order.
        struct TwentyApp;
        impl Application<Flood> for TwentyApp {
            fn on_init(&mut self, api: &mut SimApi<'_, Flood>) {
                api.link_jitter(ReplicaId::new(0), ReplicaId::new(1), 9_000, 0);
                for seq in 0..20 {
                    let id = CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq);
                    api.submit(
                        ReplicaId::new(0),
                        Command::new(id, Bytes::from_static(b"z")),
                    );
                }
            }
            fn on_reply(&mut self, _: ClientId, _: Reply, _: &mut SimApi<'_, Flood>) {}
            fn on_event(&mut self, _: u64, _: &mut SimApi<'_, Flood>) {}
        }
        let cfg = SimConfig::new(LatencyMatrix::uniform(2, 10_000)).seed(7);
        let mut sim = Simulation::new(
            cfg,
            |id| Flood {
                id,
                n: 2,
                delivered: 0,
            },
            sm,
            TwentyApp,
        );
        sim.run_until(10_000_000);
        let seqs: Vec<u64> = sim
            .commits(ReplicaId::new(1))
            .iter()
            .map(|c| c.cmd_id.seq)
            .collect();
        assert_eq!(seqs.len(), 20);
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "per-link FIFO violated: {seqs:?}");
    }
}
