//! Simulated stable storage.

/// An append-only stable log that survives simulated crashes.
///
/// This models the paper's "stable storage, which survives failures"
/// (Section II-A). A crash leaves the log intact; only an explicit
/// [`wipe`](SimLog::wipe) — modelling disk loss — clears it. The log also
/// supports whole-log rewrite, which the reconfiguration protocol uses to
/// drop un-executed `PREPARE` records past the decided timestamp
/// (Algorithm 3, line 15).
///
/// # Examples
///
/// ```
/// use simnet::SimLog;
/// let mut log: SimLog<&str> = SimLog::new();
/// log.append("prepare");
/// log.append("commit");
/// assert_eq!(log.records(), &["prepare", "commit"]);
/// assert_eq!(log.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SimLog<R> {
    records: Vec<R>,
    /// Counts every append over the log's lifetime (not reduced by
    /// rewrites); used by tests to assert durability costs.
    appends: u64,
}

impl<R> SimLog<R> {
    /// Creates an empty log.
    pub fn new() -> Self {
        SimLog {
            records: Vec::new(),
            appends: 0,
        }
    }

    /// Appends one record; durable immediately.
    pub fn append(&mut self, rec: R) {
        self.records.push(rec);
        self.appends += 1;
    }

    /// Replaces the entire contents (reconfiguration log surgery).
    pub fn rewrite(&mut self, recs: Vec<R>) {
        self.records = recs;
    }

    /// The records currently in the log, oldest first.
    pub fn records(&self) -> &[R] {
        &self.records
    }

    /// Number of records currently in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total appends ever performed (monotonic, unaffected by `rewrite`).
    pub fn total_appends(&self) -> u64 {
        self.appends
    }

    /// Erases everything — models losing the disk, *not* a crash.
    pub fn wipe(&mut self) {
        self.records.clear();
    }
}

impl<R> Default for SimLog<R> {
    fn default() -> Self {
        SimLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_preserves_order() {
        let mut log = SimLog::new();
        for i in 0..10 {
            log.append(i);
        }
        assert_eq!(log.records(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn rewrite_replaces_but_keeps_append_count() {
        let mut log = SimLog::new();
        log.append(1);
        log.append(2);
        log.rewrite(vec![9]);
        assert_eq!(log.records(), &[9]);
        assert_eq!(log.total_appends(), 2);
    }

    #[test]
    fn wipe_clears() {
        let mut log = SimLog::new();
        log.append("a");
        log.wipe();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
    }
}
