//! Loosely synchronized physical clocks.
//!
//! The paper's model (Section II-A): every replica has a physical clock
//! providing monotonically increasing timestamps, kept loosely in sync by a
//! protocol such as NTP. Clock-RSM's *correctness never depends on the
//! synchronization precision* — only its latency does — and the test suite
//! exploits this model to run the protocol under both sub-millisecond and
//! multi-second skews.
//!
//! Beyond the steady-state model, a clock can be scripted with
//! [`ClockAnomaly`] events at absolute virtual times — steps (forward or
//! backward), freezes (VM pauses), and drift bursts (a misbehaving
//! oscillator or an aggressive NTP slew). The chaos fuzzer composes these
//! into searched fault schedules; whatever the anomaly, observed reads
//! stay strictly monotonic (the `MonotonicStamper` guard), exactly like a
//! process using `CLOCK_MONOTONIC`-derived timestamps under a stepping
//! wall clock.

use rsm_core::time::{Micros, MonotonicStamper};

/// Parameters describing how one replica's physical clock deviates from
/// true (simulation) time.
///
/// The effective offset at true time `t` is
/// `clamp(offset_us + drift_ppm·t, -sync_bound_us, +sync_bound_us)`:
/// a fixed initial offset, linear drift, and an NTP-like bound that models
/// the synchronization daemon steering the clock back once it strays too
/// far. The clamp also captures the worst case — a clock pinned at the
/// bound.
///
/// # Examples
///
/// ```
/// use simnet::ClockModel;
/// let m = ClockModel::ntp(1_000); // |offset| ≤ 1 ms, like a good NTP sync
/// assert_eq!(m.sync_bound_us, 1_000);
/// let skewed = ClockModel::fixed_offset(-250);
/// assert_eq!(skewed.offset_us, -250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Initial offset from true time, microseconds (may be negative).
    pub offset_us: i64,
    /// Drift rate in parts per million of elapsed true time.
    pub drift_ppm: f64,
    /// Bound enforced by the synchronization protocol: the effective offset
    /// never exceeds ±`sync_bound_us`.
    pub sync_bound_us: u64,
}

impl ClockModel {
    /// A perfect clock: zero offset, zero drift.
    pub fn perfect() -> Self {
        ClockModel {
            offset_us: 0,
            drift_ppm: 0.0,
            sync_bound_us: 0,
        }
    }

    /// An NTP-synchronized clock whose offset stays within
    /// ±`bound_us`, with no deliberate initial offset or drift. Drivers
    /// typically add per-replica initial offsets inside the bound.
    pub fn ntp(bound_us: u64) -> Self {
        ClockModel {
            offset_us: 0,
            drift_ppm: 0.0,
            sync_bound_us: bound_us,
        }
    }

    /// A clock with a constant offset and no drift; the bound is set to
    /// accommodate the offset exactly.
    pub fn fixed_offset(offset_us: i64) -> Self {
        ClockModel {
            offset_us,
            drift_ppm: 0.0,
            sync_bound_us: offset_us.unsigned_abs(),
        }
    }

    /// Adds drift in parts per million (positive = fast clock).
    pub fn with_drift_ppm(mut self, ppm: f64) -> Self {
        assert!(
            ppm > -500_000.0,
            "drift must keep the clock monotonic (> -500000 ppm)"
        );
        self.drift_ppm = ppm;
        self
    }
}

impl Default for ClockModel {
    fn default() -> Self {
        ClockModel::perfect()
    }
}

/// A scripted clock misbehaviour, applied at an absolute virtual time.
///
/// Anomalies mutate the clock's deviation model when their scheduled time
/// passes (lazily, at the next read). All of them widen the sync bound as
/// needed — an anomalous clock has, by definition, escaped its
/// synchronization daemon's steering for a while.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockAnomaly {
    /// Step the clock by `delta_us` microseconds — positive (operator fat
    /// finger, leap smear gone wrong) or negative (NTP step correction; a
    /// backward step, through the monotonicity guard, pins the observed
    /// clock until true time catches back up).
    Step(i64),
    /// Pin the clock at its current value for the given duration — a VM
    /// pause or a stop-the-world event. When the freeze lifts, the clock
    /// resumes from the pinned value, permanently behind by the freeze
    /// duration (until the model's own drift/steering says otherwise).
    Freeze(Micros),
    /// Add `ppm` to the drift rate for `dur_us` of true time — a thermal
    /// excursion or an aggressive slew. The offset accumulated during the
    /// burst persists after it ends.
    DriftBurst {
        /// Drift delta in parts per million (positive = faster clock).
        ppm: f64,
        /// Burst length in microseconds of true time.
        dur_us: Micros,
    },
}

/// A replica's physical clock: deterministic deviation from simulation time
/// plus a strict-monotonicity guarantee on reads.
///
/// # Examples
///
/// ```
/// use simnet::{ClockModel, PhysicalClock};
/// let mut c = PhysicalClock::new(ClockModel::fixed_offset(500));
/// let a = c.read(10_000);
/// assert_eq!(a, 10_500);
/// let b = c.read(10_000); // same instant: strictly monotonic reads
/// assert!(b > a);
/// ```
#[derive(Debug, Clone)]
pub struct PhysicalClock {
    model: ClockModel,
    stamper: MonotonicStamper,
    /// Scripted anomalies not yet applied, sorted by time ascending.
    /// Applied lazily by [`read`](PhysicalClock::read) once their time
    /// passes.
    pending: Vec<(Micros, ClockAnomaly)>,
    /// An active freeze window, if any.
    frozen: Option<Freeze>,
}

/// An active freeze: the clock is pinned at `pinned` from `started` until
/// `until` (true time); thawing debits the lost interval from the offset.
#[derive(Debug, Clone, Copy)]
struct Freeze {
    started: Micros,
    until: Micros,
    pinned: Micros,
}

impl PhysicalClock {
    /// Creates a clock from its deviation model.
    pub fn new(model: ClockModel) -> Self {
        PhysicalClock {
            model,
            stamper: MonotonicStamper::new(),
            pending: Vec::new(),
            frozen: None,
        }
    }

    /// Creates a clock with a scripted anomaly schedule: each entry is
    /// applied once true time reaches it (at the next read). Entries need
    /// not be sorted.
    pub fn with_anomalies(model: ClockModel, anomalies: Vec<(Micros, ClockAnomaly)>) -> Self {
        let mut clock = PhysicalClock::new(model);
        for (at, a) in anomalies {
            clock.schedule_anomaly(at, a);
        }
        clock
    }

    /// Schedules an anomaly to strike at absolute true time `at`. Equal
    /// times apply in insertion order.
    pub fn schedule_anomaly(&mut self, at: Micros, anomaly: ClockAnomaly) {
        let pos = self.pending.partition_point(|&(t, _)| t <= at);
        self.pending.insert(pos, (at, anomaly));
    }

    /// The steady-state model value at true time `now` — offset, drift,
    /// and the sync-bound clamp, plus any active freeze pin. Scripted
    /// anomalies whose time has passed but that no mutable read has
    /// processed yet are not reflected.
    pub fn raw(&self, now: Micros) -> Micros {
        if let Some(f) = &self.frozen {
            if now < f.until {
                return f.pinned;
            }
        }
        self.model_value(now)
    }

    /// The pure deviation-model value at `now`, ignoring freezes.
    fn model_value(&self, now: Micros) -> Micros {
        let drift = self.model.drift_ppm * now as f64 / 1e6;
        let eff = (self.model.offset_us as f64 + drift)
            .clamp(
                -(self.model.sync_bound_us as f64),
                self.model.sync_bound_us as f64,
            )
            .round() as i64;
        // Clocks never go below zero at the start of the simulation.
        (now as i64 + eff).max(0) as Micros
    }

    /// Widens the sync bound to accommodate the current offset — an
    /// anomalous clock has, for a while, escaped its daemon's steering.
    fn widen_bound(&mut self) {
        self.model.sync_bound_us = self
            .model
            .sync_bound_us
            .max(self.model.offset_us.unsigned_abs());
    }

    /// Changes the drift rate at true time `at`, adjusting the offset so
    /// the model value is continuous at the switch point.
    fn set_drift(&mut self, at: Micros, new_ppm: f64) {
        let old = self.model.drift_ppm;
        self.model.offset_us += ((old - new_ppm) * at as f64 / 1e6).round() as i64;
        self.model.drift_ppm = new_ppm;
        self.widen_bound();
    }

    /// Applies every scripted anomaly (and freeze thaw) due at or before
    /// `now`, in chronological order.
    fn advance(&mut self, now: Micros) {
        loop {
            let next_at = self.pending.first().map(|&(t, _)| t).filter(|&t| t <= now);
            let thaw_at = self.frozen.map(|f| f.until).filter(|&t| t <= now);
            match (next_at, thaw_at) {
                (Some(a), Some(t)) if t <= a => self.thaw(),
                (_, Some(_)) if next_at.is_none() => self.thaw(),
                (Some(_), _) => {
                    let (at, anomaly) = self.pending.remove(0);
                    self.apply(at, anomaly);
                }
                (None, None) => return,
                _ => unreachable!("covered above"),
            }
        }
    }

    /// Ends the active freeze: the clock resumes from its pinned value,
    /// so the frozen interval is debited from the offset. (The drift
    /// accrued inside the window is not re-derived — sub-ppm error over
    /// the freeze, dwarfed by the freeze itself.)
    fn thaw(&mut self) {
        let f = self.frozen.take().expect("thaw without a freeze");
        self.model.offset_us -= (f.until - f.started) as i64;
        self.widen_bound();
    }

    fn apply(&mut self, at: Micros, anomaly: ClockAnomaly) {
        match anomaly {
            ClockAnomaly::Step(delta_us) => {
                self.model.offset_us += delta_us;
                self.widen_bound();
            }
            ClockAnomaly::Freeze(dur_us) => match &mut self.frozen {
                // Overlapping freezes merge into one longer window.
                Some(f) => f.until = f.until.max(at + dur_us),
                None => {
                    self.frozen = Some(Freeze {
                        started: at,
                        until: at + dur_us,
                        pinned: self.model_value(at),
                    });
                }
            },
            ClockAnomaly::DriftBurst { ppm, dur_us } => {
                // Pre-widen the bound by the drift the burst will
                // accumulate, so the clamp does not silently erase it.
                let accrued = (ppm.abs() * dur_us as f64 / 1e6).round() as u64;
                self.model.sync_bound_us = self.model.sync_bound_us.saturating_add(accrued);
                self.set_drift(at, self.model.drift_ppm + ppm);
                if dur_us > 0 {
                    // The burst's end is just the inverse drift change;
                    // the accumulated offset persists through it.
                    self.schedule_anomaly(
                        at + dur_us,
                        ClockAnomaly::DriftBurst {
                            ppm: -ppm,
                            dur_us: 0,
                        },
                    );
                }
            }
        }
    }

    /// Reads the clock at true time `now`. Successive reads return strictly
    /// increasing values even within the same simulated instant, matching
    /// the paper's use of `clock_gettime` monotonic timestamps. Readings
    /// are at least 1, so a zero timestamp can serve as a "never" sentinel.
    /// Scripted anomalies due by `now` are applied first, in order.
    pub fn read(&mut self, now: Micros) -> Micros {
        self.advance(now);
        let raw = self.raw(now).max(1);
        self.stamper.stamp(raw)
    }

    /// The deviation model this clock follows.
    pub fn model(&self) -> ClockModel {
        self.model
    }

    /// Shifts the clock's offset by `delta_us` (and widens the sync bound
    /// to accommodate it) — fault injection for a clock step, e.g. an
    /// operator fixing a misconfigured timezone or a VM migration. Reads
    /// remain strictly monotonic regardless of the jump direction.
    pub fn jump(&mut self, delta_us: i64) {
        self.model.offset_us += delta_us;
        self.widen_bound();
    }

    /// Starts a freeze at true time `now` for `dur_us` — immediate-mode
    /// fault injection (the event-driven twin of scheduling
    /// [`ClockAnomaly::Freeze`]).
    pub fn freeze(&mut self, now: Micros, dur_us: Micros) {
        self.advance(now);
        self.apply(now, ClockAnomaly::Freeze(dur_us));
    }

    /// Starts a drift burst at true time `now`: `ppm` extra drift for
    /// `dur_us` of true time, the accumulated offset persisting after.
    pub fn drift_burst(&mut self, now: Micros, ppm: f64, dur_us: Micros) {
        self.advance(now);
        self.apply(now, ClockAnomaly::DriftBurst { ppm, dur_us });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_tracks_true_time() {
        let mut c = PhysicalClock::new(ClockModel::perfect());
        assert_eq!(c.read(1_000), 1_000);
        assert_eq!(c.read(2_000), 2_000);
    }

    #[test]
    fn offset_applies() {
        let mut fast = PhysicalClock::new(ClockModel::fixed_offset(300));
        let mut slow = PhysicalClock::new(ClockModel::fixed_offset(-300));
        assert_eq!(fast.read(10_000), 10_300);
        assert_eq!(slow.read(10_000), 9_700);
    }

    #[test]
    fn negative_clock_clamps_to_one_not_below() {
        let mut c = PhysicalClock::new(ClockModel::fixed_offset(-5_000));
        assert_eq!(c.read(1_000), 1, "reads never return the zero sentinel");
        assert_eq!(c.raw(1_000), 0, "the raw model may still floor at zero");
    }

    #[test]
    fn drift_accumulates_until_bound() {
        // 100 ppm fast, bound 1ms: after 1s the clock is +100us; after 20s
        // it would be +2ms but the NTP bound pins it at +1ms.
        let m = ClockModel::ntp(1_000).with_drift_ppm(100.0);
        let c = PhysicalClock::new(m);
        assert_eq!(c.raw(1_000_000), 1_000_100);
        assert_eq!(c.raw(20_000_000), 20_001_000);
    }

    #[test]
    fn reads_strictly_monotonic_at_same_instant() {
        let mut c = PhysicalClock::new(ClockModel::perfect());
        let a = c.read(500);
        let b = c.read(500);
        let d = c.read(500);
        assert!(a < b && b < d);
    }

    #[test]
    fn reads_monotonic_even_when_model_steps_back() {
        // A clock at the positive bound with negative drift would read
        // backwards without the stamper; reads must still increase.
        let m = ClockModel {
            offset_us: 1_000,
            drift_ppm: -200.0,
            sync_bound_us: 1_000,
        };
        let mut c = PhysicalClock::new(m);
        let mut prev = c.read(0);
        for t in (0..10_000_000).step_by(1_000_000) {
            let v = c.read(t);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn absurd_negative_drift_rejected() {
        let _ = ClockModel::perfect().with_drift_ppm(-600_000.0);
    }

    /// Reads every `step` micros up to `end`, asserting strict monotonicity
    /// throughout; returns the last observed value.
    fn assert_monotonic_sweep(c: &mut PhysicalClock, end: Micros, step: Micros) -> Micros {
        let mut prev = 0;
        let mut t = 0;
        while t <= end {
            let v = c.read(t);
            assert!(v > prev, "read({t}) = {v} not above previous {prev}");
            prev = v;
            t += step;
        }
        prev
    }

    #[test]
    fn scheduled_forward_step_applies_at_its_time() {
        let mut c = PhysicalClock::with_anomalies(
            ClockModel::perfect(),
            vec![(5_000, ClockAnomaly::Step(2_000))],
        );
        assert_eq!(c.read(4_999), 4_999, "before the step: true time");
        assert_eq!(c.read(5_000), 7_000, "at the step: +2ms");
        assert_eq!(c.read(6_000), 8_000, "offset persists");
    }

    #[test]
    fn scheduled_backward_step_pins_observed_clock() {
        let mut c = PhysicalClock::with_anomalies(
            ClockModel::perfect(),
            vec![(5_000, ClockAnomaly::Step(-2_000))],
        );
        let before = c.read(4_000);
        assert_eq!(before, 4_000);
        // Raw model is now behind true time, but observed reads only creep
        // forward (monotonicity guard) until true time catches up.
        let pinned = c.read(5_000);
        assert_eq!(pinned, before + 1, "observed clock pinned, +1 per read");
        assert_eq!(c.read(6_000), pinned + 1);
        // After true time passes the old observed value + step, raw wins again.
        assert_eq!(c.read(9_000), 7_000);
    }

    #[test]
    fn freeze_pins_then_resumes_behind() {
        let mut c = PhysicalClock::with_anomalies(
            ClockModel::perfect(),
            vec![(10_000, ClockAnomaly::Freeze(3_000))],
        );
        assert_eq!(c.read(9_000), 9_000);
        // Inside the window the raw clock is pinned at its freeze-start
        // value; the stamper turns repeated reads into +1 increments.
        assert_eq!(c.read(10_000), 10_000);
        assert_eq!(c.read(11_000), 10_001, "frozen: +1 per read");
        assert_eq!(c.read(12_999), 10_002, "still frozen");
        // Thawed: permanently behind by the 3ms freeze. Observed reads stay
        // monotonic and rejoin raw once it passes the pinned watermark.
        assert_eq!(c.read(14_000), 11_000);
        assert_eq!(c.read(20_000), 17_000);
    }

    #[test]
    fn drift_burst_accumulates_and_persists() {
        // +100000 ppm (10%) for 1s of true time → +100ms accumulated.
        let mut c = PhysicalClock::with_anomalies(
            ClockModel::perfect(),
            vec![(
                1_000_000,
                ClockAnomaly::DriftBurst {
                    ppm: 100_000.0,
                    dur_us: 1_000_000,
                },
            )],
        );
        assert_eq!(c.read(1_000_000), 1_000_000, "continuous at burst start");
        assert_eq!(c.read(1_500_000), 1_550_000, "half the burst: +50ms");
        assert_eq!(c.read(2_000_000), 2_100_000, "burst end: +100ms");
        assert_eq!(c.read(3_000_000), 3_100_000, "accumulated offset persists");
    }

    #[test]
    fn anomalies_apply_lazily_in_chronological_order() {
        // Scheduled out of order; a read far past both applies both, in time
        // order (step then freeze), ending behind by freeze − step.
        let mut c = PhysicalClock::new(ClockModel::perfect());
        c.schedule_anomaly(8_000, ClockAnomaly::Freeze(4_000));
        c.schedule_anomaly(2_000, ClockAnomaly::Step(1_000));
        assert_eq!(c.read(20_000), 17_000, "+1ms step, −4ms freeze");
    }

    #[test]
    fn reads_monotonic_across_every_anomaly_kind() {
        let mut c = PhysicalClock::with_anomalies(
            ClockModel::ntp(500).with_drift_ppm(40.0),
            vec![
                (100_000, ClockAnomaly::Step(250_000)),
                (400_000, ClockAnomaly::Freeze(300_000)),
                (
                    900_000,
                    ClockAnomaly::DriftBurst {
                        ppm: -80_000.0,
                        dur_us: 500_000,
                    },
                ),
                (1_600_000, ClockAnomaly::Step(-700_000)),
                // Overlapping freezes merge.
                (2_000_000, ClockAnomaly::Freeze(200_000)),
                (2_100_000, ClockAnomaly::Freeze(400_000)),
            ],
        );
        assert_monotonic_sweep(&mut c, 4_000_000, 7_919);
    }

    #[test]
    fn immediate_freeze_and_drift_burst_match_scheduled() {
        let mut scheduled = PhysicalClock::with_anomalies(
            ClockModel::perfect(),
            vec![
                (10_000, ClockAnomaly::Freeze(5_000)),
                (
                    30_000,
                    ClockAnomaly::DriftBurst {
                        ppm: 50_000.0,
                        dur_us: 10_000,
                    },
                ),
            ],
        );
        let mut immediate = PhysicalClock::new(ClockModel::perfect());
        immediate.read(5_000);
        scheduled.read(5_000);
        // Immediate calls model sim events firing AT that virtual time, so
        // they interleave with reads in time order.
        immediate.freeze(10_000, 5_000);
        for t in (10_000..30_000).step_by(1_000) {
            assert_eq!(scheduled.read(t), immediate.read(t), "diverged at {t}");
        }
        immediate.drift_burst(30_000, 50_000.0, 10_000);
        for t in (30_000..60_000).step_by(1_000) {
            assert_eq!(scheduled.read(t), immediate.read(t), "diverged at {t}");
        }
    }
}
