//! Loosely synchronized physical clocks.
//!
//! The paper's model (Section II-A): every replica has a physical clock
//! providing monotonically increasing timestamps, kept loosely in sync by a
//! protocol such as NTP. Clock-RSM's *correctness never depends on the
//! synchronization precision* — only its latency does — and the test suite
//! exploits this model to run the protocol under both sub-millisecond and
//! multi-second skews.

use rsm_core::time::{Micros, MonotonicStamper};

/// Parameters describing how one replica's physical clock deviates from
/// true (simulation) time.
///
/// The effective offset at true time `t` is
/// `clamp(offset_us + drift_ppm·t, -sync_bound_us, +sync_bound_us)`:
/// a fixed initial offset, linear drift, and an NTP-like bound that models
/// the synchronization daemon steering the clock back once it strays too
/// far. The clamp also captures the worst case — a clock pinned at the
/// bound.
///
/// # Examples
///
/// ```
/// use simnet::ClockModel;
/// let m = ClockModel::ntp(1_000); // |offset| ≤ 1 ms, like a good NTP sync
/// assert_eq!(m.sync_bound_us, 1_000);
/// let skewed = ClockModel::fixed_offset(-250);
/// assert_eq!(skewed.offset_us, -250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Initial offset from true time, microseconds (may be negative).
    pub offset_us: i64,
    /// Drift rate in parts per million of elapsed true time.
    pub drift_ppm: f64,
    /// Bound enforced by the synchronization protocol: the effective offset
    /// never exceeds ±`sync_bound_us`.
    pub sync_bound_us: u64,
}

impl ClockModel {
    /// A perfect clock: zero offset, zero drift.
    pub fn perfect() -> Self {
        ClockModel {
            offset_us: 0,
            drift_ppm: 0.0,
            sync_bound_us: 0,
        }
    }

    /// An NTP-synchronized clock whose offset stays within
    /// ±`bound_us`, with no deliberate initial offset or drift. Drivers
    /// typically add per-replica initial offsets inside the bound.
    pub fn ntp(bound_us: u64) -> Self {
        ClockModel {
            offset_us: 0,
            drift_ppm: 0.0,
            sync_bound_us: bound_us,
        }
    }

    /// A clock with a constant offset and no drift; the bound is set to
    /// accommodate the offset exactly.
    pub fn fixed_offset(offset_us: i64) -> Self {
        ClockModel {
            offset_us,
            drift_ppm: 0.0,
            sync_bound_us: offset_us.unsigned_abs(),
        }
    }

    /// Adds drift in parts per million (positive = fast clock).
    pub fn with_drift_ppm(mut self, ppm: f64) -> Self {
        assert!(
            ppm > -500_000.0,
            "drift must keep the clock monotonic (> -500000 ppm)"
        );
        self.drift_ppm = ppm;
        self
    }
}

impl Default for ClockModel {
    fn default() -> Self {
        ClockModel::perfect()
    }
}

/// A replica's physical clock: deterministic deviation from simulation time
/// plus a strict-monotonicity guarantee on reads.
///
/// # Examples
///
/// ```
/// use simnet::{ClockModel, PhysicalClock};
/// let mut c = PhysicalClock::new(ClockModel::fixed_offset(500));
/// let a = c.read(10_000);
/// assert_eq!(a, 10_500);
/// let b = c.read(10_000); // same instant: strictly monotonic reads
/// assert!(b > a);
/// ```
#[derive(Debug, Clone)]
pub struct PhysicalClock {
    model: ClockModel,
    stamper: MonotonicStamper,
}

impl PhysicalClock {
    /// Creates a clock from its deviation model.
    pub fn new(model: ClockModel) -> Self {
        PhysicalClock {
            model,
            stamper: MonotonicStamper::new(),
        }
    }

    /// The raw (pre-monotonicity) clock value at true time `now`.
    pub fn raw(&self, now: Micros) -> Micros {
        let drift = self.model.drift_ppm * now as f64 / 1e6;
        let eff = (self.model.offset_us as f64 + drift)
            .clamp(
                -(self.model.sync_bound_us as f64),
                self.model.sync_bound_us as f64,
            )
            .round() as i64;
        // Clocks never go below zero at the start of the simulation.
        (now as i64 + eff).max(0) as Micros
    }

    /// Reads the clock at true time `now`. Successive reads return strictly
    /// increasing values even within the same simulated instant, matching
    /// the paper's use of `clock_gettime` monotonic timestamps. Readings
    /// are at least 1, so a zero timestamp can serve as a "never" sentinel.
    pub fn read(&mut self, now: Micros) -> Micros {
        let raw = self.raw(now).max(1);
        self.stamper.stamp(raw)
    }

    /// The deviation model this clock follows.
    pub fn model(&self) -> ClockModel {
        self.model
    }

    /// Shifts the clock's offset by `delta_us` (and widens the sync bound
    /// to accommodate it) — fault injection for a clock step, e.g. an
    /// operator fixing a misconfigured timezone or a VM migration. Reads
    /// remain strictly monotonic regardless of the jump direction.
    pub fn jump(&mut self, delta_us: i64) {
        self.model.offset_us += delta_us;
        self.model.sync_bound_us = self
            .model
            .sync_bound_us
            .max(self.model.offset_us.unsigned_abs());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_tracks_true_time() {
        let mut c = PhysicalClock::new(ClockModel::perfect());
        assert_eq!(c.read(1_000), 1_000);
        assert_eq!(c.read(2_000), 2_000);
    }

    #[test]
    fn offset_applies() {
        let mut fast = PhysicalClock::new(ClockModel::fixed_offset(300));
        let mut slow = PhysicalClock::new(ClockModel::fixed_offset(-300));
        assert_eq!(fast.read(10_000), 10_300);
        assert_eq!(slow.read(10_000), 9_700);
    }

    #[test]
    fn negative_clock_clamps_to_one_not_below() {
        let mut c = PhysicalClock::new(ClockModel::fixed_offset(-5_000));
        assert_eq!(c.read(1_000), 1, "reads never return the zero sentinel");
        assert_eq!(c.raw(1_000), 0, "the raw model may still floor at zero");
    }

    #[test]
    fn drift_accumulates_until_bound() {
        // 100 ppm fast, bound 1ms: after 1s the clock is +100us; after 20s
        // it would be +2ms but the NTP bound pins it at +1ms.
        let m = ClockModel::ntp(1_000).with_drift_ppm(100.0);
        let c = PhysicalClock::new(m);
        assert_eq!(c.raw(1_000_000), 1_000_100);
        assert_eq!(c.raw(20_000_000), 20_001_000);
    }

    #[test]
    fn reads_strictly_monotonic_at_same_instant() {
        let mut c = PhysicalClock::new(ClockModel::perfect());
        let a = c.read(500);
        let b = c.read(500);
        let d = c.read(500);
        assert!(a < b && b < d);
    }

    #[test]
    fn reads_monotonic_even_when_model_steps_back() {
        // A clock at the positive bound with negative drift would read
        // backwards without the stamper; reads must still increase.
        let m = ClockModel {
            offset_us: 1_000,
            drift_ppm: -200.0,
            sync_bound_us: 1_000,
        };
        let mut c = PhysicalClock::new(m);
        let mut prev = c.read(0);
        for t in (0..10_000_000).step_by(1_000_000) {
            let v = c.read(t);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn absurd_negative_drift_rejected() {
        let _ = ClockModel::perfect().with_drift_ppm(-600_000.0);
    }
}
