//! Latency statistics: mean, percentiles, CDFs.

use rsm_core::time::Micros;

/// A collection of latency samples with the aggregates the paper reports:
/// average, 95th percentile (the lines atop the bars in Figures 1, 2, 5),
/// and full CDFs (Figures 3, 4, 6).
///
/// # Examples
///
/// ```
/// use harness::LatencyStats;
/// let mut s = LatencyStats::new();
/// for v in [10_000, 20_000, 30_000, 40_000] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean_ms(), 25.0);
/// assert_eq!(s.percentile_ms(50.0), 20.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<Micros>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency sample in microseconds.
    pub fn record(&mut self, micros: Micros) {
        self.samples.push(micros);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<Micros>() as f64 / self.samples.len() as f64 / 1_000.0
    }

    /// The `p`-th percentile (0 < p ≤ 100) in milliseconds, using the
    /// nearest-rank method. Returns 0 when empty.
    pub fn percentile_ms(&mut self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1)] as f64 / 1_000.0
    }

    /// Median latency in milliseconds (0 when empty).
    pub fn p50_ms(&mut self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 99th-percentile latency in milliseconds (0 when empty) — the tail
    /// the adaptive-batching benches track alongside the mean.
    pub fn p99_ms(&mut self) -> f64 {
        self.percentile_ms(99.0)
    }

    /// Minimum sample in milliseconds (0 when empty).
    pub fn min_ms(&mut self) -> f64 {
        self.ensure_sorted();
        self.samples.first().map_or(0.0, |&v| v as f64 / 1_000.0)
    }

    /// Maximum sample in milliseconds (0 when empty).
    pub fn max_ms(&mut self) -> f64 {
        self.ensure_sorted();
        self.samples.last().map_or(0.0, |&v| v as f64 / 1_000.0)
    }

    /// The empirical CDF evaluated at `points` evenly spaced quantiles:
    /// returns `(latency_ms, cumulative_fraction)` pairs suitable for
    /// plotting Figures 3, 4, and 6.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "a CDF needs at least two points");
        if self.samples.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (0..points)
            .map(|i| {
                let frac = i as f64 / (points - 1) as f64;
                let idx = ((frac * (n - 1) as f64).round()) as usize;
                (self.samples[idx] as f64 / 1_000.0, frac)
            })
            .collect()
    }

    /// The raw samples (microseconds, insertion order not preserved after
    /// aggregate queries).
    pub fn samples(&self) -> &[Micros] {
        &self.samples
    }

    /// Merges another collection into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[Micros]) -> LatencyStats {
        let mut s = LatencyStats::new();
        for &v in values {
            s.record(v);
        }
        s
    }

    #[test]
    fn mean_and_percentiles() {
        let mut s = filled(&[1_000, 2_000, 3_000, 4_000, 5_000]);
        assert_eq!(s.mean_ms(), 3.0);
        assert_eq!(s.percentile_ms(50.0), 3.0);
        assert_eq!(s.percentile_ms(95.0), 5.0);
        assert_eq!(s.percentile_ms(100.0), 5.0);
        assert_eq!(s.min_ms(), 1.0);
        assert_eq!(s.max_ms(), 5.0);
    }

    #[test]
    fn p95_of_hundred_samples() {
        let mut s = filled(&(1..=100).map(|i| i * 1_000).collect::<Vec<_>>());
        assert_eq!(s.percentile_ms(95.0), 95.0);
        assert_eq!(s.percentile_ms(99.0), 99.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean_ms(), 0.0);
        assert_eq!(s.percentile_ms(95.0), 0.0);
        assert!(s.is_empty());
        assert!(s.cdf(10).is_empty());
    }

    #[test]
    fn cdf_is_monotonic() {
        let mut s = filled(&[5_000, 1_000, 3_000, 2_000, 4_000, 9_000]);
        let cdf = s.cdf(11);
        assert_eq!(cdf.len(), 11);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cdf.first().unwrap().0, 1.0);
        assert_eq!(cdf.last().unwrap().0, 9.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = filled(&[1_000]);
        let b = filled(&[3_000]);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean_ms(), 2.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_zero_rejected() {
        filled(&[1]).percentile_ms(0.0);
    }
}
