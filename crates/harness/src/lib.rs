//! # harness
//!
//! The experiment harness of the Clock-RSM reproduction: everything needed
//! to re-run the paper's evaluation (Section VI) on the `simnet`
//! simulator.
//!
//! * [`workload`] — the paper's client model: closed-loop clients local to
//!   each replica, uniform random think time, fixed-size update commands
//!   against the replicated key-value store; balanced (all sites) and
//!   imbalanced (one site) variants, plus a saturating mode for the
//!   throughput experiments.
//! * [`stats`] — latency statistics: mean, percentiles, CDFs.
//! * [`lin`] — correctness checkers: total order across replicas,
//!   monotonic execution, linearizability (real-time order), and replica
//!   convergence.
//! * [`cluster`] — one-stop constructors running any of the four protocols
//!   (Clock-RSM, Paxos, Paxos-bcast, Mencius-bcast) over a given topology.
//! * [`experiment`] — the per-figure experiment runners used by both the
//!   `bench` binaries and the integration tests.
//! * [`shard`] — the scale-out driver: `N` independent replication
//!   groups in lockstep, keys routed through `rsm-shard`, with
//!   timestamp-consistent cross-shard snapshot reads under Clock-RSM.
//!
//! ## Example
//!
//! ```
//! use harness::cluster::ProtocolChoice;
//! use harness::experiment::{ExperimentConfig, run_latency};
//! use rsm_core::LatencyMatrix;
//!
//! // A quick balanced-workload run on a small uniform topology.
//! let cfg = ExperimentConfig::new(LatencyMatrix::uniform(3, 10_000))
//!     .clients_per_site(2)
//!     .warmup_us(100_000)
//!     .duration_us(400_000);
//! let result = run_latency(ProtocolChoice::clock_rsm(), &cfg);
//! assert!(result.checks.total_order_ok);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod experiment;
pub mod lin;
pub mod shard;
pub mod stats;
pub mod workload;

pub use cluster::ProtocolChoice;
pub use experiment::{run_latency, run_throughput, ExperimentConfig, ExperimentResult};
pub use lin::{CheckReport, OpRecord, SnapshotRecord};
pub use shard::{run_sharded, ShardMapChoice, ShardedConfig, ShardedResult};
pub use stats::LatencyStats;
pub use workload::{Fault, WorkloadApp, WorkloadConfig};
