//! Experiment runners: one simulation = one protocol on one topology
//! under one workload, with statistics and correctness checks collected.

use clock_rsm::ClockRsm;
use kvstore::KvStore;
use mencius::MenciusBcast;
use paxos::{MultiPaxos, PaxosVariant};
use rsm_core::batch::BatchPolicy;
use rsm_core::checkpoint::CheckpointPolicy;
use rsm_core::config::Membership;
use rsm_core::id::ReplicaId;
use rsm_core::matrix::LatencyMatrix;
use rsm_core::protocol::Protocol;
use rsm_core::time::{Micros, MILLIS};
use rsm_obs::{MetricsSnapshot, ObsConfig, Span};
use simnet::{ClockModel, CpuModel, SimConfig, Simulation};

use crate::cluster::ProtocolChoice;
use crate::lin::{check_all, CheckReport};
use crate::stats::LatencyStats;
use crate::workload::{Fault, WorkloadApp, WorkloadConfig};

/// Full description of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Inter-replica one-way latencies.
    pub latency: LatencyMatrix,
    /// RNG seed (jitter, think times, keys, clock offsets).
    pub seed: u64,
    /// Maximum per-message jitter.
    pub jitter_us: Micros,
    /// Clock synchronization model (paper: NTP, sub-millisecond).
    pub clock: ClockModel,
    /// Closed-loop clients per active site (paper: 40).
    pub clients_per_site: usize,
    /// Maximum think time (paper: 80 ms); zero saturates.
    pub think_max_us: Micros,
    /// Update value size (paper: 64 B).
    pub value_bytes: usize,
    /// Key space size for random updates.
    pub key_space: u64,
    /// Fraction of operations issued as linearizable local reads
    /// (`rsm_core::read`); 0.0 = the paper's pure-update workload,
    /// 0.9 = the read-heavy production shape.
    pub read_fraction: f64,
    /// Sites with clients; `None` = all sites (balanced workload).
    pub active_sites: Option<Vec<u16>>,
    /// Samples before this time are discarded.
    pub warmup_us: Micros,
    /// Measurement window length.
    pub duration_us: Micros,
    /// CPU cost model (throughput experiments only).
    pub cpu: Option<CpuModel>,
    /// Request-coalescing policy: queued client requests are handed to
    /// the protocol as batches of up to `max_batch` commands and
    /// `max_bytes` of payload.
    pub batch: BatchPolicy,
    /// Checkpoint policy applied to every replica (shared subsystem,
    /// `rsm_core::checkpoint`): periodic snapshots, optional log
    /// compaction, and — for recovered replicas facing holes nothing
    /// retransmits — peer-to-peer checkpoint transfer. When enabled it
    /// overrides any protocol-level policy carried by the
    /// `ProtocolChoice`.
    pub checkpoint: CheckpointPolicy,
    /// Record per-operation intervals and run the correctness checkers.
    pub record_ops: bool,
    /// Scripted faults applied at absolute virtual times. Clock-RSM
    /// rides them out via reconfiguration; Paxos needs a
    /// [`LeaseConfig`](rsm_core::lease::LeaseConfig) (see
    /// [`ProtocolChoice::paxos_failover`]) to survive *leader* faults —
    /// without one it matches the paper's failure-free evaluation setup.
    pub faults: Vec<(Micros, Fault)>,
    /// Client retry timeout; see `WorkloadConfig::retry_timeout_us`.
    pub client_retry_us: Option<Micros>,
    /// Chaos-canary knob (**test-only**): disables the replicas'
    /// session dedup window, re-introducing the pre-session retry
    /// double-apply bug so the chaos fuzzer can prove it finds and
    /// shrinks it. Never set outside chaos tooling.
    pub session_canary: bool,
    /// Fraction of writes issued as private-key CAS chains (see
    /// `WorkloadConfig::cas_fraction`): each must succeed, and
    /// [`ExperimentResult::cas_failures`] counts the ones that did not.
    pub cas_fraction: f64,
    /// Session dedup window override applied to every replica (commands
    /// remembered per client); `None` keeps each protocol's default.
    pub session_window: Option<usize>,
    /// Observability configuration (`rsm-obs`): when set, the run keeps
    /// a metrics registry and per-command trace spans, surfaced as
    /// [`ExperimentResult::metrics`] and [`ExperimentResult::spans`].
    pub observe: Option<ObsConfig>,
}

impl ExperimentConfig {
    /// Paper-faithful defaults for a latency experiment on `latency`:
    /// 40 clients per site, think U(0, 80 ms), 64 B values, NTP-grade
    /// clocks (±1 ms), 4 s warmup, 20 s measurement.
    pub fn new(latency: LatencyMatrix) -> Self {
        ExperimentConfig {
            latency,
            seed: 42,
            jitter_us: 0,
            clock: ClockModel::ntp(MILLIS),
            clients_per_site: 40,
            think_max_us: 80 * MILLIS,
            value_bytes: 64,
            key_space: 10_000,
            read_fraction: 0.0,
            active_sites: None,
            warmup_us: 4_000 * MILLIS,
            duration_us: 20_000 * MILLIS,
            cpu: None,
            batch: BatchPolicy::DISABLED,
            checkpoint: CheckpointPolicy::DISABLED,
            record_ops: true,
            faults: Vec::new(),
            client_retry_us: None,
            session_canary: false,
            cas_fraction: 0.0,
            session_window: None,
            observe: None,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the clients per active site.
    pub fn clients_per_site(mut self, n: usize) -> Self {
        self.clients_per_site = n;
        self
    }

    /// Sets the think-time ceiling.
    pub fn think_max_us(mut self, us: Micros) -> Self {
        self.think_max_us = us;
        self
    }

    /// Restricts clients to the given sites (imbalanced workloads).
    pub fn active_sites(mut self, sites: Vec<u16>) -> Self {
        self.active_sites = Some(sites);
        self
    }

    /// Sets the warmup length.
    pub fn warmup_us(mut self, us: Micros) -> Self {
        self.warmup_us = us;
        self
    }

    /// Sets the measurement window length.
    pub fn duration_us(mut self, us: Micros) -> Self {
        self.duration_us = us;
        self
    }

    /// Sets the per-message jitter ceiling.
    pub fn jitter_us(mut self, us: Micros) -> Self {
        self.jitter_us = us;
        self
    }

    /// Sets the clock model.
    pub fn clock(mut self, m: ClockModel) -> Self {
        self.clock = m;
        self
    }

    /// Sets the update value size.
    pub fn value_bytes(mut self, n: usize) -> Self {
        self.value_bytes = n;
        self
    }

    /// Sets the read fraction of the workload (e.g. `0.9` for the
    /// read-heavy 90/10 mix).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= f <= 1.0`.
    pub fn read_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "read fraction out of range");
        self.read_fraction = f;
        self
    }

    /// Enables the CPU model (throughput experiments).
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = Some(cpu);
        self
    }

    /// Sets the request-coalescing policy (protocol-level batching).
    pub fn batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the checkpoint policy applied to every replica.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = policy;
        self
    }

    /// Scripts a long outage: `replica` crashes at `down_at` and
    /// recovers at `up_at` (virtual µs). Combined with a checkpoint
    /// policy and a small Mencius history cap, this is the scenario
    /// where the cluster commits past the retransmission horizon while
    /// the replica is down, so rejoining requires checkpoint transfer.
    pub fn long_outage(self, replica: u16, down_at: Micros, up_at: Micros) -> Self {
        assert!(down_at < up_at, "outage must end after it begins");
        let r = ReplicaId::new(replica);
        self.fault(down_at, Fault::Crash(r))
            .fault(up_at, Fault::Recover(r))
    }

    /// Scripts a leader crash: `leader` goes down at `down_at` and
    /// returns at `up_at` (virtual µs). Mechanically the same fault pair
    /// as [`long_outage`](ExperimentConfig::long_outage); the sugar
    /// marks the intent — aimed at the replica a
    /// [`ProtocolChoice::paxos_failover`] deployment starts under, it is
    /// the fail-over scenario: survivors must elect a replacement (so
    /// pair it with a lease), and the old leader must rejoin as a
    /// follower, via checkpoint transfer if it was down past retention.
    pub fn leader_crash(self, leader: u16, down_at: Micros, up_at: Micros) -> Self {
        self.long_outage(leader, down_at, up_at)
    }

    /// Enables or disables operation recording / correctness checking.
    pub fn record_ops(mut self, on: bool) -> Self {
        self.record_ops = on;
        self
    }

    /// Adds a scripted fault at an absolute virtual time.
    pub fn fault(mut self, at: Micros, fault: Fault) -> Self {
        self.faults.push((at, fault));
        self
    }

    /// Enables client-side retries with the given timeout (required for
    /// closed-loop clients to survive reconfigurations).
    pub fn client_retry_us(mut self, timeout: Micros) -> Self {
        self.client_retry_us = Some(timeout);
        self
    }

    /// Sets the session-canary knob (**test-only**; see the field docs):
    /// replicas skip retry deduplication, so a same-id retry
    /// double-applies.
    pub fn session_canary(mut self, on: bool) -> Self {
        self.session_canary = on;
        self
    }

    /// Sets the CAS fraction of the write mix (private-key CAS chains;
    /// see the field docs).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= f <= 1.0`.
    pub fn cas_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "cas fraction out of range");
        self.cas_fraction = f;
        self
    }

    /// Overrides every replica's session dedup window.
    pub fn session_window(mut self, n: usize) -> Self {
        self.session_window = Some(n);
        self
    }

    /// Enables observability: metric snapshots and per-command trace
    /// spans come back on the result. Timestamps are virtual
    /// microseconds, so instrumented runs stay deterministic.
    pub fn observe(mut self, obs: ObsConfig) -> Self {
        self.observe = Some(obs);
        self
    }

    fn n(&self) -> usize {
        self.latency.len()
    }

    fn active(&self) -> Vec<ReplicaId> {
        match &self.active_sites {
            Some(sites) => sites.iter().map(|&s| ReplicaId::new(s)).collect(),
            None => (0..self.n() as u16).map(ReplicaId::new).collect(),
        }
    }
}

/// Everything one run produces.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Which protocol ran.
    pub protocol: &'static str,
    /// Per-site client-observed latency statistics.
    pub site_stats: Vec<LatencyStats>,
    /// Commands executed per replica over the whole run.
    pub commit_counts: Vec<u64>,
    /// Correctness checker report (trivially true when ops not recorded).
    pub checks: CheckReport,
    /// Whether all replica state machine snapshots matched at the end.
    ///
    /// Compared over the replicas with equal commit counts (replicas only
    /// diverge transiently by commands still in flight at shutdown).
    pub snapshots_agree: bool,
    /// Observer-replica throughput over the measurement window, kops/s.
    pub throughput_kops: f64,
    /// Median client-observed commit latency across every active site,
    /// milliseconds (0 when no samples were recorded).
    pub p50_ms: f64,
    /// 99th-percentile client-observed commit latency across every
    /// active site, milliseconds (0 when no samples were recorded).
    pub p99_ms: f64,
    /// Median latency of **local reads** across every site, ms (0 when
    /// the workload issued none).
    pub read_p50_ms: f64,
    /// 99th-percentile local-read latency, ms.
    pub read_p99_ms: f64,
    /// Number of measured read replies.
    pub read_count: usize,
    /// Median latency of **replicated writes** across every site, ms.
    pub write_p50_ms: f64,
    /// 99th-percentile write latency, ms.
    pub write_p99_ms: f64,
    /// Number of measured write replies.
    pub write_count: usize,
    /// Per-replica commit times (virtual µs), populated when operation
    /// recording is on. Lets tests assert liveness inside specific
    /// windows (e.g. while a crashed replica is being reconfigured out).
    pub commit_times: Vec<Vec<Micros>>,
    /// Per-replica stable log lengths at the end of the run. With
    /// checkpoint compaction on, these stay bounded however many
    /// commands commit — the memory-bound claim of Section V-B.
    pub log_lens: Vec<usize>,
    /// CAS replies observed (the sharded driver issues no CAS: 0 there).
    pub cas_count: usize,
    /// Failed private-key CAS chains — always a violation (see
    /// [`ExperimentConfig::cas_fraction`]).
    pub cas_failures: usize,
    /// Final metrics snapshot (`None` unless
    /// [`ExperimentConfig::observe`] was set).
    pub metrics: Option<MetricsSnapshot>,
    /// Metrics snapshot taken at the end of the measurement window,
    /// before the post-run slack (`None` unless observing). Diffing it
    /// against [`metrics`](ExperimentResult::metrics) checks counter
    /// monotonicity over the tail of the run.
    pub metrics_mid: Option<MetricsSnapshot>,
    /// Completed per-command trace spans, in completion order (empty
    /// unless observing). Stage timestamps are virtual microseconds.
    pub spans: Vec<Span>,
    /// Spans begun but never [`Replied`](rsm_core::obs::TraceStage) at
    /// the end of the run (commands still in flight at shutdown).
    pub open_spans: usize,
}

impl ExperimentResult {
    /// Number of commands replica `r` executed inside `[from, to]`
    /// (virtual µs). Requires operation recording.
    pub fn commits_between(&self, r: usize, from: Micros, to: Micros) -> usize {
        self.commit_times[r]
            .iter()
            .filter(|&&t| t >= from && t <= to)
            .count()
    }

    /// Time of the last commit at replica `r`, if any.
    pub fn last_commit_at(&self, r: usize) -> Option<Micros> {
        self.commit_times[r].last().copied()
    }
}

/// Runs a latency experiment for the chosen protocol.
pub fn run_latency(choice: ProtocolChoice, cfg: &ExperimentConfig) -> ExperimentResult {
    let n = cfg.n() as u16;
    let checkpoint = cfg.checkpoint;
    let canary = cfg.session_canary;
    let window = cfg.session_window;
    match choice {
        ProtocolChoice::ClockRsm { cfg: rcfg } => run_generic(cfg, "Clock-RSM", move |id| {
            let rcfg = if checkpoint.enabled() {
                rcfg.with_checkpoint(checkpoint)
            } else {
                rcfg
            };
            let rcfg = match window {
                Some(w) => rcfg.with_session_window(w),
                None => rcfg,
            };
            ClockRsm::new(id, Membership::uniform(n), rcfg).with_session_canary(canary)
        }),
        ProtocolChoice::Paxos { leader, failover } => run_generic(cfg, "Paxos", move |id| {
            let p = MultiPaxos::new(id, Membership::uniform(n), leader, PaxosVariant::Plain)
                .with_checkpoints(checkpoint)
                .with_failover(failover);
            let p = match window {
                Some(w) => p.with_session_window(w),
                None => p,
            };
            p.with_session_canary(canary)
        }),
        ProtocolChoice::PaxosBcast { leader, failover } => {
            run_generic(cfg, "Paxos-bcast", move |id| {
                let p = MultiPaxos::new(id, Membership::uniform(n), leader, PaxosVariant::Bcast)
                    .with_checkpoints(checkpoint)
                    .with_failover(failover);
                let p = match window {
                    Some(w) => p.with_session_window(w),
                    None => p,
                };
                p.with_session_canary(canary)
            })
        }
        ProtocolChoice::MenciusBcast { history_cap } => {
            run_generic(cfg, "Mencius-bcast", move |id| {
                let p = MenciusBcast::new(id, Membership::uniform(n))
                    .with_checkpoints(checkpoint)
                    .with_history_cap(history_cap);
                let p = match window {
                    Some(w) => p.with_session_window(w),
                    None => p,
                };
                p.with_session_canary(canary)
            })
        }
    }
}

/// Runs a throughput experiment (Figure 8): saturating clients, CPU cost
/// model, near-zero network latency (a local cluster), history recording
/// off. `batch` is the protocol-level batching knob: queued client
/// requests coalesce into batches of up to `batch.max_batch` commands,
/// each replicated with one message and one cumulative ack. Returns the
/// same result shape with `throughput_kops` filled in.
pub fn run_throughput(
    choice: ProtocolChoice,
    cmd_bytes: usize,
    clients_per_site: usize,
    cpu: CpuModel,
    seed: u64,
    batch: BatchPolicy,
) -> ExperimentResult {
    // "The typical RTT in an EC2 data center is about 0.6 ms" — model the
    // paper's local gigabit cluster with a 0.25 ms one-way latency.
    let cfg = ExperimentConfig::new(LatencyMatrix::uniform(5, 250))
        .seed(seed)
        .clients_per_site(clients_per_site)
        .think_max_us(0)
        .value_bytes(cmd_bytes)
        .warmup_us(500 * MILLIS)
        .duration_us(2_000 * MILLIS)
        .cpu(cpu)
        .batch(batch)
        .record_ops(false);
    run_latency(choice, &cfg)
}

fn run_generic<P, F>(cfg: &ExperimentConfig, name: &'static str, factory: F) -> ExperimentResult
where
    P: Protocol + 'static,
    F: FnMut(ReplicaId) -> P + 'static,
{
    let n = cfg.n();
    let end = cfg.warmup_us + cfg.duration_us;
    let sim_cfg = SimConfig::new(cfg.latency.clone())
        .seed(cfg.seed)
        .jitter_us(cfg.jitter_us)
        .clock_model(cfg.clock)
        .batch_policy(cfg.batch)
        .record_history(cfg.record_ops);
    let sim_cfg = match cfg.cpu {
        Some(cpu) => sim_cfg.cpu_model(cpu),
        None => sim_cfg,
    };
    let sim_cfg = match cfg.observe {
        Some(obs) => sim_cfg.observe(obs),
        None => sim_cfg,
    };
    let workload = WorkloadConfig {
        n_sites: n,
        active_sites: cfg.active(),
        clients_per_site: cfg.clients_per_site,
        think_max_us: cfg.think_max_us,
        value_bytes: cfg.value_bytes,
        key_space: cfg.key_space,
        read_fraction: cfg.read_fraction,
        warmup_until: cfg.warmup_us,
        measure_until: end,
        record_ops: cfg.record_ops,
        faults: cfg.faults.clone(),
        retry_timeout_us: cfg.client_retry_us,
        cas_fraction: cfg.cas_fraction,
    };
    let app: WorkloadApp<P> = WorkloadApp::new(workload);
    let mut sim = Simulation::new(sim_cfg, factory, || Box::new(KvStore::new()), app);
    sim.run_until(end);
    let metrics_mid = sim.metrics();
    // Slack after the window so in-flight commands commit everywhere.
    sim.run_until(end + 2_000 * MILLIS);

    let replicas: Vec<ReplicaId> = (0..n as u16).map(ReplicaId::new).collect();
    let commit_counts: Vec<u64> = replicas.iter().map(|&r| sim.commit_count(r)).collect();
    let log_lens: Vec<usize> = replicas.iter().map(|&r| sim.log(r).len()).collect();

    // Snapshot agreement over every replica that is up at the end: the
    // run quiesces (clients stop at the window's end, then 2 s of slack),
    // so all live replicas must have executed the same command sequence.
    let snapshots: Vec<_> = replicas
        .iter()
        .filter(|&&r| sim.is_up(r))
        .map(|&r| sim.snapshot(r))
        .collect();
    let snapshots_agree = snapshots.windows(2).all(|w| w[0] == w[1]);

    let mut commit_times: Vec<Vec<Micros>> = vec![Vec::new(); n];
    let checks = if cfg.record_ops {
        let histories: Vec<_> = replicas.iter().map(|&r| sim.commits(r).to_vec()).collect();
        for (i, h) in histories.iter().enumerate() {
            commit_times[i] = h.iter().map(|c| c.at).collect();
        }
        check_all(&histories, sim.app().ops())
    } else {
        CheckReport::trivially_ok()
    };

    let window_secs = cfg.duration_us as f64 / 1e6;
    let throughput_kops = sim.app().observer_commits() as f64 / window_secs / 1_000.0;

    let site_stats = sim.app().site_stats().to_vec();
    // Aggregate percentiles over every site's samples: the number the
    // batching benches compare across policies (a per-site view hides
    // load imbalance; the mean hides the tail).
    let mut all = LatencyStats::new();
    for s in &site_stats {
        all.merge(s);
    }
    let (p50_ms, p99_ms) = if all.is_empty() {
        (0.0, 0.0)
    } else {
        (all.p50_ms(), all.p99_ms())
    };

    let metrics = sim.metrics();
    let (spans, open_spans) = match sim.tracer() {
        Some(t) => (t.completed(), t.open_spans().len()),
        None => (Vec::new(), 0),
    };

    // Read vs write latency split (the read-mix scenarios' headline);
    // percentile queries sort lazily, hence the mutable accessors.
    let app = sim.app_mut();
    let (read_p50_ms, read_p99_ms) = (app.read_stats_mut().p50_ms(), app.read_stats_mut().p99_ms());
    let (write_p50_ms, write_p99_ms) = (
        app.write_stats_mut().p50_ms(),
        app.write_stats_mut().p99_ms(),
    );
    let (read_count, write_count) = (app.read_stats().count(), app.write_stats().count());

    ExperimentResult {
        protocol: name,
        site_stats,
        commit_counts,
        checks,
        snapshots_agree,
        throughput_kops,
        p50_ms,
        p99_ms,
        read_p50_ms,
        read_p99_ms,
        read_count,
        write_p50_ms,
        write_p99_ms,
        write_count,
        commit_times,
        log_lens,
        cas_count: app.cas_count(),
        cas_failures: app.cas_failures(),
        metrics,
        metrics_mid,
        spans,
        open_spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(latency: LatencyMatrix) -> ExperimentConfig {
        ExperimentConfig::new(latency)
            .clients_per_site(3)
            .think_max_us(10 * MILLIS)
            .warmup_us(200 * MILLIS)
            .duration_us(800 * MILLIS)
    }

    #[test]
    fn clock_rsm_runs_clean_on_uniform_topology() {
        let r = run_latency(
            ProtocolChoice::clock_rsm(),
            &quick(LatencyMatrix::uniform(3, 10_000)),
        );
        assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
        assert!(r.snapshots_agree);
        assert!(r.site_stats[0].count() > 10);
    }

    #[test]
    fn all_four_protocols_produce_samples() {
        let cfg = quick(LatencyMatrix::uniform(3, 5_000));
        for choice in [
            ProtocolChoice::clock_rsm(),
            ProtocolChoice::paxos(0),
            ProtocolChoice::paxos_bcast(0),
            ProtocolChoice::mencius(),
        ] {
            let r = run_latency(choice.clone(), &cfg);
            assert!(
                r.site_stats.iter().map(LatencyStats::count).sum::<usize>() > 20,
                "{} produced too few samples",
                r.protocol
            );
            assert!(
                r.checks.all_ok(),
                "{}: {:?}",
                r.protocol,
                r.checks.violation
            );
            assert!(r.snapshots_agree, "{} snapshots diverged", r.protocol);
        }
    }

    #[test]
    fn read_mix_produces_split_stats_and_green_checks() {
        let cfg = quick(LatencyMatrix::uniform(3, 10_000)).read_fraction(0.5);
        for choice in [
            ProtocolChoice::clock_rsm(),
            ProtocolChoice::paxos(0),
            ProtocolChoice::paxos_bcast(0),
            ProtocolChoice::mencius(),
        ] {
            let r = run_latency(choice, &cfg);
            assert!(
                r.checks.all_ok(),
                "{}: {:?}",
                r.protocol,
                r.checks.violation
            );
            assert!(r.snapshots_agree, "{} snapshots diverged", r.protocol);
            assert!(
                r.read_count > 10 && r.write_count > 10,
                "{}: read/write split empty ({} reads, {} writes)",
                r.protocol,
                r.read_count,
                r.write_count
            );
            assert!(r.read_p50_ms > 0.0 && r.write_p50_ms > 0.0);
        }
    }

    #[test]
    fn cas_chains_succeed_on_clean_runs() {
        let cfg = quick(LatencyMatrix::uniform(3, 10_000)).cas_fraction(0.4);
        for choice in [
            ProtocolChoice::clock_rsm(),
            ProtocolChoice::paxos_bcast(0),
            ProtocolChoice::mencius(),
        ] {
            let r = run_latency(choice, &cfg);
            assert!(
                r.checks.all_ok(),
                "{}: {:?}",
                r.protocol,
                r.checks.violation
            );
            assert!(r.cas_count > 10, "{}: CAS mix starved", r.protocol);
            assert_eq!(
                r.cas_failures, 0,
                "{}: a private-key CAS chain broke on a fault-free run",
                r.protocol
            );
        }
    }

    #[test]
    fn throughput_mode_reports_kops() {
        let r = run_throughput(
            ProtocolChoice::clock_rsm(),
            64,
            10,
            CpuModel::default(),
            7,
            BatchPolicy::DISABLED,
        );
        assert!(r.throughput_kops > 0.0);
    }

    #[test]
    fn batching_strictly_raises_small_command_throughput() {
        // The acceptance bar of the batching refactor: at 10 B commands,
        // batch ≥ 8 must commit strictly more than batch = 1 for every
        // protocol (one message + one ack per batch amortizes the fixed
        // per-message CPU costs).
        for choice in [
            ProtocolChoice::clock_rsm(),
            ProtocolChoice::paxos(0),
            ProtocolChoice::paxos_bcast(0),
            ProtocolChoice::mencius(),
        ] {
            let t = |batch| {
                run_throughput(choice.clone(), 10, 20, CpuModel::default(), 11, batch)
                    .throughput_kops
            };
            let unbatched = t(BatchPolicy::DISABLED);
            let batched = t(BatchPolicy::max(8));
            assert!(
                batched > unbatched,
                "{}: batch=8 {batched:.1}k !> batch=1 {unbatched:.1}k",
                choice.name()
            );
        }
    }
}
