//! Correctness checkers: total order, monotonic execution, real-time
//! (linearizability) order, and replica convergence.
//!
//! The paper proves (appendix, Claims 1–5) that Clock-RSM executions are
//! linearizable: all replicas execute the same commands in the same order,
//! and that order respects the real-time order of client operations. These
//! checkers verify exactly those properties on simulation histories, for
//! all four protocols.

use std::collections::HashMap;

use rsm_core::command::CommandId;
use rsm_core::time::Micros;
use simnet::sim::CommitRecord;

/// One client operation's real-time interval, recorded by the workload.
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// The command's identity.
    pub cmd_id: CommandId,
    /// When the client issued the command (virtual time).
    pub issued: Micros,
    /// When the reply reached the client, if it did.
    pub replied: Option<Micros>,
}

/// The outcome of all history checks; every flag should be true.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Every pair of replica histories agrees on a common prefix.
    pub total_order_ok: bool,
    /// Execution order coordinates strictly increase at every replica.
    pub monotonic_ok: bool,
    /// The commit order respects the real-time order of client operations.
    pub real_time_ok: bool,
    /// No command executed twice at any replica.
    pub no_duplicates_ok: bool,
    /// Human-readable description of the first violation found, if any.
    pub violation: Option<String>,
}

impl CheckReport {
    /// Whether every check passed.
    pub fn all_ok(&self) -> bool {
        self.total_order_ok && self.monotonic_ok && self.real_time_ok && self.no_duplicates_ok
    }
}

/// Checks that all replica histories are consistent fragments of one
/// total order (the paper's Claim 2).
///
/// Histories normally start at position zero and the check degenerates to
/// prefix consistency. A replica that recovered from a **checkpoint**
/// replays only the suffix past its snapshot, so its history may begin
/// mid-stream: the checker aligns each pair of histories on the first
/// common command and requires them to agree from there on.
pub fn check_total_order(histories: &[Vec<CommitRecord>]) -> Result<(), String> {
    for (i, a) in histories.iter().enumerate() {
        for (j, b) in histories.iter().enumerate().skip(i + 1) {
            if a.is_empty() || b.is_empty() {
                continue;
            }
            // Align on b's first command within a, or a's first within b.
            let (off_a, off_b) = if let Some(p) = a.iter().position(|r| r.cmd_id == b[0].cmd_id) {
                (p, 0)
            } else if let Some(p) = b.iter().position(|r| r.cmd_id == a[0].cmd_id) {
                (0, p)
            } else {
                continue; // disjoint windows: nothing to compare
            };
            let common = (a.len() - off_a).min(b.len() - off_b);
            for k in 0..common {
                if a[off_a + k].cmd_id != b[off_b + k].cmd_id {
                    return Err(format!(
                        "total order violation: offset {k} after alignment differs \
                         between replica {i} ({:?}) and replica {j} ({:?})",
                        a[off_a + k].cmd_id,
                        b[off_b + k].cmd_id
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Checks that each replica's execution-order coordinates strictly
/// increase (Claim 1 — commands execute in timestamp/instance order).
pub fn check_monotonic(histories: &[Vec<CommitRecord>]) -> Result<(), String> {
    for (i, h) in histories.iter().enumerate() {
        for w in h.windows(2) {
            if w[0].order_hint >= w[1].order_hint {
                return Err(format!(
                    "monotonicity violation at replica {i}: {} then {}",
                    w[0].order_hint, w[1].order_hint
                ));
            }
        }
    }
    Ok(())
}

/// Checks that no command appears twice in any replica's history.
pub fn check_no_duplicates(histories: &[Vec<CommitRecord>]) -> Result<(), String> {
    for (i, h) in histories.iter().enumerate() {
        let mut seen: HashMap<CommandId, usize> = HashMap::with_capacity(h.len());
        for (k, rec) in h.iter().enumerate() {
            if let Some(prev) = seen.insert(rec.cmd_id, k) {
                return Err(format!(
                    "duplicate execution at replica {i}: {:?} at positions {prev} and {k}",
                    rec.cmd_id
                ));
            }
        }
    }
    Ok(())
}

/// Checks the real-time ordering component of linearizability (Claim 5):
/// if operation A's reply preceded operation B's issue, A must appear
/// before B in the total execution order.
///
/// `order` is the longest replica history (the most complete view of the
/// total order); `ops` are the client-observed intervals.
pub fn check_real_time(order: &[CommitRecord], ops: &[OpRecord]) -> Result<(), String> {
    let pos: HashMap<CommandId, usize> = order
        .iter()
        .enumerate()
        .map(|(i, r)| (r.cmd_id, i))
        .collect();

    // Sweep events in time order, tracking the maximum executed position
    // among operations that have already replied. Any operation issued
    // after that reply must order later.
    #[derive(Debug)]
    enum Ev {
        Reply(Micros, usize), // (time, position in order)
        Issue(Micros, CommandId, usize),
    }
    let mut events: Vec<Ev> = Vec::with_capacity(ops.len() * 2);
    for op in ops {
        let Some(&p) = pos.get(&op.cmd_id) else {
            continue; // never committed in the observed window
        };
        events.push(Ev::Issue(op.issued, op.cmd_id, p));
        if let Some(r) = op.replied {
            events.push(Ev::Reply(r, p));
        }
    }
    // Replies strictly before issues at the same instant: "finished before
    // began" requires strict precedence, so process issues first on ties.
    events.sort_by_key(|e| match *e {
        Ev::Issue(t, _, _) => (t, 0u8),
        Ev::Reply(t, _) => (t, 1u8),
    });

    let mut max_replied_pos: Option<(usize, Micros)> = None;
    for ev in events {
        match ev {
            Ev::Reply(t, p) => {
                if max_replied_pos.is_none_or(|(mp, _)| p > mp) {
                    max_replied_pos = Some((p, t));
                }
            }
            Ev::Issue(t, id, p) => {
                if let Some((mp, rt)) = max_replied_pos {
                    if mp > p {
                        return Err(format!(
                            "real-time violation: {id:?} issued at {t} executes at \
                             position {p}, before an operation that replied at {rt} \
                             (position {mp})"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Runs every check and summarizes the outcome.
pub fn check_all(histories: &[Vec<CommitRecord>], ops: &[OpRecord]) -> CheckReport {
    let total = check_total_order(histories);
    let mono = check_monotonic(histories);
    let dup = check_no_duplicates(histories);
    let longest = histories
        .iter()
        .max_by_key(|h| h.len())
        .cloned()
        .unwrap_or_default();
    let rt = check_real_time(&longest, ops);
    let violation = [&total, &mono, &dup, &rt]
        .iter()
        .find_map(|r| r.as_ref().err().cloned());
    CheckReport {
        total_order_ok: total.is_ok(),
        monotonic_ok: mono.is_ok(),
        real_time_ok: rt.is_ok(),
        no_duplicates_ok: dup.is_ok(),
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_core::id::{ClientId, ReplicaId};

    fn cid(seq: u64) -> CommandId {
        CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq)
    }

    fn rec(seq: u64, hint: u64, at: Micros) -> CommitRecord {
        CommitRecord {
            at,
            order_hint: hint,
            origin: ReplicaId::new(0),
            cmd_id: cid(seq),
        }
    }

    #[test]
    fn consistent_prefixes_pass() {
        let a = vec![rec(1, 1, 10), rec(2, 2, 20), rec(3, 3, 30)];
        let b = vec![rec(1, 1, 12), rec(2, 2, 25)];
        assert!(check_total_order(&[a, b]).is_ok());
    }

    #[test]
    fn diverging_histories_fail() {
        let a = vec![rec(1, 1, 10), rec(2, 2, 20)];
        let b = vec![rec(1, 1, 12), rec(3, 2, 25)];
        let err = check_total_order(&[a, b]).unwrap_err();
        assert!(err.contains("offset 1"), "{err}");
    }

    #[test]
    fn checkpoint_truncated_history_aligns() {
        // Replica b recovered from a checkpoint: its history starts at the
        // second command. Consistent overlap must pass.
        let a = vec![rec(1, 1, 10), rec(2, 2, 20), rec(3, 3, 30)];
        let b = vec![rec(2, 2, 25), rec(3, 3, 35)];
        assert!(check_total_order(&[a.clone(), b]).is_ok());
        // A divergent suffix after alignment must still fail.
        let c = vec![rec(2, 2, 25), rec(9, 3, 35)];
        assert!(check_total_order(&[a, c]).is_err());
    }

    #[test]
    fn monotonic_hints_checked() {
        let good = vec![rec(1, 5, 10), rec(2, 9, 20)];
        assert!(check_monotonic(&[good]).is_ok());
        let bad = vec![rec(1, 9, 10), rec(2, 5, 20)];
        assert!(check_monotonic(&[bad]).is_err());
    }

    #[test]
    fn duplicate_detection() {
        let h = vec![rec(1, 1, 10), rec(1, 2, 20)];
        assert!(check_no_duplicates(&[h]).is_err());
    }

    #[test]
    fn real_time_ordering_enforced() {
        // A replied at t=100; B issued at t=200 but executed earlier.
        let order = vec![rec(2, 1, 5), rec(1, 2, 10)]; // B before A in order
        let ops = vec![
            OpRecord {
                cmd_id: cid(1),
                issued: 0,
                replied: Some(100),
            },
            OpRecord {
                cmd_id: cid(2),
                issued: 200,
                replied: Some(300),
            },
        ];
        let err = check_real_time(&order, &ops).unwrap_err();
        assert!(err.contains("real-time violation"), "{err}");
    }

    #[test]
    fn concurrent_ops_may_order_either_way() {
        // Overlapping intervals: both orders are linearizable.
        let order = vec![rec(2, 1, 5), rec(1, 2, 10)];
        let ops = vec![
            OpRecord {
                cmd_id: cid(1),
                issued: 0,
                replied: Some(300),
            },
            OpRecord {
                cmd_id: cid(2),
                issued: 100,
                replied: Some(200),
            },
        ];
        assert!(check_real_time(&order, &ops).is_ok());
    }

    #[test]
    fn unreplied_ops_are_tolerated() {
        let order = vec![rec(1, 1, 5)];
        let ops = vec![
            OpRecord {
                cmd_id: cid(1),
                issued: 0,
                replied: None,
            },
            OpRecord {
                cmd_id: cid(9),
                issued: 0,
                replied: None,
            }, // never committed
        ];
        assert!(check_real_time(&order, &ops).is_ok());
    }

    #[test]
    fn check_all_aggregates() {
        let a = vec![rec(1, 1, 10), rec(2, 2, 20)];
        let report = check_all(&[a], &[]);
        assert!(report.all_ok());
        assert!(report.violation.is_none());
    }
}
