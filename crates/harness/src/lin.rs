//! Correctness checkers: total order, monotonic execution, real-time
//! (linearizability) order, read-value consistency, and replica
//! convergence.
//!
//! The paper proves (appendix, Claims 1–5) that Clock-RSM executions are
//! linearizable: all replicas execute the same commands in the same order,
//! and that order respects the real-time order of client operations. These
//! checkers verify exactly those properties on simulation histories, for
//! all four protocols — plus the read subsystem's obligation: a locally
//! served `Get` (which never appears in the replicated order) must still
//! be explainable by a single linearization point consistent with the
//! verified total order and the real-time order of completed operations
//! ([`check_read_values`]).

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use kvstore::KvOp;
use rsm_core::command::CommandId;
use rsm_core::time::Micros;
use simnet::sim::CommitRecord;

/// One client operation's real-time interval, recorded by the workload,
/// with enough payload context for the value checkers.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// The command's identity.
    pub cmd_id: CommandId,
    /// When the client issued the command (virtual time).
    pub issued: Micros,
    /// When the reply reached the client, if it did.
    pub replied: Option<Micros>,
    /// The encoded operation payload (a [`KvOp`]), used by the
    /// read-value checker to replay writes and position reads.
    pub payload: Bytes,
    /// The reply's result bytes, when a reply arrived.
    pub result: Option<Bytes>,
    /// Whether the command took the local read path
    /// (`Command::read_only`).
    pub read_only: bool,
}

impl OpRecord {
    /// A write/replicated op record with no payload context (older
    /// tests and callers that only exercise the interval checkers).
    pub fn interval(cmd_id: CommandId, issued: Micros, replied: Option<Micros>) -> Self {
        OpRecord {
            cmd_id,
            issued,
            replied,
            payload: Bytes::new(),
            result: None,
            read_only: false,
        }
    }
}

/// The outcome of all history checks; every flag should be true.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Every pair of replica histories agrees on a common prefix.
    pub total_order_ok: bool,
    /// Execution order coordinates strictly increase at every replica.
    pub monotonic_ok: bool,
    /// The commit order respects the real-time order of client operations.
    pub real_time_ok: bool,
    /// No command executed twice at any replica.
    pub no_duplicates_ok: bool,
    /// Every `Get` reply is consistent with some linearization point in
    /// the verified total order ([`check_read_values`]).
    pub read_values_ok: bool,
    /// Human-readable description of the first violation found, if any.
    pub violation: Option<String>,
}

impl CheckReport {
    /// A report with every flag green (used when op recording is off).
    pub fn trivially_ok() -> Self {
        CheckReport {
            total_order_ok: true,
            monotonic_ok: true,
            real_time_ok: true,
            no_duplicates_ok: true,
            read_values_ok: true,
            violation: None,
        }
    }

    /// Whether every check passed.
    pub fn all_ok(&self) -> bool {
        self.total_order_ok
            && self.monotonic_ok
            && self.real_time_ok
            && self.no_duplicates_ok
            && self.read_values_ok
    }
}

/// Checks that all replica histories are consistent fragments of one
/// total order (the paper's Claim 2).
///
/// A replica's history need not be contiguous: one that recovered from
/// a **checkpoint** — its own at restart, or a peer's installed by a
/// state-transfer rejoin — covers part of the stream with a snapshot,
/// which records no per-command entries, so its history can begin (or
/// resume) mid-stream with commands missing anywhere a snapshot
/// covered. What a total order does guarantee is *relative* agreement:
/// restricted to the commands two replicas both executed, their
/// histories must be the identical sequence. The checker verifies
/// exactly that, pairwise.
pub fn check_total_order(histories: &[Vec<CommitRecord>]) -> Result<(), String> {
    for (i, a) in histories.iter().enumerate() {
        for (j, b) in histories.iter().enumerate().skip(i + 1) {
            let in_a: HashSet<CommandId> = a.iter().map(|r| r.cmd_id).collect();
            let in_b: HashSet<CommandId> = b.iter().map(|r| r.cmd_id).collect();
            let fa = a.iter().filter(|r| in_b.contains(&r.cmd_id));
            let fb = b.iter().filter(|r| in_a.contains(&r.cmd_id));
            for (k, (ra, rb)) in fa.zip(fb).enumerate() {
                if ra.cmd_id != rb.cmd_id {
                    return Err(format!(
                        "total order violation: common command {k} differs \
                         between replica {i} ({:?}) and replica {j} ({:?})",
                        ra.cmd_id, rb.cmd_id
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Checks that each replica's execution-order coordinates strictly
/// increase (Claim 1 — commands execute in timestamp/instance order).
pub fn check_monotonic(histories: &[Vec<CommitRecord>]) -> Result<(), String> {
    for (i, h) in histories.iter().enumerate() {
        for w in h.windows(2) {
            if w[0].order_hint >= w[1].order_hint {
                return Err(format!(
                    "monotonicity violation at replica {i}: {} then {}",
                    w[0].order_hint, w[1].order_hint
                ));
            }
        }
    }
    Ok(())
}

/// Checks that no command appears twice in any replica's history.
pub fn check_no_duplicates(histories: &[Vec<CommitRecord>]) -> Result<(), String> {
    for (i, h) in histories.iter().enumerate() {
        let mut seen: HashMap<CommandId, usize> = HashMap::with_capacity(h.len());
        for (k, rec) in h.iter().enumerate() {
            if let Some(prev) = seen.insert(rec.cmd_id, k) {
                return Err(format!(
                    "duplicate execution at replica {i}: {:?} at positions {prev} and {k}",
                    rec.cmd_id
                ));
            }
        }
    }
    Ok(())
}

/// Checks the real-time ordering component of linearizability (Claim 5):
/// if operation A's reply preceded operation B's issue, A must appear
/// before B in the total execution order.
///
/// `order` is the longest replica history (the most complete view of the
/// total order); `ops` are the client-observed intervals.
pub fn check_real_time(order: &[CommitRecord], ops: &[OpRecord]) -> Result<(), String> {
    let pos: HashMap<CommandId, usize> = order
        .iter()
        .enumerate()
        .map(|(i, r)| (r.cmd_id, i))
        .collect();

    // Sweep events in time order, tracking the maximum executed position
    // among operations that have already replied. Any operation issued
    // after that reply must order later.
    #[derive(Debug)]
    enum Ev {
        Reply(Micros, usize), // (time, position in order)
        Issue(Micros, CommandId, usize),
    }
    let mut events: Vec<Ev> = Vec::with_capacity(ops.len() * 2);
    for op in ops {
        let Some(&p) = pos.get(&op.cmd_id) else {
            continue; // never committed in the observed window
        };
        events.push(Ev::Issue(op.issued, op.cmd_id, p));
        if let Some(r) = op.replied {
            events.push(Ev::Reply(r, p));
        }
    }
    // Replies strictly before issues at the same instant: "finished before
    // began" requires strict precedence, so process issues first on ties.
    events.sort_by_key(|e| match *e {
        Ev::Issue(t, _, _) => (t, 0u8),
        Ev::Reply(t, _) => (t, 1u8),
    });

    let mut max_replied_pos: Option<(usize, Micros)> = None;
    for ev in events {
        match ev {
            Ev::Reply(t, p) => {
                if max_replied_pos.is_none_or(|(mp, _)| p > mp) {
                    max_replied_pos = Some((p, t));
                }
            }
            Ev::Issue(t, id, p) => {
                if let Some((mp, rt)) = max_replied_pos {
                    if mp > p {
                        return Err(format!(
                            "real-time violation: {id:?} issued at {t} executes at \
                             position {p}, before an operation that replied at {rt} \
                             (position {mp})"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks that every locally served `Get` returned a value consistent
/// with **some** linearization point in the verified total order,
/// respecting the real-time order of completed operations (the read-side
/// counterpart of [`check_real_time`], sharing its window logic).
///
/// Local reads never appear in the replicated order, so the checker
/// *places* each one: replaying the write ops of `order` yields, per
/// key, a timeline of values; a read of key `k` that was issued at
/// `t_i` and replied at `t_r` may legally observe any value `k` held at
/// a position
///
/// * **at or after** the latest write to `k` whose reply preceded
///   `t_i` (a completed write must be visible to a later read), and
/// * **strictly before** the earliest write to `k` issued after `t_r`
///   (a write that started after the read finished must not be
///   visible).
///
/// The read passes iff its observed value (or observed absence) occurs
/// somewhere in that window. Writes the order does not contain (still
/// in flight at shutdown, or invisible because a history restarted at a
/// checkpoint install) cannot be positioned and simply do not constrain
/// the window — the check degrades gracefully rather than
/// false-positively.
pub fn check_read_values(order: &[CommitRecord], ops: &[OpRecord]) -> Result<(), String> {
    let by_id: HashMap<CommandId, &OpRecord> = ops.iter().map(|op| (op.cmd_id, op)).collect();

    /// One write as positioned in the total order (the per-key timeline
    /// vectors are in order position, so the index inside a timeline is
    /// the position we window over).
    struct WriteAt {
        issued: Micros,
        replied: Option<Micros>,
        /// The key's value after this write applied.
        value_after: Option<Bytes>,
    }

    // Replay the order's writes, simulating the kv store per key.
    let mut current: HashMap<Bytes, Bytes> = HashMap::new();
    let mut writes: HashMap<Bytes, Vec<WriteAt>> = HashMap::new();
    for rec in order {
        let Some(op) = by_id.get(&rec.cmd_id) else {
            continue; // command from outside the recorded population
        };
        let Ok(kv_op) = KvOp::decode(&op.payload) else {
            continue;
        };
        let key = kv_op.key().clone();
        let changed = match &kv_op {
            KvOp::Put { value, .. } => {
                current.insert(key.clone(), value.clone());
                true
            }
            KvOp::Delete { .. } => {
                current.remove(&key);
                true
            }
            KvOp::Cas { expect, value, .. } => {
                let matches = match (expect, current.get(&key)) {
                    (None, None) => true,
                    (Some(e), Some(v)) => e == v,
                    _ => false,
                };
                if matches {
                    current.insert(key.clone(), value.clone());
                }
                matches
            }
            KvOp::Get { .. } => false, // a replicated (fallback) read
        };
        if changed {
            writes.entry(key.clone()).or_default().push(WriteAt {
                issued: op.issued,
                replied: op.replied,
                value_after: current.get(&key).cloned(),
            });
        }
    }

    for op in ops {
        if !op.read_only {
            continue;
        }
        let (Some(replied), Some(result)) = (op.replied, op.result.as_ref()) else {
            continue; // never answered: no value to check
        };
        let Ok(KvOp::Get { key }) = KvOp::decode(&op.payload) else {
            continue;
        };
        // Reply format: status byte, then the value when found.
        let observed: Option<&[u8]> = match result.first() {
            Some(1) => Some(&result[1..]),
            _ => None,
        };
        let timeline = writes.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        // The window of legal linearization points.
        let lower = timeline
            .iter()
            .enumerate()
            .filter(|(_, w)| w.replied.is_some_and(|r| r < op.issued))
            .map(|(i, _)| i)
            .next_back();
        let upper = timeline
            .iter()
            .position(|w| w.issued > replied)
            .unwrap_or(timeline.len());
        // Values observable in the window: the state at the lower bound
        // (initial absence when there is none), plus every write applied
        // strictly inside it.
        let mut candidates: Vec<Option<&[u8]>> = Vec::new();
        match lower {
            Some(i) => candidates.push(timeline[i].value_after.as_deref()),
            None => candidates.push(None),
        }
        let from = lower.map_or(0, |i| i + 1);
        for w in &timeline[from..upper] {
            candidates.push(w.value_after.as_deref());
        }
        if !candidates.contains(&observed) {
            return Err(format!(
                "read-value violation: {:?} (key {:?}, issued {}, replied {}) \
                 observed {:?}, but the legal window over the total order \
                 holds {:?}",
                op.cmd_id,
                key,
                op.issued,
                replied,
                observed.map(|v| v.to_vec()),
                candidates
                    .iter()
                    .map(|c| c.map(|v| v.to_vec()))
                    .collect::<Vec<_>>(),
            ));
        }
    }
    Ok(())
}

/// One completed cross-shard snapshot read, as recorded by the sharded
/// driver: the multi-key read's real-time interval plus what it observed
/// per key.
#[derive(Debug, Clone)]
pub struct SnapshotRecord {
    /// When the multi-key read was (last) issued.
    pub issued: Micros,
    /// When its final part's reply arrived.
    pub replied: Micros,
    /// The keys read.
    pub keys: Vec<Bytes>,
    /// Per-key observed value (`None` = key absent at the cut),
    /// parallel to `keys`.
    pub values: Vec<Option<Bytes>>,
}

/// Checks that every cross-shard snapshot read observed **one**
/// consistent cut: a single moment `T` must explain all of its per-key
/// values simultaneously — the torn-state detector for sharded runs.
///
/// The per-shard total orders say nothing about cross-shard cuts, so the
/// checker works from client-observed intervals alone, intersecting the
/// necessary conditions on `T` for a snapshot issued at `i` and replied
/// at `r`:
///
/// * `T ≥ i` — a write completed before the snapshot began must be
///   visible (freshness; the driver pins cuts at least a skew-covering
///   lead past issue, see `rsm-shard`);
/// * `T ≥ issued(W) − skew` for every observed write `W` — a value
///   cannot be visible before its write began;
/// * `T < replied(X) + skew` for every write `X` on an observed key that
///   real-time-follows the observed write (`issued(X) > replied(W)`),
///   and for *every* replied write on a key observed **absent** — a
///   write that committed at or before the cut would have been in it.
///
/// `skew_us` is the clock model's maximum offset: commit timestamps live
/// in the replicas' loosely-synchronized clock domain, so real-time
/// bounds derived from them are only tight to within one offset. Pass 0
/// for perfect clocks.
///
/// The write matching a key's observed value is found by payload; the
/// sharded driver writes per-`(client, seq)` unique values, so the match
/// is unambiguous. A value matching no recorded write is a violation; a
/// value matching several (duplicate values, e.g. hand-built histories)
/// drops that key's constraints rather than guessing. Only `Put` writes
/// participate — the sharded workload issues no `Cas`/`Delete`.
pub fn check_snapshot_reads(
    ops: &[OpRecord],
    snaps: &[SnapshotRecord],
    skew_us: Micros,
) -> Result<(), String> {
    struct PutAt {
        issued: Micros,
        replied: Option<Micros>,
        value: Bytes,
    }
    let mut puts: HashMap<Bytes, Vec<PutAt>> = HashMap::new();
    for op in ops {
        if op.read_only {
            continue;
        }
        let Ok(KvOp::Put { key, value }) = KvOp::decode(&op.payload) else {
            continue;
        };
        puts.entry(key).or_default().push(PutAt {
            issued: op.issued,
            replied: op.replied,
            value,
        });
    }

    for (s, snap) in snaps.iter().enumerate() {
        // lo is the latest lower bound on T, hi the earliest *strict*
        // upper bound; the snapshot is explainable iff lo < hi.
        let mut lo = snap.issued;
        let mut hi = Micros::MAX;
        for (key, observed) in snap.keys.iter().zip(&snap.values) {
            let timeline = puts.get(key).map(Vec::as_slice).unwrap_or(&[]);
            match observed {
                Some(v) => {
                    let mut matches = timeline.iter().filter(|w| w.value == *v);
                    let Some(w) = matches.next() else {
                        return Err(format!(
                            "snapshot violation: read {s} (issued {}, replied {}) \
                             observed a value on key {key:?} that no recorded \
                             write produced",
                            snap.issued, snap.replied
                        ));
                    };
                    if matches.next().is_some() {
                        continue; // ambiguous value: no constraint
                    }
                    lo = lo.max(w.issued.saturating_sub(skew_us));
                    if let Some(w_replied) = w.replied {
                        for x in timeline {
                            if x.issued > w_replied {
                                if let Some(x_replied) = x.replied {
                                    hi = hi.min(x_replied.saturating_add(skew_us));
                                }
                            }
                        }
                    }
                }
                None => {
                    for x in timeline {
                        if let Some(x_replied) = x.replied {
                            hi = hi.min(x_replied.saturating_add(skew_us));
                        }
                    }
                }
            }
        }
        if lo >= hi {
            return Err(format!(
                "snapshot violation: read {s} over keys {:?} (issued {}, \
                 replied {}) admits no single cut: every cut T needs \
                 T >= {lo} and T < {hi} — the observed values are torn \
                 or stale",
                snap.keys, snap.issued, snap.replied
            ));
        }
    }
    Ok(())
}

/// Runs every check and summarizes the outcome.
pub fn check_all(histories: &[Vec<CommitRecord>], ops: &[OpRecord]) -> CheckReport {
    let total = check_total_order(histories);
    let mono = check_monotonic(histories);
    let dup = check_no_duplicates(histories);
    let longest = histories
        .iter()
        .max_by_key(|h| h.len())
        .cloned()
        .unwrap_or_default();
    let rt = check_real_time(&longest, ops);
    let rv = check_read_values(&longest, ops);
    let violation = [&total, &mono, &dup, &rt, &rv]
        .iter()
        .find_map(|r| r.as_ref().err().cloned());
    CheckReport {
        total_order_ok: total.is_ok(),
        monotonic_ok: mono.is_ok(),
        real_time_ok: rt.is_ok(),
        no_duplicates_ok: dup.is_ok(),
        read_values_ok: rv.is_ok(),
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_core::id::{ClientId, ReplicaId};

    fn cid(seq: u64) -> CommandId {
        CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq)
    }

    fn rec(seq: u64, hint: u64, at: Micros) -> CommitRecord {
        CommitRecord {
            at,
            order_hint: hint,
            origin: ReplicaId::new(0),
            cmd_id: cid(seq),
        }
    }

    #[test]
    fn consistent_prefixes_pass() {
        let a = vec![rec(1, 1, 10), rec(2, 2, 20), rec(3, 3, 30)];
        let b = vec![rec(1, 1, 12), rec(2, 2, 25)];
        assert!(check_total_order(&[a, b]).is_ok());
    }

    #[test]
    fn diverging_histories_fail() {
        // Both replicas executed 2 and 3, in opposite orders: no single
        // total order explains that.
        let a = vec![rec(1, 1, 10), rec(2, 2, 20), rec(3, 3, 30)];
        let b = vec![rec(1, 1, 12), rec(3, 2, 25), rec(2, 3, 35)];
        let err = check_total_order(&[a, b]).unwrap_err();
        assert!(err.contains("common command 1"), "{err}");
    }

    #[test]
    fn snapshot_gapped_history_aligns() {
        // Replica b recovered from a checkpoint: its history starts at
        // the second command. Consistent overlap must pass.
        let a = vec![rec(1, 1, 10), rec(2, 2, 20), rec(3, 3, 30)];
        let b = vec![rec(2, 2, 25), rec(3, 3, 35)];
        assert!(check_total_order(&[a.clone(), b]).is_ok());
        // Replica c rejoined through a state transfer that installed a
        // peer snapshot covering command 2: a MID-stream hole, equally
        // fine (the snapshot recorded no per-command entries).
        let c = vec![rec(1, 1, 12), rec(3, 3, 35), rec(4, 4, 45)];
        assert!(check_total_order(&[a.clone(), c]).is_ok());
        // But reordering shared commands must still fail.
        let d = vec![rec(3, 1, 25), rec(1, 3, 35)];
        assert!(check_total_order(&[a, d]).is_err());
    }

    #[test]
    fn monotonic_hints_checked() {
        let good = vec![rec(1, 5, 10), rec(2, 9, 20)];
        assert!(check_monotonic(&[good]).is_ok());
        let bad = vec![rec(1, 9, 10), rec(2, 5, 20)];
        assert!(check_monotonic(&[bad]).is_err());
    }

    #[test]
    fn duplicate_detection() {
        let h = vec![rec(1, 1, 10), rec(1, 2, 20)];
        assert!(check_no_duplicates(&[h]).is_err());
    }

    #[test]
    fn real_time_ordering_enforced() {
        // A replied at t=100; B issued at t=200 but executed earlier.
        let order = vec![rec(2, 1, 5), rec(1, 2, 10)]; // B before A in order
        let ops = vec![
            OpRecord::interval(cid(1), 0, Some(100)),
            OpRecord::interval(cid(2), 200, Some(300)),
        ];
        let err = check_real_time(&order, &ops).unwrap_err();
        assert!(err.contains("real-time violation"), "{err}");
    }

    #[test]
    fn concurrent_ops_may_order_either_way() {
        // Overlapping intervals: both orders are linearizable.
        let order = vec![rec(2, 1, 5), rec(1, 2, 10)];
        let ops = vec![
            OpRecord::interval(cid(1), 0, Some(300)),
            OpRecord::interval(cid(2), 100, Some(200)),
        ];
        assert!(check_real_time(&order, &ops).is_ok());
    }

    #[test]
    fn unreplied_ops_are_tolerated() {
        let order = vec![rec(1, 1, 5)];
        let ops = vec![
            OpRecord::interval(cid(1), 0, None),
            OpRecord::interval(cid(9), 0, None), // never committed
        ];
        assert!(check_real_time(&order, &ops).is_ok());
    }

    #[test]
    fn check_all_aggregates() {
        let a = vec![rec(1, 1, 10), rec(2, 2, 20)];
        let report = check_all(&[a], &[]);
        assert!(report.all_ok());
        assert!(report.violation.is_none());
    }

    // ---------------- read-value checker ----------------

    /// A completed Put op record.
    fn put(seq: u64, key: &str, value: &str, issued: Micros, replied: Micros) -> OpRecord {
        OpRecord {
            cmd_id: cid(seq),
            issued,
            replied: Some(replied),
            payload: KvOp::put(key.to_string(), value.to_string()).encode(),
            result: Some(Bytes::from_static(&[1])),
            read_only: false,
        }
    }

    /// A locally served Get that observed `value` (None = not found).
    fn get(seq: u64, key: &str, value: Option<&str>, issued: Micros, replied: Micros) -> OpRecord {
        let result = match value {
            Some(v) => {
                let mut r = vec![1u8];
                r.extend_from_slice(v.as_bytes());
                Bytes::from(r)
            }
            None => Bytes::from_static(&[0]),
        };
        OpRecord {
            cmd_id: cid(seq),
            issued,
            replied: Some(replied),
            payload: KvOp::get(key.to_string()).encode(),
            result: Some(result),
            read_only: true,
        }
    }

    #[test]
    fn read_sees_the_latest_completed_write() {
        // w1 (k=a) replied at 100; w2 (k=b) is unrelated. A read of k
        // issued at 150 must observe "a" (there is nothing newer).
        let order = vec![rec(1, 1, 10), rec(2, 2, 20)];
        let ops = vec![
            put(1, "k", "a", 0, 100),
            put(2, "other", "x", 0, 100),
            get(3, "k", Some("a"), 150, 160),
        ];
        assert!(check_read_values(&order, &ops).is_ok());
        // Observing absence instead is a violation: w1 completed first.
        let stale = vec![
            put(1, "k", "a", 0, 100),
            put(2, "other", "x", 0, 100),
            get(3, "k", None, 150, 160),
        ];
        let err = check_read_values(&order, &stale).unwrap_err();
        assert!(err.contains("read-value violation"), "{err}");
    }

    #[test]
    fn read_may_not_see_a_superseded_value() {
        // Two writes to k, both completed before the read was issued:
        // only the later one (in the total order) is observable.
        let order = vec![rec(1, 1, 10), rec(2, 2, 20)];
        let ops = |seen| {
            vec![
                put(1, "k", "old", 0, 50),
                put(2, "k", "new", 60, 100),
                get(3, "k", Some(seen), 150, 160),
            ]
        };
        assert!(check_read_values(&order, &ops("new")).is_ok());
        assert!(check_read_values(&order, &ops("old")).is_err());
    }

    #[test]
    fn concurrent_write_window_admits_either_value() {
        // The write overlaps the read (issued before the read replied,
        // replied after the read was issued): both values are legal.
        let order = vec![rec(1, 1, 10), rec(2, 2, 20)];
        let ops = |seen: Option<&str>| {
            vec![
                put(1, "k", "a", 0, 50),
                put(2, "k", "b", 140, 300),
                get(3, "k", seen, 150, 160),
            ]
        };
        assert!(check_read_values(&order, &ops(Some("a"))).is_ok());
        assert!(check_read_values(&order, &ops(Some("b"))).is_ok());
        assert!(check_read_values(&order, &ops(None)).is_err());
    }

    #[test]
    fn read_must_not_see_a_future_write() {
        // The write was issued strictly after the read replied: its
        // value must be invisible.
        let order = vec![rec(1, 1, 10), rec(2, 2, 20)];
        let ops = vec![
            put(1, "k", "a", 0, 50),
            put(2, "k", "future", 300, 400),
            get(3, "k", Some("future"), 150, 160),
        ];
        assert!(check_read_values(&order, &ops).is_err());
    }

    #[test]
    fn unpositioned_writes_relax_but_never_break_the_check() {
        // w2 never committed (not in the order): it cannot constrain
        // the window, and a read seeing w1's value stays legal.
        let order = vec![rec(1, 1, 10)];
        let ops = vec![
            put(1, "k", "a", 0, 50),
            put(2, "k", "lost", 60, 100),
            get(3, "k", Some("a"), 150, 160),
        ];
        assert!(check_read_values(&order, &ops).is_ok());
    }

    #[test]
    fn initial_absence_is_observable_before_any_write_completes() {
        let order = vec![rec(1, 1, 10)];
        let ops = vec![
            put(1, "k", "a", 100, 300), // concurrent with the read
            get(2, "k", None, 150, 160),
        ];
        assert!(check_read_values(&order, &ops).is_ok());
    }

    // ---------------- cross-shard snapshot checker ----------------

    fn snap(issued: Micros, replied: Micros, kv: &[(&str, Option<&str>)]) -> SnapshotRecord {
        SnapshotRecord {
            issued,
            replied,
            keys: kv
                .iter()
                .map(|(k, _)| Bytes::from(k.as_bytes().to_vec()))
                .collect(),
            values: kv
                .iter()
                .map(|(_, v)| v.map(|v| Bytes::from(v.as_bytes().to_vec())))
                .collect(),
        }
    }

    /// Two keys, each written twice ("transactionally": both old values,
    /// then both new values, the second round completing before `t`).
    fn two_key_history() -> Vec<OpRecord> {
        vec![
            put(1, "a", "a1", 0, 50),
            put(2, "b", "b1", 0, 50),
            put(3, "a", "a2", 60, 100),
            put(4, "b", "b2", 60, 100),
        ]
    }

    #[test]
    fn torn_snapshot_is_caught() {
        // New a but old b, issued after both second writes completed:
        // no single cut explains it (needs T >= 150 and T < 100).
        let torn = snap(150, 200, &[("a", Some("a2")), ("b", Some("b1"))]);
        let err = check_snapshot_reads(&two_key_history(), &[torn], 0).unwrap_err();
        assert!(err.contains("snapshot violation"), "{err}");
    }

    #[test]
    fn consistent_cuts_pass() {
        let fresh = snap(150, 200, &[("a", Some("a2")), ("b", Some("b2"))]);
        assert!(check_snapshot_reads(&two_key_history(), &[fresh], 0).is_ok());
        // A snapshot concurrent with the second round may see either
        // round, as long as it is not torn.
        let early = snap(55, 70, &[("a", Some("a1")), ("b", Some("b1"))]);
        assert!(check_snapshot_reads(&two_key_history(), &[early], 0).is_ok());
    }

    #[test]
    fn stale_snapshot_is_caught() {
        // Both writes to "a" completed before the snapshot began, yet it
        // observed the first: freshness violation (T >= issue vs.
        // T < replied(a2-writer) = 100).
        let stale = snap(150, 200, &[("a", Some("a1"))]);
        let err = check_snapshot_reads(&two_key_history(), &[stale], 0).unwrap_err();
        assert!(err.contains("snapshot violation"), "{err}");
    }

    #[test]
    fn observed_absence_of_a_written_key_is_caught() {
        let ops = vec![put(1, "a", "a1", 0, 50)];
        let absent = snap(150, 200, &[("a", None)]);
        assert!(check_snapshot_reads(&ops, &[absent], 0).is_err());
        // Absence of a never-written key is fine.
        let other = snap(150, 200, &[("zzz", None)]);
        assert!(check_snapshot_reads(&ops, &[other], 0).is_ok());
    }

    #[test]
    fn concurrent_write_admits_either_value() {
        let ops = vec![
            put(1, "a", "a1", 0, 50),
            put(2, "a", "a2", 160, 300), // overlaps the snapshot
        ];
        let old = snap(150, 200, &[("a", Some("a1"))]);
        let new = snap(150, 200, &[("a", Some("a2"))]);
        assert!(check_snapshot_reads(&ops, &[old], 0).is_ok());
        assert!(check_snapshot_reads(&ops, &[new], 0).is_ok());
    }

    #[test]
    fn unknown_value_is_a_violation() {
        let ops = vec![put(1, "a", "a1", 0, 50)];
        let bogus = snap(150, 200, &[("a", Some("made-up"))]);
        let err = check_snapshot_reads(&ops, &[bogus], 0).unwrap_err();
        assert!(err.contains("no recorded write"), "{err}");
    }

    #[test]
    fn skew_slack_relaxes_the_real_time_bounds() {
        // Torn by 50 µs with perfect clocks; a ±60 µs skew budget makes
        // the cut admissible (bounds are only skew-tight).
        let ops = vec![put(1, "a", "a1", 0, 50), put(2, "a", "a2", 60, 100)];
        let marginal = snap(140, 200, &[("a", Some("a1"))]);
        assert!(check_snapshot_reads(&ops, std::slice::from_ref(&marginal), 0).is_err());
        assert!(check_snapshot_reads(&ops, &[marginal], 60).is_ok());
    }
}
