//! The paper's client workload model (Section VI-B).
//!
//! "There are 40 clients issuing requests of 64 B to a replica at each
//! data center. Clients send requests in a closed loop with a think time
//! selected uniformly randomly between 0 and 80 ms. ... clients send
//! commands to replicas of the key-value store to update the value of a
//! randomly selected key."
//!
//! * **Balanced** workloads put clients at every site; **imbalanced**
//!   workloads put them at a single site (Section VI-B2).
//! * **Saturating** mode (zero think time, many clients) drives the
//!   throughput experiments of Figure 8.

use std::collections::HashMap;
use std::marker::PhantomData;

use rand::Rng;

use kvstore::KvOp;
use rsm_core::command::{Command, CommandId, Committed, Reply};
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::protocol::Protocol;
use rsm_core::time::Micros;
use simnet::sim::{Application, SimApi};

use crate::lin::OpRecord;
use crate::stats::LatencyStats;

/// A scripted fault, applied at an absolute virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Crash a replica (volatile state lost, stable log kept).
    Crash(ReplicaId),
    /// Restart a crashed replica (protocol recovery from its log).
    Recover(ReplicaId),
    /// Cut the link between two replicas (messages park until heal).
    Partition(ReplicaId, ReplicaId),
    /// Heal a previously cut link.
    Heal(ReplicaId, ReplicaId),
    /// Step a replica's physical clock by the given microseconds
    /// (positive or negative).
    ClockJump(ReplicaId, i64),
    /// Freeze a replica's physical clock for the given duration — a VM
    /// pause; the clock resumes permanently behind by the freeze.
    ClockFreeze(ReplicaId, Micros),
    /// Add the given drift (parts per million, positive = faster) to a
    /// replica's clock for the given duration of virtual time; the offset
    /// accumulated during the burst persists.
    ClockDrift(ReplicaId, i64, Micros),
    /// Set an extra fixed one-way delay on a link (both directions);
    /// zero clears it. Per-link FIFO is preserved — messages reorder only
    /// relative to other links.
    LinkDelay(ReplicaId, ReplicaId, Micros),
    /// Set extra uniform per-message jitter on a link (both directions);
    /// zero clears it. Per-link FIFO is preserved regardless.
    LinkJitter(ReplicaId, ReplicaId, Micros),
}

/// Event keys at or above this value are fault-plan entries rather than
/// client indices.
const FAULT_KEY_BASE: u64 = 1 << 32;

/// Event keys at or above this value are client retry checks; they encode
/// the client index (bits 24..48) and the command sequence number being
/// watched (bits 0..24).
const RETRY_KEY_BASE: u64 = 1 << 48;

/// Parameters of the client population.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of replicas in the deployment.
    pub n_sites: usize,
    /// Sites that have clients (all = balanced, one = imbalanced).
    pub active_sites: Vec<ReplicaId>,
    /// Closed-loop clients per active site (the paper uses 40).
    pub clients_per_site: usize,
    /// Maximum uniform think time (the paper uses 80 ms); zero saturates.
    pub think_max_us: Micros,
    /// Value size of the update commands (the paper uses 64 B requests).
    pub value_bytes: usize,
    /// Number of distinct keys updated at random.
    pub key_space: u64,
    /// Fraction of operations issued as **linearizable local reads**
    /// (`Get` commands with [`Command::read_only`] set, routed down the
    /// protocol's read path): `0.0` (the default) reproduces the
    /// paper's pure-update workload; `0.9` is the read-heavy production
    /// shape.
    pub read_fraction: f64,
    /// Replies at or after this time are recorded into the statistics.
    pub warmup_until: Micros,
    /// Clients stop issuing and recording at this time.
    pub measure_until: Micros,
    /// Whether to keep per-operation records for the linearizability
    /// checker (disable for long throughput runs).
    pub record_ops: bool,
    /// Scripted faults, applied at absolute virtual times.
    pub faults: Vec<(Micros, Fault)>,
    /// Client-side retry: re-issue the SAME command (identical id and
    /// payload) when no reply arrives within this long. `None` disables
    /// retries. Needed under reconfiguration, which drops in-flight
    /// commands that did not reach a majority (their clients must
    /// retry, like any RSM client). Reusing the id is what makes the
    /// retry safe when only the *reply* was lost: the replicas' session
    /// tables (`rsm_core::session`) recognise the already-applied seq
    /// and answer from the cached reply instead of applying twice.
    pub retry_timeout_us: Option<Micros>,
    /// Fraction of **writes** issued as compare-and-swap chains: each
    /// client owns a private key (outside the shared `key_space`) and
    /// CASes it from the last value it successfully installed to a fresh
    /// one. Since nobody else writes that key, every such CAS must
    /// succeed — a failed one means the chain was broken by a lost,
    /// duplicated, or reordered application, which is exactly what the
    /// chaos oracles want to catch ([`WorkloadApp::cas_failures`]).
    pub cas_fraction: f64,
}

#[derive(Debug)]
struct ClientState {
    id: ClientId,
    site: ReplicaId,
    seq: u64,
    issued_at: Option<Micros>,
    /// Whether the in-flight command is a local read (classifies the
    /// reply into the read/write latency split).
    reading: bool,
    /// The in-flight command, kept whole so a retry re-submits the
    /// identical (id, payload) pair rather than minting a fresh one.
    pending: Option<Command>,
    /// The last value this client successfully installed at its private
    /// CAS key (`None` = chain not started, the key must be absent).
    cas_value: Option<u64>,
    /// The chain value the in-flight CAS proposes, if the in-flight
    /// command is one.
    pending_cas: Option<u64>,
}

/// The closed-loop client application driving a simulation.
///
/// Implements [`Application`] for any protocol; the per-site latency
/// statistics and the operation log come out at the end of the run.
pub struct WorkloadApp<P> {
    cfg: WorkloadConfig,
    clients: Vec<ClientState>,
    client_index: HashMap<ClientId, usize>,
    site_stats: Vec<LatencyStats>,
    /// Aggregate latency of local reads across every site.
    read_stats: LatencyStats,
    /// Aggregate latency of replicated writes across every site.
    write_stats: LatencyStats,
    ops: Vec<OpRecord>,
    op_index: HashMap<CommandId, usize>,
    /// Commands committed at the observer replica inside the measurement
    /// window (throughput metric — each command counted once).
    observer_commits: u64,
    /// CAS replies observed (success or failure).
    cas_count: usize,
    /// CAS operations on privately-owned keys that came back failed —
    /// always a correctness violation (see `WorkloadConfig::cas_fraction`).
    cas_failures: usize,
    observer: ReplicaId,
    _protocol: PhantomData<fn() -> P>,
}

impl<P> WorkloadApp<P> {
    /// Creates the client population described by `cfg`.
    pub fn new(cfg: WorkloadConfig) -> Self {
        let mut clients = Vec::new();
        let mut client_index = HashMap::new();
        for &site in &cfg.active_sites {
            for k in 0..cfg.clients_per_site {
                let id = ClientId::new(site, k as u32);
                client_index.insert(id, clients.len());
                clients.push(ClientState {
                    id,
                    site,
                    seq: 0,
                    issued_at: None,
                    reading: false,
                    pending: None,
                    cas_value: None,
                    pending_cas: None,
                });
            }
        }
        WorkloadApp {
            site_stats: vec![LatencyStats::new(); cfg.n_sites],
            read_stats: LatencyStats::new(),
            write_stats: LatencyStats::new(),
            clients,
            client_index,
            ops: Vec::new(),
            op_index: HashMap::new(),
            observer_commits: 0,
            cas_count: 0,
            cas_failures: 0,
            observer: ReplicaId::new(0),
            cfg,
            _protocol: PhantomData,
        }
    }

    /// Per-site latency statistics (indexed by replica index).
    pub fn site_stats(&self) -> &[LatencyStats] {
        &self.site_stats
    }

    /// Mutable access (for percentile queries, which sort lazily).
    pub fn site_stats_mut(&mut self) -> &mut [LatencyStats] {
        &mut self.site_stats
    }

    /// The recorded operation intervals for the linearizability checker.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Aggregate latency of local reads across every site.
    pub fn read_stats(&self) -> &LatencyStats {
        &self.read_stats
    }

    /// Mutable access (percentile queries sort lazily).
    pub fn read_stats_mut(&mut self) -> &mut LatencyStats {
        &mut self.read_stats
    }

    /// Aggregate latency of replicated writes across every site.
    pub fn write_stats(&self) -> &LatencyStats {
        &self.write_stats
    }

    /// Mutable access (percentile queries sort lazily).
    pub fn write_stats_mut(&mut self) -> &mut LatencyStats {
        &mut self.write_stats
    }

    /// Commands committed at the observer replica within the window.
    pub fn observer_commits(&self) -> u64 {
        self.observer_commits
    }

    /// CAS replies observed over the whole run.
    pub fn cas_count(&self) -> usize {
        self.cas_count
    }

    /// Failed CASes on privately-owned keys — each one a broken chain,
    /// i.e. a correctness violation (see `WorkloadConfig::cas_fraction`).
    pub fn cas_failures(&self) -> usize {
        self.cas_failures
    }

    fn issue(&mut self, idx: usize, api: &mut SimApi<'_, P>)
    where
        P: Protocol,
    {
        let now = api.now();
        if now >= self.cfg.measure_until {
            return; // experiment over: stop the closed loop
        }
        let key = api.rng().gen_range(0..self.cfg.key_space);
        let is_read =
            self.cfg.read_fraction > 0.0 && api.rng().gen::<f64>() < self.cfg.read_fraction;
        let is_cas = !is_read
            && self.cfg.cas_fraction > 0.0
            && api.rng().gen::<f64>() < self.cfg.cas_fraction;
        let client = &mut self.clients[idx];
        client.seq += 1;
        let cmd_id = CommandId::new(client.id, client.seq);
        client.issued_at = Some(now);
        client.reading = is_read;
        // A fixed-size update to a random key, like the paper's
        // workload — or, in a read mix, a linearizable local read of
        // one — or, in a CAS mix, the next link of the client's private
        // CAS chain (owned key above the shared key space, so only this
        // client ever writes it and the CAS must succeed).
        let op = if is_read {
            KvOp::get(key.to_be_bytes().to_vec())
        } else if is_cas {
            let own_key = self.cfg.key_space + idx as u64;
            client.pending_cas = Some(client.seq);
            KvOp::cas(
                own_key.to_be_bytes().to_vec(),
                client.cas_value.map(|v| v.to_be_bytes().to_vec().into()),
                client.seq.to_be_bytes().to_vec(),
            )
        } else {
            KvOp::put(
                key.to_be_bytes().to_vec(),
                vec![(client.seq % 251) as u8; self.cfg.value_bytes],
            )
        };
        let payload = op.encode();
        let site = client.site;
        let seq = client.seq;
        if self.cfg.record_ops {
            self.op_index.insert(cmd_id, self.ops.len());
            self.ops.push(OpRecord {
                cmd_id,
                issued: now,
                replied: None,
                payload: payload.clone(),
                result: None,
                read_only: is_read,
            });
        }
        let cmd = if is_read {
            Command::read(cmd_id, payload)
        } else {
            Command::new(cmd_id, payload)
        };
        self.clients[idx].pending = Some(cmd.clone());
        if is_read {
            // Client-side read routing: send the read straight to the
            // site's advertised lease holder (Paxos) instead of paying a
            // quorum probe from the local follower. Symmetric-read
            // protocols advertise no hint and the read stays local. A
            // cross-site submission is charged the one-way WAN hop.
            let target = api.read_target(site);
            api.submit_from(site, target, cmd);
        } else {
            api.submit(site, cmd);
        }
        if let Some(timeout) = self.cfg.retry_timeout_us {
            let key = RETRY_KEY_BASE | ((idx as u64) << 24) | (seq & 0xFF_FFFF);
            api.schedule(timeout, key);
        }
    }
}

impl<P: Protocol> Application<P> for WorkloadApp<P> {
    fn on_init(&mut self, api: &mut SimApi<'_, P>) {
        // Stagger initial requests over one think-time interval.
        for idx in 0..self.clients.len() {
            let delay = if self.cfg.think_max_us == 0 {
                api.rng().gen_range(0..100)
            } else {
                api.rng().gen_range(0..=self.cfg.think_max_us)
            };
            api.schedule(delay, idx as u64);
        }
        for (i, &(at, _)) in self.cfg.faults.iter().enumerate() {
            api.schedule(at, FAULT_KEY_BASE + i as u64);
        }
    }

    fn on_event(&mut self, key: u64, api: &mut SimApi<'_, P>) {
        if key >= RETRY_KEY_BASE {
            let idx = ((key >> 24) & 0xFF_FFFF) as usize;
            let seq = key & 0xFF_FFFF;
            let stuck =
                self.clients[idx].issued_at.is_some() && self.clients[idx].seq & 0xFF_FFFF == seq;
            if stuck {
                // The command was lost (e.g. flushed by a reconfiguration
                // it did not survive) — or only its reply was. Re-submit
                // the SAME command: if it did commit, the session tables
                // serve the cached reply instead of applying it again.
                let client = &self.clients[idx];
                let cmd = client
                    .pending
                    .clone()
                    .expect("a stuck client holds its pending command");
                let site = client.site;
                if cmd.read_only {
                    let target = api.read_target(site);
                    api.submit_from(site, target, cmd);
                } else {
                    api.submit(site, cmd);
                }
                if let Some(timeout) = self.cfg.retry_timeout_us {
                    api.schedule(timeout, key);
                }
            }
            return;
        }
        if key >= FAULT_KEY_BASE {
            let (_, fault) = self.cfg.faults[(key - FAULT_KEY_BASE) as usize];
            match fault {
                Fault::Crash(r) => api.crash(r, 0),
                Fault::Recover(r) => api.recover(r, 0),
                Fault::Partition(a, b) => api.partition(a, b, 0),
                Fault::Heal(a, b) => api.heal(a, b, 0),
                Fault::ClockJump(r, delta) => api.clock_jump(r, delta, 0),
                Fault::ClockFreeze(r, dur) => api.clock_freeze(r, dur, 0),
                Fault::ClockDrift(r, ppm, dur) => api.clock_drift_burst(r, ppm as f64, dur, 0),
                Fault::LinkDelay(a, b, extra) => api.link_delay(a, b, extra, 0),
                Fault::LinkJitter(a, b, jitter) => api.link_jitter(a, b, jitter, 0),
            }
            return;
        }
        self.issue(key as usize, api);
    }

    fn on_reply(&mut self, client: ClientId, reply: Reply, api: &mut SimApi<'_, P>) {
        let now = api.now();
        let Some(&idx) = self.client_index.get(&client) else {
            return;
        };
        if reply.id.seq != self.clients[idx].seq {
            return; // duplicate reply for an earlier command's retry
        }
        self.clients[idx].pending = None;
        let Some(issued) = self.clients[idx].issued_at.take() else {
            // A same-id retry can draw two replies (the commit's own and
            // the dedup cache's): the first already advanced the loop,
            // so the second must not schedule another command.
            return;
        };
        if self.cfg.record_ops {
            if let Some(&op_idx) = self.op_index.get(&reply.id) {
                self.ops[op_idx].replied = Some(now);
                self.ops[op_idx].result = Some(reply.result.clone());
            }
        }
        if let Some(proposed) = self.clients[idx].pending_cas.take() {
            // Settle the private CAS chain: on success the new value is
            // the chain head; a failure is unconditionally a violation
            // (nobody else writes this key), surfaced via cas_failures.
            self.cas_count += 1;
            if reply.result.first() == Some(&1) {
                self.clients[idx].cas_value = Some(proposed);
            } else {
                self.cas_failures += 1;
            }
        }
        if issued >= self.cfg.warmup_until && now <= self.cfg.measure_until {
            let site = self.clients[idx].site;
            self.site_stats[site.index()].record(now - issued);
            if self.clients[idx].reading {
                self.read_stats.record(now - issued);
            } else {
                self.write_stats.record(now - issued);
            }
        }
        // Think, then issue the next command.
        let think = if self.cfg.think_max_us == 0 {
            0
        } else {
            api.rng().gen_range(0..=self.cfg.think_max_us)
        };
        api.schedule(think, idx as u64);
    }

    fn on_commit(&mut self, replica: ReplicaId, _committed: &Committed, at: Micros) {
        if replica == self.observer && at >= self.cfg.warmup_until && at <= self.cfg.measure_until {
            self.observer_commits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clock_rsm::{ClockRsm, ClockRsmConfig};
    use kvstore::KvStore;
    use rsm_core::config::Membership;
    use rsm_core::matrix::LatencyMatrix;
    use simnet::{SimConfig, Simulation};

    fn workload(n: usize, clients: usize, until: Micros) -> WorkloadConfig {
        WorkloadConfig {
            n_sites: n,
            active_sites: (0..n as u16).map(ReplicaId::new).collect(),
            clients_per_site: clients,
            think_max_us: 20_000,
            value_bytes: 64,
            key_space: 1_000,
            read_fraction: 0.0,
            warmup_until: 50_000,
            measure_until: until,
            record_ops: true,
            faults: Vec::new(),
            retry_timeout_us: None,
            cas_fraction: 0.0,
        }
    }

    #[test]
    fn closed_loop_clients_drive_commits_end_to_end() {
        let n = 3;
        let cfg = SimConfig::new(LatencyMatrix::uniform(n, 5_000)).seed(1);
        let app: WorkloadApp<ClockRsm> = WorkloadApp::new(workload(n, 2, 800_000));
        let mut sim = Simulation::new(
            cfg,
            move |id| ClockRsm::new(id, Membership::uniform(n as u16), ClockRsmConfig::default()),
            || Box::new(KvStore::new()),
            app,
        );
        sim.run_until(1_000_000);
        let app = sim.app();
        // Every site produced measured samples.
        for s in 0..n {
            assert!(
                app.site_stats()[s].count() > 5,
                "site {s} produced {} samples",
                app.site_stats()[s].count()
            );
        }
        // Replies arrived for (almost) all recorded ops.
        let replied = app.ops().iter().filter(|o| o.replied.is_some()).count();
        assert!(replied > app.ops().len() / 2);
        // All replicas executed the same number of commands eventually.
        let c0 = sim.commit_count(ReplicaId::new(0));
        assert!(c0 > 0);
    }

    #[test]
    fn imbalanced_workload_touches_single_site() {
        let n = 3;
        let mut w = workload(n, 2, 500_000);
        w.active_sites = vec![ReplicaId::new(1)];
        let cfg = SimConfig::new(LatencyMatrix::uniform(n, 5_000)).seed(2);
        let app: WorkloadApp<ClockRsm> = WorkloadApp::new(w);
        let mut sim = Simulation::new(
            cfg,
            move |id| ClockRsm::new(id, Membership::uniform(n as u16), ClockRsmConfig::default()),
            || Box::new(KvStore::new()),
            app,
        );
        sim.run_until(700_000);
        let app = sim.app();
        assert!(app.site_stats()[1].count() > 0);
        assert_eq!(app.site_stats()[0].count(), 0);
        assert_eq!(app.site_stats()[2].count(), 0);
    }
}
