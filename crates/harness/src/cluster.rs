//! Protocol selection for experiments.

use clock_rsm::ClockRsmConfig;
use mencius::MAX_OWN_HISTORY;
use rsm_core::id::ReplicaId;
use rsm_core::lease::LeaseConfig;

/// Which replication protocol an experiment runs, with its parameters.
///
/// # Examples
///
/// ```
/// use harness::ProtocolChoice;
/// let p = ProtocolChoice::paxos_bcast(1);
/// assert_eq!(p.name(), "Paxos-bcast");
/// ```
#[derive(Debug, Clone)]
pub enum ProtocolChoice {
    /// Clock-RSM with the given replica configuration.
    ClockRsm {
        /// Replica tuning (Δ, failure detection, retries).
        cfg: ClockRsmConfig,
    },
    /// Plain Multi-Paxos with a designated leader.
    Paxos {
        /// The initial leader.
        leader: ReplicaId,
        /// Lease-based fail-over timing ([`LeaseConfig::DISABLED`] =
        /// the paper's fixed-leader setup).
        failover: LeaseConfig,
    },
    /// Paxos with broadcast phase 2b.
    PaxosBcast {
        /// The initial leader.
        leader: ReplicaId,
        /// Lease-based fail-over timing ([`LeaseConfig::DISABLED`] =
        /// the paper's fixed-leader setup).
        failover: LeaseConfig,
    },
    /// Mencius with broadcast acknowledgements.
    MenciusBcast {
        /// Own-proposal retention cap for gap retransmission (defaults
        /// to [`mencius::MAX_OWN_HISTORY`]); the long-outage scenarios
        /// shrink it so a short simulated outage exercises the
        /// retention-exceeded checkpoint-transfer path.
        history_cap: usize,
    },
}

impl ProtocolChoice {
    /// Clock-RSM with the paper's defaults (Δ = 5 ms, no failure
    /// detection).
    pub fn clock_rsm() -> Self {
        ProtocolChoice::ClockRsm {
            cfg: ClockRsmConfig::default(),
        }
    }

    /// Clock-RSM with a custom configuration.
    pub fn clock_rsm_with(cfg: ClockRsmConfig) -> Self {
        ProtocolChoice::ClockRsm { cfg }
    }

    /// Plain Paxos with a fixed (never failing over) leader at replica
    /// index `leader`.
    pub fn paxos(leader: u16) -> Self {
        ProtocolChoice::Paxos {
            leader: ReplicaId::new(leader),
            failover: LeaseConfig::DISABLED,
        }
    }

    /// Paxos-bcast with a fixed leader at replica index `leader`.
    pub fn paxos_bcast(leader: u16) -> Self {
        ProtocolChoice::PaxosBcast {
            leader: ReplicaId::new(leader),
            failover: LeaseConfig::DISABLED,
        }
    }

    /// Plain Paxos with lease-based fail-over: the initial leader at
    /// `leader`, elections per `failover` when it goes silent.
    pub fn paxos_failover(leader: u16, failover: LeaseConfig) -> Self {
        ProtocolChoice::Paxos {
            leader: ReplicaId::new(leader),
            failover,
        }
    }

    /// Paxos-bcast with lease-based fail-over.
    pub fn paxos_bcast_failover(leader: u16, failover: LeaseConfig) -> Self {
        ProtocolChoice::PaxosBcast {
            leader: ReplicaId::new(leader),
            failover,
        }
    }

    /// Mencius-bcast.
    pub fn mencius() -> Self {
        ProtocolChoice::MenciusBcast {
            history_cap: MAX_OWN_HISTORY,
        }
    }

    /// Mencius-bcast with a custom own-proposal retention cap.
    pub fn mencius_with_history_cap(history_cap: usize) -> Self {
        ProtocolChoice::MenciusBcast { history_cap }
    }

    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolChoice::ClockRsm { .. } => "Clock-RSM",
            ProtocolChoice::Paxos { .. } => "Paxos",
            ProtocolChoice::PaxosBcast { .. } => "Paxos-bcast",
            ProtocolChoice::MenciusBcast { .. } => "Mencius-bcast",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(ProtocolChoice::clock_rsm().name(), "Clock-RSM");
        assert_eq!(ProtocolChoice::paxos(0).name(), "Paxos");
        assert_eq!(ProtocolChoice::paxos_bcast(0).name(), "Paxos-bcast");
        assert_eq!(ProtocolChoice::mencius().name(), "Mencius-bcast");
    }

    #[test]
    fn leaders_are_recorded() {
        match ProtocolChoice::paxos_bcast(3) {
            ProtocolChoice::PaxosBcast { leader, failover } => {
                assert_eq!(leader, ReplicaId::new(3));
                assert!(!failover.enabled(), "fixed leader by default");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn failover_constructors_carry_the_lease() {
        let lease = LeaseConfig::after(400_000);
        match ProtocolChoice::paxos_failover(1, lease) {
            ProtocolChoice::Paxos { leader, failover } => {
                assert_eq!(leader, ReplicaId::new(1));
                assert_eq!(failover, lease);
            }
            _ => unreachable!(),
        }
        assert_eq!(
            ProtocolChoice::paxos_bcast_failover(0, lease).name(),
            "Paxos-bcast"
        );
    }
}
