//! Sharded experiments: `N` independent replication groups advanced in
//! lockstep, with the closed-loop client population living in an
//! external router.
//!
//! Each shard is a complete single-group deployment — its own protocol
//! instances, batching controllers, checkpointing, and read subsystem —
//! running in its own [`Simulation`]. The router owns the clients: it
//! picks keys, maps them to shards through a [`ShardMap`], submits
//! commands into the owning shard's simulation, and collects replies.
//! The simulations share one virtual clock because the router advances
//! them in small lockstep quanta; the only approximation is that the
//! router *observes* replies at quantum boundaries — reply timestamps
//! themselves are exact in-simulation times, so latency statistics carry
//! no quantization error.
//!
//! Multi-key reads follow the `rsm-shard` design: under Clock-RSM they
//! are **timestamp-consistent snapshot reads** — one cut `t` slightly in
//! the future, one pinned `Get` per key parked on each touched shard's
//! read queue until the shard's stable timestamp passes `t`. Under Paxos
//! and Mencius the identical commands degrade to the honest fallback
//! (per-shard linearizable reads; the pin is ignored), so the
//! cross-shard cut checker only runs for Clock-RSM.

use std::collections::HashMap;

use bytes::Bytes;
use clock_rsm::ClockRsm;
use kvstore::{KvOp, KvStore};
use mencius::MenciusBcast;
use paxos::{MultiPaxos, PaxosVariant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsm_core::command::{Command, CommandId, Committed, Reply};
use rsm_core::config::Membership;
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::protocol::Protocol;
use rsm_core::time::{Micros, MILLIS};
use rsm_shard::{HashShardMap, RangeShardMap, ShardAccounting, ShardMap, SnapshotCoordinator};
use simnet::sim::{Application, SimApi};
use simnet::{SimConfig, Simulation};

use crate::cluster::ProtocolChoice;
use crate::experiment::{ExperimentConfig, ExperimentResult};
use crate::lin::{check_all, check_snapshot_reads, CheckReport, OpRecord, SnapshotRecord};
use crate::stats::LatencyStats;
use crate::workload::Fault;

/// Which [`ShardMap`] the sharded driver routes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMapChoice {
    /// FNV-1a hash partitioning (even spread, no locality).
    Hash,
    /// Uniform range partitioning of the big-endian `u64` key space.
    Range,
}

/// Configuration of a sharded experiment: a base single-group experiment
/// replicated over `shards` independent groups, plus the multi-key read
/// mix.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// The per-shard experiment shape (topology, clients, workload mix,
    /// batching, checkpointing, faults applied to *every* shard).
    pub base: ExperimentConfig,
    /// Number of independent replication groups.
    pub shards: usize,
    /// Key-to-shard placement.
    pub map: ShardMapChoice,
    /// Fraction of **reads** issued as multi-key snapshot reads.
    pub snapshot_fraction: f64,
    /// Keys per multi-key snapshot read.
    pub snapshot_keys: usize,
    /// How far past issue time a snapshot cut is pinned. Must exceed the
    /// client-to-replica delivery delay plus the clock model's offset
    /// bound, so every completed-before-issue write has a commit
    /// timestamp below the cut (freshness) and the pinned parts arrive
    /// before their shard's stable timestamp passes the cut.
    pub snapshot_lead_us: Micros,
    /// Lockstep quantum: how far every shard simulation advances before
    /// the router looks at replies again.
    pub quantum_us: Micros,
    /// Faults scoped to a single shard `(at, shard, fault)`; only
    /// `Crash` and `Recover` are supported here.
    pub shard_faults: Vec<(Micros, usize, Fault)>,
}

impl ShardedConfig {
    /// A sharded experiment over `shards` groups with no multi-key
    /// reads, hash placement, and a 2.5 ms snapshot lead.
    pub fn new(base: ExperimentConfig, shards: usize) -> Self {
        assert!(shards > 0, "a sharded experiment needs at least one shard");
        ShardedConfig {
            base,
            shards,
            map: ShardMapChoice::Hash,
            snapshot_fraction: 0.0,
            snapshot_keys: 4,
            snapshot_lead_us: 2_500,
            quantum_us: 200,
            shard_faults: Vec::new(),
        }
    }

    /// Issues `fraction` of reads as multi-key snapshot reads of `keys`
    /// keys each.
    pub fn snapshot_mix(mut self, fraction: f64, keys: usize) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        assert!(keys > 0, "a snapshot read needs at least one key");
        self.snapshot_fraction = fraction;
        self.snapshot_keys = keys;
        self
    }

    /// Switches key placement to uniform range partitioning.
    pub fn range_partitioned(mut self) -> Self {
        self.map = ShardMapChoice::Range;
        self
    }

    /// Sets the snapshot cut lead.
    pub fn snapshot_lead_us(mut self, us: Micros) -> Self {
        self.snapshot_lead_us = us;
        self
    }

    /// Adds a fault scoped to one shard.
    pub fn shard_fault(mut self, at: Micros, shard: usize, fault: Fault) -> Self {
        assert!(shard < self.shards, "fault on unknown shard");
        self.shard_faults.push((at, shard, fault));
        self
    }

    fn n(&self) -> usize {
        self.base.latency.len()
    }

    fn active(&self) -> Vec<ReplicaId> {
        match &self.base.active_sites {
            Some(sites) => sites.iter().map(|&s| ReplicaId::new(s)).collect(),
            None => (0..self.n() as u16).map(ReplicaId::new).collect(),
        }
    }

    fn shard_map(&self) -> Box<dyn ShardMap> {
        match self.map {
            ShardMapChoice::Hash => Box::new(HashShardMap::new(self.shards)),
            ShardMapChoice::Range => {
                Box::new(RangeShardMap::uniform_u64(self.base.key_space, self.shards))
            }
        }
    }
}

/// Everything a sharded run produces.
#[derive(Debug)]
pub struct ShardedResult {
    /// Which protocol ran (per shard).
    pub protocol: &'static str,
    /// Number of shards.
    pub shards: usize,
    /// One full single-group result per shard (stats over the commands
    /// routed to it, its own correctness checks and convergence).
    pub per_shard: Vec<ExperimentResult>,
    /// The cross-shard roll-up: summed throughput and commit counts,
    /// merged latency distributions, folded checks.
    pub aggregate: ExperimentResult,
    /// How the load spread over the shards.
    pub accounting: ShardAccounting,
    /// Completed multi-key snapshot reads.
    pub snapshot_count: usize,
    /// Median multi-key read latency, ms (0 with no samples).
    pub snapshot_p50_ms: f64,
    /// 99th-percentile multi-key read latency, ms.
    pub snapshot_p99_ms: f64,
    /// Whether every snapshot read observed one consistent cut
    /// (trivially true for the Paxos/Mencius fallback, which does not
    /// claim a cut).
    pub snapshot_ok: bool,
    /// First snapshot-cut violation, if any.
    pub snapshot_violation: Option<String>,
}

impl ShardedResult {
    /// Whether every per-shard check, every shard's convergence, and the
    /// cross-shard snapshot check passed.
    pub fn all_ok(&self) -> bool {
        self.aggregate.checks.all_ok()
            && self.per_shard.iter().all(|r| r.snapshots_agree)
            && self.snapshot_ok
    }
}

/// Runs a sharded experiment for the chosen protocol.
pub fn run_sharded(choice: ProtocolChoice, cfg: &ShardedConfig) -> ShardedResult {
    let n = cfg.n() as u16;
    let checkpoint = cfg.base.checkpoint;
    match choice {
        ProtocolChoice::ClockRsm { cfg: rcfg } => run_sharded_generic(
            cfg,
            "Clock-RSM",
            move |id| {
                let rcfg = if checkpoint.enabled() {
                    rcfg.with_checkpoint(checkpoint)
                } else {
                    rcfg
                };
                ClockRsm::new(id, Membership::uniform(n), rcfg)
            },
            true,
        ),
        ProtocolChoice::Paxos { leader, failover } => run_sharded_generic(
            cfg,
            "Paxos",
            move |id| {
                MultiPaxos::new(id, Membership::uniform(n), leader, PaxosVariant::Plain)
                    .with_checkpoints(checkpoint)
                    .with_failover(failover)
            },
            false,
        ),
        ProtocolChoice::PaxosBcast { leader, failover } => run_sharded_generic(
            cfg,
            "Paxos-bcast",
            move |id| {
                MultiPaxos::new(id, Membership::uniform(n), leader, PaxosVariant::Bcast)
                    .with_checkpoints(checkpoint)
                    .with_failover(failover)
            },
            false,
        ),
        ProtocolChoice::MenciusBcast { history_cap } => run_sharded_generic(
            cfg,
            "Mencius-bcast",
            move |id| {
                MenciusBcast::new(id, Membership::uniform(n))
                    .with_checkpoints(checkpoint)
                    .with_history_cap(history_cap)
            },
            false,
        ),
    }
}

/// Per-shard application: collects replies (with exact in-simulation
/// arrival times) for the router to drain at quantum boundaries, and
/// counts observer-replica commits inside the measurement window.
struct Collector {
    warmup_until: Micros,
    measure_until: Micros,
    replies: Vec<(ClientId, Reply, Micros)>,
    observer_commits: u64,
}

impl<P: Protocol> Application<P> for Collector {
    fn on_init(&mut self, _api: &mut SimApi<'_, P>) {}

    fn on_reply(&mut self, client: ClientId, reply: Reply, api: &mut SimApi<'_, P>) {
        let now = api.now();
        self.replies.push((client, reply, now));
    }

    fn on_event(&mut self, _key: u64, _api: &mut SimApi<'_, P>) {}

    fn on_commit(&mut self, replica: ReplicaId, _committed: &Committed, at: Micros) {
        if replica == ReplicaId::new(0) && at >= self.warmup_until && at <= self.measure_until {
            self.observer_commits += 1;
        }
    }
}

/// What a router client is waiting on.
#[derive(Debug, Clone)]
enum Pending {
    Idle,
    Single {
        cmd_id: CommandId,
        shard: usize,
        key: u64,
        is_read: bool,
    },
    Snapshot {
        token: u64,
        keys: Vec<u64>,
    },
}

#[derive(Debug)]
struct Client {
    id: ClientId,
    site: ReplicaId,
    seq: u64,
    pending: Pending,
    issued_at: Micros,
    /// Retry attempt of the in-flight operation (0 = first issue); read
    /// retries rotate their target replica by this much.
    attempt: u32,
    /// Next time the router acts for this client: issue when idle,
    /// retry-check when pending.
    next_wake: Micros,
}

/// The external router: client population, key routing, snapshot
/// coordination, and all measurement state.
struct Router {
    map: Box<dyn ShardMap>,
    n: usize,
    end: Micros,
    warmup: Micros,
    think_max_us: Micros,
    value_bytes: usize,
    key_space: u64,
    read_fraction: f64,
    snapshot_fraction: f64,
    snapshot_keys: usize,
    snapshot_lead_us: Micros,
    retry_timeout_us: Option<Micros>,
    record_ops: bool,

    clients: Vec<Client>,
    client_index: HashMap<ClientId, usize>,
    rng: StdRng,
    coord: SnapshotCoordinator,
    snap_owner: HashMap<u64, usize>,
    accounting: ShardAccounting,

    /// Per-shard operation records (snapshot parts included), feeding
    /// each shard's own checkers.
    ops: Vec<Vec<OpRecord>>,
    op_index: HashMap<CommandId, (usize, usize)>,
    /// `[shard][site]` latencies of the commands routed there.
    site_stats: Vec<Vec<LatencyStats>>,
    read_stats: Vec<LatencyStats>,
    write_stats: Vec<LatencyStats>,
    snap_stats: LatencyStats,
    snaps: Vec<SnapshotRecord>,
}

impl Router {
    fn new(cfg: &ShardedConfig) -> Self {
        let n = cfg.n();
        let mut clients = Vec::new();
        let mut client_index = HashMap::new();
        for &site in &cfg.active() {
            for k in 0..cfg.base.clients_per_site {
                let id = ClientId::new(site, k as u32);
                client_index.insert(id, clients.len());
                clients.push(Client {
                    id,
                    site,
                    seq: 0,
                    pending: Pending::Idle,
                    issued_at: 0,
                    attempt: 0,
                    next_wake: 0,
                });
            }
        }
        let end = cfg.base.warmup_us + cfg.base.duration_us;
        let mut router = Router {
            map: cfg.shard_map(),
            n,
            end,
            warmup: cfg.base.warmup_us,
            think_max_us: cfg.base.think_max_us,
            value_bytes: cfg.base.value_bytes,
            key_space: cfg.base.key_space,
            read_fraction: cfg.base.read_fraction,
            snapshot_fraction: cfg.snapshot_fraction,
            snapshot_keys: cfg.snapshot_keys,
            snapshot_lead_us: cfg.snapshot_lead_us,
            retry_timeout_us: cfg.base.client_retry_us,
            record_ops: cfg.base.record_ops,
            clients,
            client_index,
            rng: StdRng::seed_from_u64(cfg.base.seed ^ 0x5ead_c0de),
            coord: SnapshotCoordinator::new(),
            snap_owner: HashMap::new(),
            accounting: ShardAccounting::new(cfg.shards),
            ops: vec![Vec::new(); cfg.shards],
            op_index: HashMap::new(),
            site_stats: vec![vec![LatencyStats::new(); n]; cfg.shards],
            read_stats: vec![LatencyStats::new(); cfg.shards],
            write_stats: vec![LatencyStats::new(); cfg.shards],
            snap_stats: LatencyStats::new(),
            snaps: Vec::new(),
        };
        // Stagger initial issues over one think interval, like the
        // single-group workload.
        for idx in 0..router.clients.len() {
            router.clients[idx].next_wake = if router.think_max_us == 0 {
                router.rng.gen_range(0..100)
            } else {
                router.rng.gen_range(0..=router.think_max_us)
            };
        }
        router
    }

    fn think(&mut self) -> Micros {
        if self.think_max_us == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.think_max_us)
        }
    }

    /// The value a write carries: 14 bytes of `(site, client, seq)` —
    /// unique per write, which lets the cut checker match an observed
    /// value back to exactly one write — padded to the configured size.
    fn unique_value(&self, id: ClientId, seq: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.value_bytes.max(14));
        v.extend_from_slice(&(id.site().index() as u16).to_be_bytes());
        v.extend_from_slice(&id.number().to_be_bytes());
        v.extend_from_slice(&seq.to_be_bytes());
        while v.len() < self.value_bytes {
            v.push((seq % 251) as u8);
        }
        v
    }

    fn record_op(
        &mut self,
        shard: usize,
        cmd_id: CommandId,
        now: Micros,
        payload: Bytes,
        read: bool,
    ) {
        if !self.record_ops {
            return;
        }
        self.op_index.insert(cmd_id, (shard, self.ops[shard].len()));
        self.ops[shard].push(OpRecord {
            cmd_id,
            issued: now,
            replied: None,
            payload,
            result: None,
            read_only: read,
        });
    }

    /// The replica a client at `site` sends a read to on retry attempt
    /// `attempt`: the site's advertised lease holder first, then a
    /// rotation over the replicas (escaping a crashed target).
    fn read_site<P: Protocol>(
        &self,
        sim: &Simulation<P, Collector>,
        site: ReplicaId,
        attempt: u32,
    ) -> ReplicaId {
        if attempt == 0 {
            sim.read_target(site)
        } else {
            ReplicaId::new(((site.index() + attempt as usize) % self.n) as u16)
        }
    }

    fn dispatch_single<P: Protocol>(
        &mut self,
        idx: usize,
        key: u64,
        is_read: bool,
        now: Micros,
        sims: &mut [Simulation<P, Collector>],
    ) {
        let shard = self.map.shard_of(&key.to_be_bytes());
        let (id, site) = (self.clients[idx].id, self.clients[idx].site);
        self.clients[idx].seq += 1;
        let seq = self.clients[idx].seq;
        let cmd_id = CommandId::new(id, seq);
        let payload = if is_read {
            KvOp::get(key.to_be_bytes().to_vec()).encode()
        } else {
            KvOp::put(key.to_be_bytes().to_vec(), self.unique_value(id, seq)).encode()
        };
        self.record_op(shard, cmd_id, now, payload.clone(), is_read);
        if is_read {
            let target = self.read_site(&sims[shard], site, self.clients[idx].attempt);
            sims[shard].submit_from(site, target, Command::read(cmd_id, payload));
            self.accounting.record_read(shard);
        } else {
            sims[shard].submit(site, Command::new(cmd_id, payload));
            self.accounting.record_write(shard);
        }
        let c = &mut self.clients[idx];
        c.pending = Pending::Single {
            cmd_id,
            shard,
            key,
            is_read,
        };
        c.issued_at = now;
        c.next_wake = match self.retry_timeout_us {
            Some(t) => now + t,
            None => Micros::MAX,
        };
    }

    fn dispatch_snapshot<P: Protocol>(
        &mut self,
        idx: usize,
        keys: Vec<u64>,
        now: Micros,
        sims: &mut [Simulation<P, Collector>],
    ) {
        let (id, site) = (self.clients[idx].id, self.clients[idx].site);
        let attempt = self.clients[idx].attempt;
        // Per-part shard and target replica; the cut must lead every
        // part's delivery, so take the worst hop into account.
        let parts: Vec<(usize, Bytes, ReplicaId)> = keys
            .iter()
            .map(|k| {
                let shard = self.map.shard_of(&k.to_be_bytes());
                let target = self.read_site(&sims[shard], site, attempt);
                (shard, Bytes::from(k.to_be_bytes().to_vec()), target)
            })
            .collect();
        let max_hop = parts
            .iter()
            .map(|&(shard, _, target)| {
                if target == site {
                    0
                } else {
                    sims[shard].config().latency().one_way(site, target)
                }
            })
            .max()
            .unwrap_or(0);
        let at = now + self.snapshot_lead_us + max_hop;
        let mut seq = self.clients[idx].seq;
        let (token, cmds) = self.coord.begin(
            parts.iter().map(|(s, k, _)| (*s, k.clone())).collect(),
            at,
            now,
            || {
                seq += 1;
                CommandId::new(id, seq)
            },
        );
        self.clients[idx].seq = seq;
        for ((shard, cmd), &(_, _, target)) in cmds.into_iter().zip(&parts) {
            self.record_op(shard, cmd.id, now, cmd.payload.clone(), true);
            sims[shard].submit_from(site, target, cmd);
        }
        self.snap_owner.insert(token, idx);
        let c = &mut self.clients[idx];
        c.pending = Pending::Snapshot { token, keys };
        c.issued_at = now;
        c.next_wake = match self.retry_timeout_us {
            Some(t) => now + t,
            None => Micros::MAX,
        };
    }

    fn issue_new<P: Protocol>(
        &mut self,
        idx: usize,
        now: Micros,
        sims: &mut [Simulation<P, Collector>],
    ) {
        self.clients[idx].attempt = 0;
        let is_read = self.read_fraction > 0.0 && self.rng.gen::<f64>() < self.read_fraction;
        let is_snapshot = is_read
            && self.snapshot_fraction > 0.0
            && self.rng.gen::<f64>() < self.snapshot_fraction;
        if is_snapshot {
            let mut keys: Vec<u64> = Vec::with_capacity(self.snapshot_keys);
            while keys.len() < self.snapshot_keys {
                let key = self.rng.gen_range(0..self.key_space);
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
            self.dispatch_snapshot(idx, keys, now, sims);
        } else {
            let key = self.rng.gen_range(0..self.key_space);
            self.dispatch_single(idx, key, is_read, now, sims);
        }
    }

    /// Drains every shard's reply outbox, completing singles and
    /// snapshot parts.
    fn drain<P: Protocol>(&mut self, now: Micros, sims: &mut [Simulation<P, Collector>]) {
        for sim in sims.iter_mut() {
            let replies = std::mem::take(&mut sim.app_mut().replies);
            for (client_id, reply, at) in replies {
                // Record the reply on its op regardless of staleness:
                // the command really was served then, and accurate reply
                // times tighten (never loosen) the checkers' windows.
                if let Some(&(sh, i)) = self.op_index.get(&reply.id) {
                    let op = &mut self.ops[sh][i];
                    if op.replied.is_none() {
                        op.replied = Some(at);
                        op.result = Some(reply.result.clone());
                    }
                }
                let Some(&idx) = self.client_index.get(&client_id) else {
                    continue;
                };
                let current_single = matches!(
                    self.clients[idx].pending,
                    Pending::Single { cmd_id, .. } if cmd_id == reply.id
                );
                if current_single {
                    self.complete_single(idx, at, now);
                } else if let Some(snap) = self.coord.on_reply(reply.id, &reply.result, at) {
                    self.complete_snapshot(snap, at, now);
                }
            }
        }
    }

    fn complete_single(&mut self, idx: usize, at: Micros, now: Micros) {
        let think = self.think();
        let c = &mut self.clients[idx];
        let Pending::Single { shard, is_read, .. } = c.pending else {
            unreachable!("caller matched a single");
        };
        let issued = c.issued_at;
        let site = c.site.index();
        c.pending = Pending::Idle;
        c.attempt = 0;
        c.next_wake = now + think;
        if issued >= self.warmup && at <= self.end {
            self.site_stats[shard][site].record(at - issued);
            if is_read {
                self.read_stats[shard].record(at - issued);
            } else {
                self.write_stats[shard].record(at - issued);
            }
        }
    }

    fn complete_snapshot(&mut self, snap: rsm_shard::SnapshotResult, at: Micros, now: Micros) {
        let Some(idx) = self.snap_owner.remove(&snap.token) else {
            return; // owner already moved on (abandoned concurrently)
        };
        self.accounting.record_snapshot(&snap.shards);
        if snap.issued >= self.warmup && at <= self.end {
            self.snap_stats.record(at - snap.issued);
        }
        if self.record_ops {
            self.snaps.push(SnapshotRecord {
                issued: snap.issued,
                replied: snap.replied,
                keys: snap.keys,
                values: snap.values,
            });
        }
        let think = self.think();
        let c = &mut self.clients[idx];
        c.pending = Pending::Idle;
        c.attempt = 0;
        c.next_wake = now + think;
    }

    /// Acts on every client whose wake time has passed: issue when idle,
    /// retry (fresh ids, rotated read target, fresh snapshot cut) when a
    /// pending operation timed out.
    fn wakes<P: Protocol>(&mut self, now: Micros, sims: &mut [Simulation<P, Collector>]) {
        for idx in 0..self.clients.len() {
            if self.clients[idx].next_wake > now {
                continue;
            }
            let pending = self.clients[idx].pending.clone();
            match pending {
                Pending::Idle => {
                    if now >= self.end {
                        self.clients[idx].next_wake = Micros::MAX;
                    } else {
                        self.issue_new(idx, now, sims);
                    }
                }
                Pending::Single { key, is_read, .. } => {
                    if now >= self.end {
                        self.clients[idx].pending = Pending::Idle;
                        self.clients[idx].next_wake = Micros::MAX;
                    } else {
                        self.clients[idx].attempt += 1;
                        self.dispatch_single(idx, key, is_read, now, sims);
                    }
                }
                Pending::Snapshot { token, keys } => {
                    // A lost part abandons the *whole* snapshot: a stale
                    // cut may already be unservable exactly, so retry
                    // everything under a fresh one.
                    self.coord.abandon(token);
                    self.snap_owner.remove(&token);
                    if now >= self.end {
                        self.clients[idx].pending = Pending::Idle;
                        self.clients[idx].next_wake = Micros::MAX;
                    } else {
                        self.accounting.record_snapshot_retry();
                        self.clients[idx].attempt += 1;
                        self.dispatch_snapshot(idx, keys, now, sims);
                    }
                }
            }
        }
    }
}

fn run_sharded_generic<P, F>(
    cfg: &ShardedConfig,
    name: &'static str,
    factory: F,
    snapshot_consistent: bool,
) -> ShardedResult
where
    P: Protocol + 'static,
    F: FnMut(ReplicaId) -> P + Clone + 'static,
{
    let n = cfg.n();
    let end = cfg.base.warmup_us + cfg.base.duration_us;
    let finish = end + 2_000 * MILLIS; // slack: let in-flight work land

    let mut sims: Vec<Simulation<P, Collector>> = (0..cfg.shards)
        .map(|s| {
            let sim_cfg = SimConfig::new(cfg.base.latency.clone())
                .seed(cfg.base.seed.wrapping_add(s as u64 * 0x9e37_79b9))
                .jitter_us(cfg.base.jitter_us)
                .clock_model(cfg.base.clock)
                .batch_policy(cfg.base.batch)
                .record_history(cfg.base.record_ops);
            let sim_cfg = match cfg.base.cpu {
                Some(cpu) => sim_cfg.cpu_model(cpu),
                None => sim_cfg,
            };
            Simulation::new(
                sim_cfg,
                factory.clone(),
                || Box::new(KvStore::new()),
                Collector {
                    warmup_until: cfg.base.warmup_us,
                    measure_until: end,
                    replies: Vec::new(),
                    observer_commits: 0,
                },
            )
        })
        .collect();

    // Fault plan: shard-scoped entries plus the base experiment's faults
    // applied to every shard, in time order.
    let mut faults: Vec<(Micros, usize, Fault)> = cfg.shard_faults.clone();
    for &(at, fault) in &cfg.base.faults {
        for s in 0..cfg.shards {
            faults.push((at, s, fault));
        }
    }
    faults.sort_by_key(|&(at, _, _)| at);
    let mut next_fault = 0;

    let mut router = Router::new(cfg);
    let mut now: Micros = 0;
    while now < finish {
        let t = (now + cfg.quantum_us).min(finish);
        while next_fault < faults.len() && faults[next_fault].0 <= t {
            let (at, shard, fault) = faults[next_fault];
            let after = at.saturating_sub(now);
            match fault {
                Fault::Crash(r) => sims[shard].crash(r, after),
                Fault::Recover(r) => sims[shard].recover(r, after),
                _ => panic!("the sharded driver supports crash/recover faults only"),
            }
            next_fault += 1;
        }
        for sim in &mut sims {
            sim.run_until(t);
        }
        now = t;
        router.drain(now, &mut sims);
        router.wakes(now, &mut sims);
    }

    // Per-shard results: each shard is a complete single-group run.
    let window_secs = cfg.base.duration_us as f64 / 1e6;
    let replicas: Vec<ReplicaId> = (0..n as u16).map(ReplicaId::new).collect();
    let mut per_shard = Vec::with_capacity(cfg.shards);
    for (s, sim) in sims.iter_mut().enumerate() {
        let commit_counts: Vec<u64> = replicas.iter().map(|&r| sim.commit_count(r)).collect();
        let log_lens: Vec<usize> = replicas.iter().map(|&r| sim.log(r).len()).collect();
        let snapshots: Vec<_> = replicas
            .iter()
            .filter(|&&r| sim.is_up(r))
            .map(|&r| sim.snapshot(r))
            .collect();
        let snapshots_agree = snapshots.windows(2).all(|w| w[0] == w[1]);

        let mut commit_times: Vec<Vec<Micros>> = vec![Vec::new(); n];
        let checks = if cfg.base.record_ops {
            let histories: Vec<_> = replicas.iter().map(|&r| sim.commits(r).to_vec()).collect();
            for (i, h) in histories.iter().enumerate() {
                commit_times[i] = h.iter().map(|c| c.at).collect();
            }
            check_all(&histories, &router.ops[s])
        } else {
            CheckReport::trivially_ok()
        };

        let site_stats = std::mem::take(&mut router.site_stats[s]);
        let mut all = LatencyStats::new();
        for st in &site_stats {
            all.merge(st);
        }
        let (p50_ms, p99_ms) = if all.is_empty() {
            (0.0, 0.0)
        } else {
            (all.p50_ms(), all.p99_ms())
        };
        let read = &mut router.read_stats[s];
        let (read_p50_ms, read_p99_ms, read_count) = (read.p50_ms(), read.p99_ms(), read.count());
        let write = &mut router.write_stats[s];
        let (write_p50_ms, write_p99_ms, write_count) =
            (write.p50_ms(), write.p99_ms(), write.count());

        per_shard.push(ExperimentResult {
            protocol: name,
            site_stats,
            commit_counts,
            checks,
            snapshots_agree,
            throughput_kops: sim.app().observer_commits as f64 / window_secs / 1_000.0,
            p50_ms,
            p99_ms,
            read_p50_ms,
            read_p99_ms,
            read_count,
            write_p50_ms,
            write_p99_ms,
            write_count,
            commit_times,
            log_lens,
            cas_count: 0,
            cas_failures: 0,
            metrics: None,
            metrics_mid: None,
            spans: Vec::new(),
            open_spans: 0,
        });
    }

    // The aggregate: merged distributions, summed counters, folded
    // checks. Commit times stay per shard (there is no meaningful merged
    // sequence).
    let mut agg_sites = vec![LatencyStats::new(); n];
    let mut agg_commits = vec![0u64; n];
    let mut agg_logs = vec![0usize; n];
    let mut agg_checks = CheckReport::trivially_ok();
    let mut agg_all = LatencyStats::new();
    let mut agg_read = LatencyStats::new();
    let mut agg_write = LatencyStats::new();
    let mut throughput = 0.0;
    let mut read_count = 0;
    let mut write_count = 0;
    for (s, r) in per_shard.iter().enumerate() {
        for i in 0..n {
            agg_sites[i].merge(&r.site_stats[i]);
            agg_all.merge(&r.site_stats[i]);
            agg_commits[i] += r.commit_counts[i];
            agg_logs[i] += r.log_lens[i];
        }
        agg_read.merge(&router.read_stats[s]);
        agg_write.merge(&router.write_stats[s]);
        read_count += r.read_count;
        write_count += r.write_count;
        throughput += r.throughput_kops;
        agg_checks.total_order_ok &= r.checks.total_order_ok;
        agg_checks.monotonic_ok &= r.checks.monotonic_ok;
        agg_checks.real_time_ok &= r.checks.real_time_ok;
        agg_checks.no_duplicates_ok &= r.checks.no_duplicates_ok;
        agg_checks.read_values_ok &= r.checks.read_values_ok;
        if agg_checks.violation.is_none() {
            agg_checks.violation = r.checks.violation.clone();
        }
    }
    let (p50_ms, p99_ms) = if agg_all.is_empty() {
        (0.0, 0.0)
    } else {
        (agg_all.p50_ms(), agg_all.p99_ms())
    };
    let snapshots_agree = per_shard.iter().all(|r| r.snapshots_agree);
    let aggregate = ExperimentResult {
        protocol: name,
        site_stats: agg_sites,
        commit_counts: agg_commits,
        checks: agg_checks,
        snapshots_agree,
        throughput_kops: throughput,
        p50_ms,
        p99_ms,
        read_p50_ms: agg_read.p50_ms(),
        read_p99_ms: agg_read.p99_ms(),
        read_count,
        write_p50_ms: agg_write.p50_ms(),
        write_p99_ms: agg_write.p99_ms(),
        write_count,
        commit_times: vec![Vec::new(); n],
        log_lens: agg_logs,
        cas_count: 0,
        cas_failures: 0,
        metrics: None,
        metrics_mid: None,
        spans: Vec::new(),
        open_spans: 0,
    };

    // The cross-shard cut check — Clock-RSM only; the Paxos/Mencius
    // fallback decomposes into per-shard linearizable reads (checked
    // above per shard) and claims no cut. Real-time bounds derived from
    // commit timestamps are only tight to within the clock offset bound.
    let snapshot_check = if snapshot_consistent && cfg.base.record_ops {
        let all_ops: Vec<OpRecord> = router.ops.iter().flatten().cloned().collect();
        let skew = cfg
            .base
            .clock
            .sync_bound_us
            .max(cfg.base.clock.offset_us.unsigned_abs());
        check_snapshot_reads(&all_ops, &router.snaps, skew)
    } else {
        Ok(())
    };

    let (snapshot_p50_ms, snapshot_p99_ms) = if router.snap_stats.is_empty() {
        (0.0, 0.0)
    } else {
        (router.snap_stats.p50_ms(), router.snap_stats.p99_ms())
    };

    ShardedResult {
        protocol: name,
        shards: cfg.shards,
        per_shard,
        aggregate,
        accounting: router.accounting,
        snapshot_count: router.snaps.len(),
        snapshot_p50_ms,
        snapshot_p99_ms,
        snapshot_ok: snapshot_check.is_ok(),
        snapshot_violation: snapshot_check.err(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_core::matrix::LatencyMatrix;
    use simnet::ClockModel;

    fn quick(shards: usize) -> ShardedConfig {
        let base = ExperimentConfig::new(LatencyMatrix::uniform(3, 5_000))
            .clients_per_site(3)
            .think_max_us(10 * MILLIS)
            .warmup_us(200 * MILLIS)
            .duration_us(800 * MILLIS)
            .client_retry_us(400 * MILLIS);
        ShardedConfig::new(base, shards)
    }

    #[test]
    fn sharded_clock_rsm_runs_clean_with_snapshot_mix() {
        let cfg = {
            let mut c = quick(2).snapshot_mix(0.3, 3);
            c.base = c.base.read_fraction(0.5);
            c
        };
        let r = run_sharded(ProtocolChoice::clock_rsm(), &cfg);
        assert!(
            r.all_ok(),
            "{:?} / {:?}",
            r.aggregate.checks.violation,
            r.snapshot_violation
        );
        assert!(
            r.snapshot_count > 5,
            "only {} snapshots completed",
            r.snapshot_count
        );
        assert!(r.snapshot_p50_ms > 0.0);
        // Both shards saw work.
        for (s, c) in r.accounting.per_shard().iter().enumerate() {
            assert!(c.writes > 0, "shard {s} got no writes");
        }
        assert!(r.aggregate.throughput_kops > 0.0);
    }

    #[test]
    fn sharded_fallback_protocols_stay_linearizable_per_shard() {
        // Paxos and Mencius run the same multi-key mix; their parts are
        // plain per-shard linearizable reads (the pin is ignored), so
        // every per-shard checker must stay green while the cut check is
        // out of scope by design.
        let cfg = {
            let mut c = quick(2).snapshot_mix(0.3, 3);
            c.base = c.base.read_fraction(0.5);
            c
        };
        for choice in [ProtocolChoice::paxos(0), ProtocolChoice::mencius()] {
            let r = run_sharded(choice, &cfg);
            assert!(
                r.all_ok(),
                "{}: {:?}",
                r.protocol,
                r.aggregate.checks.violation
            );
            assert!(
                r.snapshot_count > 0,
                "{}: no multi-key reads completed",
                r.protocol
            );
        }
    }

    #[test]
    fn range_partitioning_routes_contiguous_blocks() {
        let cfg = quick(4).range_partitioned();
        let r = run_sharded(ProtocolChoice::clock_rsm(), &cfg);
        assert!(r.all_ok(), "{:?}", r.aggregate.checks.violation);
        // Uniform keys over a uniform range split: every shard gets work.
        for (s, c) in r.accounting.per_shard().iter().enumerate() {
            assert!(c.writes > 0, "shard {s} got no writes");
        }
    }

    #[test]
    fn shard_scoped_crash_leaves_other_shards_untouched() {
        // Crash-and-rejoin needs the reconfiguration machinery on (like
        // the single-group fault soaks): failure detection to exclude
        // the dead replica, rejoin to catch it back up.
        let rsm_cfg = clock_rsm::ClockRsmConfig::default()
            .with_delta_us(Some(50 * MILLIS))
            .with_failure_detection(Some(400 * MILLIS))
            .with_synod_retry_us(100 * MILLIS)
            .with_reconfig_retry_us(100 * MILLIS);
        let cfg = quick(2)
            .shard_fault(300 * MILLIS, 0, Fault::Crash(ReplicaId::new(1)))
            .shard_fault(600 * MILLIS, 0, Fault::Recover(ReplicaId::new(1)));
        let r = run_sharded(ProtocolChoice::clock_rsm_with(rsm_cfg), &cfg);
        assert!(r.all_ok(), "{:?}", r.aggregate.checks.violation);
        // Shard 1 never lost a replica: all three replicas converged.
        assert!(r.per_shard[1].snapshots_agree);
    }

    #[test]
    fn snapshot_reads_survive_skewed_clocks() {
        let cfg = {
            let mut c = quick(2).snapshot_mix(0.5, 4);
            c.base = c.base.read_fraction(0.5).clock(ClockModel::ntp(MILLIS));
            c
        };
        let r = run_sharded(ProtocolChoice::clock_rsm(), &cfg);
        assert!(r.snapshot_ok, "{:?}", r.snapshot_violation);
        assert!(r.snapshot_count > 5);
    }
}
