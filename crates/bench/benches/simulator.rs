//! Macrobenchmark of the discrete-event simulator: a full five-site
//! Clock-RSM deployment, one virtual second per iteration.

use criterion::{criterion_group, criterion_main, Criterion};

use analysis::ec2;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use rsm_core::time::MILLIS;

fn bench_five_site_second(c: &mut Criterion) {
    let (_, matrix) = ec2::five_site_deployment();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("clock_rsm_5site_1s_virtual", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::new(matrix.clone())
                .clients_per_site(10)
                .warmup_us(200 * MILLIS)
                .duration_us(800 * MILLIS)
                .record_ops(false);
            let r = run_latency(ProtocolChoice::clock_rsm(), &cfg);
            assert!(r.commit_counts[0] > 0);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_five_site_second);
criterion_main!(benches);
