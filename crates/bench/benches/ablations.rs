//! Scaled-down ablation regressions: clock skew must never break safety,
//! whatever the synchronization bound.

use criterion::{criterion_group, criterion_main, Criterion};

use analysis::ec2;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use rsm_core::time::MILLIS;
use simnet::ClockModel;

fn bench_skew_safety(c: &mut Criterion) {
    let (_, matrix) = ec2::five_site_deployment();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("skew_200ms_safety", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::new(matrix.clone())
                .clock(ClockModel::ntp(200 * MILLIS))
                .clients_per_site(8)
                .warmup_us(500 * MILLIS)
                .duration_us(2_000 * MILLIS);
            let r = run_latency(ProtocolChoice::clock_rsm(), &cfg);
            assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_skew_safety);
criterion_main!(benches);
