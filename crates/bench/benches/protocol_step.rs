//! Microbenchmarks of protocol state-machine steps: how fast each
//! replica core processes its hot-path events, independent of any
//! network. This bounds the CPU-side throughput of a real deployment.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

use clock_rsm::{ClockRsm, ClockRsmConfig, LogRec, RsmMsg};
use mencius::{MenciusBcast, MenciusLogRec, MenciusMsg};
use paxos::{replica::PaxosLogRec, MultiPaxos, PaxosMsg, PaxosVariant};
use rsm_core::batch::Batch;
use rsm_core::command::{Command, CommandId, Committed};
use rsm_core::config::{Epoch, Membership};
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::time::{Micros, Timestamp};

/// A throwaway context that swallows effects at minimal cost.
struct SinkCtx<M, L> {
    clock: Micros,
    sends: Vec<(ReplicaId, M)>,
    log: Vec<L>,
    commits: u64,
}

impl<M, L> SinkCtx<M, L> {
    fn new() -> Self {
        SinkCtx {
            clock: 1_000_000,
            sends: Vec::with_capacity(64),
            log: Vec::with_capacity(64),
            commits: 0,
        }
    }
    fn reset(&mut self) {
        self.sends.clear();
        self.log.clear();
    }
}

macro_rules! impl_ctx {
    ($proto:ty, $msg:ty, $log:ty) => {
        impl Context<$proto> for SinkCtx<$msg, $log> {
            fn clock(&mut self) -> Micros {
                self.clock += 1;
                self.clock
            }
            fn send(&mut self, to: ReplicaId, msg: $msg) {
                self.sends.push((to, msg));
            }
            fn log_append(&mut self, rec: $log) {
                self.log.push(rec);
            }
            fn log_rewrite(&mut self, recs: Vec<$log>) {
                self.log = recs;
            }
            fn commit(&mut self, _c: Committed) -> Bytes {
                self.commits += 1;
                Bytes::new()
            }
            fn set_timer(&mut self, _after: Micros, _token: TimerToken) {}
        }
    };
}

impl_ctx!(ClockRsm, RsmMsg, LogRec);
impl_ctx!(MultiPaxos, PaxosMsg, PaxosLogRec);
impl_ctx!(MenciusBcast, MenciusMsg, MenciusLogRec);

fn cmd(seq: u64) -> Command {
    Command::new(
        CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
        Bytes::from_static(&[0u8; 64]),
    )
}

fn bench_clock_rsm_round(c: &mut Criterion) {
    c.bench_function("clock_rsm_full_commit_round", |b| {
        let mut ctx = SinkCtx::new();
        let mut seq = 0u64;
        let mut replica = ClockRsm::new(
            ReplicaId::new(0),
            Membership::uniform(5),
            ClockRsmConfig::default().with_delta_us(None),
        );
        b.iter(|| {
            seq += 1;
            ctx.reset();
            let ts = Timestamp::new(2_000_000 + seq * 10, ReplicaId::new(1));
            // One remote command: PREPARE + majority PREPAREOKs +
            // stable-order clock times from everyone -> one commit.
            replica.on_message(
                ReplicaId::new(1),
                RsmMsg::PrepareBatch {
                    epoch: Epoch::ZERO,
                    ts,
                    origin: ReplicaId::new(1),
                    cmds: Batch::single(cmd(seq)),
                },
                &mut ctx,
            );
            for k in 0..5u16 {
                replica.on_message(
                    ReplicaId::new(k),
                    RsmMsg::PrepareOk {
                        epoch: Epoch::ZERO,
                        up_to: ts,
                        clock_ts: Timestamp::new(ts.micros() + 5 + k as u64, ReplicaId::new(k)),
                    },
                    &mut ctx,
                );
            }
        });
        assert!(ctx.commits > 0);
    });
}

fn bench_clock_rsm_batched_round(c: &mut Criterion) {
    c.bench_function("clock_rsm_batched16_commit_round", |b| {
        let mut ctx = SinkCtx::new();
        let mut seq = 0u64;
        let mut replica = ClockRsm::new(
            ReplicaId::new(0),
            Membership::uniform(5),
            ClockRsmConfig::default().with_delta_us(None),
        );
        b.iter(|| {
            ctx.reset();
            let head = 2_000_000 + seq * 20;
            seq += 16;
            let ts = Timestamp::new(head, ReplicaId::new(1));
            let last = Timestamp::new(head + 15, ReplicaId::new(1));
            // Sixteen remote commands in ONE batch: one PREPAREBATCH +
            // one cumulative PREPAREOK per replica -> sixteen commits.
            replica.on_message(
                ReplicaId::new(1),
                RsmMsg::PrepareBatch {
                    epoch: Epoch::ZERO,
                    ts,
                    origin: ReplicaId::new(1),
                    cmds: Batch::new((0..16).map(|i| cmd(seq + i)).collect()),
                },
                &mut ctx,
            );
            for k in 0..5u16 {
                replica.on_message(
                    ReplicaId::new(k),
                    RsmMsg::PrepareOk {
                        epoch: Epoch::ZERO,
                        up_to: last,
                        clock_ts: Timestamp::new(last.micros() + 5 + k as u64, ReplicaId::new(k)),
                    },
                    &mut ctx,
                );
            }
        });
        assert!(ctx.commits > 0);
    });
}

fn bench_paxos_round(c: &mut Criterion) {
    c.bench_function("paxos_bcast_full_commit_round", |b| {
        let mut ctx = SinkCtx::new();
        let mut instance = 0u64;
        let mut replica = MultiPaxos::new(
            ReplicaId::new(1),
            Membership::uniform(5),
            ReplicaId::new(0),
            PaxosVariant::Bcast,
        );
        b.iter(|| {
            ctx.reset();
            let ballot = replica.regime();
            replica.on_message(
                ReplicaId::new(0),
                PaxosMsg::Accept {
                    ballot,
                    first_instance: instance,
                    cmds: Batch::single(cmd(instance)),
                    origin: ReplicaId::new(0),
                },
                &mut ctx,
            );
            for k in 0..3u16 {
                replica.on_message(
                    ReplicaId::new(k),
                    PaxosMsg::Accepted {
                        ballot,
                        up_to: instance + 1,
                    },
                    &mut ctx,
                );
            }
            instance += 1;
        });
        assert!(ctx.commits > 0);
    });
}

fn bench_mencius_round(c: &mut Criterion) {
    c.bench_function("mencius_full_commit_round", |b| {
        let mut ctx = SinkCtx::new();
        let mut round = 0u64;
        let mut replica = MenciusBcast::new(ReplicaId::new(1), Membership::uniform(5));
        b.iter(|| {
            ctx.reset();
            let slot = round * 5; // r0's slots
            replica.on_message(
                ReplicaId::new(0),
                MenciusMsg::Propose {
                    first_slot: slot,
                    cmds: Batch::single(cmd(round)),
                    origin: ReplicaId::new(0),
                },
                &mut ctx,
            );
            for k in 0..5u16 {
                replica.on_message(
                    ReplicaId::new(k),
                    MenciusMsg::AcceptAck {
                        up_to_slot: slot,
                        skip_below: slot + k as u64 + 1,
                    },
                    &mut ctx,
                );
            }
            round += 1;
        });
        assert!(ctx.commits > 0);
    });
}

criterion_group!(
    benches,
    bench_clock_rsm_round,
    bench_clock_rsm_batched_round,
    bench_paxos_round,
    bench_mencius_round
);
criterion_main!(benches);
