//! Scaled-down regression versions of the paper's figure experiments:
//! short windows, assertions on the qualitative shape. `cargo bench`
//! keeps the reproduction honest over time; the `fig*` binaries produce
//! the full paper-grade numbers.

use criterion::{criterion_group, criterion_main, Criterion};

use analysis::ec2;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use rsm_core::time::MILLIS;

fn quick_cfg(matrix: rsm_core::LatencyMatrix) -> ExperimentConfig {
    ExperimentConfig::new(matrix)
        .clients_per_site(10)
        .warmup_us(500 * MILLIS)
        .duration_us(2_500 * MILLIS)
}

fn bench_figures(c: &mut Criterion) {
    let (_, matrix) = ec2::five_site_deployment();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig1_shape_5site_balanced", |b| {
        b.iter(|| {
            let cfg = quick_cfg(matrix.clone());
            let clock = run_latency(ProtocolChoice::clock_rsm(), &cfg);
            let paxos_b = run_latency(ProtocolChoice::paxos_bcast(1), &cfg);
            // Clock-RSM beats Paxos-bcast at every non-leader site.
            for i in [0usize, 2, 3, 4] {
                assert!(
                    clock.site_stats[i].mean_ms() < paxos_b.site_stats[i].mean_ms(),
                    "site {i}"
                );
            }
        });
    });
    group.bench_function("fig5_shape_imbalanced_sg", |b| {
        b.iter(|| {
            let cfg = quick_cfg(matrix.clone()).active_sites(vec![4]);
            let clock = run_latency(ProtocolChoice::clock_rsm(), &cfg);
            let mencius = run_latency(ProtocolChoice::mencius(), &cfg);
            assert!(clock.site_stats[4].mean_ms() < mencius.site_stats[4].mean_ms());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
