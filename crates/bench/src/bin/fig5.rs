//! Figure 5: average and 95th-percentile commit latency at each of five
//! replicas under an **imbalanced** workload — only one replica serves
//! clients per run; the Paxos/Paxos-bcast leader is at CA.

use analysis::ec2;
use bench::{print_latency_table, with_windows};
use harness::{run_latency, ExperimentConfig, LatencyStats, ProtocolChoice};

fn main() {
    let (sites, matrix) = ec2::five_site_deployment();
    let site_names: Vec<&str> = sites.iter().map(|s| s.name()).collect();

    let mut rows: Vec<(String, Vec<LatencyStats>)> = [
        ProtocolChoice::paxos(0),
        ProtocolChoice::mencius(),
        ProtocolChoice::paxos_bcast(0),
        ProtocolChoice::clock_rsm(),
    ]
    .into_iter()
    .map(|choice| {
        let name = choice.name().to_string();
        // One run per origin site: clients only at that site.
        let stats: Vec<LatencyStats> = (0..sites.len() as u16)
            .map(|origin| {
                let cfg =
                    with_windows(ExperimentConfig::new(matrix.clone())).active_sites(vec![origin]);
                let mut r = run_latency(choice.clone(), &cfg);
                assert!(r.checks.all_ok(), "{name}: {:?}", r.checks.violation);
                std::mem::take(&mut r.site_stats[origin as usize])
            })
            .collect();
        (name, stats)
    })
    .collect();

    print_latency_table(
        "Figure 5: five replicas, imbalanced workload (leader at CA)",
        &site_names,
        &mut rows,
    );
}
