//! Figure 6: commit latency distribution (CDF) at the SG replica with
//! five replicas, imbalanced workload (clients only at SG), leader at CA.

use analysis::ec2;
use bench::{print_cdf_table, with_windows};
use harness::{run_latency, ExperimentConfig, ProtocolChoice};

fn main() {
    let (sites, matrix) = ec2::five_site_deployment();
    let sg = sites.iter().position(|s| s.name() == "SG").expect("SG");
    let cfg = with_windows(ExperimentConfig::new(matrix)).active_sites(vec![sg as u16]);

    let mut series = Vec::new();
    for choice in [
        ProtocolChoice::paxos(0),
        ProtocolChoice::mencius(),
        ProtocolChoice::paxos_bcast(0),
        ProtocolChoice::clock_rsm(),
    ] {
        let name = choice.name().to_string();
        let mut r = run_latency(choice, &cfg);
        assert!(r.checks.all_ok(), "{name}: {:?}", r.checks.violation);
        series.push((name, std::mem::take(&mut r.site_stats[sg])));
    }
    print_cdf_table(
        "Figure 6: latency CDF at SG (five replicas, imbalanced, leader CA)",
        &mut series,
        21,
    );
}
