//! Table IV: latency reduction of Clock-RSM over Paxos-bcast across all
//! EC2 data-center combinations. Negative reduction means Clock-RSM
//! provides higher latency (typically at the Paxos-bcast leader).

use analysis::numeric;

fn main() {
    println!("\n=== Table IV: latency reduction of Clock-RSM over Paxos-bcast ===");
    println!(
        "{:<12}{:>12}{:>22}{:>22}",
        "replicas", "percentage", "absolute reduction", "relative reduction"
    );
    for size in [3usize, 5, 7] {
        let s = numeric::sweep(size);
        println!(
            "{:<12}{:>11.1}%{:>20.1}ms{:>21.1}%",
            format!("{size} replicas"),
            s.wins.fraction * 100.0,
            s.wins.absolute_ms,
            s.wins.relative * 100.0,
        );
        println!(
            "{:<12}{:>11.1}%{:>20.1}ms{:>21.1}%",
            "",
            s.losses.fraction * 100.0,
            s.losses.absolute_ms,
            s.losses.relative * 100.0,
        );
    }
    println!("(paper: 3r: 0%/-9.9ms/-6.2%; 5r: 68.6%/31.9ms/15.2% and 31.4%/-30.6ms/-14.6%;");
    println!(" 7r: 85.7%/50.2ms/21.5% and 14.3%/-39.4ms/-16.9%)");
}
