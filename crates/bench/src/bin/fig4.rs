//! Figure 4: commit latency distribution (CDF) at the CA replica with
//! three replicas, leader at VA, balanced workload.

use analysis::ec2;
use bench::{print_cdf_table, with_windows};
use harness::{run_latency, ExperimentConfig, ProtocolChoice};

fn main() {
    let (_, matrix) = ec2::three_site_deployment();
    let ca = 0usize;
    let cfg = with_windows(ExperimentConfig::new(matrix));

    let mut series = Vec::new();
    for choice in [
        ProtocolChoice::paxos(1),
        ProtocolChoice::mencius(),
        ProtocolChoice::paxos_bcast(1),
        ProtocolChoice::clock_rsm(),
    ] {
        let name = choice.name().to_string();
        let mut r = run_latency(choice, &cfg);
        assert!(r.checks.all_ok(), "{name}: {:?}", r.checks.violation);
        series.push((name, std::mem::take(&mut r.site_stats[ca])));
    }
    print_cdf_table(
        "Figure 4: latency CDF at CA (three replicas, leader VA, balanced)",
        &mut series,
        21,
    );
}
