//! Ablation: clock synchronization quality vs commit latency. The
//! paper's design rule is that skew affects only latency, never safety:
//! this sweep runs the balanced five-site workload with synchronization
//! bounds from perfect clocks to multi-second skew, asserting the
//! correctness checks at every point.

use analysis::ec2;
use bench::with_windows;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use simnet::ClockModel;

fn main() {
    let (sites, matrix) = ec2::five_site_deployment();
    println!("\n=== Ablation: clock sync bound vs Clock-RSM latency (balanced) ===");
    print!("{:<14}", "bound");
    for s in &sites {
        print!("{:>10}", s.name());
    }
    println!("{:>10}", "safe?");
    for bound_us in [0u64, 1_000, 10_000, 50_000, 200_000, 1_000_000] {
        let cfg = with_windows(ExperimentConfig::new(matrix.clone()))
            .clock(ClockModel::ntp(bound_us))
            .clients_per_site(20);
        let r = run_latency(ProtocolChoice::clock_rsm(), &cfg);
        assert!(
            r.checks.all_ok(),
            "safety violated at bound {bound_us}: {:?}",
            r.checks.violation
        );
        print!("{:<14}", format!("{} ms", bound_us / 1_000));
        for i in 0..sites.len() {
            print!("{:>10.1}", r.site_stats[i].mean_ms());
        }
        println!("{:>10}", "yes");
    }
    println!("(average commit latency ms; linearizability checked at every bound)");
}
