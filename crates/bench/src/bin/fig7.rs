//! Figure 7: average commit latency over **all** combinations of 3, 5,
//! and 7 EC2 data centers (numerical evaluation of the Table II
//! formulas). "all" averages over every replica of every group; "highest"
//! averages each group's worst replica. Paxos-bcast uses the best leader
//! per group.

use analysis::numeric;

fn main() {
    println!("\n=== Figure 7: average commit latency over all DC combinations ===");
    println!(
        "{:<12}{:>10}{:>18}{:>16}{:>22}{:>20}",
        "groups",
        "count",
        "Paxos-bcast all",
        "Clock-RSM all",
        "Paxos-bcast highest",
        "Clock-RSM highest"
    );
    for size in [3usize, 5, 7] {
        let s = numeric::sweep(size);
        println!(
            "{:<12}{:>10}{:>18.1}{:>16.1}{:>22.1}{:>20.1}",
            format!("{size} replicas"),
            s.group_count,
            s.avg_all_paxos_bcast_ms,
            s.avg_all_clock_rsm_ms,
            s.avg_highest_paxos_bcast_ms,
            s.avg_highest_clock_rsm_ms,
        );
    }
    println!("(latency in ms; paper Figure 7 shows the same four bars per group size)");
}
