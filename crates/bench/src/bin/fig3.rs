//! Figure 3: commit latency distribution (CDF) at the JP replica with
//! five replicas, leader at CA, balanced workload.

use analysis::ec2;
use bench::{print_cdf_table, with_windows};
use harness::{run_latency, ExperimentConfig, ProtocolChoice};

fn main() {
    let (sites, matrix) = ec2::five_site_deployment();
    let jp = sites.iter().position(|s| s.name() == "JP").expect("JP");
    let cfg = with_windows(ExperimentConfig::new(matrix));

    let mut series = Vec::new();
    for choice in [
        ProtocolChoice::paxos(0),
        ProtocolChoice::mencius(),
        ProtocolChoice::paxos_bcast(0),
        ProtocolChoice::clock_rsm(),
    ] {
        let name = choice.name().to_string();
        let mut r = run_latency(choice, &cfg);
        assert!(r.checks.all_ok(), "{name}: {:?}", r.checks.violation);
        series.push((name, std::mem::take(&mut r.site_stats[jp])));
    }
    print_cdf_table(
        "Figure 3: latency CDF at JP (five replicas, leader CA, balanced)",
        &mut series,
        21,
    );
}
