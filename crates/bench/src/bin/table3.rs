//! Table III: the average round-trip latencies between EC2 data centers
//! that drive both the analytical model and the simulator.

use analysis::ec2;

fn main() {
    println!("\n=== Table III: average RTT (ms) between EC2 data centers ===\n");
    print!("{:<6}", "");
    for s in ec2::ALL_SITES {
        print!("{:>7}", s.name());
    }
    println!();
    for (i, row) in ec2::RTT_MS.iter().enumerate() {
        print!("{:<6}", ec2::ALL_SITES[i].name());
        for v in row {
            print!("{v:>7.0}");
        }
        println!();
    }
    println!("\nThe simulator uses one-way latency = RTT/2 (symmetric links),");
    println!("exactly as the paper's latency analysis assumes (Section IV).");
}
