//! Canonical performance baseline: a fixed throughput/latency matrix —
//! 3 protocols × {light, heavy} load × {static 1, static 64, adaptive},
//! plus a **read-heavy (90/10) geo scenario** per protocol — written to
//! machine-readable `BENCH_perf.json` so every future PR has a
//! trajectory to compare against.
//!
//! The batching matrix is the adaptive-batching acceptance experiment:
//!
//! * **heavy** load (saturating closed-loop clients, 10 B commands, the
//!   default CPU cost model) measures throughput — adaptive must land
//!   within 10 % of the best static policy (full amortization).
//! * **light** load (2 clients per site with think time) measures p50
//!   commit latency — adaptive must stay within 10 % of static batch=1
//!   (no batching tax when there is nothing to batch).
//!
//! The **readmix** column is the local-read acceptance experiment
//! (`rsm_core::read`): a 90/10 mix on a 25 ms-one-way geo topology with
//! ±1 ms NTP clocks, reporting read and write p50/p99 separately. The
//! gate: Clock-RSM's stable-timestamp local reads must land strictly
//! below its write commits at the median, and every protocol must
//! produce read samples (the read path is alive, not silently falling
//! back to replication).
//!
//! The **shard sweep** is the scale-out acceptance experiment
//! (`rsm-shard`): 1/2/4/8 independent Clock-RSM groups, each offered
//! the same saturating per-group load (weak scaling), reporting the
//! aggregate committed throughput per shard count.
//!
//! The **loopback** section is the wire-codec/transport acceptance
//! experiment (`rsm_core::wire` + `rsm-transport`): each protocol runs
//! in the threaded runtime twice — in-process channels vs real loopback
//! TCP sockets with the binary wire format — under the same saturating
//! closed-loop load. Real encode/decode, framing, and kernel round
//! trips replace channel sends; the gate requires the TCP row to hold
//! at least half the in-process throughput (a codec or framing
//! regression shows up as a collapse here long before it matters on a
//! real network).
//!
//! Schema v6 adds two observability sections, `latency_breakdown` and
//! `obs_overhead`, emitted as single-line placeholders here and filled
//! **in place** by the `obs_report` binary (run it after this one; see
//! its doc header for the column definitions and the gates it applies).
//!
//! Run with `cargo run -p bench --release --bin perf_baseline`.
//! `BENCH_QUICK=1` shrinks the windows for smoke runs; `--check` exits
//! non-zero if the adaptive policy's heavy-load throughput regresses
//! more than 20 % below static-64 for any protocol, the read-mix gate
//! fails, the 8-shard aggregate lands below 4x the single-shard row,
//! or a loopback-TCP row falls below half its in-process twin (the CI
//! gates); `BENCH_PERF_OUT` overrides the output path.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::quick;
use clock_rsm::{ClockRsm, ClockRsmConfig};
use harness::{
    run_latency, run_sharded, ExperimentConfig, ExperimentResult, ProtocolChoice, ShardedConfig,
    ShardedResult,
};
use kvstore::{KvOp, KvStore};
use mencius::MenciusBcast;
use paxos::{MultiPaxos, PaxosVariant};
use rsm_core::protocol::Protocol;
use rsm_core::time::MILLIS;
use rsm_core::wire::WireMsg;
use rsm_core::{BatchPolicy, LatencyMatrix, Membership, ReplicaId};
use rsm_runtime::{Cluster, ClusterConfig, ClusterTransport};
use simnet::{ClockModel, CpuModel};

/// The CI regression gate: adaptive heavy-load throughput must stay
/// within this fraction of static-64.
const CHECK_FLOOR: f64 = 0.80;

/// The scale-out regression gate: the 8-shard Clock-RSM aggregate must
/// deliver at least this multiple of the single-shard row (sub-linear
/// scaling collapse fails `--check`).
const SHARD_SCALE_FLOOR: f64 = 4.0;

/// The transport regression gate: each protocol's loopback-TCP row must
/// hold at least this fraction of its in-process twin's throughput.
/// Sockets pay real encode/decode, framing, and kernel round trips, so
/// parity is not expected — but a codec or transport regression that
/// halves throughput over loopback fails `--check`.
const LOOPBACK_FLOOR: f64 = 0.5;

/// The acceptance targets the JSON records (informational in `--check`
/// smoke runs, the real bar for full runs).
const TARGET_THROUGHPUT_FRAC: f64 = 0.90;
const TARGET_P50_FRAC: f64 = 1.10;

struct Cell {
    protocol: &'static str,
    load: &'static str,
    policy: &'static str,
    throughput_kops: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Read/write latency split; zero outside the readmix scenario.
    read_p50_ms: f64,
    read_p99_ms: f64,
    write_p50_ms: f64,
    write_p99_ms: f64,
    read_count: usize,
}

fn policies() -> [(&'static str, BatchPolicy); 3] {
    [
        ("static1", BatchPolicy::DISABLED),
        ("static64", BatchPolicy::max(64)),
        ("adaptive", BatchPolicy::adaptive(64)),
    ]
}

/// Measurement windows for both load shapes: `BENCH_QUICK` shrinks
/// them (and the heavy-load client count) for CI smoke runs.
fn windows() -> (u64, u64) {
    if quick() {
        (200 * MILLIS, 1_000 * MILLIS)
    } else {
        (500 * MILLIS, 2_000 * MILLIS)
    }
}

fn heavy(choice: ProtocolChoice, policy: BatchPolicy) -> ExperimentResult {
    // The emulated local cluster of `run_throughput` (0.25 ms one-way,
    // saturating closed-loop clients, CPU cost model), built directly
    // so the windows honor BENCH_QUICK.
    let clients = if quick() { 20 } else { 40 };
    let (warmup, duration) = windows();
    let cfg = ExperimentConfig::new(LatencyMatrix::uniform(5, 250))
        .seed(11)
        .clients_per_site(clients)
        .think_max_us(0)
        .value_bytes(10)
        .warmup_us(warmup)
        .duration_us(duration)
        .cpu(CpuModel::default())
        .batch(policy)
        .record_ops(false);
    run_latency(choice, &cfg)
}

/// The read-heavy geo scenario: 90/10 mix, 25 ms one-way between three
/// sites, ±1 ms NTP clocks, no CPU model (a latency experiment), reads
/// routed down each protocol's local read path.
fn readmix(choice: ProtocolChoice) -> ExperimentResult {
    let (warmup, duration) = windows();
    let cfg = ExperimentConfig::new(LatencyMatrix::uniform(3, 25_000))
        .seed(11)
        .clients_per_site(4)
        .think_max_us(20 * MILLIS)
        .read_fraction(0.9)
        .clock(ClockModel::ntp(MILLIS))
        .warmup_us(warmup)
        .duration_us(2 * duration)
        .record_ops(false);
    run_latency(choice, &cfg)
}

fn light(choice: ProtocolChoice, policy: BatchPolicy) -> ExperimentResult {
    // Same emulated local cluster, but two clients per site pacing
    // themselves with think time: queues stay shallow, so per-command
    // latency is what the policy can win or lose.
    let (warmup, duration) = windows();
    let cfg = ExperimentConfig::new(LatencyMatrix::uniform(5, 250))
        .seed(11)
        .clients_per_site(2)
        .think_max_us(20 * MILLIS)
        .value_bytes(10)
        .warmup_us(warmup)
        .duration_us(duration)
        .cpu(CpuModel::default())
        .batch(policy)
        .record_ops(false);
    run_latency(choice, &cfg)
}

/// One shard-sweep cell: `shards` independent Clock-RSM groups over the
/// emulated local cluster, each offered the same saturating per-group
/// load as the `heavy` scenario (clients scale with the shard count, a
/// weak-scaling sweep), static-64 batching. The aggregate row is the
/// summed committed throughput across groups.
fn shard_cell(shards: usize) -> ShardedResult {
    let per_site = if quick() { 20 } else { 40 } * shards;
    let (warmup, duration) = windows();
    let base = ExperimentConfig::new(LatencyMatrix::uniform(5, 250))
        .seed(11)
        .clients_per_site(per_site)
        .think_max_us(0)
        .value_bytes(10)
        .warmup_us(warmup)
        .duration_us(duration)
        .cpu(CpuModel::default())
        .batch(BatchPolicy::max(64))
        .record_ops(false);
    run_sharded(
        ProtocolChoice::clock_rsm(),
        &ShardedConfig::new(base, shards),
    )
}

/// One loopback-transport row: a protocol in the threaded runtime over
/// one message plane.
struct LoopRow {
    protocol: &'static str,
    transport: &'static str,
    throughput_kops: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Runs one protocol in the **threaded runtime** (real OS threads, real
/// wall-clock time) over the chosen message plane, under a saturating
/// closed-loop load, and measures per-command wall-clock latency.
///
/// Unlike the simulator rows this measures the actual codec and
/// transport code: in socket modes every protocol message is encoded
/// with the binary wire format, framed, and round-trips through the
/// kernel's loopback stack.
fn run_loopback<P>(
    protocol: &'static str,
    transport_name: &'static str,
    transport: ClusterTransport,
    factory: impl FnMut(ReplicaId) -> P,
) -> LoopRow
where
    P: Protocol + Send + 'static,
    P::Msg: WireMsg,
{
    let (warmup_us, duration_us) = windows();
    let sites: u16 = 3;
    let per_site = if quick() { 4 } else { 8 };
    // A local cluster (0.25 ms one-way, like the heavy scenario) so the
    // transport — not the emulated WAN — dominates the measurement.
    let cfg = ClusterConfig::new(LatencyMatrix::uniform(sites as usize, 250))
        .batch_policy(BatchPolicy::max(64))
        .transport(transport);
    let cluster = Arc::new(Cluster::spawn(cfg, factory, || Box::new(KvStore::new())));
    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));

    let mut clients = Vec::new();
    for site in 0..sites {
        for c in 0..per_site {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            let measuring = Arc::clone(&measuring);
            clients.push(std::thread::spawn(move || {
                let site = ReplicaId::new(site);
                let key = format!("k{}-{c}", site.index());
                let mut lat_us: Vec<u64> = Vec::new();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let t0 = Instant::now();
                    let ok = cluster
                        .execute(
                            site,
                            KvOp::put(key.clone(), format!("v{i}")).encode(),
                            Duration::from_secs(5),
                        )
                        .is_ok();
                    if ok && measuring.load(Ordering::Relaxed) {
                        lat_us.push(t0.elapsed().as_micros() as u64);
                    }
                }
                lat_us
            }));
        }
    }

    std::thread::sleep(Duration::from_micros(warmup_us));
    measuring.store(true, Ordering::Relaxed);
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_micros(duration_us));
    measuring.store(false, Ordering::Relaxed);
    let measured = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);

    let mut lat_us: Vec<u64> = Vec::new();
    for h in clients {
        lat_us.extend(h.join().expect("client thread panicked"));
    }
    if let Ok(cluster) = Arc::try_unwrap(cluster) {
        cluster.shutdown();
    }

    lat_us.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat_us.is_empty() {
            return 0.0;
        }
        let idx = ((lat_us.len() as f64 * p) as usize).min(lat_us.len() - 1);
        lat_us[idx] as f64 / 1_000.0
    };
    LoopRow {
        protocol,
        transport: transport_name,
        throughput_kops: lat_us.len() as f64 / measured / 1_000.0,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }
}

/// The loopback matrix: each protocol over in-process channels and over
/// loopback TCP (the `--check` gate compares the pair).
fn loopback_rows() -> Vec<LoopRow> {
    let planes = [
        ("thread-inproc", ClusterTransport::InProcess),
        ("thread-tcp", ClusterTransport::Tcp),
    ];
    let mut rows = Vec::new();
    for (tname, transport) in planes {
        rows.push(run_loopback("Clock-RSM", tname, transport, |id| {
            ClockRsm::new(id, Membership::uniform(3), ClockRsmConfig::default())
        }));
    }
    for (tname, transport) in planes {
        rows.push(run_loopback("Paxos", tname, transport, |id| {
            MultiPaxos::new(
                id,
                Membership::uniform(3),
                ReplicaId::new(0),
                PaxosVariant::Bcast,
            )
        }));
    }
    for (tname, transport) in planes {
        rows.push(run_loopback("Mencius-bcast", tname, transport, |id| {
            MenciusBcast::new(id, Membership::uniform(3))
        }));
    }
    rows
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let out_path =
        std::env::var("BENCH_PERF_OUT").unwrap_or_else(|_| "BENCH_perf.json".to_string());

    let protocols = [
        ProtocolChoice::clock_rsm(),
        ProtocolChoice::paxos(0),
        ProtocolChoice::mencius(),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for choice in &protocols {
        for (pname, policy) in policies() {
            for (load, r) in [
                ("light", light(choice.clone(), policy)),
                ("heavy", heavy(choice.clone(), policy)),
            ] {
                eprintln!(
                    "{:<14} {:<6} {:<9} {:>8.1} kops/s  p50 {:>6.2} ms  p99 {:>6.2} ms",
                    r.protocol, load, pname, r.throughput_kops, r.p50_ms, r.p99_ms
                );
                cells.push(Cell {
                    protocol: r.protocol,
                    load,
                    policy: pname,
                    throughput_kops: r.throughput_kops,
                    p50_ms: r.p50_ms,
                    p99_ms: r.p99_ms,
                    read_p50_ms: 0.0,
                    read_p99_ms: 0.0,
                    write_p50_ms: 0.0,
                    write_p99_ms: 0.0,
                    read_count: 0,
                });
            }
        }
        // The read-heavy geo scenario (policy-independent: reads bypass
        // the batching pipeline by construction).
        let r = readmix(choice.clone());
        eprintln!(
            "{:<14} {:<6} {:<9} {:>8.1} kops/s  read p50 {:>6.2} ms  write p50 {:>6.2} ms",
            r.protocol, "readmx", "local", r.throughput_kops, r.read_p50_ms, r.write_p50_ms
        );
        cells.push(Cell {
            protocol: r.protocol,
            load: "readmix",
            policy: "local",
            throughput_kops: r.throughput_kops,
            p50_ms: r.p50_ms,
            p99_ms: r.p99_ms,
            read_p50_ms: r.read_p50_ms,
            read_p99_ms: r.read_p99_ms,
            write_p50_ms: r.write_p50_ms,
            write_p99_ms: r.write_p99_ms,
            read_count: r.read_count,
        });
    }

    let get = |protocol: &str, load: &str, policy: &str| -> &Cell {
        cells
            .iter()
            .find(|c| c.protocol == protocol && c.load == load && c.policy == policy)
            .expect("full matrix")
    };

    // Per-protocol acceptance summary.
    let mut summaries = Vec::new();
    let mut failures = Vec::new();
    println!("\n=== Adaptive batching vs static baselines ===");
    println!(
        "{:<14}{:>16}{:>16}{:>14}{:>14}",
        "protocol", "heavy adp/best", "heavy adp/s64", "light p50/s1", "verdict"
    );
    for choice in &protocols {
        let name = choice.name();
        let s1 = get(name, "heavy", "static1").throughput_kops;
        let s64 = get(name, "heavy", "static64").throughput_kops;
        let adp = get(name, "heavy", "adaptive").throughput_kops;
        let best = s1.max(s64);
        let tp_vs_best = adp / best.max(1e-9);
        let tp_vs_s64 = adp / s64.max(1e-9);
        let p50_s1 = get(name, "light", "static1").p50_ms;
        let p50_adp = get(name, "light", "adaptive").p50_ms;
        let p50_frac = p50_adp / p50_s1.max(1e-9);
        let meets = tp_vs_best >= TARGET_THROUGHPUT_FRAC && p50_frac <= TARGET_P50_FRAC;
        println!(
            "{name:<14}{:>15.1}%{:>15.1}%{:>13.1}%{:>14}",
            tp_vs_best * 100.0,
            tp_vs_s64 * 100.0,
            p50_frac * 100.0,
            if meets { "ok" } else { "MISS" }
        );
        if check && tp_vs_s64 < CHECK_FLOOR {
            failures.push(format!(
                "{name}: adaptive heavy throughput {adp:.1}k is {:.1}% of static-64 \
                 {s64:.1}k (floor {:.0}%)",
                tp_vs_s64 * 100.0,
                CHECK_FLOOR * 100.0
            ));
        }
        summaries.push((name, tp_vs_best, tp_vs_s64, p50_frac, meets));
    }

    // Read-mix acceptance: local reads alive everywhere; Clock-RSM's
    // stable-timestamp reads strictly undercut its write commits.
    println!("\n=== Read-heavy (90/10) geo scenario ===");
    println!(
        "{:<14}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "protocol", "read p50", "read p99", "write p50", "write p99", "verdict"
    );
    let mut read_summaries = Vec::new();
    for choice in &protocols {
        let name = choice.name();
        let c = get(name, "readmix", "local");
        let alive = c.read_count > 0;
        let local_wins = c.read_p50_ms < c.write_p50_ms;
        let meets = alive && (name != "Clock-RSM" || local_wins);
        println!(
            "{name:<14}{:>10.2}ms{:>10.2}ms{:>10.2}ms{:>10.2}ms{:>10}",
            c.read_p50_ms,
            c.read_p99_ms,
            c.write_p50_ms,
            c.write_p99_ms,
            if meets { "ok" } else { "MISS" }
        );
        if check {
            if !alive {
                failures.push(format!(
                    "{name}: read-mix scenario produced no read samples \
                     (local read path dead?)"
                ));
            }
            if name == "Clock-RSM" && !local_wins {
                failures.push(format!(
                    "{name}: local-read p50 {:.2} ms not below write-commit \
                     p50 {:.2} ms",
                    c.read_p50_ms, c.write_p50_ms
                ));
            }
        }
        read_summaries.push((name, c.read_p50_ms, c.write_p50_ms, meets));
    }

    // The scale-out sweep: 1/2/4/8 independent Clock-RSM groups, each
    // saturated like the heavy scenario. The gate judges the 8-shard
    // aggregate against 4x the single-shard row.
    println!("\n=== Keyspace shard sweep (Clock-RSM, weak scaling) ===");
    println!(
        "{:<8}{:>16}{:>14}{:>12}{:>12}",
        "shards", "aggregate kops", "per-shard avg", "p50 ms", "p99 ms"
    );
    let sweep: Vec<ShardedResult> = [1usize, 2, 4, 8].iter().map(|&s| shard_cell(s)).collect();
    for r in &sweep {
        println!(
            "{:<8}{:>16.1}{:>14.1}{:>12.2}{:>12.2}",
            r.shards,
            r.aggregate.throughput_kops,
            r.aggregate.throughput_kops / r.shards as f64,
            r.aggregate.p50_ms,
            r.aggregate.p99_ms
        );
    }
    let shard1 = sweep[0].aggregate.throughput_kops;
    let shard8 = sweep[3].aggregate.throughput_kops;
    let scale8 = shard8 / shard1.max(1e-9);
    println!("8-shard scaling: {scale8:.2}x the single-shard row");
    if check && scale8 < SHARD_SCALE_FLOOR {
        failures.push(format!(
            "shard sweep: 8-shard aggregate {shard8:.1}k is only {scale8:.2}x the \
             1-shard row {shard1:.1}k (floor {SHARD_SCALE_FLOOR:.0}x)"
        ));
    }

    // The loopback transport matrix: the threaded runtime over channels
    // vs real TCP sockets with the binary wire codec.
    println!("\n=== Threaded runtime: in-process vs loopback TCP ===");
    println!(
        "{:<14}{:<15}{:>12}{:>10}{:>10}",
        "protocol", "transport", "kops/s", "p50 ms", "p99 ms"
    );
    let loopback = loopback_rows();
    for r in &loopback {
        println!(
            "{:<14}{:<15}{:>12.1}{:>10.2}{:>10.2}",
            r.protocol, r.transport, r.throughput_kops, r.p50_ms, r.p99_ms
        );
    }
    for pair in loopback.chunks(2) {
        let (inproc, tcp) = (&pair[0], &pair[1]);
        let frac = tcp.throughput_kops / inproc.throughput_kops.max(1e-9);
        println!(
            "{}: tcp holds {:.1}% of in-process throughput",
            tcp.protocol,
            frac * 100.0
        );
        if check && frac < LOOPBACK_FLOOR {
            failures.push(format!(
                "{}: loopback-TCP throughput {:.1}k is {:.1}% of in-process \
                 {:.1}k (floor {:.0}%)",
                tcp.protocol,
                tcp.throughput_kops,
                frac * 100.0,
                inproc.throughput_kops,
                LOOPBACK_FLOOR * 100.0
            ));
        }
    }

    // Machine-readable trajectory record (no serde in this workspace:
    // the JSON is assembled by hand).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"clock-rsm-repro/perf-baseline/v6\",");
    let _ = writeln!(json, "  \"quick\": {},", quick());
    let _ = writeln!(
        json,
        "  \"targets\": {{ \"heavy_throughput_vs_best_static_min\": {TARGET_THROUGHPUT_FRAC}, \
         \"light_p50_vs_static1_max\": {TARGET_P50_FRAC}, \
         \"readmix_clock_rsm_read_p50_below_write_p50\": true, \
         \"shard8_aggregate_vs_shard1_min\": {SHARD_SCALE_FLOOR}, \
         \"loopback_tcp_vs_inproc_min\": {LOOPBACK_FLOOR} }},"
    );
    // Schema-v6 observability sections, filled **in place** by the
    // `obs_report` binary (kept to single lines so its substitution is
    // line-based; run it after this one).
    json.push_str("  \"latency_breakdown\": [],\n");
    json.push_str("  \"obs_overhead\": [],\n");
    json.push_str("  \"entries\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"protocol\": \"{}\", \"load\": \"{}\", \"policy\": \"{}\", \
             \"throughput_kops\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}",
            c.protocol, c.load, c.policy, c.throughput_kops, c.p50_ms, c.p99_ms
        );
        if c.load == "readmix" {
            let _ = write!(
                json,
                ", \"read_p50_ms\": {:.3}, \"read_p99_ms\": {:.3}, \
                 \"write_p50_ms\": {:.3}, \"write_p99_ms\": {:.3}, \
                 \"read_count\": {}",
                c.read_p50_ms, c.read_p99_ms, c.write_p50_ms, c.write_p99_ms, c.read_count
            );
        }
        json.push_str(" }");
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"summary\": [\n");
    for (i, (name, vs_best, vs_s64, p50_frac, meets)) in summaries.iter().enumerate() {
        let (_, read_p50, write_p50, read_meets) = read_summaries[i];
        let _ = write!(
            json,
            "    {{ \"protocol\": \"{name}\", \"heavy_adaptive_vs_best_static\": {vs_best:.4}, \
             \"heavy_adaptive_vs_static64\": {vs_s64:.4}, \
             \"light_adaptive_p50_vs_static1\": {p50_frac:.4}, \"meets_targets\": {meets}, \
             \"readmix_read_p50_ms\": {read_p50:.3}, \"readmix_write_p50_ms\": {write_p50:.3}, \
             \"readmix_meets_targets\": {read_meets} }}"
        );
        json.push_str(if i + 1 < summaries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"shard_sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        let per_shard: Vec<String> = r
            .per_shard
            .iter()
            .map(|p| format!("{:.3}", p.throughput_kops))
            .collect();
        let _ = write!(
            json,
            "    {{ \"protocol\": \"{}\", \"shards\": {}, \"aggregate_kops\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"per_shard_kops\": [{}] }}",
            r.protocol,
            r.shards,
            r.aggregate.throughput_kops,
            r.aggregate.p50_ms,
            r.aggregate.p99_ms,
            per_shard.join(", ")
        );
        json.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"loopback\": [\n");
    for (i, r) in loopback.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"protocol\": \"{}\", \"transport\": \"{}\", \
             \"throughput_kops\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3} }}",
            r.protocol, r.transport, r.throughput_kops, r.p50_ms, r.p99_ms
        );
        json.push_str(if i + 1 < loopback.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_perf.json");
    println!("\nwrote {out_path}");

    if !failures.is_empty() {
        eprintln!("\nperf_baseline --check FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
