//! Batch-size × command-size throughput sweep for the protocol-level
//! batching introduced with the `Batch` refactor.
//!
//! Where `ablation_batching` varies the *CPU model's* fixed per-batch
//! cost (an environmental sensitivity study), this sweep varies the
//! *protocol's* own batching knob: drivers coalesce queued client
//! requests into batches of up to `max_batch` commands, and each batch
//! is replicated with one `PREPAREBATCH`/`ACCEPT`/`PROPOSE` and one
//! cumulative acknowledgement. Expect small commands to gain the most
//! (their per-message fixed costs dominate) and kilobyte commands the
//! least (the byte funnel, not the message rate, is the bottleneck).

use bench::quick;
use harness::{run_throughput, ProtocolChoice};
use rsm_core::BatchPolicy;
use simnet::CpuModel;

fn main() {
    let clients = if quick() { 20 } else { 60 };
    let batches: &[usize] = &[1, 2, 4, 8, 16, 32, 64];
    println!("\n=== Batch sweep: protocol-level batching vs throughput (kops/s) ===");
    for choice in [
        ProtocolChoice::clock_rsm(),
        ProtocolChoice::mencius(),
        ProtocolChoice::paxos(0),
        ProtocolChoice::paxos_bcast(0),
    ] {
        println!("\n--- {} ---", choice.name());
        print!("{:<12}", "cmd size");
        for b in batches {
            print!("{:>9}", format!("b={b}"));
        }
        println!("{:>10}", "64/1");
        for size in [10usize, 100, 1000] {
            print!("{:<12}", format!("{size}B"));
            let mut first = 0.0f64;
            let mut last = 0.0f64;
            for (i, &b) in batches.iter().enumerate() {
                let r = run_throughput(
                    choice.clone(),
                    size,
                    clients,
                    CpuModel::default(),
                    11,
                    BatchPolicy::max(b),
                );
                if i == 0 {
                    first = r.throughput_kops;
                }
                last = r.throughput_kops;
                print!("{:>8.1}k", r.throughput_kops);
            }
            println!("{:>9.2}x", last / first.max(0.001));
        }
    }
    println!(
        "\n(committed commands per second, thousands; rightmost column is the \
         batch-64 speedup over unbatched)"
    );
}
