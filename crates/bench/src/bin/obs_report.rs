//! Per-command latency breakdown from trace spans: the observability
//! acceptance experiment, and the live validation of the paper's
//! latency decomposition.
//!
//! Clock-RSM's central claim is that commit latency is a **max of
//! overlapped terms** — majority prepare-replication vs the
//! stable-timestamp advance — rather than a sum of sequential phases.
//! This binary runs the geo read-mix workload (25 ms one-way between
//! three sites, ±1 ms NTP clocks, 90/10 reads) for each protocol with
//! full span tracing (`rsm-obs`), aggregates the per-stage medians
//! into a latency-breakdown table, and writes it into
//! `BENCH_perf.json` (schema v6) next to `perf_baseline`'s matrix.
//!
//! Breakdown columns (median virtual milliseconds over every traced
//! write):
//!
//! * `submit_to_propose` — client request arrival at the origin to the
//!   protocol stamping/sequencing it (queueing + batching delay).
//! * `propose_to_replicate` — stamping to majority acknowledgment.
//! * `propose_to_stable` — stamping to the stable-timestamp advance
//!   past the command (Clock-RSM only; the term replication overlaps).
//! * `propose_to_commit` — stamping to commit: for Clock-RSM this is
//!   `~max(replicate, stable)`, the paper's decomposition.
//! * `commit_to_execute`, `execute_to_reply` — apply + reply delivery.
//!
//! `--check` gates on the breakdown invariants:
//!
//! 1. no term's p50 exceeds the end-to-end p50 (a stage cannot take
//!    longer than the whole pipeline);
//! 2. the telescoping terms sum-consistently with the end-to-end p50
//!    (within ±30 %: medians do not telescope exactly, means do);
//! 3. Clock-RSM's stable-wait term is nonzero under geo delay, and its
//!    replicate-vs-stable ordering agrees **directionally** with the
//!    `analysis` model (`2·median_from` vs `max_from`);
//! 4. every replica's `commands.executed` counter equals its commit
//!    count (the instrumentation does not miscount);
//! 5. the instrumented heavy-throughput run lands within 5 % of its
//!    uninstrumented twin (observability must be ~free).
//!
//! Run **after** `perf_baseline` (it substitutes the single-line
//! `"latency_breakdown"` / `"obs_overhead"` placeholder sections in
//! place); standalone runs write a fresh skeleton file instead.
//! `BENCH_QUICK=1` shrinks the windows; `BENCH_PERF_OUT` overrides the
//! path.

use std::fmt::Write as _;
use std::time::Instant;

use analysis::model;
use bench::quick;
use harness::{run_latency, ExperimentConfig, ExperimentResult, ProtocolChoice};
use rsm_core::obs::TraceStage;
use rsm_core::time::MILLIS;
use rsm_core::{BatchPolicy, LatencyMatrix, ReplicaId};
use rsm_obs::{ObsConfig, Span};
use simnet::{ClockModel, CpuModel};

/// Instrumented-vs-uninstrumented heavy-throughput gate: the
/// instrumented run must land within this fraction of its twin.
const OVERHEAD_MAX_FRAC: f64 = 0.05;

/// Sum-consistency gate: the telescoping term p50s must land within
/// this fraction of the end-to-end p50 (medians do not telescope
/// exactly; a larger gap means the terms describe a different
/// population than the end-to-end number).
const SUM_TOLERANCE_FRAC: f64 = 0.30;

/// Slow-command threshold for the report's slow log (µs): anything
/// past the geo topology's worst honest round trip gets dumped.
const SLOW_US: u64 = 150_000;

fn windows() -> (u64, u64) {
    if quick() {
        (200 * MILLIS, 2_000 * MILLIS)
    } else {
        (500 * MILLIS, 4_000 * MILLIS)
    }
}

/// The geo read-mix scenario of `perf_baseline`, instrumented: full
/// span sampling, slow-command log at [`SLOW_US`].
fn traced_readmix(choice: ProtocolChoice) -> ExperimentResult {
    let (warmup, duration) = windows();
    let cfg = ExperimentConfig::new(geo_matrix())
        .seed(11)
        .clients_per_site(4)
        .think_max_us(20 * MILLIS)
        .read_fraction(0.9)
        .clock(ClockModel::ntp(MILLIS))
        .warmup_us(warmup)
        .duration_us(duration)
        .record_ops(false)
        .observe(ObsConfig::all().slow_threshold(SLOW_US));
    run_latency(choice, &cfg)
}

fn geo_matrix() -> LatencyMatrix {
    LatencyMatrix::uniform(3, 25_000)
}

/// One heavy-load cell (the `perf_baseline` heavy scenario), with or
/// without instrumentation, for the overhead gate.
fn heavy(choice: ProtocolChoice, observe: bool) -> (ExperimentResult, f64) {
    let clients = if quick() { 20 } else { 40 };
    let (warmup, duration) = windows();
    let mut cfg = ExperimentConfig::new(LatencyMatrix::uniform(5, 250))
        .seed(11)
        .clients_per_site(clients)
        .think_max_us(0)
        .value_bytes(10)
        .warmup_us(warmup)
        .duration_us(duration / 2)
        .cpu(CpuModel::default())
        .batch(BatchPolicy::max(64))
        .record_ops(false);
    if observe {
        cfg = cfg.observe(ObsConfig::all());
    }
    let t0 = Instant::now();
    let r = run_latency(choice, &cfg);
    (r, t0.elapsed().as_secs_f64())
}

/// Median of stage-pair deltas (virtual ms) over the spans that carry
/// both stamps; `None` when no span does.
fn term_p50_ms(spans: &[Span], earlier: TraceStage, later: TraceStage) -> Option<f64> {
    let mut deltas: Vec<u64> = spans
        .iter()
        .filter_map(|s| s.delta(earlier.index(), later.index()))
        .collect();
    if deltas.is_empty() {
        return None;
    }
    deltas.sort_unstable();
    Some(deltas[deltas.len() / 2] as f64 / 1_000.0)
}

/// The per-protocol breakdown row.
struct Breakdown {
    protocol: &'static str,
    spans: usize,
    open_spans: usize,
    slow_spans: usize,
    e2e_p50_ms: f64,
    submit_to_propose_ms: f64,
    propose_to_replicate_ms: Option<f64>,
    propose_to_stable_ms: Option<f64>,
    propose_to_commit_ms: f64,
    commit_to_execute_ms: f64,
    execute_to_reply_ms: f64,
    /// Telescoping sum of the sequential terms (compare to `e2e_p50_ms`).
    term_sum_ms: f64,
    /// `analysis` model commit prediction for this protocol on the geo
    /// matrix, median over origin replicas, ms.
    model_commit_ms: f64,
}

fn breakdown(protocol: &'static str, r: &ExperimentResult) -> Breakdown {
    use TraceStage::*;
    let spans = &r.spans;
    let term = |a, b| term_p50_ms(spans, a, b);
    let e2e = term(Submitted, Replied).unwrap_or(0.0);
    let submit_to_propose = term(Submitted, Proposed).unwrap_or(0.0);
    let propose_to_commit = term(Proposed, Committed).unwrap_or(0.0);
    let commit_to_execute = term(Committed, Executed).unwrap_or(0.0);
    let execute_to_reply = term(Executed, Replied).unwrap_or(0.0);
    let slow = spans
        .iter()
        .filter(|s| s.delta(Submitted.index(), Replied.index()) > Some(SLOW_US))
        .count();
    let m = geo_matrix();
    let mut models: Vec<u64> = m
        .replicas()
        .map(|i| match protocol {
            "Clock-RSM" => model::clock_rsm_balanced(&m, i),
            "Paxos" => model::paxos(&m, i, ReplicaId::new(0)),
            _ => model::mencius_bcast_imbalanced(&m, i),
        })
        .collect();
    models.sort_unstable();
    Breakdown {
        protocol,
        spans: spans.len(),
        open_spans: r.open_spans,
        slow_spans: slow,
        e2e_p50_ms: e2e,
        submit_to_propose_ms: submit_to_propose,
        propose_to_replicate_ms: term(Proposed, Replicated),
        propose_to_stable_ms: term(Proposed, Stable),
        propose_to_commit_ms: propose_to_commit,
        commit_to_execute_ms: commit_to_execute,
        execute_to_reply_ms: execute_to_reply,
        term_sum_ms: submit_to_propose + propose_to_commit + commit_to_execute + execute_to_reply,
        model_commit_ms: models[models.len() / 2] as f64 / 1_000.0,
    }
}

/// Per-protocol overhead row: virtual throughput with and without the
/// registry + tracer attached, plus wall-clock (stderr only: it is
/// machine-dependent, the JSON stays reproducible).
struct Overhead {
    protocol: &'static str,
    uninstrumented_kops: f64,
    instrumented_kops: f64,
    delta_frac: f64,
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.3}"),
        None => "null".to_string(),
    }
}

/// Replaces the single-line `"latency_breakdown"` / `"obs_overhead"`
/// placeholder sections of an existing `BENCH_perf.json` in place, or
/// writes a fresh skeleton when the file (or a placeholder) is missing.
fn merge_into(path: &str, breakdown_line: &str, overhead_line: &str) {
    let fresh = || {
        format!(
            "{{\n  \"schema\": \"clock-rsm-repro/perf-baseline/v6\",\n  \"quick\": {},\n\
             {breakdown_line}\n{overhead_line}\n  \"entries\": []\n}}\n",
            quick()
        )
    };
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) if existing.contains("\"latency_breakdown\"") => {
            existing
                .lines()
                .map(|line| {
                    let t = line.trim_start();
                    if t.starts_with("\"latency_breakdown\":") {
                        breakdown_line.to_string()
                    } else if t.starts_with("\"obs_overhead\":") {
                        overhead_line.to_string()
                    } else {
                        line.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
                + "\n"
        }
        _ => fresh(),
    };
    std::fs::write(path, merged).expect("write BENCH_perf.json");
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let out_path =
        std::env::var("BENCH_PERF_OUT").unwrap_or_else(|_| "BENCH_perf.json".to_string());
    let mut failures: Vec<String> = Vec::new();

    let protocols = [
        ProtocolChoice::clock_rsm(),
        ProtocolChoice::paxos(0),
        ProtocolChoice::mencius(),
    ];

    // The traced geo read-mix runs and their breakdown rows.
    let mut rows: Vec<Breakdown> = Vec::new();
    println!("=== Per-command latency breakdown (geo 3x25ms, 90/10 reads, p50 ms) ===");
    println!(
        "{:<14}{:>7}{:>9}{:>10}{:>9}{:>9}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "protocol",
        "spans",
        "sub>prop",
        "prop>repl",
        "prop>stb",
        "prop>cmt",
        "cmt>exec",
        "exec>rpl",
        "sum",
        "e2e",
        "model"
    );
    for choice in &protocols {
        let r = traced_readmix(choice.clone());
        let b = breakdown(r.protocol, &r);

        // Instrumentation-vs-reality cross-check: the executed-command
        // counter must mirror each replica's commit count exactly.
        let metrics = r.metrics.as_ref().expect("observed run has metrics");
        for (i, &commits) in r.commit_counts.iter().enumerate() {
            let counted = metrics
                .counters
                .get(&format!("r{i}.commands.executed"))
                .copied()
                .unwrap_or(0);
            if counted != commits {
                failures.push(format!(
                    "{}: replica {i} executed-counter {counted} != commit count {commits}",
                    b.protocol
                ));
            }
        }

        println!(
            "{:<14}{:>7}{:>9.2}{:>10}{:>9}{:>9.2}{:>9.2}{:>9.2}{:>9.2}{:>9.2}{:>9.2}",
            b.protocol,
            b.spans,
            b.submit_to_propose_ms,
            fmt_opt(b.propose_to_replicate_ms),
            fmt_opt(b.propose_to_stable_ms),
            b.propose_to_commit_ms,
            b.commit_to_execute_ms,
            b.execute_to_reply_ms,
            b.term_sum_ms,
            b.e2e_p50_ms,
            b.model_commit_ms
        );
        if b.slow_spans > 0 {
            eprintln!(
                "{}: {} spans over the {} ms slow threshold ({} open at shutdown)",
                b.protocol,
                b.slow_spans,
                SLOW_US / 1_000,
                b.open_spans
            );
        }

        if b.spans == 0 {
            failures.push(format!("{}: traced run produced no spans", b.protocol));
        }
        // Gate 1: no term exceeds the end-to-end median.
        let terms: [(&str, f64); 4] = [
            ("submit_to_propose", b.submit_to_propose_ms),
            ("propose_to_commit", b.propose_to_commit_ms),
            ("commit_to_execute", b.commit_to_execute_ms),
            ("execute_to_reply", b.execute_to_reply_ms),
        ];
        for (name, v) in terms {
            if v > b.e2e_p50_ms + 1e-3 {
                failures.push(format!(
                    "{}: breakdown term {name} p50 {v:.3} ms exceeds end-to-end \
                     p50 {:.3} ms",
                    b.protocol, b.e2e_p50_ms
                ));
            }
        }
        // Gate 2: telescoping sum consistency.
        if b.e2e_p50_ms > 0.0 {
            let off = (b.term_sum_ms - b.e2e_p50_ms).abs() / b.e2e_p50_ms;
            if off > SUM_TOLERANCE_FRAC {
                failures.push(format!(
                    "{}: term sum {:.3} ms is {:.0}% off the end-to-end p50 {:.3} ms \
                     (tolerance {:.0}%)",
                    b.protocol,
                    b.term_sum_ms,
                    off * 100.0,
                    b.e2e_p50_ms,
                    SUM_TOLERANCE_FRAC * 100.0
                ));
            }
        }
        // Gate 3: Clock-RSM's decomposition, directionally vs the model.
        if b.protocol == "Clock-RSM" {
            let stable = b.propose_to_stable_ms.unwrap_or(0.0);
            let replicate = b.propose_to_replicate_ms.unwrap_or(0.0);
            if stable <= 0.0 {
                failures
                    .push("Clock-RSM: stable-wait term is zero under 25 ms geo delay".to_string());
            }
            let m = geo_matrix();
            let origin = ReplicaId::new(0);
            let model_replicate = 2 * m.median_from(origin);
            let model_stable = m.max_from(origin);
            if (replicate > stable) != (model_replicate > model_stable) {
                failures.push(format!(
                    "Clock-RSM: measured replicate {replicate:.2} ms vs stable {stable:.2} ms \
                     disagrees with the model's ordering ({} µs vs {} µs)",
                    model_replicate, model_stable
                ));
            }
        }
        rows.push(b);
    }

    // The overhead gate: instrumented vs uninstrumented heavy load.
    println!("\n=== Instrumentation overhead (heavy load, static-64) ===");
    println!(
        "{:<14}{:>14}{:>14}{:>10}{:>16}",
        "protocol", "plain kops", "traced kops", "delta", "wall s (p/t)"
    );
    let mut overheads: Vec<Overhead> = Vec::new();
    for choice in &protocols {
        let (plain, plain_wall) = heavy(choice.clone(), false);
        let (traced, traced_wall) = heavy(choice.clone(), true);
        let delta = (traced.throughput_kops - plain.throughput_kops).abs()
            / plain.throughput_kops.max(1e-9);
        println!(
            "{:<14}{:>14.1}{:>14.1}{:>9.2}%{:>9.1}/{:.1}",
            plain.protocol,
            plain.throughput_kops,
            traced.throughput_kops,
            delta * 100.0,
            plain_wall,
            traced_wall
        );
        if check && delta > OVERHEAD_MAX_FRAC {
            failures.push(format!(
                "{}: instrumented heavy throughput {:.1}k deviates {:.1}% from \
                 uninstrumented {:.1}k (max {:.0}%)",
                plain.protocol,
                traced.throughput_kops,
                delta * 100.0,
                plain.throughput_kops,
                OVERHEAD_MAX_FRAC * 100.0
            ));
        }
        overheads.push(Overhead {
            protocol: plain.protocol,
            uninstrumented_kops: plain.throughput_kops,
            instrumented_kops: traced.throughput_kops,
            delta_frac: delta,
        });
    }

    // Substitute the schema-v6 sections in place (single lines, so a
    // rerun substitutes its own output idempotently).
    let mut bl = String::from("  \"latency_breakdown\": [ ");
    for (i, b) in rows.iter().enumerate() {
        let _ = write!(
            bl,
            "{{ \"protocol\": \"{}\", \"spans\": {}, \"e2e_p50_ms\": {:.3}, \
             \"submit_to_propose_ms\": {:.3}, \"propose_to_replicate_ms\": {}, \
             \"propose_to_stable_ms\": {}, \"propose_to_commit_ms\": {:.3}, \
             \"commit_to_execute_ms\": {:.3}, \"execute_to_reply_ms\": {:.3}, \
             \"term_sum_ms\": {:.3}, \"model_commit_ms\": {:.3}, \"slow_spans\": {} }}",
            b.protocol,
            b.spans,
            b.e2e_p50_ms,
            b.submit_to_propose_ms,
            fmt_opt(b.propose_to_replicate_ms),
            fmt_opt(b.propose_to_stable_ms),
            b.propose_to_commit_ms,
            b.commit_to_execute_ms,
            b.execute_to_reply_ms,
            b.term_sum_ms,
            b.model_commit_ms,
            b.slow_spans
        );
        bl.push_str(if i + 1 < rows.len() { ", " } else { " " });
    }
    bl.push_str("],");
    let mut ol = String::from("  \"obs_overhead\": [ ");
    for (i, o) in overheads.iter().enumerate() {
        let _ = write!(
            ol,
            "{{ \"protocol\": \"{}\", \"uninstrumented_kops\": {:.3}, \
             \"instrumented_kops\": {:.3}, \"delta_frac\": {:.4}, \"max_frac\": {} }}",
            o.protocol, o.uninstrumented_kops, o.instrumented_kops, o.delta_frac, OVERHEAD_MAX_FRAC
        );
        ol.push_str(if i + 1 < overheads.len() { ", " } else { " " });
    }
    ol.push_str("],");
    merge_into(&out_path, &bl, &ol);
    println!("\nmerged latency_breakdown + obs_overhead into {out_path}");

    if !failures.is_empty() {
        eprintln!(
            "\nobs_report{} FAILED:",
            if check { " --check" } else { "" }
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
