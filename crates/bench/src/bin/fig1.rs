//! Figure 1: average and 95th-percentile commit latency at each of five
//! replicas (CA, VA, IR, JP, SG) under a **balanced** workload, with the
//! Paxos/Paxos-bcast leader at CA (panel a) and VA (panel b).

use analysis::ec2;
use bench::{print_latency_table, with_windows};
use harness::{run_latency, ExperimentConfig, ProtocolChoice};

fn main() {
    let (sites, matrix) = ec2::five_site_deployment();
    let site_names: Vec<&str> = sites.iter().map(|s| s.name()).collect();
    let cfg = with_windows(ExperimentConfig::new(matrix));

    // Clock-RSM and Mencius-bcast have no leader: one run serves both
    // panels.
    let clock = run_latency(ProtocolChoice::clock_rsm(), &cfg);
    let mencius = run_latency(ProtocolChoice::mencius(), &cfg);
    assert!(clock.checks.all_ok(), "{:?}", clock.checks.violation);
    assert!(mencius.checks.all_ok(), "{:?}", mencius.checks.violation);

    for (panel, leader_idx) in [("(a) leader at CA", 0u16), ("(b) leader at VA", 1u16)] {
        let mut paxos = run_latency(ProtocolChoice::paxos(leader_idx), &cfg);
        let mut paxos_b = run_latency(ProtocolChoice::paxos_bcast(leader_idx), &cfg);
        assert!(paxos.checks.all_ok(), "{:?}", paxos.checks.violation);
        assert!(paxos_b.checks.all_ok(), "{:?}", paxos_b.checks.violation);
        let mut rows = vec![
            ("Paxos".to_string(), std::mem::take(&mut paxos.site_stats)),
            ("Mencius-bcast".to_string(), mencius.site_stats.clone()),
            (
                "Paxos-bcast".to_string(),
                std::mem::take(&mut paxos_b.site_stats),
            ),
            ("Clock-RSM".to_string(), clock.site_stats.clone()),
        ];
        print_latency_table(
            &format!("Figure 1{panel}: five replicas, balanced workload"),
            &site_names,
            &mut rows,
        );
    }
}
