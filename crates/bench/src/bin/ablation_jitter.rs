//! Ablation: per-message network jitter vs per-protocol latency on the
//! five-site balanced workload. Clock-RSM's stable-order condition waits
//! on the *slowest* link, so jitter should hurt it slightly more than
//! Paxos-bcast (which waits on medians) — the paper's "managed WAN"
//! remark (Section V-C).

use analysis::ec2;
use bench::with_windows;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};

fn main() {
    let (sites, matrix) = ec2::five_site_deployment();
    println!("\n=== Ablation: network jitter vs average latency (balanced, 5 sites) ===");
    println!(
        "{:<12}{:>14}{:>14}{:>16}",
        "jitter (ms)", "Clock-RSM", "Paxos-bcast", "Mencius-bcast"
    );
    for jitter_ms in [0u64, 2, 5, 10, 20] {
        let cfg = with_windows(ExperimentConfig::new(matrix.clone()))
            .jitter_us(jitter_ms * 1_000)
            .clients_per_site(20);
        let mean_over_sites = |choice| {
            let r = run_latency(choice, &cfg);
            assert!(r.checks.all_ok(), "{:?}", r.checks.violation);
            let sum: f64 = r.site_stats.iter().map(|s| s.mean_ms()).sum();
            sum / sites.len() as f64
        };
        println!(
            "{:<12}{:>14.1}{:>14.1}{:>16.1}",
            jitter_ms,
            mean_over_sites(ProtocolChoice::clock_rsm()),
            mean_over_sites(ProtocolChoice::paxos_bcast(1)),
            mean_over_sites(ProtocolChoice::mencius()),
        );
    }
    println!("(average over all five sites, ms)");
}
