//! Table II: message steps, message complexity, and commit latency
//! formulas of the four protocols — printed symbolically and evaluated on
//! the five-site deployment of Figure 1.

use analysis::model::{self, ProtocolKind};
use analysis::{ec2, Site};
use rsm_core::ReplicaId;

fn main() {
    println!("\n=== Table II: steps, complexity, latency formulas ===\n");
    let rows = [
        (
            ProtocolKind::Paxos,
            "leader: 2*median_k d(l,k) | non-leader: 2*d(i,l) + 2*median_k d(l,k)",
        ),
        (
            ProtocolKind::PaxosBcast,
            "leader: 2*median_k d(l,k) | non-leader: d(i,l) + median_k(d(l,k)+d(k,i))",
        ),
        (
            ProtocolKind::MenciusBcast,
            "imbalanced: 2*max_k d(i,k) | balanced: [q, q + max_k d(i,k)], q = Clock-RSM",
        ),
        (
            ProtocolKind::ClockRsm,
            "imbalanced: max(2*median_k d(i,k), max_k d(i,k)) | balanced: max(..., max_j median_k(d(j,k)+d(k,i)))",
        ),
    ];
    println!("{:<16}{:<8}{:<8}latency", "protocol", "steps", "msgs");
    for (p, formula) in rows {
        let (steps, complexity) = model::table2_meta(p);
        println!("{:<16}{:<8}{:<8}{}", p.name(), steps, complexity, formula);
    }

    // Evaluate on the Figure 1 deployment with the leader at VA.
    let (sites, m) = ec2::five_site_deployment();
    let leader = ReplicaId::new(Site::VA as u16 - Site::CA as u16); // VA = index 1
    println!("\nEvaluated on {{CA VA IR JP SG}} (leader VA), per-replica commit latency (ms):");
    println!(
        "{:<8}{:>10}{:>14}{:>18}{:>22}",
        "site", "Paxos", "Paxos-bcast", "Clock-RSM (bal.)", "Mencius (bal. bounds)"
    );
    for (i, site) in sites.iter().enumerate() {
        let r = ReplicaId::new(i as u16);
        let (lo, hi) = model::mencius_bcast_balanced_bounds(&m, r);
        println!(
            "{:<8}{:>10.1}{:>14.1}{:>18.1}{:>14.1}-{:<7.1}",
            site.name(),
            model::paxos(&m, r, leader) as f64 / 1000.0,
            model::paxos_bcast(&m, r, leader) as f64 / 1000.0,
            model::clock_rsm_balanced(&m, r) as f64 / 1000.0,
            lo as f64 / 1000.0,
            hi as f64 / 1000.0,
        );
    }
}
