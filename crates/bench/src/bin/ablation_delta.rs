//! Ablation: the CLOCKTIME broadcast interval Δ (Algorithm 2) under a
//! **light imbalanced** workload — the one case where the paper says the
//! extension matters. Expected: latency ≈ max(2·median, max + Δ), so
//! small Δ approaches the moderate-load latency and large Δ degrades
//! toward 2·max (the no-extension bound).

use analysis::{ec2, model};
use bench::with_windows;
use clock_rsm::ClockRsmConfig;
use harness::{run_latency, ExperimentConfig, ProtocolChoice};
use rsm_core::time::MILLIS;
use rsm_core::ReplicaId;

fn main() {
    let (sites, matrix) = ec2::five_site_deployment();
    let origin = 4u16; // SG
    println!("\n=== Ablation: CLOCKTIME interval Δ (light imbalanced load at SG) ===");
    println!(
        "analytic: latency = max(2*median, max + Δ) = max({:.1}, {:.1} + Δ) ms",
        2.0 * matrix.median_from(ReplicaId::new(origin)) as f64 / 1000.0,
        matrix.max_from(ReplicaId::new(origin)) as f64 / 1000.0
    );
    println!(
        "{:<12}{:>14}{:>14}{:>16}",
        "Δ (ms)", "avg (ms)", "p95 (ms)", "model (ms)"
    );
    for delta_ms in [1u64, 5, 10, 20, 50] {
        // Light load: one client, long think time, so PREPAREOK traffic
        // from previous commands cannot help the stable-order condition.
        let cfg = with_windows(ExperimentConfig::new(matrix.clone()))
            .active_sites(vec![origin])
            .clients_per_site(1)
            .think_max_us(400 * MILLIS);
        let choice = ProtocolChoice::clock_rsm_with(
            ClockRsmConfig::default().with_delta_us(Some(delta_ms * MILLIS)),
        );
        let mut r = run_latency(choice, &cfg);
        let model_ms =
            model::clock_rsm_imbalanced_light(&matrix, ReplicaId::new(origin), delta_ms * MILLIS)
                as f64
                / 1000.0;
        println!(
            "{:<12}{:>14.1}{:>14.1}{:>16.1}",
            delta_ms,
            r.site_stats[origin as usize].mean_ms(),
            r.site_stats[origin as usize].percentile_ms(95.0),
            model_ms,
        );
    }
    let _ = sites;
}
