//! One-shot reproduction: runs every table and figure of the paper in
//! sequence, printing each in paper order. Equivalent to running the
//! individual `table*`/`fig*` binaries; honors `BENCH_QUICK=1`.
//!
//! Run with: `cargo run -p bench --release --bin repro_all`

use std::process::Command;

fn main() {
    let targets = [
        "table2",
        "table3",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "table4",
        "fig8",
        "ablation_delta",
        "ablation_skew",
        "ablation_jitter",
        "ablation_batching",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin directory");
    for t in targets {
        println!("\n########## {t} ##########");
        let status = Command::new(dir.join(t))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {t}: {e}"));
        assert!(status.success(), "{t} failed with {status}");
    }
    println!(
        "\nAll tables and figures reproduced. See EXPERIMENTS.md for the paper-vs-measured record."
    );
}
