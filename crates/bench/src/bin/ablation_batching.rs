//! Ablation: the CPU model's per-batch fixed cost vs throughput. The
//! paper attributes Paxos's small-command throughput win to the leader
//! "batching more commands when sending and receiving messages" — i.e. to
//! fixed per-batch costs being amortized better at the funnel. This sweep
//! varies the fixed cost from zero (pure per-message costs) upward and
//! reports the Paxos : Clock-RSM throughput ratio at 10 B commands.

use bench::quick;
use harness::{run_throughput, ProtocolChoice};
use rsm_core::BatchPolicy;
use simnet::CpuModel;

fn main() {
    let clients = if quick() { 15 } else { 40 };
    println!("\n=== Ablation: per-batch fixed CPU cost vs throughput (10B cmds) ===");
    println!(
        "{:<18}{:>14}{:>14}{:>14}{:>12}",
        "fixed cost (µs)", "Clock-RSM", "Paxos", "Paxos-bcast", "P/C ratio"
    );
    for fixed in [0u64, 10, 25, 50, 100] {
        let cpu = CpuModel {
            fixed_batch_us: fixed,
            per_msg_us: 2,
            per_kb_us: 9,
        };
        let t = |choice| {
            run_throughput(choice, 10, clients, cpu, 11, BatchPolicy::DISABLED).throughput_kops
        };
        let clock = t(ProtocolChoice::clock_rsm());
        let paxos = t(ProtocolChoice::paxos(0));
        let paxos_b = t(ProtocolChoice::paxos_bcast(0));
        println!(
            "{:<18}{:>13.1}k{:>13.1}k{:>13.1}k{:>12.2}",
            fixed,
            clock,
            paxos,
            paxos_b,
            paxos / clock.max(0.001),
        );
    }
    println!(
        "(kops/s; the ratio shows how batching-dominated cost structures favor the leader funnel)"
    );
}
