//! Figure 8: throughput for small (10 B), medium (100 B), and large
//! (1000 B) commands with five replicas on an emulated local cluster —
//! CPU cost model enabled, saturating closed-loop clients.
//!
//! Shape notes (see EXPERIMENTS.md): the large-command ordering — the
//! multi-leader protocols beat the Paxos variants because the leader
//! copies every command's bytes N times — and Clock-RSM ≈ Mencius at all
//! sizes reproduce cleanly. The paper's small-command advantage of Paxos
//! stems from implementation-level batching asymmetries its own text
//! describes; a clean queueing model over the Table II message patterns
//! does not produce it (see `ablation_batching` for the sensitivity
//! study).

use bench::quick;
use harness::{run_throughput, ProtocolChoice};
use rsm_core::BatchPolicy;
use simnet::CpuModel;

fn main() {
    let clients = if quick() { 20 } else { 60 };
    println!("\n=== Figure 8: throughput, five replicas, local cluster model ===");
    println!(
        "{:<16}{:>12}{:>12}{:>12}",
        "protocol", "10B", "100B", "1000B"
    );
    for choice in [
        ProtocolChoice::clock_rsm(),
        ProtocolChoice::mencius(),
        ProtocolChoice::paxos(0),
        ProtocolChoice::paxos_bcast(0),
    ] {
        print!("{:<16}", choice.name());
        for size in [10usize, 100, 1000] {
            let r = run_throughput(
                choice.clone(),
                size,
                clients,
                CpuModel::default(),
                7,
                BatchPolicy::DISABLED,
            );
            print!("{:>10.1}k ", r.throughput_kops);
        }
        println!();
    }
    println!("(committed commands per second, thousands)");
}
