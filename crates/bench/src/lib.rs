//! # bench
//!
//! The benchmark harness of the Clock-RSM reproduction: **one binary per
//! table and figure** of the paper's evaluation (Section VI), plus
//! ablation studies and Criterion micro/macro benchmarks.
//!
//! | Binary | Reproduces |
//! |--------|-----------|
//! | `table2` | Table II — latency formulas, steps, complexity |
//! | `table3` | Table III — the EC2 RTT matrix driving the simulator |
//! | `fig1` | Figure 1 — 5 sites, balanced, avg + p95 per replica |
//! | `fig2` | Figure 2 — 3 sites, balanced |
//! | `fig3` | Figure 3 — latency CDF at JP (5 sites, leader CA) |
//! | `fig4` | Figure 4 — latency CDF at CA (3 sites, leader VA) |
//! | `fig5` | Figure 5 — 5 sites, imbalanced |
//! | `fig6` | Figure 6 — latency CDF at SG (imbalanced) |
//! | `fig7` | Figure 7 — numerical sweep over all DC combinations |
//! | `table4` | Table IV — latency reduction of Clock-RSM vs Paxos-bcast |
//! | `fig8` | Figure 8 — throughput on an emulated local cluster |
//! | `ablation_delta` | Δ (CLOCKTIME interval) sweep, light imbalanced load |
//! | `ablation_skew` | clock synchronization bound sweep |
//! | `ablation_jitter` | network jitter sensitivity |
//! | `ablation_batching` | CPU fixed-cost (batching benefit) sweep |
//! | `batch_sweep` | protocol-level batch size × command size throughput sweep |
//! | `perf_baseline` | canonical perf matrix (3 protocols × light/heavy × static/adaptive batching) → `BENCH_perf.json` |
//! | `obs_report` | per-protocol latency breakdown from trace spans + instrumentation overhead → `BENCH_perf.json` (run after `perf_baseline`) |
//!
//! Run any of them with `cargo run -p bench --release --bin figN`.
//! Set `BENCH_QUICK=1` to shrink measurement windows ~10x for smoke runs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use harness::{ExperimentConfig, LatencyStats};
use rsm_core::time::{Micros, MILLIS};

/// Measurement window parameters, honoring `BENCH_QUICK`.
#[derive(Debug, Clone, Copy)]
pub struct Windows {
    /// Warmup before samples count.
    pub warmup_us: Micros,
    /// Measurement window length.
    pub duration_us: Micros,
}

/// Returns paper-grade windows (4 s + 20 s), or ~10x smaller when the
/// `BENCH_QUICK` environment variable is set.
pub fn windows() -> Windows {
    if quick() {
        Windows {
            warmup_us: 500 * MILLIS,
            duration_us: 2_000 * MILLIS,
        }
    } else {
        Windows {
            warmup_us: 4_000 * MILLIS,
            duration_us: 20_000 * MILLIS,
        }
    }
}

/// Whether quick mode is active.
pub fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Applies the window parameters to an experiment configuration.
pub fn with_windows(cfg: ExperimentConfig) -> ExperimentConfig {
    let w = windows();
    cfg.warmup_us(w.warmup_us).duration_us(w.duration_us)
}

/// Prints a per-site `avg (p95)` table, one row per protocol — the shape
/// of Figures 1, 2, and 5.
pub fn print_latency_table(
    title: &str,
    site_names: &[&str],
    rows: &mut [(String, Vec<LatencyStats>)],
) {
    println!("\n=== {title} ===");
    print!("{:<16}", "protocol");
    for s in site_names {
        print!("{s:>16}");
    }
    println!();
    for (name, stats) in rows.iter_mut() {
        print!("{name:<16}");
        for s in stats.iter_mut() {
            if s.is_empty() {
                print!("{:>16}", "-");
            } else {
                print!(
                    "{:>16}",
                    format!("{:.1} ({:.1})", s.mean_ms(), s.percentile_ms(95.0))
                );
            }
        }
        println!();
    }
    println!("(per-site commit latency ms: average (95th percentile))");
}

/// Prints CDF series side by side — the shape of Figures 3, 4, and 6.
pub fn print_cdf_table(title: &str, series: &mut [(String, LatencyStats)], points: usize) {
    println!("\n=== {title} ===");
    let cdfs: Vec<(String, Vec<(f64, f64)>)> = series
        .iter_mut()
        .map(|(name, s)| (name.clone(), s.cdf(points)))
        .collect();
    print!("{:<10}", "CDF%");
    for (name, _) in &cdfs {
        print!("{name:>16}");
    }
    println!();
    for i in 0..points {
        let frac = i as f64 / (points - 1) as f64;
        print!("{:<10.0}", frac * 100.0);
        for (_, cdf) in &cdfs {
            match cdf.get(i) {
                Some((ms, _)) => print!("{ms:>16.1}"),
                None => print!("{:>16}", "-"),
            }
        }
        println!();
    }
    println!("(latency ms at each percentile)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_shrink_in_quick_mode() {
        if !quick() {
            let w = windows();
            assert_eq!(w.warmup_us, 4_000_000);
            assert_eq!(w.duration_us, 20_000_000);
        }
    }

    #[test]
    fn print_helpers_do_not_panic() {
        let mut stats = LatencyStats::new();
        stats.record(5_000);
        stats.record(7_000);
        print_latency_table("t", &["A"], &mut [("x".into(), vec![stats.clone()])]);
        print_cdf_table("t", &mut [("x".into(), stats)], 5);
    }
}
