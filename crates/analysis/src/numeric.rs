//! Numerical comparison over all EC2 data-center combinations
//! (Section VI-C of the paper: Figure 7 and Table IV).
//!
//! For every group of 3, 5, and 7 of the seven Table III sites, compute
//! the analytic commit latency of Clock-RSM (balanced formula) and
//! Paxos-bcast (best leader, i.e. the one minimizing the group's average)
//! at every replica, then aggregate:
//!
//! * **Figure 7** — for each group size: the average latency over *all*
//!   replicas of all groups, and the average over each group's *highest*
//!   latency replica.
//! * **Table IV** — the fraction of replicas where Clock-RSM reduces
//!   latency vs Paxos-bcast, with average absolute and relative
//!   reductions for both the winning and losing buckets.

use rsm_core::matrix::LatencyMatrix;
use rsm_core::time::Micros;
use rsm_core::ReplicaId;

use crate::ec2;
use crate::model;

/// Latency comparison for one replica group.
#[derive(Debug, Clone)]
pub struct GroupComparison {
    /// Indices (into [`ec2::ALL_SITES`]) of the group members.
    pub sites: Vec<usize>,
    /// The best Paxos-bcast leader for this group.
    pub leader: ReplicaId,
    /// Per-replica Clock-RSM latency (µs), balanced-workload formula.
    pub clock_rsm: Vec<Micros>,
    /// Per-replica Paxos-bcast latency (µs) with the best leader.
    pub paxos_bcast: Vec<Micros>,
}

impl GroupComparison {
    /// Evaluates one group given its site indices.
    pub fn evaluate(sites: &[usize]) -> Self {
        let m = ec2::full_matrix().subgroup(sites);
        let leader = model::best_leader(&m, model::paxos_bcast);
        let clock_rsm = m
            .replicas()
            .map(|r| model::clock_rsm_balanced(&m, r))
            .collect();
        let paxos_bcast = m
            .replicas()
            .map(|r| model::paxos_bcast(&m, r, leader))
            .collect();
        GroupComparison {
            sites: sites.to_vec(),
            leader,
            clock_rsm,
            paxos_bcast,
        }
    }

    /// The highest per-replica latency of each protocol in this group.
    pub fn highest(&self) -> (Micros, Micros) {
        (
            *self.clock_rsm.iter().max().expect("non-empty"),
            *self.paxos_bcast.iter().max().expect("non-empty"),
        )
    }
}

/// One bucket of Table IV: replicas where Clock-RSM wins (or loses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionSummary {
    /// Fraction of replicas in this bucket (0..=1).
    pub fraction: f64,
    /// Average absolute latency reduction in milliseconds
    /// (negative when Clock-RSM is slower).
    pub absolute_ms: f64,
    /// Relative reduction: the bucket's average absolute reduction divided
    /// by the overall average Paxos-bcast latency of the group size — the
    /// paper's Table IV convention (negative when Clock-RSM is slower).
    pub relative: f64,
}

/// Aggregated results for one group size (Figure 7 bars + Table IV rows).
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Group size (3, 5, or 7).
    pub group_size: usize,
    /// Number of groups evaluated (`C(7, group_size)`).
    pub group_count: usize,
    /// Figure 7 "average all": mean latency over all replicas, ms.
    pub avg_all_clock_rsm_ms: f64,
    /// Figure 7 "average all" for Paxos-bcast, ms.
    pub avg_all_paxos_bcast_ms: f64,
    /// Figure 7 "average highest": mean of per-group maxima, ms.
    pub avg_highest_clock_rsm_ms: f64,
    /// Figure 7 "average highest" for Paxos-bcast, ms.
    pub avg_highest_paxos_bcast_ms: f64,
    /// Table IV row: replicas where Clock-RSM is strictly faster.
    pub wins: ReductionSummary,
    /// Table IV row: replicas where Clock-RSM is equal or slower.
    pub losses: ReductionSummary,
    /// The individual group evaluations.
    pub groups: Vec<GroupComparison>,
}

/// All `k`-subsets of `0..n`, in lexicographic order.
pub fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(i + 1, n, k, current, out);
            current.pop();
        }
    }
    rec(0, n, k, &mut current, &mut out);
    out
}

/// Runs the full numerical sweep for one group size.
pub fn sweep(group_size: usize) -> SweepResult {
    assert!(
        (1..=7).contains(&group_size),
        "group size must be within the seven Table III sites"
    );
    let groups: Vec<GroupComparison> = combinations(7, group_size)
        .iter()
        .map(|g| GroupComparison::evaluate(g))
        .collect();

    let mut all_clock = Vec::new();
    let mut all_paxos = Vec::new();
    let mut highest_clock = Vec::new();
    let mut highest_paxos = Vec::new();
    for g in &groups {
        all_clock.extend_from_slice(&g.clock_rsm);
        all_paxos.extend_from_slice(&g.paxos_bcast);
        let (hc, hp) = g.highest();
        highest_clock.push(hc);
        highest_paxos.push(hp);
    }

    let mean_ms = |v: &[Micros]| v.iter().sum::<Micros>() as f64 / v.len() as f64 / 1_000.0;

    // Table IV buckets.
    let total = all_clock.len();
    let mut win_abs = Vec::new();
    let mut loss_abs = Vec::new();
    for (&c, &p) in all_clock.iter().zip(&all_paxos) {
        let abs_ms = (p as f64 - c as f64) / 1_000.0;
        if c < p {
            win_abs.push(abs_ms);
        } else {
            loss_abs.push(abs_ms);
        }
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let avg_all_paxos_bcast_ms = mean_ms(&all_paxos);

    SweepResult {
        group_size,
        group_count: groups.len(),
        avg_all_clock_rsm_ms: mean_ms(&all_clock),
        avg_all_paxos_bcast_ms,
        avg_highest_clock_rsm_ms: mean_ms(&highest_clock),
        avg_highest_paxos_bcast_ms: mean_ms(&highest_paxos),
        wins: ReductionSummary {
            fraction: win_abs.len() as f64 / total as f64,
            absolute_ms: avg(&win_abs),
            relative: avg(&win_abs) / avg_all_paxos_bcast_ms,
        },
        losses: ReductionSummary {
            fraction: loss_abs.len() as f64 / total as f64,
            absolute_ms: avg(&loss_abs),
            relative: avg(&loss_abs) / avg_all_paxos_bcast_ms,
        },
        groups,
    }
}

/// Convenience: evaluate both protocols on an arbitrary matrix (used by
/// tests to cross-check simulation results against the model).
pub fn compare_on(m: &LatencyMatrix) -> (Vec<Micros>, Vec<Micros>, ReplicaId) {
    let leader = model::best_leader(m, model::paxos_bcast);
    let c = m
        .replicas()
        .map(|r| model::clock_rsm_balanced(m, r))
        .collect();
    let p = m
        .replicas()
        .map(|r| model::paxos_bcast(m, r, leader))
        .collect();
    (c, p, leader)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_counts() {
        assert_eq!(combinations(7, 3).len(), 35);
        assert_eq!(combinations(7, 5).len(), 21);
        assert_eq!(combinations(7, 7).len(), 1);
        assert_eq!(combinations(4, 2).len(), 6);
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        let cs = combinations(7, 3);
        for c in &cs {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let mut dedup = cs.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), cs.len());
    }

    /// Table IV, 5-replica row: 68.6% of replicas win by 31.9 ms (15.2%),
    /// 31.4% lose by 30.6 ms (14.6%). Pure arithmetic from Table III, so
    /// we should land on the paper's numbers almost exactly.
    #[test]
    fn table_iv_five_replica_row_matches_paper() {
        let s = sweep(5);
        assert_eq!(s.group_count, 21);
        assert!(
            (s.wins.fraction * 100.0 - 68.6).abs() < 1.5,
            "win fraction {}",
            s.wins.fraction * 100.0
        );
        assert!(
            (s.wins.absolute_ms - 31.9).abs() < 2.5,
            "win abs {}",
            s.wins.absolute_ms
        );
        assert!(
            (s.wins.relative * 100.0 - 15.2).abs() < 2.5,
            "win rel {}",
            s.wins.relative * 100.0
        );
        assert!(
            (s.losses.absolute_ms + 30.6).abs() < 2.5,
            "loss abs {}",
            s.losses.absolute_ms
        );
    }

    /// Table IV, 3-replica row: Clock-RSM never wins; loses by ~9.9 ms
    /// (~6.2%) on average.
    #[test]
    fn table_iv_three_replica_row_matches_paper() {
        let s = sweep(3);
        assert_eq!(s.group_count, 35);
        assert!(
            s.wins.fraction < 0.03,
            "3-replica groups should all favor Paxos-bcast, got {}",
            s.wins.fraction
        );
        assert!(
            (s.losses.absolute_ms + 9.9).abs() < 2.0,
            "loss abs {}",
            s.losses.absolute_ms
        );
        assert!(
            (s.losses.relative * 100.0 + 6.2).abs() < 1.5,
            "loss rel {}",
            s.losses.relative * 100.0
        );
        // Implied denominator cross-check: the overall average Paxos-bcast
        // latency of three-replica groups is ~160 ms.
        assert!(
            (s.avg_all_paxos_bcast_ms - 159.7).abs() < 5.0,
            "avg paxos {}",
            s.avg_all_paxos_bcast_ms
        );
    }

    /// Table IV, 7-replica row: 85.7% win by ~50.2 ms (~21.5%).
    #[test]
    fn table_iv_seven_replica_row_matches_paper() {
        let s = sweep(7);
        assert_eq!(s.group_count, 1);
        assert!(
            (s.wins.fraction * 100.0 - 85.7).abs() < 1.0,
            "win fraction {}",
            s.wins.fraction * 100.0
        );
        assert!(
            (s.wins.absolute_ms - 50.2).abs() < 2.5,
            "win abs {}",
            s.wins.absolute_ms
        );
        assert!(
            (s.losses.absolute_ms + 39.4).abs() < 1.0,
            "loss abs {}",
            s.losses.absolute_ms
        );
    }

    /// Figure 7 shape: Clock-RSM wins both metrics at 5 and 7 replicas,
    /// loses slightly at 3; the highest-latency gap exceeds the
    /// average-latency gap.
    #[test]
    fn figure_7_shape() {
        let s3 = sweep(3);
        let s5 = sweep(5);
        let s7 = sweep(7);
        assert!(s3.avg_all_clock_rsm_ms > s3.avg_all_paxos_bcast_ms);
        assert!(s5.avg_all_clock_rsm_ms < s5.avg_all_paxos_bcast_ms);
        assert!(s7.avg_all_clock_rsm_ms < s7.avg_all_paxos_bcast_ms);
        assert!(s5.avg_highest_clock_rsm_ms < s5.avg_highest_paxos_bcast_ms);
        assert!(s7.avg_highest_clock_rsm_ms < s7.avg_highest_paxos_bcast_ms);
        let gap_all = s5.avg_all_paxos_bcast_ms - s5.avg_all_clock_rsm_ms;
        let gap_highest = s5.avg_highest_paxos_bcast_ms - s5.avg_highest_clock_rsm_ms;
        assert!(
            gap_highest > gap_all,
            "improvement for the highest-latency replica should be larger \
             ({gap_highest:.1} vs {gap_all:.1})"
        );
    }

    #[test]
    fn compare_on_uniform_matrix() {
        let m = LatencyMatrix::uniform(5, 50_000);
        let (c, p, leader) = compare_on(&m);
        assert_eq!(c.len(), 5);
        // All replicas symmetric: leader is replica 0 by tie-break.
        assert_eq!(leader, ReplicaId::new(0));
        for i in 1..5 {
            assert!(c[i] < p[i]);
        }
    }
}
