//! The closed-form commit latency model (Table II of the paper).
//!
//! All functions take one-way latencies (microseconds) from a
//! [`LatencyMatrix`] and return expected commit latency at one replica,
//! ignoring local computation, disk I/O, and clock skew — exactly the
//! assumptions of Section IV.
//!
//! Note on `median`: the paper's `median({d(r_i, r_k) | ∀ r_k ∈ R})`
//! ranges over **all** replicas including `r_i` itself at distance zero,
//! so it equals the distance to the majority-th closest replica. This is
//! what [`LatencyMatrix::median_from`] computes.

use rsm_core::matrix::LatencyMatrix;
use rsm_core::time::Micros;
use rsm_core::ReplicaId;

/// The four protocols compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Multi-Paxos with a stable leader (phase 2b to leader + commit msg).
    Paxos,
    /// Multi-Paxos with broadcast phase 2b.
    PaxosBcast,
    /// Mencius with broadcast acknowledgements.
    MenciusBcast,
    /// Clock-RSM (Algorithm 1, extension enabled).
    ClockRsm,
}

impl ProtocolKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Paxos => "Paxos",
            ProtocolKind::PaxosBcast => "Paxos-bcast",
            ProtocolKind::MenciusBcast => "Mencius-bcast",
            ProtocolKind::ClockRsm => "Clock-RSM",
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Plain Multi-Paxos commit latency at `replica` with the given `leader`:
/// `2·median_k d(l,k)` at the leader,
/// `2·d(i,l) + 2·median_k d(l,k)` elsewhere.
pub fn paxos(m: &LatencyMatrix, replica: ReplicaId, leader: ReplicaId) -> Micros {
    let leader_round = 2 * m.median_from(leader);
    if replica == leader {
        leader_round
    } else {
        2 * m.one_way(replica, leader) + leader_round
    }
}

/// Paxos-bcast commit latency at `replica` with the given `leader`:
/// `2·median_k d(l,k)` at the leader,
/// `d(i,l) + median_k(d(l,k) + d(k,i))` elsewhere.
pub fn paxos_bcast(m: &LatencyMatrix, replica: ReplicaId, leader: ReplicaId) -> Micros {
    if replica == leader {
        2 * m.median_from(leader)
    } else {
        m.one_way(replica, leader) + m.median_two_hop(leader, replica)
    }
}

/// Clock-RSM latency under **imbalanced** moderate/heavy workloads
/// (only `replica` proposes, frequently):
/// `max(2·median_k d(i,k), max_k d(i,k))` — majority replication
/// overlapped with stable order; prefix replication is free.
pub fn clock_rsm_imbalanced(m: &LatencyMatrix, replica: ReplicaId) -> Micros {
    let lc1 = 2 * m.median_from(replica);
    let lc2 = m.max_from(replica);
    lc1.max(lc2)
}

/// Clock-RSM latency under **imbalanced light** workloads with the
/// Algorithm 2 extension and broadcast interval `delta`:
/// `max(2·median_k d(i,k), max_k d(i,k) + Δ)`.
pub fn clock_rsm_imbalanced_light(m: &LatencyMatrix, replica: ReplicaId, delta: Micros) -> Micros {
    let lc1 = 2 * m.median_from(replica);
    let lc2 = m.max_from(replica) + delta;
    lc1.max(lc2)
}

/// Clock-RSM latency under **imbalanced light** workloads *without* the
/// extension: `2·max_k d(i,k)` (stable order needs the round trip).
pub fn clock_rsm_imbalanced_light_no_ext(m: &LatencyMatrix, replica: ReplicaId) -> Micros {
    2 * m.max_from(replica)
}

/// The prefix-replication term of the balanced formula:
/// `max_j median_k (d(j,k) + d(k,i))` — the worst two-hop majority path
/// from any concurrent originator `j` back to `i`.
pub fn clock_rsm_prefix_term(m: &LatencyMatrix, replica: ReplicaId) -> Micros {
    m.replicas()
        .map(|j| m.median_two_hop(j, replica))
        .max()
        .expect("non-empty matrix")
}

/// Clock-RSM latency under **balanced** workloads (every replica proposes
/// at moderate/heavy load):
/// `max(2·median_k d(i,k), max_k d(i,k), max_j median_k(d(j,k)+d(k,i)))`.
pub fn clock_rsm_balanced(m: &LatencyMatrix, replica: ReplicaId) -> Micros {
    clock_rsm_imbalanced(m, replica).max(clock_rsm_prefix_term(m, replica))
}

/// Mencius-bcast latency under **imbalanced** workloads:
/// `2·max_k d(i,k)` — a full round trip to the farthest replica, because
/// the proposer needs skip promises from everyone.
pub fn mencius_bcast_imbalanced(m: &LatencyMatrix, replica: ReplicaId) -> Micros {
    2 * m.max_from(replica)
}

/// Mencius-bcast latency bounds under **balanced** workloads:
/// `[q, q + max_k d(i,k)]` where `q` is Clock-RSM's balanced latency —
/// the delayed-commit problem adds up to one one-way delay.
pub fn mencius_bcast_balanced_bounds(m: &LatencyMatrix, replica: ReplicaId) -> (Micros, Micros) {
    let q = clock_rsm_balanced(m, replica);
    (q, q + m.max_from(replica))
}

/// The Paxos/Paxos-bcast leader that minimizes the **average** latency
/// over all replicas (the paper's leader-placement rule for the numerical
/// comparison), for the given latency function.
pub fn best_leader(
    m: &LatencyMatrix,
    latency: impl Fn(&LatencyMatrix, ReplicaId, ReplicaId) -> Micros,
) -> ReplicaId {
    m.replicas()
        .min_by_key(|&l| m.replicas().map(|r| latency(m, r, l)).sum::<Micros>())
        .expect("non-empty matrix")
}

/// Message-step and complexity rows of Table II, for pretty-printing.
pub fn table2_meta(p: ProtocolKind) -> (&'static str, &'static str) {
    match p {
        ProtocolKind::Paxos => ("4 / 2", "O(N)"),
        ProtocolKind::PaxosBcast => ("3 / 2", "O(N^2)"),
        ProtocolKind::MenciusBcast => ("2", "O(N^2)"),
        ProtocolKind::ClockRsm => ("2", "O(N^2)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ec2;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    /// Five-site deployment (CA VA IR JP SG), one-way ms:
    /// CA: [0, 41.5, 85, 62.5, 85.5]
    /// VA: [41.5, 0, 50.5, 107.5, 127]
    /// IR: [85, 50.5, 0, 140, 108]
    /// JP: [62.5, 107.5, 140, 0, 38.5]
    /// SG: [85.5, 127, 108, 38.5, 0]
    fn five() -> rsm_core::LatencyMatrix {
        ec2::five_site_deployment().1
    }

    #[test]
    fn paxos_leader_latency_is_majority_round_trip() {
        let m = five();
        // Leader VA: distances [41.5, 0, 50.5, 107.5, 127] sorted
        // [0, 41.5, 50.5, 107.5, 127] -> median 50.5ms -> 101ms round.
        assert_eq!(paxos(&m, r(1), r(1)), 101_000);
        assert_eq!(paxos_bcast(&m, r(1), r(1)), 101_000);
    }

    #[test]
    fn paxos_non_leader_adds_two_forward_hops() {
        let m = five();
        // CA with leader VA: 2*41.5 + 101 = 184ms.
        assert_eq!(paxos(&m, r(0), r(1)), 184_000);
    }

    #[test]
    fn paxos_bcast_non_leader_uses_two_hop_median() {
        let m = five();
        // CA with leader VA: d(CA,VA) + median_k(d(VA,k)+d(k,CA)).
        // Two-hop VA->k->CA: k=CA: 41.5+0=41.5; k=VA: 0+41.5=41.5;
        // k=IR: 50.5+85=135.5; k=JP: 107.5+62.5=170; k=SG: 127+85.5=212.5.
        // sorted [41.5,41.5,135.5,170,212.5] median=135.5; total 177ms.
        assert_eq!(paxos_bcast(&m, r(0), r(1)), 177_000);
    }

    #[test]
    fn clock_rsm_terms_on_five_sites() {
        let m = five();
        // CA: majority = 2*median([0,41.5,85,62.5,85.5] sorted
        // [0,41.5,62.5,85,85.5] -> 62.5)=125ms; stable order = 85.5ms.
        assert_eq!(clock_rsm_imbalanced(&m, r(0)), 125_000);
        // Balanced adds the prefix term; it never lowers latency.
        assert!(clock_rsm_balanced(&m, r(0)) >= 125_000);
    }

    #[test]
    fn stable_order_dominates_at_edge_replicas() {
        let m = five();
        // JP: distances [62.5, 107.5, 140, 0, 38.5]; max = 140 (to IR);
        // median: sorted [0, 38.5, 62.5, 107.5, 140] -> 62.5 -> lc1 = 125.
        // Stable order 140 > 125: the JP/IR path dominates, matching the
        // paper's Figure 1 discussion ("command latency at JP and IR is at
        // least 140ms").
        assert_eq!(clock_rsm_imbalanced(&m, r(3)), 140_000);
    }

    #[test]
    fn mencius_imbalanced_is_full_round_trip_to_farthest() {
        let m = five();
        // SG: farthest is VA at 127ms one-way -> 254ms.
        assert_eq!(mencius_bcast_imbalanced(&m, r(4)), 254_000);
    }

    #[test]
    fn mencius_balanced_bounds_bracket_clock_rsm() {
        let m = five();
        for i in 0..5 {
            let (lo, hi) = mencius_bcast_balanced_bounds(&m, r(i));
            let q = clock_rsm_balanced(&m, r(i));
            assert_eq!(lo, q);
            assert_eq!(hi, q + m.max_from(r(i)));
        }
    }

    #[test]
    fn best_leader_for_five_sites() {
        // The paper: "designating the replica at VA as the leader gives
        // the best overall latency for Paxos and Paxos-bcast". For plain
        // Paxos the model agrees exactly (VA wins: 231.6 ms avg vs CA's
        // 234.8 ms); for Paxos-bcast the closed form puts CA marginally
        // ahead of VA — both fit the paper's Figure 1 experiments, which
        // only tried CA and VA.
        let m = five();
        assert_eq!(best_leader(&m, paxos), r(1));
        let b = best_leader(&m, paxos_bcast);
        assert!(b == r(0) || b == r(1), "best bcast leader {b}");
    }

    #[test]
    fn three_site_special_case_round_trip_to_nearest() {
        // Paper Section VI-B: with three replicas both protocols need one
        // round trip to the nearest replica (leader at VA).
        let (_, m) = ec2::three_site_deployment();
        // CA: nearest is VA (41.5): Clock-RSM commits at
        // max(2*41.5, 85) = max(83, 85) = 85ms.
        assert_eq!(clock_rsm_balanced(&m, r(0)), 85_000);
        // Paxos-bcast at CA with leader VA:
        // 41.5 + median(k: VA->k->CA) = 41.5 + [41.5,41.5,135.5] median
        // = 41.5+41.5 = 83ms.
        assert_eq!(paxos_bcast(&m, r(0), r(1)), 83_000);
    }

    #[test]
    fn extension_helps_light_imbalanced_load() {
        let m = five();
        for i in 0..5 {
            let without = clock_rsm_imbalanced_light_no_ext(&m, r(i));
            let with = clock_rsm_imbalanced_light(&m, r(i), 5_000);
            assert!(with <= without, "extension must not hurt");
        }
    }

    #[test]
    fn uniform_latencies_favor_clock_rsm_at_non_leaders() {
        // Section IV-D: "if we assume that the latencies between any two
        // replicas are the same, Clock-RSM provides lower latency".
        let m = rsm_core::LatencyMatrix::uniform(5, 50_000);
        let leader = r(0);
        for i in 1..5 {
            assert!(
                clock_rsm_balanced(&m, r(i)) < paxos_bcast(&m, r(i), leader),
                "replica {i}"
            );
        }
        assert_eq!(
            clock_rsm_balanced(&m, leader),
            paxos_bcast(&m, leader, leader)
        );
    }

    #[test]
    fn table2_meta_rows() {
        assert_eq!(table2_meta(ProtocolKind::Paxos), ("4 / 2", "O(N)"));
        assert_eq!(table2_meta(ProtocolKind::ClockRsm).1, "O(N^2)");
    }
}
