//! # analysis
//!
//! The **analytical latency model** of the Clock-RSM paper (Section IV,
//! Table II), the paper's measured **EC2 round-trip matrix** (Table III),
//! and the **numerical evaluation** over all data-center combinations
//! (Section VI-C: Figure 7 and Table IV).
//!
//! Everything here is closed-form arithmetic over a
//! [`LatencyMatrix`](rsm_core::LatencyMatrix), so the numeric results can
//! be compared *exactly* against the numbers printed in the paper — the
//! unit tests do exactly that — and cross-checked against the
//! discrete-event simulation in the workspace integration tests.
//!
//! ## Example
//!
//! ```
//! use analysis::{ec2, model};
//! use rsm_core::ReplicaId;
//!
//! // The five-site deployment of Figure 1: CA VA IR JP SG.
//! let m = ec2::matrix_for(&[ec2::Site::CA, ec2::Site::VA, ec2::Site::IR,
//!                           ec2::Site::JP, ec2::Site::SG]);
//! let ca = ReplicaId::new(0);
//! let balanced = model::clock_rsm_balanced(&m, ca);
//! let paxos = model::paxos_bcast(&m, ReplicaId::new(1), ca);
//! assert!(balanced > 0 && paxos > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ec2;
pub mod model;
pub mod numeric;

pub use ec2::Site;
pub use model::ProtocolKind;
pub use numeric::{GroupComparison, ReductionSummary, SweepResult};
