//! The paper's measured EC2 inter-data-center latencies (Table III).

use rsm_core::matrix::LatencyMatrix;

/// The seven Amazon EC2 data centers of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // site abbreviations are the documentation
pub enum Site {
    CA,
    VA,
    IR,
    JP,
    SG,
    AU,
    BR,
}

/// All seven sites in Table III order.
pub const ALL_SITES: [Site; 7] = [
    Site::CA,
    Site::VA,
    Site::IR,
    Site::JP,
    Site::SG,
    Site::AU,
    Site::BR,
];

impl Site {
    /// The site's row/column index in the full Table III matrix.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The data-center name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Site::CA => "CA",
            Site::VA => "VA",
            Site::IR => "IR",
            Site::JP => "JP",
            Site::SG => "SG",
            Site::AU => "AU",
            Site::BR => "BR",
        }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Average round-trip latencies in milliseconds between EC2 data centers,
/// exactly as reported in Table III of the paper (symmetric, zero
/// diagonal). Order: CA, VA, IR, JP, SG, AU, BR.
#[rustfmt::skip] // keep the hand-aligned Table III layout
pub const RTT_MS: [[f64; 7]; 7] = [
    //        CA     VA     IR     JP     SG     AU     BR
    /*CA*/ [0.0, 83.0, 170.0, 125.0, 171.0, 187.0, 212.0],
    /*VA*/ [83.0, 0.0, 101.0, 215.0, 254.0, 220.0, 137.0],
    /*IR*/ [170.0, 101.0, 0.0, 280.0, 216.0, 305.0, 216.0],
    /*JP*/ [125.0, 215.0, 280.0, 0.0, 77.0, 129.0, 368.0],
    /*SG*/ [171.0, 254.0, 216.0, 77.0, 0.0, 188.0, 369.0],
    /*AU*/ [187.0, 220.0, 305.0, 129.0, 188.0, 0.0, 349.0],
    /*BR*/ [212.0, 137.0, 216.0, 368.0, 369.0, 349.0, 0.0],
];

/// The full seven-site latency matrix of Table III.
pub fn full_matrix() -> LatencyMatrix {
    LatencyMatrix::from_rtt_ms(&RTT_MS.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
}

/// A latency matrix restricted to the given sites, in the given order
/// (replica `i` of the result is `sites[i]`).
pub fn matrix_for(sites: &[Site]) -> LatencyMatrix {
    let idx: Vec<usize> = sites.iter().map(|s| s.index()).collect();
    full_matrix().subgroup(&idx)
}

/// The five-site deployment used by Figures 1, 3, 5, and 6:
/// CA, VA, IR, JP, SG.
pub fn five_site_deployment() -> (Vec<Site>, LatencyMatrix) {
    let sites = vec![Site::CA, Site::VA, Site::IR, Site::JP, Site::SG];
    let m = matrix_for(&sites);
    (sites, m)
}

/// The three-site deployment used by Figures 2 and 4: CA, VA, IR.
pub fn three_site_deployment() -> (Vec<Site>, LatencyMatrix) {
    let sites = vec![Site::CA, Site::VA, Site::IR];
    let m = matrix_for(&sites);
    (sites, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_core::ReplicaId;

    #[test]
    fn matrix_matches_table_iii_spot_checks() {
        let m = full_matrix();
        // One-way latency is half the reported RTT, in microseconds.
        let ca = ReplicaId::new(Site::CA.index() as u16);
        let va = ReplicaId::new(Site::VA.index() as u16);
        let ir = ReplicaId::new(Site::IR.index() as u16);
        let jp = ReplicaId::new(Site::JP.index() as u16);
        let br = ReplicaId::new(Site::BR.index() as u16);
        assert_eq!(m.rtt(ca, va), 83_000);
        assert_eq!(m.rtt(ir, jp), 280_000);
        assert_eq!(m.rtt(jp, br), 368_000);
        assert_eq!(m.one_way(ca, ir), 85_000);
    }

    #[test]
    fn subgroup_preserves_pairwise_latencies() {
        let (sites, m) = five_site_deployment();
        assert_eq!(sites.len(), 5);
        // VA is replica 1, JP replica 3 in the subgroup: RTT 215 ms.
        assert_eq!(m.rtt(ReplicaId::new(1), ReplicaId::new(3)), 215_000);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let m = full_matrix();
        for i in m.replicas() {
            assert_eq!(m.one_way(i, i), 0);
            for j in m.replicas() {
                assert_eq!(m.one_way(i, j), m.one_way(j, i));
            }
        }
    }

    #[test]
    fn site_names_roundtrip() {
        for s in ALL_SITES {
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(Site::BR.index(), 6);
    }
}
