//! Property tests of the closed-form latency model (Table II): structural
//! invariants that must hold on *any* latency matrix, not just the EC2
//! one. These pin down the relationships the paper argues in Section IV.

use analysis::{ec2, model};
use proptest::prelude::*;
use rsm_core::{LatencyMatrix, ReplicaId};

/// On the paper's actual topology (Table III), Paxos-bcast is pointwise
/// no slower than plain Paxos for every leader/replica pair — the claim
/// is not a theorem on arbitrary matrices (the property tests below
/// found synthetic counterexamples), but it holds exhaustively on the
/// EC2 latencies the paper evaluates.
#[test]
fn paxos_bcast_dominates_on_ec2() {
    let m = ec2::full_matrix();
    for leader in m.replicas() {
        for replica in m.replicas() {
            assert!(
                model::paxos_bcast(&m, replica, leader) <= model::paxos(&m, replica, leader),
                "leader {leader} replica {replica}"
            );
        }
    }
}

fn arb_matrix(n: usize) -> impl Strategy<Value = LatencyMatrix> {
    proptest::collection::vec(1_000u64..200_000, n * (n - 1) / 2).prop_map(move |vals| {
        let mut m = vec![vec![0u64; n]; n];
        let mut it = vals.into_iter();
        #[allow(clippy::needless_range_loop)] // triangular fill is clearest with indices
        for i in 0..n {
            for j in (i + 1)..n {
                let v = it.next().expect("enough values");
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        LatencyMatrix::from_one_way_micros(m)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Balanced Clock-RSM latency is never below the imbalanced latency
    /// (the prefix-replication term only adds), and every variant is
    /// bounded by one round trip over the *globally* farthest pair — the
    /// prefix term rides two-hop paths through other origins, so the
    /// origin's own farthest link is not the binding constant.
    #[test]
    fn clock_rsm_workload_ordering(m in arb_matrix(5), r in 0u16..5) {
        let r = ReplicaId::new(r);
        let imb = model::clock_rsm_imbalanced(&m, r);
        let bal = model::clock_rsm_balanced(&m, r);
        let global_max = m
            .replicas()
            .map(|a| m.max_from(a))
            .max()
            .expect("non-empty");
        prop_assert!(imb <= bal);
        prop_assert!(
            bal <= 2 * global_max,
            "balanced {bal} must not exceed one global-max round trip {}",
            2 * global_max
        );
        // Majority replication is a lower bound for every variant.
        prop_assert!(imb >= 2 * m.median_from(r));
    }

    /// The Algorithm 2 extension: latency is monotone in Δ, and helps
    /// (never hurts) exactly while Δ stays below the farthest one-way
    /// distance — `max + Δ < 2·max ⇔ Δ < max`.
    #[test]
    fn extension_monotone_in_delta(m in arb_matrix(5), r in 0u16..5) {
        let r = ReplicaId::new(r);
        let no_ext = model::clock_rsm_imbalanced_light_no_ext(&m, r);
        let mut prev = model::clock_rsm_imbalanced_light(&m, r, 0);
        for delta in [1_000u64, 10_000, 100_000, 1_000_000] {
            let v = model::clock_rsm_imbalanced_light(&m, r, delta);
            prop_assert!(v >= prev, "latency must be monotone in Δ");
            if delta <= m.max_from(r) {
                prop_assert!(v <= no_ext, "Δ below max one-way must not hurt");
            }
            prev = v;
        }
    }

    /// Paxos non-leader latency is never below the leader's. (Note that
    /// Paxos-bcast is NOT pointwise faster than plain Paxos: the bcast
    /// path waits on a median of two-hop leader→k→i paths, which on
    /// skewed topologies can exceed the plain path's leader-local median
    /// round trip — the paper's improvement claim is about typical
    /// placements, and property testing found the counterexamples.)
    #[test]
    fn paxos_structure(m in arb_matrix(5), l in 0u16..5, r in 0u16..5) {
        let leader = ReplicaId::new(l);
        let replica = ReplicaId::new(r);
        prop_assert!(
            model::paxos(&m, replica, leader) >= model::paxos(&m, leader, leader)
        );
        // At the leader itself the two variants coincide.
        prop_assert_eq!(
            model::paxos_bcast(&m, leader, leader),
            model::paxos(&m, leader, leader)
        );
        let _ = replica;
    }

    /// Mencius under imbalanced load is never faster than Clock-RSM
    /// (Section IV-C: "always requires higher latency or at most the
    /// same"), and its balanced band starts at Clock-RSM's latency.
    #[test]
    fn mencius_never_beats_clock_rsm(m in arb_matrix(5), r in 0u16..5) {
        let r = ReplicaId::new(r);
        prop_assert!(
            model::mencius_bcast_imbalanced(&m, r) >= model::clock_rsm_imbalanced(&m, r)
        );
        let (lo, hi) = model::mencius_bcast_balanced_bounds(&m, r);
        prop_assert_eq!(lo, model::clock_rsm_balanced(&m, r));
        prop_assert!(hi >= lo);
    }

    /// The best leader really is optimal among all leader placements.
    #[test]
    fn best_leader_is_argmin(m in arb_matrix(5)) {
        let best = model::best_leader(&m, model::paxos_bcast);
        let avg = |l: ReplicaId| -> u64 {
            m.replicas().map(|r| model::paxos_bcast(&m, r, l)).sum()
        };
        let best_avg = avg(best);
        for l in m.replicas() {
            prop_assert!(best_avg <= avg(l));
        }
    }

    /// Median/max helpers: median (majority distance) never exceeds max,
    /// and the two-hop median from a replica to itself is at most 2·median
    /// …actually exactly bounded by max+max.
    #[test]
    fn matrix_helper_bounds(m in arb_matrix(7), a in 0u16..7, b in 0u16..7) {
        let (a, b) = (ReplicaId::new(a), ReplicaId::new(b));
        prop_assert!(m.median_from(a) <= m.max_from(a));
        let two_hop = m.median_two_hop(a, b);
        prop_assert!(two_hop <= m.max_from(a) + m.max_from(b));
        // Triangle-free sanity: direct distance is one of the two-hop
        // paths (k = a or k = b), so the median cannot exceed the largest
        // two-hop but can be below the direct path.
        prop_assert!(two_hop <= m.replicas()
            .map(|k| m.one_way(a, k) + m.one_way(k, b))
            .max()
            .expect("non-empty"));
    }

    /// Subgroup extraction preserves pairwise latencies.
    #[test]
    fn subgroup_preserves_latencies(
        m in arb_matrix(7),
        pick in proptest::sample::subsequence(vec![0usize,1,2,3,4,5,6], 3..=5),
    ) {
        let sub = m.subgroup(&pick);
        for (i, &oi) in pick.iter().enumerate() {
            for (j, &oj) in pick.iter().enumerate() {
                prop_assert_eq!(
                    sub.one_way(ReplicaId::new(i as u16), ReplicaId::new(j as u16)),
                    m.one_way(ReplicaId::new(oi as u16), ReplicaId::new(oj as u16))
                );
            }
        }
    }
}
