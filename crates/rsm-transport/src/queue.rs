//! A bounded, blocking MPSC queue.
//!
//! The crossbeam shim's `bounded()` never blocks (its bound is
//! advisory), but outbound link queues need real backpressure: a sender
//! that outruns a peer's socket must stall, never drop, because every
//! protocol here assumes gap-free FIFO links. This queue is the minimal
//! mutex + two-condvar implementation of exactly that.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use rsm_obs::Gauge;

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Lock-free mirror of `buf.len()`, readable from outside the
    /// queue's threads (admission control samples it, and the runtime
    /// registers it as a metrics-registry gauge when observing).
    depth: Gauge,
}

struct Inner<T> {
    buf: VecDeque<T>,
    cap: usize,
    senders: usize,
    rx_alive: bool,
}

pub(crate) fn bounded<T>(cap: usize) -> (QueueSender<T>, QueueReceiver<T>) {
    assert!(cap > 0, "queue capacity must be positive");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            buf: VecDeque::new(),
            cap,
            senders: 1,
            rx_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        depth: Gauge::default(),
    });
    (
        QueueSender {
            shared: Arc::clone(&shared),
        },
        QueueReceiver { shared },
    )
}

pub(crate) struct QueueSender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> QueueSender<T> {
    /// A lock-free handle on the current queue depth (admission
    /// control samples it without touching the queue mutex).
    pub(crate) fn depth_gauge(&self) -> Gauge {
        self.shared.depth.clone()
    }

    /// Enqueues `value`, blocking while the queue is full. Fails (giving
    /// the value back) only if the receiver is gone.
    pub(crate) fn send(&self, value: T) -> Result<(), T> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if !inner.rx_alive {
                return Err(value);
            }
            if inner.buf.len() < inner.cap {
                inner.buf.push_back(value);
                self.shared.depth.set(inner.buf.len() as i64);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).unwrap();
        }
    }
}

impl<T> Clone for QueueSender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        QueueSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for QueueSender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            self.shared.not_empty.notify_all();
        }
    }
}

pub(crate) struct QueueReceiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> QueueReceiver<T> {
    /// Dequeues the next value, blocking while the queue is empty.
    /// Returns `None` once the queue is empty **and** every sender is
    /// gone.
    pub(crate) fn recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.buf.pop_front() {
                self.shared.depth.set(inner.buf.len() as i64);
                self.shared.not_full.notify_one();
                return Some(v);
            }
            if inner.senders == 0 {
                return None;
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking dequeue; `None` when currently empty.
    pub(crate) fn try_recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().unwrap();
        let v = inner.buf.pop_front();
        if v.is_some() {
            self.shared.depth.set(inner.buf.len() as i64);
            self.shared.not_full.notify_one();
        }
        v
    }

    /// True once every sender has been dropped (the owning hub is
    /// shutting down); used to stop redialing an unreachable peer.
    pub(crate) fn senders_gone(&self) -> bool {
        self.shared.inner.lock().unwrap().senders == 0
    }
}

impl<T> Drop for QueueReceiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.rx_alive = false;
        drop(inner);
        self.shared.not_full.notify_all();
    }
}
