//! Transport endpoints and the stream abstraction over TCP / UDS.

use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Where a replica listens: a TCP socket address or a Unix socket path.
///
/// TCP endpoints may be created with port `0`;
/// [`Listener::bind`](crate::Listener::bind) reports the OS-assigned
/// port back via
/// [`Listener::endpoint`](crate::Listener::endpoint), which is what
/// peers must dial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:0` for an OS-assigned loopback port.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

static UDS_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Endpoint {
    /// A loopback TCP endpoint with an OS-assigned port.
    pub fn tcp_loopback() -> Endpoint {
        Endpoint::Tcp(SocketAddr::from(([127, 0, 0, 1], 0)))
    }

    /// A fresh Unix socket path under the system temp directory, unique
    /// across processes (pid) and within this process (counter), tagged
    /// for debuggability.
    pub fn uds_temp(tag: &str, node: u16) -> Endpoint {
        let n = UDS_COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "rsm-{}-{}-{}-{}.sock",
            std::process::id(),
            n,
            tag,
            node
        ));
        Endpoint::Uds(path)
    }
}

/// A connected byte stream over either family. Both variants give the
/// same blocking `Read`/`Write` (with real vectored writes) plus
/// half-aware shutdown; `TCP_NODELAY` is set on TCP so small frames are
/// not Nagle-delayed.
pub(crate) enum Conn {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Conn {
    pub(crate) fn connect(endpoint: &Endpoint) -> io::Result<Conn> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            Endpoint::Uds(path) => Ok(Conn::Uds(UnixStream::connect(path)?)),
        }
    }

    pub(crate) fn from_tcp(s: TcpStream) -> io::Result<Conn> {
        s.set_nodelay(true)?;
        Ok(Conn::Tcp(s))
    }

    pub(crate) fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            Conn::Uds(s) => Conn::Uds(s.try_clone()?),
        })
    }

    pub(crate) fn shutdown(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Both),
            Conn::Uds(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write_vectored(bufs),
            Conn::Uds(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Uds(s) => s.flush(),
        }
    }
}
